test/test_ir_internals.ml: Alcotest Block Builder Cfg Dominance Func Instr Interp Layout List Loop_info Prog Reg String Turnpike_ir
