test/test_api_surface.ml: Alcotest Array Block Filename Func Instr Layout List Prog Reg String Sys Turnpike Turnpike_arch Turnpike_compiler Turnpike_ir Turnpike_workloads Unix
