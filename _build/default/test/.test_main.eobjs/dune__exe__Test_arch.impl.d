test/test_arch.ml: Alcotest Array Cache Clq Coloring Cost_model Gen List Machine Mem_hierarchy Ooo_timing QCheck QCheck_alcotest Rbb Sensor Sim_stats Store_buffer Timing Turnpike_arch Turnpike_ir
