test/test_ir.ml: Alcotest Array Block Builder Cfg Dominance Func Hashtbl Instr Interp Layout List Liveness Loop_info Prog QCheck QCheck_alcotest Reg Trace Turnpike_ir
