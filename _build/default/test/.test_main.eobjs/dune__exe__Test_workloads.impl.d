test/test_workloads.ml: Alcotest Array Interp List Prog QCheck QCheck_alcotest Trace Turnpike Turnpike_arch Turnpike_ir Turnpike_workloads
