test/test_core.ml: Alcotest List Turnpike Turnpike_arch Turnpike_workloads
