(* Tests for recovery-block code generation: the emitted IR, executed on a
   machine state whose checkpoint slots are populated, must restore exactly
   the register values the resilience engine's restore path computes. *)

open Turnpike_ir
open Turnpike_compiler
module Suite = Turnpike_workloads.Suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compiled_of name =
  let b = List.hd (Suite.find_by_name name) in
  let prog = b.Suite.build ~scale:1 in
  Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog

(* Execute a recovery block's straight-line body over a state. *)
let exec_block st (blk : Recovery_codegen.block) =
  List.iter (Interp.exec_instr Interp.no_hooks st) blk.Recovery_codegen.body

let test_blocks_cover_all_regions () =
  let c = compiled_of "libquan" in
  let blocks = Recovery_codegen.generate ~compiled:c ~nregs:32 in
  check_int "one block per region" (Array.length c.Pass_pipeline.regions)
    (List.length blocks);
  List.iter
    (fun (blk : Recovery_codegen.block) ->
      match Pass_pipeline.region_info c blk.Recovery_codegen.region with
      | Some info ->
        Alcotest.(check string)
          "recovery pc is the region head" info.Pass_pipeline.head
          blk.Recovery_codegen.recovery_pc
      | None -> Alcotest.fail "dangling region id")
    blocks

let test_plain_restores_are_slot_loads () =
  let c = compiled_of "mcf" in
  let blocks = Recovery_codegen.generate ~compiled:c ~nregs:32 in
  List.iter
    (fun (blk : Recovery_codegen.block) ->
      List.iter
        (fun i ->
          match i with
          | Instr.Load (_, base, _, Instr.Ckpt_mem) ->
            check "slot loads are absolute" true (Reg.is_zero base)
          | Instr.Load (_, base, _, Instr.Spill_mem) ->
            check "scratch loads are absolute" true (Reg.is_zero base)
          | _ -> ())
        blk.Recovery_codegen.body)
    blocks

(* The equivalence test: populate checkpoint slots from a real run, then
   compare (a) executing the emitted block against (b) the expression
   evaluator the engine uses. *)
let test_codegen_matches_expression_eval name =
  let c = compiled_of name in
  let final = Interp.run ~fuel:5_000_000 c.Pass_pipeline.prog in
  let blocks = Recovery_codegen.generate ~compiled:c ~nregs:32 in
  List.iter
    (fun (blk : Recovery_codegen.block) ->
      match Pass_pipeline.region_info c blk.Recovery_codegen.region with
      | None -> ()
      | Some info ->
        (* (a) run the block on a scratch state sharing the final memory. *)
        let st =
          {
            Interp.regs = Hashtbl.create 16;
            mem = final.Interp.mem;
            pc = { Interp.block = "x"; index = 0 };
            steps = 0;
            halted = false;
          }
        in
        exec_block st blk;
        (* (b) engine-style restore: slot read or expression eval. *)
        let read_slot r = Interp.get_mem final (Layout.ckpt_slot ~reg:r ~color:0) in
        List.iter
          (fun reg ->
            let expected =
              match Hashtbl.find_opt c.Pass_pipeline.recovery_exprs reg with
              | Some e -> Recovery_expr.eval ~read_slot e
              | None -> read_slot reg
            in
            check_int
              (Printf.sprintf "%s region %d %s" name blk.Recovery_codegen.region
                 (Reg.to_string reg))
              expected (Interp.get_reg st reg))
          info.Pass_pipeline.live_in)
    blocks

let test_codegen_equivalence_stream () = test_codegen_matches_expression_eval "libquan"
let test_codegen_equivalence_stencil () = test_codegen_matches_expression_eval "bwaves"
let test_codegen_equivalence_diamond () = test_codegen_matches_expression_eval "astar"
let test_codegen_equivalence_matmul () = test_codegen_matches_expression_eval "cholesky"

let test_select_lowering_direct () =
  (* Lower a Select directly and execute both outcomes. *)
  let mk cond =
    Recovery_expr.Select
      (Recovery_expr.Const cond, Recovery_expr.Const 111, Recovery_expr.Const 222)
  in
  let run expr =
    let compiled =
      (* Tiny synthetic compiled value: one region, one pruned register. *)
      let b = Builder.create "sel" in
      Builder.label b "entry";
      Builder.nop b;
      Builder.ret b;
      let prog = Builder.finish b in
      Pass_pipeline.compile ~opts:Pass_pipeline.turnstile_opts prog
    in
    Hashtbl.replace compiled.Pass_pipeline.recovery_exprs 5 expr;
    let blocks =
      Recovery_codegen.generate
        ~compiled:
          {
            compiled with
            Pass_pipeline.regions =
              [| { Pass_pipeline.id = 0; head = "entry"; live_in = [ 5 ] } |];
          }
        ~nregs:32
    in
    let st = Interp.init (Prog.create (Func.create ~name:"empty" ~entry:"e" [ Turnpike_ir.Block.create "e" ])) in
    exec_block st (List.hd blocks);
    Interp.get_reg st 5
  in
  check_int "select true arm" 111 (run (mk 1));
  check_int "select false arm" 222 (run (mk 0))

let test_recovery_code_size_reasonable () =
  (* The recovery metadata exists off the hot path, but its size matters
     for the paper's code-size story: it should stay within a small
     multiple of the region count. *)
  let c = compiled_of "soplex" in
  let blocks = Recovery_codegen.generate ~compiled:c ~nregs:32 in
  let sz = Recovery_codegen.size blocks in
  check "non-empty" true (sz > 0);
  check "bounded" true (sz < 64 * List.length blocks)

(* Random reconstruction expressions: executing the lowered code must agree
   with the expression evaluator for any tree shape, including nested
   selects — the lowering is a tiny compiler and this is its oracle. *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun c -> Recovery_expr.Const (c - 50)) (int_bound 100);
        map (fun r -> Recovery_expr.Slot (1 + (r mod 8))) (int_bound 7) ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          ( 2,
            map3
              (fun op a b -> Recovery_expr.Op (op, a, b))
              (oneofl Turnpike_ir.Instr.[ Add; Sub; Mul; And; Or; Xor ])
              (tree (depth - 1)) (tree (depth - 1)) );
          ( 1,
            map3
              (fun c a b -> Recovery_expr.Cmp (c, a, b))
              (oneofl Turnpike_ir.Instr.[ Eq; Ne; Lt; Ge ])
              (tree (depth - 1)) (tree (depth - 1)) );
          ( 1,
            map3
              (fun c a b -> Recovery_expr.Select (c, a, b))
              (tree (depth - 1)) (tree (depth - 1)) (tree (depth - 1)) ) ]
  in
  tree 3

let prop_lowering_matches_eval =
  QCheck.Test.make ~name:"lowered recovery code = expression evaluator" ~count:200
    (QCheck.make expr_gen)
    (fun expr ->
      (* Populate slots 1..8 with arbitrary-ish deterministic values. *)
      let st =
        {
          Interp.regs = Hashtbl.create 8;
          mem = Hashtbl.create 64;
          pc = { Interp.block = "x"; index = 0 };
          steps = 0;
          halted = false;
        }
      in
      for r = 1 to 8 do
        Interp.set_mem st (Layout.ckpt_slot ~reg:r ~color:0) ((r * 37) - 100)
      done;
      let read_slot r = Interp.get_mem st (Layout.ckpt_slot ~reg:r ~color:0) in
      let expected = Recovery_expr.eval ~read_slot expr in
      (* Lower through the same path generate uses. *)
      let code =
        let module RC = Recovery_codegen in
        let compiled =
          let b = Builder.create "p" in
          Builder.label b "entry";
          Builder.nop b;
          Builder.ret b;
          Pass_pipeline.compile ~opts:Pass_pipeline.turnstile_opts (Builder.finish b)
        in
        Hashtbl.replace compiled.Pass_pipeline.recovery_exprs 9 expr;
        let blocks =
          RC.generate
            ~compiled:
              {
                compiled with
                Pass_pipeline.regions =
                  [| { Pass_pipeline.id = 0; head = "entry"; live_in = [ 9 ] } |];
              }
            ~nregs:32
        in
        (List.hd blocks).RC.body
      in
      List.iter (Interp.exec_instr Interp.no_hooks st) code;
      Interp.get_reg st 9 = expected)

let qcheck = [ QCheck_alcotest.to_alcotest prop_lowering_matches_eval ]

let tests =
  qcheck
  @ [
    ("blocks cover all regions", `Quick, test_blocks_cover_all_regions);
    ("restores are absolute slot loads", `Quick, test_plain_restores_are_slot_loads);
    ("codegen = engine (stream)", `Quick, test_codegen_equivalence_stream);
    ("codegen = engine (stencil/pruned)", `Quick, test_codegen_equivalence_stencil);
    ("codegen = engine (diamond select)", `Quick, test_codegen_equivalence_diamond);
    ("codegen = engine (matmul)", `Quick, test_codegen_equivalence_matmul);
    ("select lowering direct", `Quick, test_select_lowering_direct);
    ("recovery code size reasonable", `Quick, test_recovery_code_size_reasonable);
  ]
