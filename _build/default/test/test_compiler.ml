(* Tests for the compiler passes. The load-bearing invariant everywhere is
   SEMANTIC PRESERVATION: every pass (and every full pipeline config) must
   leave the program's observable output — its application data segment —
   identical to the un-instrumented baseline. *)

open Turnpike_ir
open Turnpike_compiler
module Suite = Turnpike_workloads.Suite
module Templates = Turnpike_workloads.Templates

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Observable output equality on the application data segment. *)
let same_output p1 p2 =
  let s1 = Interp.run ~fuel:5_000_000 p1 and s2 = Interp.run ~fuel:5_000_000 p2 in
  let ok = ref true in
  let data k = k >= Layout.data_base && k < Layout.spill_base in
  let cmp a b =
    Hashtbl.iter
      (fun k v ->
        if data k && v <> 0
           && Option.value (Hashtbl.find_opt b.Interp.mem k) ~default:0 <> v
        then ok := false)
      a.Interp.mem
  in
  cmp s1 s2;
  cmp s2 s1;
  !ok

let bench name = List.hd (Suite.find_by_name name)

let small_prog name = (bench name).Suite.build ~scale:1

(* ------------------------------------------------------------------ *)
(* Regions *)

let compile_turnstile ?(sb = 4) prog =
  Pass_pipeline.compile
    ~opts:{ Pass_pipeline.turnstile_opts with Pass_pipeline.sb_size = sb }
    prog

let test_partition_boundary_invariants () =
  let prog = small_prog "libquan" in
  let c = compile_turnstile prog in
  let f = c.Pass_pipeline.prog.Prog.func in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  (* Every loop header and join block starts with a boundary. *)
  Func.iter_blocks
    (fun b ->
      let is_head =
        Array.length b.Block.body > 0 && Instr.is_boundary b.Block.body.(0)
      in
      let preds = Cfg.predecessors cfg b.Block.label in
      if Loop_info.is_header loops b.Block.label then
        check (b.Block.label ^ " header has boundary") true is_head;
      if List.length preds >= 2 then
        check (b.Block.label ^ " join has boundary") true is_head;
      (* No boundary anywhere except position 0. *)
      Array.iteri
        (fun i ins ->
          if i > 0 then check "boundary only at block start" false (Instr.is_boundary ins))
        b.Block.body)
    f;
  (* Entry starts region 0. *)
  match (Func.entry_block f).Block.body.(0) with
  | Instr.Boundary 0 -> ()
  | _ -> Alcotest.fail "entry must start region 0"

let test_partition_budget_respected () =
  List.iter
    (fun name ->
      let prog = small_prog name in
      let c = compile_turnstile prog in
      let f = c.Pass_pipeline.prog.Prog.func in
      let regions = Regions.of_func f in
      (* The hard requirement: no region path exceeds the SB size. *)
      check
        (name ^ " worst path within SB")
        true
        (Regions.worst_region_path f regions <= 4))
    [ "libquan"; "mcf"; "gcc"; "hmmer"; "lbm"; "astar"; "cholesky"; "radix" ]

let test_partition_larger_sb_fewer_regions () =
  let prog = small_prog "libquan" in
  let r4 = (compile_turnstile ~sb:4 prog).Pass_pipeline.stats.Static_stats.regions in
  let r40 = (compile_turnstile ~sb:40 prog).Pass_pipeline.stats.Static_stats.regions in
  check "sb40 has no more regions than sb4" true (r40 <= r4)

let test_regions_of_func_roundtrip () =
  let prog = small_prog "soplex" in
  let c = compile_turnstile prog in
  let f = c.Pass_pipeline.prog.Prog.func in
  let regions = Regions.of_func f in
  (* Every block belongs to exactly one region; heads map to themselves. *)
  Func.iter_blocks
    (fun b ->
      match Regions.region_of regions b.Block.label with
      | None -> Alcotest.fail ("unassigned block " ^ b.Block.label)
      | Some id -> (
        match Regions.region regions id with
        | None -> Alcotest.fail "dangling region id"
        | Some r -> check "membership recorded" true (List.mem b.Block.label r.Regions.blocks)))
    f

let test_partition_preserves_semantics () =
  List.iter
    (fun name ->
      let prog = small_prog name in
      let c = compile_turnstile prog in
      check (name ^ " output preserved") true (same_output prog c.Pass_pipeline.prog))
    [ "libquan"; "mcf"; "bzip2"; "gobmk" ]

(* ------------------------------------------------------------------ *)
(* Checkpoint insertion *)

let test_ckpt_live_out_covered () =
  (* For every region, a register defined inside it and live at a region
     exit must have a checkpoint after its last def (eager checkpointing,
     paper §2.2). We verify on the flagship example of Fig 1: the loop
     counter and accumulator of a simple loop get per-iteration ckpts. *)
  let prog = small_prog "libquan" in
  let c = compile_turnstile prog in
  let f = c.Pass_pipeline.prog.Prog.func in
  check "has checkpoints" true (Checkpoint.count f > 0);
  (* Strip + reinsert is stable (idempotent up to count). *)
  let before = Checkpoint.count f in
  ignore (Checkpoint.strip f);
  check_int "strip removes all" 0 (Checkpoint.count f);
  let _, inserted = Checkpoint.insert f in
  check_int "reinsert same count" before inserted

(* A program whose input register is live into a join region, so the
   entry region must checkpoint it. *)
let input_into_join_prog () =
  let b = Builder.create "inp" in
  Builder.label b "entry";
  let x = Builder.input_reg b 42 in
  let out = Builder.alloc_array b ~len:1 ~init:(fun _ -> 0) in
  let ob = Builder.fresh_reg b and c = Builder.fresh_reg b in
  Builder.mov b ~dst:ob (Imm out);
  Builder.cmp b Instr.Gt ~dst:c ~a:x (Imm 0);
  Builder.branch b ~cond:c ~if_true:"a" ~if_false:"bb";
  Builder.label b "a";
  Builder.nop b;
  Builder.jump b "fin";
  Builder.label b "bb";
  Builder.nop b;
  Builder.jump b "fin";
  Builder.label b "fin";
  (* fin is a join: its own region; x is live into it. *)
  Builder.store b ~src:x ~base:ob ();
  Builder.ret b;
  Builder.finish b

let test_ckpt_inputs_checkpointed () =
  (* Program inputs live into later regions are checkpointed at entry. *)
  let prog = input_into_join_prog () in
  let c = compile_turnstile prog in
  check "some checkpoint exists" true (Checkpoint.count c.Pass_pipeline.prog.Prog.func >= 1);
  check "output preserved" true (same_output prog c.Pass_pipeline.prog)

let test_ckpt_more_with_small_sb () =
  (* Paper Fig 4: shrinking the SB increases checkpoints. *)
  let prog = small_prog "gcc" in
  let c4 = compile_turnstile ~sb:4 prog in
  let c40 = compile_turnstile ~sb:40 prog in
  check "sb4 >= sb40 ckpts" true
    (c4.Pass_pipeline.stats.Static_stats.ckpts_inserted
    >= c40.Pass_pipeline.stats.Static_stats.ckpts_inserted)

(* ------------------------------------------------------------------ *)
(* Register allocation *)

let test_regalloc_eliminates_virtuals () =
  let prog = small_prog "hmmer" in
  let f = Func.copy prog.Prog.func in
  let r = Regalloc.run f in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          List.iter
            (fun x -> check "no virtual defs" false (Reg.is_virtual x))
            (Instr.defs i);
          List.iter
            (fun x -> check "no virtual uses" false (Reg.is_virtual x))
            (Instr.uses i))
        b.Block.body;
      List.iter
        (fun x -> check "no virtual in terms" false (Reg.is_virtual x))
        (Block.term_uses b))
    r.Regalloc.func

let test_regalloc_preserves_semantics () =
  List.iter
    (fun name ->
      let prog = small_prog name in
      let f = Func.copy prog.Prog.func in
      let r = Regalloc.run f in
      let reg_init, extra = Regalloc.remap_inputs r prog.Prog.reg_init in
      let prog' =
        { Prog.func = r.Regalloc.func; reg_init;
          mem_init = prog.Prog.mem_init @ extra }
      in
      check (name ^ " RA preserves output") true (same_output prog prog'))
    [ "libquan"; "gcc"; "water-sp"; "cholesky"; "xalan" ]

let test_regalloc_spills_under_pressure () =
  (* gcc proxy has 34 live accumulators against ~28 allocatable regs. *)
  let prog = small_prog "gcc" in
  let r = Regalloc.run (Func.copy prog.Prog.func) in
  check "spills happen" true (r.Regalloc.spilled_vregs > 0);
  check "spill code emitted" true (r.Regalloc.spill_stores > 0 && r.Regalloc.spill_loads > 0)

let test_regalloc_no_spill_when_room () =
  let prog = small_prog "libquan" in
  let r = Regalloc.run (Func.copy prog.Prog.func) in
  check_int "no spills for small kernels" 0 r.Regalloc.spilled_vregs

let test_store_aware_reduces_spill_stores () =
  (* Paper §4.1.1: raising the write cost keeps frequently-written
     variables in registers, reducing dynamic spill stores. *)
  let prog = small_prog "gcc" in
  let count_spill_stores store_aware =
    let f = Func.copy prog.Prog.func in
    let r = Regalloc.run ~config:{ Regalloc.default_config with store_aware } f in
    let reg_init, extra = Regalloc.remap_inputs r prog.Prog.reg_init in
    let p = { Prog.func = r.Regalloc.func; reg_init;
              mem_init = prog.Prog.mem_init @ extra } in
    let trace, _ = Interp.trace_run ~fuel:400_000 p in
    Trace.count
      (function Trace.Store { cls = Trace.Regular_spill; _ } -> true | _ -> false)
      trace
  in
  let plain = count_spill_stores false and aware = count_spill_stores true in
  check "store-aware emits fewer dynamic spill stores" true (aware <= plain)

let test_regalloc_location_queries () =
  let prog = small_prog "gcc" in
  let r = Regalloc.run (Func.copy prog.Prog.func) in
  (* Every input register must have a location. *)
  List.iter
    (fun (reg, _) ->
      match Regalloc.location_of r reg with
      | Some _ -> ()
      | None -> Alcotest.fail "input register lost by allocation")
    prog.Prog.reg_init

(* ------------------------------------------------------------------ *)
(* Pruning *)

let test_pruning_removes_and_preserves () =
  let prog = small_prog "libquan" in
  let c = compile_turnstile prog in
  let before = Checkpoint.count c.Pass_pipeline.prog.Prog.func in
  let r = Pruning.run c.Pass_pipeline.prog.Prog.func in
  check "pruned some" true (r.Pruning.pruned > 0);
  check_int "count matches" (before - r.Pruning.pruned) (Checkpoint.count r.Pruning.func);
  check "semantics preserved" true (same_output prog c.Pass_pipeline.prog)

let test_pruning_expressions_evaluate () =
  (* Every reconstruction expression must evaluate to the pruned
     register's actual final value when slots hold checkpointed values. *)
  let prog = small_prog "leslie3d" in
  let c = compile_turnstile prog in
  let r = Pruning.run c.Pass_pipeline.prog.Prog.func in
  let final = Interp.run ~fuel:5_000_000 c.Pass_pipeline.prog in
  Hashtbl.iter
    (fun reg expr ->
      (* Single-definition registers hold one value for the whole run, and
         operands' slots were written by the default interp hook. *)
      let read_slot s = Interp.get_mem final (Layout.ckpt_slot ~reg:s ~color:0) in
      let expect = Interp.get_reg final reg in
      check_int
        (Printf.sprintf "expr for %s" (Reg.to_string reg))
        expect
        (Recovery_expr.eval ~read_slot expr))
    r.Pruning.exprs

let test_pruning_diamond_pattern () =
  (* Paper Fig 9: a register checkpointed in both arms of a two-sided
     branch over a run-stable predicate is pruned on both sides, with a
     select over the reconstructed predicate as its recovery expression. *)
  let prog = Templates.branchy ~seed:7 ~iters:40 () in
  let c = compile_turnstile prog in
  let r = Pruning.run c.Pass_pipeline.prog.Prog.func in
  let has_select =
    Hashtbl.fold
      (fun _ e acc ->
        acc || match e with Recovery_expr.Select _ -> true | _ -> false)
      r.Pruning.exprs false
  in
  check "diamond produced a select" true has_select;
  check "pruned both arms" true (r.Pruning.pruned >= 2);
  check "semantics preserved" true (same_output prog c.Pass_pipeline.prog);
  (* The select evaluates to the mode value the taken arm produced. *)
  let final = Interp.run ~fuel:5_000_000 c.Pass_pipeline.prog in
  Hashtbl.iter
    (fun reg e ->
      match e with
      | Recovery_expr.Select _ ->
        let read_slot s = Interp.get_mem final (Layout.ckpt_slot ~reg:s ~color:0) in
        check_int "select reconstructs the live value"
          (Interp.get_reg final reg)
          (Recovery_expr.eval ~read_slot e)
      | _ -> ())
    r.Pruning.exprs

let test_pruning_never_prunes_inputs () =
  let prog = input_into_join_prog () in
  let c = compile_turnstile prog in
  let before = Checkpoint.count c.Pass_pipeline.prog.Prog.func in
  check "some checkpoint existed" true (before >= 1);
  ignore (Pruning.run c.Pass_pipeline.prog.Prog.func);
  (* The input register's checkpoint has no defining instruction, so it
     must survive; at most derived values disappear. *)
  check "input ckpt survives" true (Checkpoint.count c.Pass_pipeline.prog.Prog.func >= 1);
  (* And recovery still works: output preserved. *)
  check "output preserved" true (same_output prog c.Pass_pipeline.prog)

(* ------------------------------------------------------------------ *)
(* LICM sinking *)

let test_licm_sinks_flag_loop () =
  (* cactubssn is the flag_loop proxy: the per-iteration flag checkpoint
     sinks out of the loop (paper Fig 10). *)
  let prog = small_prog "cactubssn" in
  let c = compile_turnstile prog in
  let r = Licm_sink.run c.Pass_pipeline.prog.Prog.func in
  check "licm moved something" true (r.Licm_sink.moved > 0);
  check "semantics preserved" true (same_output prog c.Pass_pipeline.prog)

let test_licm_reduces_dynamic_ckpts () =
  let prog = small_prog "cactubssn" in
  let dyn scheme_opts =
    let c = Pass_pipeline.compile ~opts:scheme_opts prog in
    let t, _ = Interp.trace_run ~fuel:400_000 c.Pass_pipeline.prog in
    Trace.num_ckpts t
  in
  let without = dyn Pass_pipeline.turnstile_opts in
  let with_licm = dyn { Pass_pipeline.turnstile_opts with Pass_pipeline.licm = true } in
  check "licm reduces dynamic checkpoints" true (with_licm < without)

(* ------------------------------------------------------------------ *)
(* LIVM *)

let test_livm_merges_stream_ivs () =
  (* Pre-RA, the stream kernels carry one pointer IV per output array. *)
  let prog = small_prog "lbm" in
  let f = Func.copy prog.Prog.func in
  let r = Livm.run f in
  check "merged pointer IVs" true (r.Livm.merged >= 1)

let test_livm_preserves_semantics () =
  List.iter
    (fun name ->
      let prog = small_prog name in
      let f = Func.copy prog.Prog.func in
      let r = Livm.run f in
      let prog' = { prog with Prog.func = r.Livm.func } in
      check (name ^ " livm preserves output") true (same_output prog prog'))
    [ "libquan"; "lbm"; "exchange2"; "leela" ]

let test_livm_skips_load_base_ivs () =
  (* The profitability rule: pointer IVs feeding loads are not merged
     (recomputation would lengthen the load address path). *)
  let prog = small_prog "bzip2" in
  let f = Func.copy prog.Prog.func in
  let r = Livm.run f in
  check_int "no merge on load pointers" 0 r.Livm.merged

let test_livm_reduces_dynamic_ckpts () =
  let prog = small_prog "libquan" in
  let dyn opts =
    let c = Pass_pipeline.compile ~opts prog in
    let t, _ = Interp.trace_run ~fuel:400_000 c.Pass_pipeline.prog in
    Trace.num_ckpts t
  in
  let base = dyn Pass_pipeline.turnstile_opts in
  let livm = dyn { Pass_pipeline.turnstile_opts with Pass_pipeline.livm = true } in
  check "livm reduces dynamic checkpoints" true (livm < base)

(* ------------------------------------------------------------------ *)
(* Unrolling *)

let test_unroll_preserves_semantics () =
  List.iter
    (fun name ->
      let prog = small_prog name in
      let f = Func.copy prog.Prog.func in
      let r = Unroll.run ~factor:2 f in
      check (name ^ " unroll x2 preserves output") true
        (same_output prog { prog with Prog.func = r.Unroll.func }))
    [ "libquan"; "water-sp"; "milc"; "bzip2" ]

let test_unroll_fires_on_counted_loops () =
  let prog = small_prog "water-sp" in
  let f = Func.copy prog.Prog.func in
  let r = Unroll.run ~factor:2 f in
  check "unrolled the reduction loop" true (r.Unroll.unrolled >= 1)

let test_unroll_skips_indivisible_trip_counts () =
  (* 7 iterations cannot unroll by 2 exactly: the loop must be left
     alone. *)
  let prog = Templates.stream_store ~seed:3 ~iters:7 ~ways:1 () in
  let f = Func.copy prog.Prog.func in
  let r = Unroll.run ~factor:2 f in
  check_int "skipped" 0 r.Unroll.unrolled;
  check "still correct" true (same_output prog { prog with Prog.func = r.Unroll.func })

let test_unroll_factor_one_identity () =
  let prog = small_prog "libquan" in
  let before = Func.num_instrs prog.Prog.func in
  let f = Func.copy prog.Prog.func in
  let r = Unroll.run ~factor:1 f in
  check_int "identity" before (Func.num_instrs r.Unroll.func);
  Alcotest.check_raises "invalid factor" (Invalid_argument "Unroll.run: factor must be >= 1")
    (fun () -> ignore (Unroll.run ~factor:0 f))

let test_unroll_reduces_dynamic_ckpt_density () =
  (* The point of the ablation: unrolled code re-checkpoints loop-carried
     registers once per longer iteration. *)
  let prog = small_prog "water-sp" in
  let density opts =
    let c = Pass_pipeline.compile ~opts prog in
    let t, _ = Interp.trace_run ~fuel:400_000 c.Pass_pipeline.prog in
    float_of_int (Trace.num_ckpts t) /. float_of_int (Trace.num_instructions t)
  in
  let d1 = density Pass_pipeline.turnstile_opts in
  let d4 = density { Pass_pipeline.turnstile_opts with Pass_pipeline.unroll = 4 } in
  check "unrolling cuts checkpoint density" true (d4 < d1)

(* ------------------------------------------------------------------ *)
(* Scheduling *)

let test_sched_separates_and_preserves () =
  (* mcf's chased pointer is load-fed and checkpointed: the scheduler's
     target case. *)
  let prog = small_prog "mcf" in
  let c = compile_turnstile prog in
  let r = Scheduling.run c.Pass_pipeline.prog.Prog.func in
  check "moved some checkpoints" true (r.Scheduling.moved > 0);
  check "semantics preserved" true (same_output prog c.Pass_pipeline.prog)

let test_sched_separation_invariant () =
  (* After scheduling, every checkpoint with a multi-cycle (load/mul/div)
     producer is either >= separation slots from it or blocked by an
     impure instruction, a redefinition, or the block end. *)
  let sep = Scheduling.default_separation in
  let prog = small_prog "mcf" in
  let c = compile_turnstile prog in
  let f = c.Pass_pipeline.prog.Prog.func in
  ignore (Scheduling.run ~separation:sep f);
  Func.iter_blocks
    (fun b ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Instr.Ckpt r ->
            let rec find_def j =
              if j < 0 then None
              else if List.mem r (Instr.defs b.Block.body.(j)) then
                Some (i - j, b.Block.body.(j))
              else find_def (j - 1)
            in
            let d, slow =
              match find_def (i - 1) with
              | Some (d, Instr.Load _) -> (d, true)
              | Some (d, Instr.Binop ((Instr.Mul | Instr.Div | Instr.Rem), _, _, _)) ->
                (d, true)
              | Some (d, _) -> (d, false)
              | None -> (max_int, false)
            in
            if d < sep && slow then begin
              (* Must be blocked: next slot is impure (boundary, memory op,
                 another checkpoint), a redefinition, or the block end. *)
              let blocked =
                i + 1 >= Array.length b.Block.body
                || (not (Instr.is_pure b.Block.body.(i + 1)))
                || List.mem r (Instr.defs b.Block.body.(i + 1))
              in
              check "close ckpt is blocked" true blocked
            end
          | _ -> ())
        b.Block.body)
    f

let test_sched_zero_separation_noop () =
  let prog = small_prog "mcf" in
  let c = compile_turnstile prog in
  let r = Scheduling.run ~separation:0 c.Pass_pipeline.prog.Prog.func in
  check_int "separation 0 moves nothing" 0 r.Scheduling.moved

(* ------------------------------------------------------------------ *)
(* Full pipeline *)

let test_pipeline_all_schemes_preserve_output () =
  (* The heavyweight integration invariant: every scheme's compiled binary
     computes the same application output as the source program. *)
  List.iter
    (fun name ->
      let prog = small_prog name in
      List.iter
        (fun (scheme : Turnpike.Scheme.t) ->
          let opts = Turnpike.Scheme.compile_opts scheme ~sb_size:4 in
          let c = Pass_pipeline.compile ~opts prog in
          check
            (Printf.sprintf "%s under %s" name scheme.Turnpike.Scheme.name)
            true
            (same_output prog c.Pass_pipeline.prog))
        (Turnpike.Scheme.baseline :: Turnpike.Scheme.ladder))
    [ "libquan"; "mcf"; "gcc"; "bzip2"; "cactubssn"; "radix"; "water-sp"; "cholesky" ]

let test_pipeline_region_infos_complete () =
  let prog = small_prog "soplex" in
  let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
  check "has regions" true (Array.length c.Pass_pipeline.regions > 0);
  Array.iter
    (fun (info : Pass_pipeline.region_info) ->
      match Pass_pipeline.region_info c info.Pass_pipeline.id with
      | Some info' -> check "lookup consistent" true (info == info' || info.Pass_pipeline.id = info'.Pass_pipeline.id)
      | None -> Alcotest.fail "region info lookup failed")
    c.Pass_pipeline.regions

let test_pipeline_baseline_has_no_markers () =
  let prog = small_prog "libquan" in
  let c = Pass_pipeline.compile ~opts:Pass_pipeline.baseline_opts prog in
  let f = c.Pass_pipeline.prog.Prog.func in
  check_int "no boundaries" 0
    (Func.fold_instrs (fun acc i -> if Instr.is_boundary i then acc + 1 else acc) 0 f);
  check_int "no ckpts" 0 (Checkpoint.count f)

let test_pipeline_input_not_mutated () =
  let prog = small_prog "libquan" in
  let before = Func.num_instrs prog.Prog.func in
  ignore (Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog);
  check_int "source program untouched" before (Func.num_instrs prog.Prog.func)

let test_pipeline_code_size_increase_positive () =
  let prog = small_prog "gcc" in
  let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnstile_opts prog in
  check "resilient code is bigger" true
    (Static_stats.code_size_increase c.Pass_pipeline.stats > 0.0)

(* ------------------------------------------------------------------ *)
(* QCheck: pipeline semantic preservation over random template params. *)

let prop_pipeline_preserves_random_streams =
  QCheck.Test.make ~name:"pipeline preserves random stream kernels" ~count:12
    QCheck.(triple (int_range 1 50) (int_range 8 60) (int_range 1 3))
    (fun (seed, iters, ways) ->
      let prog = Templates.stream_store ~seed ~iters ~ways () in
      let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
      same_output prog c.Pass_pipeline.prog)

let prop_pipeline_preserves_random_histograms =
  QCheck.Test.make ~name:"pipeline preserves random histograms" ~count:10
    QCheck.(pair (int_range 1 50) (int_range 8 60))
    (fun (seed, iters) ->
      let prog = Templates.histogram ~seed ~iters ~buckets:16 () in
      let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
      same_output prog c.Pass_pipeline.prog)

let prop_unroll_preserves_random_kernels =
  QCheck.Test.make ~name:"unroll preserves random kernels (any valid factor)" ~count:12
    QCheck.(triple (int_range 1 40) (int_range 1 15) (int_range 2 4))
    (fun (seed, blocks, factor) ->
      let iters = blocks * 12 in
      (* 12 is divisible by 2, 3 and 4, so every factor is exact. *)
      let prog = Templates.mixed ~seed ~iters () in
      let f = Func.copy prog.Prog.func in
      let r = Unroll.run ~factor f in
      r.Unroll.unrolled >= 1
      && same_output prog { prog with Prog.func = r.Unroll.func })

let prop_partition_hard_cap =
  QCheck.Test.make ~name:"partitioning respects the SB hard cap" ~count:10
    QCheck.(pair (int_range 1 30) (int_range 8 40))
    (fun (seed, iters) ->
      let prog = Templates.mixed ~seed ~iters () in
      let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnstile_opts prog in
      let f = c.Pass_pipeline.prog.Prog.func in
      Regions.worst_region_path f (Regions.of_func f) <= 4)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pipeline_preserves_random_streams;
      prop_pipeline_preserves_random_histograms; prop_partition_hard_cap;
      prop_unroll_preserves_random_kernels ]

let tests =
  [
    ("partition boundary invariants", `Quick, test_partition_boundary_invariants);
    ("partition budget respected", `Quick, test_partition_budget_respected);
    ("partition larger SB fewer regions", `Quick, test_partition_larger_sb_fewer_regions);
    ("regions of_func roundtrip", `Quick, test_regions_of_func_roundtrip);
    ("partition preserves semantics", `Quick, test_partition_preserves_semantics);
    ("checkpoint live-out coverage", `Quick, test_ckpt_live_out_covered);
    ("checkpoint inputs at entry", `Quick, test_ckpt_inputs_checkpointed);
    ("checkpoints grow as SB shrinks (Fig 4)", `Quick, test_ckpt_more_with_small_sb);
    ("regalloc eliminates virtuals", `Quick, test_regalloc_eliminates_virtuals);
    ("regalloc preserves semantics", `Quick, test_regalloc_preserves_semantics);
    ("regalloc spills under pressure", `Quick, test_regalloc_spills_under_pressure);
    ("regalloc no spurious spills", `Quick, test_regalloc_no_spill_when_room);
    ("store-aware RA fewer spill stores", `Quick, test_store_aware_reduces_spill_stores);
    ("regalloc location queries", `Quick, test_regalloc_location_queries);
    ("pruning removes and preserves", `Quick, test_pruning_removes_and_preserves);
    ("pruning expressions evaluate", `Quick, test_pruning_expressions_evaluate);
    ("pruning diamond pattern (Fig 9)", `Quick, test_pruning_diamond_pattern);
    ("pruning keeps input checkpoints", `Quick, test_pruning_never_prunes_inputs);
    ("licm sinks flag-loop ckpts (Fig 10)", `Quick, test_licm_sinks_flag_loop);
    ("licm reduces dynamic ckpts", `Quick, test_licm_reduces_dynamic_ckpts);
    ("livm merges stream IVs (Fig 8)", `Quick, test_livm_merges_stream_ivs);
    ("livm preserves semantics", `Quick, test_livm_preserves_semantics);
    ("livm skips load-base IVs", `Quick, test_livm_skips_load_base_ivs);
    ("livm reduces dynamic ckpts", `Quick, test_livm_reduces_dynamic_ckpts);
    ("unroll preserves semantics", `Quick, test_unroll_preserves_semantics);
    ("unroll fires on counted loops", `Quick, test_unroll_fires_on_counted_loops);
    ("unroll skips indivisible trips", `Quick, test_unroll_skips_indivisible_trip_counts);
    ("unroll factor one identity", `Quick, test_unroll_factor_one_identity);
    ("unroll cuts checkpoint density", `Quick, test_unroll_reduces_dynamic_ckpt_density);
    ("sched separates and preserves", `Quick, test_sched_separates_and_preserves);
    ("sched separation invariant", `Quick, test_sched_separation_invariant);
    ("sched zero separation no-op", `Quick, test_sched_zero_separation_noop);
    ("pipeline all schemes preserve output", `Slow, test_pipeline_all_schemes_preserve_output);
    ("pipeline region infos complete", `Quick, test_pipeline_region_infos_complete);
    ("pipeline baseline has no markers", `Quick, test_pipeline_baseline_has_no_markers);
    ("pipeline input not mutated", `Quick, test_pipeline_input_not_mutated);
    ("pipeline code size increase", `Quick, test_pipeline_code_size_increase_positive);
  ]
  @ qcheck
