(* Unit and property tests for the IR substrate: registers, layout,
   instructions, blocks, functions, CFG, dominance, loops, liveness,
   builder and the interpreter. *)

open Turnpike_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Shared tiny programs. *)

(* entry -> loop(head) -> exit: sum of 0..n-1 into an output cell. *)
let sum_prog n =
  let b = Builder.create "sum" in
  Builder.label b "entry";
  let out = Builder.alloc_array b ~len:1 ~init:(fun _ -> 0) in
  let ob = Builder.fresh_reg b in
  Builder.mov b ~dst:ob (Imm out);
  let acc = Builder.fresh_reg b and i = Builder.fresh_reg b in
  Builder.mov b ~dst:acc (Imm 0);
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "head";
  Builder.label b "head";
  Builder.add b ~dst:acc ~a:acc (Reg i);
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm n);
  Builder.branch b ~cond:c ~if_true:"head" ~if_false:"exit";
  Builder.label b "exit";
  Builder.store b ~src:acc ~base:ob ();
  Builder.ret b;
  (Builder.finish b, out)

(* A diamond: entry -> (left | right) -> join. *)
let diamond_prog ~take_left =
  let b = Builder.create "diamond" in
  Builder.label b "entry";
  let out = Builder.alloc_array b ~len:1 ~init:(fun _ -> 0) in
  let ob = Builder.fresh_reg b and c = Builder.fresh_reg b in
  Builder.mov b ~dst:ob (Imm out);
  Builder.mov b ~dst:c (Imm (if take_left then 1 else 0));
  let v = Builder.fresh_reg b in
  Builder.branch b ~cond:c ~if_true:"left" ~if_false:"right";
  Builder.label b "left";
  Builder.mov b ~dst:v (Imm 111);
  Builder.jump b "join";
  Builder.label b "right";
  Builder.mov b ~dst:v (Imm 222);
  Builder.jump b "join";
  Builder.label b "join";
  Builder.store b ~src:v ~base:ob ();
  Builder.ret b;
  (Builder.finish b, out)

(* ------------------------------------------------------------------ *)
(* Reg / Layout *)

let test_reg_classification () =
  check "zero is physical" true (Reg.is_physical Reg.zero);
  check "zero is zero" true (Reg.is_zero Reg.zero);
  check "phys 5 physical" true (Reg.is_physical (Reg.phys 5));
  check "virt 0 virtual" true (Reg.is_virtual (Reg.virt 0));
  check "virt not physical" false (Reg.is_physical (Reg.virt 3));
  Alcotest.(check string) "phys name" "r7" (Reg.to_string (Reg.phys 7));
  Alcotest.(check string) "virt name" "v2" (Reg.to_string (Reg.virt 2));
  Alcotest.(check string) "zero name" "rz" (Reg.to_string Reg.zero)

let test_reg_invalid () =
  Alcotest.check_raises "phys too big" (Invalid_argument "Reg.phys: 1024 out of range")
    (fun () -> ignore (Reg.phys Reg.virt_base));
  Alcotest.check_raises "virt negative" (Invalid_argument "Reg.virt: negative id")
    (fun () -> ignore (Reg.virt (-1)))

let test_layout_slots () =
  check_int "ckpt slot color stride" Layout.word
    (Layout.ckpt_slot ~reg:3 ~color:1 - Layout.ckpt_slot ~reg:3 ~color:0);
  check_int "ckpt slot reg stride" (Layout.colors * Layout.word)
    (Layout.ckpt_slot ~reg:4 ~color:0 - Layout.ckpt_slot ~reg:3 ~color:0);
  check "ckpt addr recognized" true (Layout.is_ckpt_addr (Layout.ckpt_slot ~reg:0 ~color:0));
  check "spill addr recognized" true (Layout.is_spill_addr (Layout.spill_slot 0));
  check "spill not ckpt" false (Layout.is_ckpt_addr (Layout.spill_slot 9));
  check_int "slot owner roundtrip" 11
    (Layout.ckpt_slot_reg (Layout.ckpt_slot ~reg:11 ~color:2))

(* ------------------------------------------------------------------ *)
(* Instr *)

let test_instr_defs_uses () =
  let i = Instr.Binop (Instr.Add, 1, 2, Instr.Reg 3) in
  Alcotest.(check (list int)) "binop defs" [ 1 ] (Instr.defs i);
  Alcotest.(check (list int)) "binop uses" [ 2; 3 ] (Instr.uses i);
  let st = Instr.Store (4, 5, 8, Instr.App_mem) in
  Alcotest.(check (list int)) "store defs" [] (Instr.defs st);
  Alcotest.(check (list int)) "store uses" [ 4; 5 ] (Instr.uses st);
  Alcotest.(check (list int)) "ckpt uses" [ 6 ] (Instr.uses (Instr.Ckpt 6));
  (* The zero register never appears as def or use. *)
  Alcotest.(check (list int)) "zero def dropped" []
    (Instr.defs (Instr.Mov (Reg.zero, Instr.Imm 3)));
  Alcotest.(check (list int)) "zero use dropped" []
    (Instr.uses (Instr.Load (2, Reg.zero, 16, Instr.Spill_mem)))

let test_instr_classes () =
  check "store is sb write" true (Instr.is_sb_write (Instr.Store (1, 2, 0, Instr.App_mem)));
  check "ckpt is sb write" true (Instr.is_sb_write (Instr.Ckpt 1));
  check "load not sb write" false (Instr.is_sb_write (Instr.Load (1, 2, 0, Instr.App_mem)));
  check "mov pure" true (Instr.is_pure (Instr.Mov (1, Instr.Imm 0)));
  check "load impure" false (Instr.is_pure (Instr.Load (1, 2, 0, Instr.App_mem)));
  check "boundary marker" true (Instr.is_boundary (Instr.Boundary 4))

let test_instr_eval () =
  check_int "add" 7 (Instr.eval_binop Instr.Add 3 4);
  check_int "sub" (-1) (Instr.eval_binop Instr.Sub 3 4);
  check_int "mul" 12 (Instr.eval_binop Instr.Mul 3 4);
  check_int "div" 2 (Instr.eval_binop Instr.Div 9 4);
  check_int "div by zero is 0" 0 (Instr.eval_binop Instr.Div 9 0);
  check_int "rem by zero is 0" 0 (Instr.eval_binop Instr.Rem 9 0);
  check_int "shl" 24 (Instr.eval_binop Instr.Shl 3 3);
  check_int "shr" 3 (Instr.eval_binop Instr.Shr 24 3);
  check_int "cmp lt true" 1 (Instr.eval_cmp Instr.Lt 1 2);
  check_int "cmp lt false" 0 (Instr.eval_cmp Instr.Lt 2 1);
  check_int "cmp eq" 1 (Instr.eval_cmp Instr.Eq 5 5);
  check_int "cmp ge" 1 (Instr.eval_cmp Instr.Ge 5 5)

let test_instr_rename () =
  let i = Instr.Binop (Instr.Xor, 1, 2, Instr.Reg 3) in
  let j = Instr.rename (fun r -> r + 10) i in
  check "renamed" true (Instr.equal j (Instr.Binop (Instr.Xor, 11, 12, Instr.Reg 13)));
  (* Identity rename is the identity. *)
  check "identity" true (Instr.equal i (Instr.rename (fun r -> r) i));
  (* Immediates are untouched. *)
  let m = Instr.Mov (1, Instr.Imm 42) in
  check "imm untouched" true (Instr.equal (Instr.Mov (9, Instr.Imm 42)) (Instr.rename (fun _ -> 9) m))

(* ------------------------------------------------------------------ *)
(* Block / Func *)

let test_block_successors () =
  let b = Block.create ~term:(Block.Branch (1, "a", "b")) "x" in
  check_list "branch succs" [ "a"; "b" ] (Block.successors b);
  let b2 = Block.create ~term:(Block.Branch (1, "a", "a")) "y" in
  check_list "dedup succs" [ "a" ] (Block.successors b2);
  let b3 = Block.create ~term:Block.Ret "z" in
  check_list "ret succs" [] (Block.successors b3);
  Alcotest.(check (list int)) "term uses" [ 1 ] (Block.term_uses b)

let test_block_counts () =
  let body =
    [| Instr.Store (1, 2, 0, Instr.App_mem); Instr.Ckpt 3; Instr.Nop;
       Instr.Load (4, 5, 0, Instr.App_mem) |]
  in
  let b = Block.create ~body "c" in
  check_int "num instrs" 4 (Block.num_instrs b);
  check_int "num sb writes" 2 (Block.num_stores b)

let test_func_validate () =
  let good = Func.create ~name:"f" ~entry:"a"
      [ Block.create ~term:(Block.Jump "b") "a"; Block.create "b" ]
  in
  check_list "valid" [] (Func.validate good);
  let bad = Func.create ~name:"g" ~entry:"a"
      [ Block.create ~term:(Block.Jump "missing") "a" ]
  in
  check_int "invalid has errors" 1 (List.length (Func.validate bad))

let test_func_duplicate_label () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Func.create: duplicate label a") (fun () ->
      ignore (Func.create ~name:"f" ~entry:"a" [ Block.create "a"; Block.create "a" ]))

let test_func_copy_independent () =
  let prog, _ = sum_prog 3 in
  let f = prog.Prog.func in
  let g = Func.copy f in
  (Func.block g "head").Block.body.(0) <- Instr.Nop;
  check "copy is deep" false
    (Instr.equal (Func.block f "head").Block.body.(0) Instr.Nop)

let test_func_add_block_and_fallthrough () =
  let f = Func.create ~name:"f" ~entry:"a"
      [ Block.create ~term:(Block.Jump "b") "a"; Block.create "b" ]
  in
  Func.add_block f (Block.create "mid") ~after:"a";
  check_list "order" [ "a"; "mid"; "b" ] (Func.labels f);
  Alcotest.(check (option string)) "fallthrough a" (Some "mid") (Func.fallthrough_of f "a");
  Alcotest.(check (option string)) "fallthrough b" None (Func.fallthrough_of f "b");
  let tbl = Func.fallthrough_table f in
  Alcotest.(check (option string)) "table" (Some "b") (Hashtbl.find_opt tbl "mid")

(* ------------------------------------------------------------------ *)
(* Cfg / Dominance / Loops / Liveness *)

let test_cfg_preds_rpo () =
  let prog, _ = diamond_prog ~take_left:true in
  let cfg = Cfg.build prog.Prog.func in
  check_list "join preds" [ "right"; "left" ]
    (Cfg.predecessors cfg "join" |> List.sort compare |> List.rev);
  let rpo = Cfg.reverse_postorder cfg in
  Alcotest.(check string) "entry first" "entry" (List.hd rpo);
  check "join last-ish" true
    (Cfg.rpo_number cfg "join" > Cfg.rpo_number cfg "left");
  check "reachable" true (Cfg.is_reachable cfg "right")

let test_cfg_unreachable () =
  let f = Func.create ~name:"f" ~entry:"a"
      [ Block.create "a"; Block.create "island" ]
  in
  let cfg = Cfg.build f in
  check "island unreachable" false (Cfg.is_reachable cfg "island");
  Alcotest.(check (option int)) "no rpo" None (Cfg.rpo_number cfg "island")

let test_dominance_diamond () =
  let prog, _ = diamond_prog ~take_left:true in
  let cfg = Cfg.build prog.Prog.func in
  let dom = Dominance.compute cfg in
  check "entry dominates join" true (Dominance.dominates dom ~dom:"entry" ~sub:"join");
  check "left not dominating join" false (Dominance.dominates dom ~dom:"left" ~sub:"join");
  Alcotest.(check (option string)) "idom join" (Some "entry") (Dominance.idom dom "join");
  Alcotest.(check (option string)) "idom entry" None (Dominance.idom dom "entry");
  check "reflexive" true (Dominance.dominates dom ~dom:"left" ~sub:"left");
  check "strict not reflexive" false (Dominance.strictly_dominates dom ~dom:"left" ~sub:"left");
  check_list "dominators of join" [ "entry"; "join" ]
    (List.sort compare (Dominance.dominators dom "join"))

let test_loops_simple () =
  let prog, _ = sum_prog 5 in
  let cfg = Cfg.build prog.Prog.func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  check "head is header" true (Loop_info.is_header loops "head");
  check "entry not header" false (Loop_info.is_header loops "entry");
  check_int "depth of head" 1 (Loop_info.depth loops "head");
  check_int "depth of exit" 0 (Loop_info.depth loops "exit");
  match Loop_info.loop_of_header loops "head" with
  | None -> Alcotest.fail "loop not found"
  | Some lp ->
    check_list "latches" [ "head" ] lp.Loop_info.latches;
    check_list "body" [ "head" ] lp.Loop_info.blocks;
    let exits = Loop_info.exits loops cfg "head" in
    check "exit edge to exit" true (List.mem ("head", "exit") exits)

let test_loops_nested () =
  let b = Builder.create "nest" in
  Builder.label b "entry";
  let i = Builder.fresh_reg b and j = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "outer";
  Builder.label b "outer";
  Builder.mov b ~dst:j (Imm 0);
  Builder.jump b "inner";
  Builder.label b "inner";
  Builder.add b ~dst:j ~a:j (Imm 1);
  let cj = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:cj ~a:j (Imm 3);
  Builder.branch b ~cond:cj ~if_true:"inner" ~if_false:"outer_latch";
  Builder.label b "outer_latch";
  Builder.add b ~dst:i ~a:i (Imm 1);
  let ci = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:ci ~a:i (Imm 3);
  Builder.branch b ~cond:ci ~if_true:"outer" ~if_false:"done";
  Builder.label b "done";
  Builder.ret b;
  let prog = Builder.finish b in
  let cfg = Cfg.build prog.Prog.func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  check_int "inner depth 2" 2 (Loop_info.depth loops "inner");
  check_int "outer depth 1" 1 (Loop_info.depth loops "outer");
  (match Loop_info.loop_of_header loops "inner" with
  | Some lp -> Alcotest.(check (option string)) "parent" (Some "outer") lp.Loop_info.parent
  | None -> Alcotest.fail "inner loop missing");
  check_int "two loops" 2 (List.length (Loop_info.loops loops))

let test_liveness_loop () =
  let prog, _ = sum_prog 4 in
  let f = prog.Prog.func in
  let cfg = Cfg.build f in
  let live = Liveness.compute cfg f in
  (* acc (v1) and i (v2) are loop-carried: live into head. *)
  let head_in = Liveness.live_in live "head" in
  check "acc live at head" true (Reg.Set.mem (Reg.virt 1) head_in);
  check "i live at head" true (Reg.Set.mem (Reg.virt 2) head_in);
  (* output base is live through the loop into exit. *)
  check "ob live at exit" true (Reg.Set.mem (Reg.virt 0) (Liveness.live_in live "exit"));
  (* The compare temp is dead across iterations. *)
  check "cmp temp dead at head" false (Reg.Set.mem (Reg.virt 3) head_in)

let test_liveness_per_instruction () =
  let prog, _ = sum_prog 4 in
  let f = prog.Prog.func in
  let cfg = Cfg.build f in
  let live = Liveness.compute cfg f in
  let head = Func.block f "head" in
  let before = Liveness.live_before_each live head in
  check_int "slots" (Block.num_instrs head + 1) (Array.length before);
  (* Before the terminator, the branch condition is live. *)
  check "cond live before term" true (Reg.Set.mem (Reg.virt 3) before.(Array.length before - 1))

(* ------------------------------------------------------------------ *)
(* Builder / Interp *)

let test_builder_implicit_fallthrough () =
  let b = Builder.create "ft" in
  Builder.label b "a";
  Builder.nop b;
  Builder.label b "b" (* implicit jump a->b *);
  Builder.ret b;
  let prog = Builder.finish b in
  match (Func.block prog.Prog.func "a").Block.term with
  | Block.Jump "b" -> ()
  | _ -> Alcotest.fail "expected implicit jump"

let test_builder_errors () =
  let b = Builder.create "e" in
  Alcotest.check_raises "emit outside block"
    (Invalid_argument "Builder: instruction outside any block") (fun () ->
      Builder.nop b)

let test_interp_sum () =
  let prog, out = sum_prog 10 in
  let st = Interp.run prog in
  check_int "sum 0..9" 45 (Interp.get_mem st out);
  check "halted" true st.Interp.halted

let test_interp_diamond () =
  let prog, out = diamond_prog ~take_left:true in
  check_int "left path" 111 (Interp.get_mem (Interp.run prog) out);
  let prog2, out2 = diamond_prog ~take_left:false in
  check_int "right path" 222 (Interp.get_mem (Interp.run prog2) out2)

let test_interp_zero_reg () =
  let b = Builder.create "z" in
  Builder.label b "entry";
  let out = Builder.alloc_array b ~len:1 ~init:(fun _ -> 7) in
  let r = Builder.fresh_reg b in
  (* Writing the zero register is discarded. *)
  Builder.emit b (Instr.Mov (Reg.zero, Instr.Imm 99));
  Builder.emit b (Instr.Binop (Instr.Add, r, Reg.zero, Instr.Imm out));
  Builder.emit b (Instr.Store (Reg.zero, r, 0, Instr.App_mem));
  Builder.ret b;
  let st = Interp.run (Builder.finish b) in
  check_int "store of zero" 0 (Interp.get_mem st out)

let test_interp_out_of_fuel () =
  let b = Builder.create "inf" in
  Builder.label b "spin";
  Builder.nop b;
  Builder.jump b "spin";
  let prog = Builder.finish b in
  Alcotest.check_raises "out of fuel" Interp.Out_of_fuel (fun () ->
      ignore (Interp.run ~fuel:100 prog))

let test_interp_ckpt_default () =
  let b = Builder.create "ck" in
  Builder.label b "entry";
  let r = Builder.fresh_reg b in
  Builder.mov b ~dst:r (Imm 77);
  Builder.emit b (Instr.Ckpt r);
  Builder.ret b;
  let prog = Builder.finish b in
  let st = Interp.run prog in
  check_int "ckpt slot color0" 77
    (Interp.get_mem st (Layout.ckpt_slot ~reg:r ~color:0))

let test_trace_counts () =
  let prog, _ = sum_prog 5 in
  let trace, st = Interp.trace_run prog in
  check "complete" true trace.Trace.complete;
  check "halted" true st.Interp.halted;
  (* 5 iterations x (2 adds + cmp) + 4 entry movs + store + branches. *)
  check_int "loads" 0 (Trace.count (function Trace.Load _ -> true | _ -> false) trace);
  check_int "stores" 1 (Trace.count (function Trace.Store _ -> true | _ -> false) trace);
  check_int "sb writes" 1 (Trace.num_sb_writes trace);
  check_int "no boundaries" 0 (Trace.num_boundaries trace);
  check "instr count sane" true (Trace.num_instructions trace >= 20)

let test_trace_fallthrough_branches () =
  (* The loop's back edge is a fetch redirect; the final exit edge is a
     fall-through. *)
  let prog, _ = sum_prog 3 in
  let trace, _ = Interp.trace_run prog in
  let taken = Trace.count (function Trace.Branch { taken = true; _ } -> true | _ -> false) trace in
  let not_taken = Trace.count (function Trace.Branch { taken = false; _ } -> true | _ -> false) trace in
  (* Three iterations take the back edge twice; the entry->head jump is a
     fall-through and emits nothing. *)
  check_int "taken = back edges" 2 taken;
  (* The final exit edge is a fall-through branch. *)
  check_int "fallthrough exit" 1 not_taken

let test_interp_mem_equal () =
  let prog, _ = sum_prog 6 in
  let a = Interp.run prog and b = Interp.run prog in
  check "identical runs equal" true (Interp.mem_equal a b);
  Interp.set_mem a 0x1234_5678 9;
  check "divergent not equal" false (Interp.mem_equal a b);
  (* Checkpoint-space differences are ignored by app_mem_equal. *)
  let c = Interp.run prog and d = Interp.run prog in
  Interp.set_mem c (Layout.ckpt_slot ~reg:1 ~color:0) 5;
  check "ckpt space excluded" true (Interp.app_mem_equal c d)

(* ------------------------------------------------------------------ *)
(* QCheck properties. *)

let prop_eval_add_sub_inverse =
  QCheck.Test.make ~name:"binop: (a+b)-b = a" ~count:200
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      Instr.eval_binop Instr.Sub (Instr.eval_binop Instr.Add a b) b = a)

let prop_eval_cmp_total_order =
  QCheck.Test.make ~name:"cmp: lt/eq/gt partition" ~count:200
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      Instr.eval_cmp Instr.Lt a b + Instr.eval_cmp Instr.Eq a b
      + Instr.eval_cmp Instr.Gt a b
      = 1)

let prop_rename_compose =
  QCheck.Test.make ~name:"rename composes" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (x, y) ->
      let i = Instr.Binop (Instr.Add, 1, 2, Instr.Reg 3) in
      let f r = r + x and g r = r + y in
      Instr.equal
        (Instr.rename f (Instr.rename g i))
        (Instr.rename (fun r -> f (g r)) i))

let prop_interp_sum_closed_form =
  QCheck.Test.make ~name:"interp: sum loop matches closed form" ~count:30
    QCheck.(int_range 1 60)
    (fun n ->
      let prog, out = sum_prog n in
      Interp.get_mem (Interp.run prog) out = n * (n - 1) / 2)

let prop_trace_instr_count_matches_rerun =
  QCheck.Test.make ~name:"trace is deterministic" ~count:20
    QCheck.(int_range 1 40)
    (fun n ->
      let prog, _ = sum_prog n in
      let t1, _ = Interp.trace_run prog in
      let t2, _ = Interp.trace_run prog in
      Trace.length t1 = Trace.length t2)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_eval_add_sub_inverse; prop_eval_cmp_total_order; prop_rename_compose;
      prop_interp_sum_closed_form; prop_trace_instr_count_matches_rerun ]

let tests =
  [
    ("reg classification", `Quick, test_reg_classification);
    ("reg invalid args", `Quick, test_reg_invalid);
    ("layout slots", `Quick, test_layout_slots);
    ("instr defs/uses", `Quick, test_instr_defs_uses);
    ("instr classes", `Quick, test_instr_classes);
    ("instr eval", `Quick, test_instr_eval);
    ("instr rename", `Quick, test_instr_rename);
    ("block successors", `Quick, test_block_successors);
    ("block counts", `Quick, test_block_counts);
    ("func validate", `Quick, test_func_validate);
    ("func duplicate label", `Quick, test_func_duplicate_label);
    ("func copy is deep", `Quick, test_func_copy_independent);
    ("func add_block/fallthrough", `Quick, test_func_add_block_and_fallthrough);
    ("cfg preds and rpo", `Quick, test_cfg_preds_rpo);
    ("cfg unreachable block", `Quick, test_cfg_unreachable);
    ("dominance diamond", `Quick, test_dominance_diamond);
    ("loops simple", `Quick, test_loops_simple);
    ("loops nested", `Quick, test_loops_nested);
    ("liveness loop-carried", `Quick, test_liveness_loop);
    ("liveness per instruction", `Quick, test_liveness_per_instruction);
    ("builder implicit fallthrough", `Quick, test_builder_implicit_fallthrough);
    ("builder error handling", `Quick, test_builder_errors);
    ("interp sum", `Quick, test_interp_sum);
    ("interp diamond", `Quick, test_interp_diamond);
    ("interp zero register", `Quick, test_interp_zero_reg);
    ("interp out of fuel", `Quick, test_interp_out_of_fuel);
    ("interp ckpt default slot", `Quick, test_interp_ckpt_default);
    ("trace counts", `Quick, test_trace_counts);
    ("trace fallthrough branches", `Quick, test_trace_fallthrough_branches);
    ("interp mem equality", `Quick, test_interp_mem_equal);
  ]
  @ qcheck
