(* Micro-unit coverage for IR internals that the larger integration paths
   exercise only implicitly: terminator renaming, back-edge candidates,
   dominance over unreachable blocks, loop membership queries, block
   utilities, and interpreter step-level behaviour. *)

open Turnpike_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_block_rename_term () =
  let b = Block.create ~term:(Block.Branch (3, "a", "bb")) "x" in
  Block.rename_term (fun r -> r + 10) b;
  (match b.Block.term with
  | Block.Branch (13, "a", "bb") -> ()
  | _ -> Alcotest.fail "terminator not renamed");
  let j = Block.create ~term:(Block.Jump "a") "y" in
  Block.rename_term (fun _ -> 99) j;
  check "jump unaffected" true (j.Block.term = Block.Jump "a")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_block_to_string () =
  let b =
    Block.create ~body:[| Instr.Mov (1, Instr.Imm 5) |]
      ~term:(Block.Branch (1, "t", "f")) "blk"
  in
  let s = Block.to_string b in
  check "label present" true (String.length s > 0 && String.sub s 0 4 = "blk:");
  check "branch printed" true (contains ~sub:"br r1, t, f" s);
  check "mov printed" true (contains ~sub:"mov r1, 5" s)

let test_cfg_back_edge_candidate () =
  let f =
    Func.create ~name:"f" ~entry:"a"
      [ Block.create ~term:(Block.Jump "b") "a";
        Block.create ~term:(Block.Branch (1, "b", "c")) "b";
        Block.create "c" ]
  in
  let cfg = Cfg.build f in
  check "self edge is retreating" true (Cfg.is_back_edge_candidate cfg ~src:"b" ~dst:"b");
  check "forward edge is not" false (Cfg.is_back_edge_candidate cfg ~src:"a" ~dst:"b");
  check "postorder reverses rpo" true
    (List.rev (Cfg.postorder cfg) = Cfg.reverse_postorder cfg)

let test_dominance_unreachable () =
  let f =
    Func.create ~name:"f" ~entry:"a" [ Block.create "a"; Block.create "island" ]
  in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  check "nothing dominates unreachable" false
    (Dominance.dominates dom ~dom:"a" ~sub:"island");
  Alcotest.(check (list string)) "no dominators" [] (Dominance.dominators dom "island")

let test_loop_membership_queries () =
  let b = Builder.create "l" in
  Builder.label b "entry";
  let i = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "h";
  Builder.label b "h";
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm 4);
  Builder.branch b ~cond:c ~if_true:"h" ~if_false:"e";
  Builder.label b "e";
  Builder.ret b;
  let prog = Builder.finish b in
  let cfg = Cfg.build prog.Prog.func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  check "header in its own loop" true (Loop_info.in_loop loops ~header:"h" ~block:"h");
  check "exit outside" false (Loop_info.in_loop loops ~header:"h" ~block:"e");
  check "unknown header" false (Loop_info.in_loop loops ~header:"zz" ~block:"h");
  (match Loop_info.innermost_loop loops "h" with
  | Some lp -> Alcotest.(check string) "innermost is h" "h" lp.Loop_info.header
  | None -> Alcotest.fail "header has no loop");
  check "no loop for exit" true (Loop_info.innermost_loop loops "e" = None)

let test_interp_step_granularity () =
  let b = Builder.create "s" in
  Builder.label b "entry";
  let r = Builder.fresh_reg b in
  Builder.mov b ~dst:r (Imm 1);
  Builder.add b ~dst:r ~a:r (Imm 2);
  Builder.ret b;
  let prog = Builder.finish b in
  let st = Interp.init prog in
  Interp.step prog.Prog.func st;
  check_int "after one step" 1 (Interp.get_reg st r);
  Interp.step prog.Prog.func st;
  check_int "after two steps" 3 (Interp.get_reg st r);
  check "not yet halted" false st.Interp.halted;
  Interp.step prog.Prog.func st (* terminator *);
  check "halted at ret" true st.Interp.halted;
  let steps = st.Interp.steps in
  Interp.step prog.Prog.func st;
  check_int "step after halt is a no-op" steps st.Interp.steps

let test_interp_hooks_see_writes () =
  let seen = ref [] in
  let hooks =
    { Interp.no_hooks with Interp.write_mem = (fun st a v ->
          seen := (a, v) :: !seen;
          Interp.set_mem st a v) }
  in
  let b = Builder.create "w" in
  Builder.label b "entry";
  let base = Builder.fresh_reg b and v = Builder.fresh_reg b in
  Builder.mov b ~dst:base (Imm Layout.data_base);
  Builder.mov b ~dst:v (Imm 77);
  Builder.store b ~src:v ~base ();
  Builder.ret b;
  let prog = Builder.finish b in
  ignore (Interp.run ~hooks prog);
  Alcotest.(check (list (pair int int))) "write observed" [ (Layout.data_base, 77) ] !seen

let test_instr_to_string_forms () =
  Alcotest.(check string) "spill load" "ld.spill r1, [rz, #8]"
    (Instr.to_string (Instr.Load (1, Reg.zero, 8, Instr.Spill_mem)));
  Alcotest.(check string) "ckpt" "ckpt r5" (Instr.to_string (Instr.Ckpt 5));
  Alcotest.(check string) "boundary" "--- region 3 ---" (Instr.to_string (Instr.Boundary 3));
  Alcotest.(check string) "cmp" "cmplt r1, r2, 9"
    (Instr.to_string (Instr.Cmp (Instr.Lt, 1, 2, Instr.Imm 9)))

let tests =
  [
    ("block rename_term", `Quick, test_block_rename_term);
    ("block to_string", `Quick, test_block_to_string);
    ("cfg back-edge candidates", `Quick, test_cfg_back_edge_candidate);
    ("dominance over unreachable", `Quick, test_dominance_unreachable);
    ("loop membership queries", `Quick, test_loop_membership_queries);
    ("interp step granularity", `Quick, test_interp_step_granularity);
    ("interp write hooks", `Quick, test_interp_hooks_see_writes);
    ("instr printing forms", `Quick, test_instr_to_string_forms);
  ]
