(* Deterministic pseudo-random data for workload construction. A splitmix
   style mixer keyed by (seed, index) keeps array initializers pure
   functions, so every build of a benchmark is bit-identical. *)

let mix seed i =
  let z = ref ((seed * 0x9E3779B9) + (i * 0x85EBCA6B) + 0x165667B1) in
  z := !z lxor (!z lsr 15);
  z := !z * 0x2C1B3C6D;
  z := !z lxor (!z lsr 12);
  z := !z * 0x297A2D39;
  z := !z lxor (!z lsr 15);
  !z land max_int

let int ~seed ~index ~bound =
  if bound <= 0 then invalid_arg "Data_gen.int: bound must be positive";
  mix seed index mod bound

let small ~seed ~index = 1 + (mix seed index mod 97)

(* A random permutation of [0, n) built by Fisher-Yates under the
   deterministic stream; used for pointer-chasing workloads. *)
let permutation ~seed n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = mix seed i mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a
