(** Parameterized kernel templates instantiated by the benchmark suite.

    Each template captures one behaviour class that drives the paper's
    results: store density (SB pressure), load-miss latency (checkpoint
    data hazards), WAR distance (CLQ fast-release rate), live-register
    pressure (spills / checkpoint counts), and loop-carried induction
    variables (LIVM targets). *)

open Turnpike_ir

val stream_store : ?seed:int -> ?work:int -> iters:int -> ways:int -> unit -> Prog.t
(** Dense streaming stores to [ways] arrays via strength-reduced pointer
    induction variables: fast-release and LIVM showcase. *)

val triad : ?seed:int -> iters:int -> unit -> Prog.t
(** [out\[i\] = x\[i\] + 3*y\[i\]]: loads feeding a store. *)

val reduction : ?seed:int -> iters:int -> accs:int -> unit -> Prog.t
(** Sum into [accs] parallel accumulators: load-heavy, register pressure
    grows with [accs]. *)

val pointer_chase : ?seed:int -> nodes:int -> iters:int -> unit -> Prog.t
(** Serialized cache-hostile loads through a permutation cycle, plus a
    dependent store. *)

val stencil : ?seed:int -> iters:int -> unit -> Prog.t
(** 3-point stencil with distinct input/output arrays (WAR-free stores). *)

val inplace_shift : ?seed:int -> iters:int -> unit -> Prog.t
(** [a\[i\] = a\[i+1\] + 1]: exact address matching (ideal CLQ) proves far
    more stores WAR-free than range checking — the Figs 14/15 gap. *)

val branchy : ?seed:int -> iters:int -> unit -> Prog.t
(** Data-dependent diamonds: taken-branch pressure, short regions. *)

val spill_heavy : ?seed:int -> iters:int -> live:int -> unit -> Prog.t
(** [live] rotating accumulators force spilling; the frequently-written
    ones stay resident only under store-aware allocation. *)

val matmul : ?seed:int -> n:int -> unit -> Prog.t
(** Dense n×n matrix multiply: two-deep loop nest. *)

val histogram : ?seed:int -> iters:int -> buckets:int -> unit -> Prog.t
(** Load-increment-store to the same address: genuine WAR dependences that
    must quarantine. *)

val flag_loop : ?seed:int -> iters:int -> unit -> Prog.t
(** A per-iteration flag used only after the loop: its checkpoint sinks
    out of the loop under LICM (paper Fig 10). *)

val gather : ?seed:int -> iters:int -> span:int -> unit -> Prog.t
(** Indirect gather [acc += data\[idx\[i\]\]]: two dependent loads per
    element over a cache-hostile index stream, plus a progress store
    (graph/path-search flavour). *)

val compress : ?seed:int -> iters:int -> unit -> Prog.t
(** Data-dependent compaction: elements passing a predicate stream to an
    output cursor — variable store density, branchy control, WAR-free
    output. *)

val mixed : ?seed:int -> iters:int -> unit -> Prog.t
(** Middle-of-the-road profile: compute + load + store + implicit branch. *)
