(** Deterministic pseudo-random data for workload construction: array
    initializers are pure functions of (seed, index), so every build of a
    benchmark is bit-identical. *)

val mix : int -> int -> int
(** [mix seed i]: a non-negative pseudo-random value for position [i]. *)

val int : seed:int -> index:int -> bound:int -> int
(** Uniform-ish value in [0, bound).
    @raise Invalid_argument on non-positive bound. *)

val small : seed:int -> index:int -> int
(** Value in [1, 97] — convenient nonzero array contents. *)

val permutation : seed:int -> int -> int array
(** Deterministic random permutation of [0, n); used to build
    pointer-chasing cycles. *)
