lib/workloads/templates.mli: Prog Turnpike_ir
