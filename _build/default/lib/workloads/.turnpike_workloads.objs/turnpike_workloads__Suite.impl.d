lib/workloads/suite.ml: List Prog String Templates Turnpike_ir
