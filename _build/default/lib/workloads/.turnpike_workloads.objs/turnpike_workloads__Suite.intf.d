lib/workloads/suite.mli: Prog Turnpike_ir
