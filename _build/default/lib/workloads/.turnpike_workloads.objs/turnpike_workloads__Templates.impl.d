lib/workloads/templates.ml: Array Builder Data_gen Instr Layout List Turnpike_ir
