lib/workloads/data_gen.mli:
