lib/workloads/data_gen.ml: Array
