(* Parameterized kernel templates the benchmark suite instantiates. Each
   template captures one behaviour class that drives the paper's results:
   store density (SB pressure), load-miss latency (checkpoint data
   hazards), WAR distance (CLQ fast-release rate), live-register pressure
   (spills / checkpoint counts), and loop-carried induction variables
   (LIVM targets). Loops use a zero-based counter plus strength-reduced
   pointer induction variables, as -O3 code generation would. *)

open Turnpike_ir

let word = Layout.word

(* Counted-loop skeleton:
     entry: setup; i = 0; jump head
     head:  body i env; i += 1; t = i < n; br t head exit
     exit:  epilogue env; ret
   [setup] returns an environment threaded to [body] and [epilogue]. *)
let build_loop ~name ~iters ~setup ~body ~epilogue =
  let b = Builder.create name in
  Builder.label b "entry";
  let env = setup b in
  let i = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "head";
  Builder.label b "head";
  body b ~i env;
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm iters);
  Builder.branch b ~cond:c ~if_true:"head" ~if_false:"exit";
  Builder.label b "exit";
  epilogue b env;
  Builder.ret b;
  Builder.finish b

(* A loop-invariant register holding an address. *)
let base_reg b addr =
  let r = Builder.fresh_reg b in
  Builder.mov b ~dst:r (Imm addr);
  r

(* A strength-reduced pointer induction variable starting at [base] and
   advancing [step] bytes per iteration — the LIVM merge target of paper
   Fig 8. Returns the pointer register and its advance emitter. *)
let pointer_iv b ~base =
  let p = Builder.fresh_reg b in
  Builder.mov b ~dst:p (Reg base);
  p

let advance b p ~step = Builder.add b ~dst:p ~a:p (Imm step)

(* A short dependent ALU chain standing in for the per-element compute of a
   real benchmark iteration. Keeping values bounded (mask + add/xor) makes
   the outputs stable across schemes. Returns the chain's result register;
   the intermediates die locally, so the chain adds work without adding
   live-out checkpoints. *)
let alu_chain b ~n ~src =
  (* Two interleaved independent sub-chains keep the dual-issue pipeline
     busy (baseline IPC close to width), so checkpoint stores compete for
     real issue slots as they do on hardware. *)
  let t = Builder.fresh_reg b and u = Builder.fresh_reg b in
  Builder.binop b Instr.And ~dst:t ~a:src (Imm 0xFFFF);
  Builder.binop b Instr.Xor ~dst:u ~a:src (Imm 0x5A5A);
  for k = 1 to n do
    let dst = if k land 1 = 0 then t else u in
    match k mod 3 with
    | 0 -> Builder.binop b Instr.Xor ~dst ~a:dst (Imm ((k * 37) land 0xFF))
    | 1 -> Builder.add b ~dst ~a:dst (Imm ((k * 11) land 0xFF))
    | _ -> Builder.binop b Instr.And ~dst ~a:dst (Imm 0x7FFF)
  done;
  Builder.add b ~dst:t ~a:t (Reg u);
  t

(* Flush a result register to memory in the epilogue so that every kernel
   has observable output for SDC verification. *)
let emit_result b env_regs =
  let out = Builder.alloc_array b ~len:(List.length env_regs) ~init:(fun _ -> 0) in
  let ob = base_reg b out in
  List.iteri (fun k r -> Builder.store b ~src:r ~base:ob ~off:(k * word) ()) env_regs

(* -------------------------------------------------------------------- *)

(* Streaming stores: [ways] output arrays written each iteration through
   strength-reduced pointers. Dense stores, no WAR — the canonical
   fast-release and LIVM showcase. *)
let stream_store ?(seed = 1) ?(work = 18) ~iters ~ways () =
  build_loop ~name:"stream_store" ~iters
    ~setup:(fun b ->
      let v = Builder.fresh_reg b in
      Builder.mov b ~dst:v (Imm (seed * 3));
      let k = Builder.fresh_reg b in
      Builder.mov b ~dst:k (Imm (seed * 5));
      let ptrs =
        List.init ways (fun w ->
            let a =
              Builder.alloc_array b ~len:(iters + 1) ~init:(fun kk ->
                  Data_gen.small ~seed:(seed + w) ~index:kk)
            in
            pointer_iv b ~base:(base_reg b a))
      in
      (v, k, ptrs))
    ~body:(fun b ~i:_ (v, k, ptrs) ->
      Builder.add b ~dst:v ~a:v (Imm 7);
      (* A rematerializable temporary: one static definition from a
         loop-invariant source, defined early and consumed at the end of
         the iteration. It stays live across the mid-iteration region
         boundaries the store budget forces, so eager checkpointing saves
         it every iteration — and optimal pruning removes that checkpoint
         (the value reconstructs from k's checkpoint). *)
      let remat = Builder.fresh_reg b in
      Builder.add b ~dst:remat ~a:k (Imm 13);
      List.iteri
        (fun w p ->
          let t = alu_chain b ~n:work ~src:v in
          Builder.binop b Instr.Xor ~dst:t ~a:t (Imm w);
          Builder.store b ~src:t ~base:p ();
          advance b p ~step:word)
        ptrs;
      Builder.binop b Instr.Xor ~dst:v ~a:v (Reg remat))
    ~epilogue:(fun b (v, _, _) -> emit_result b [ v ])

(* Stream triad: out[i] = x[i] + k*y[i]. Loads feed a store — checkpoint
   data hazards behind L1 hits, still WAR-free. *)
let triad ?(seed = 2) ~iters () =
  build_loop ~name:"triad" ~iters
    ~setup:(fun b ->
      let mk s =
        Builder.alloc_array b ~len:(iters + 1) ~init:(fun k ->
            Data_gen.small ~seed:s ~index:k)
      in
      let x = mk seed and y = mk (seed + 1) and out = mk (seed + 2) in
      let k = Builder.fresh_reg b in
      Builder.mov b ~dst:k (Imm (seed * 7));
      let acc = Builder.fresh_reg b in
      Builder.mov b ~dst:acc (Imm 0);
      let px = pointer_iv b ~base:(base_reg b x) in
      let py = pointer_iv b ~base:(base_reg b y) in
      let po = pointer_iv b ~base:(base_reg b out) in
      (k, acc, px, py, po))
    ~body:(fun b ~i:_ (k, acc, px, py, po) ->
      (* Rematerializable temporary: defined first, consumed after the
         store, so its checkpoint spans the mid-iteration boundary and is
         a pruning target. *)
      let remat = Builder.fresh_reg b in
      Builder.add b ~dst:remat ~a:k (Imm 21);
      let a = Builder.fresh_reg b and c = Builder.fresh_reg b in
      Builder.load b ~dst:a ~base:px ();
      Builder.load b ~dst:c ~base:py ();
      let t = Builder.fresh_reg b in
      Builder.mul b ~dst:t ~a:c (Imm 3);
      Builder.add b ~dst:t ~a:t (Reg a);
      let t2 = alu_chain b ~n:16 ~src:t in
      Builder.store b ~src:t2 ~base:po ();
      Builder.add b ~dst:acc ~a:acc (Reg remat);
      advance b px ~step:word;
      advance b py ~step:word;
      advance b po ~step:word)
    ~epilogue:(fun b (_, acc, _, _, _) -> emit_result b [ acc ])

(* Reduction over [accs] parallel accumulators: load-heavy, almost no
   stores, high live-register pressure when [accs] is large. *)
let reduction ?(seed = 3) ~iters ~accs () =
  build_loop ~name:"reduction" ~iters
    ~setup:(fun b ->
      let a =
        Builder.alloc_array b ~len:(iters + accs + 1) ~init:(fun k ->
            Data_gen.small ~seed ~index:k)
      in
      let p = pointer_iv b ~base:(base_reg b a) in
      let sums =
        List.init accs (fun k ->
            let r = Builder.fresh_reg b in
            Builder.mov b ~dst:r (Imm k);
            r)
      in
      (p, sums))
    ~body:(fun b ~i:_ (p, sums) ->
      List.iteri
        (fun k s ->
          let v = Builder.fresh_reg b in
          Builder.load b ~dst:v ~base:p ~off:(k * word) ();
          let t = alu_chain b ~n:7 ~src:v in
          Builder.add b ~dst:s ~a:s (Reg t))
        sums;
      advance b p ~step:word)
    ~epilogue:(fun b (_, sums) -> emit_result b sums)

(* Pointer chasing through a permutation cycle: serialized, cache-hostile
   loads (the paper's mcf/omnetpp behaviour) followed by a rare store. *)
let pointer_chase ?(seed = 4) ~nodes ~iters () =
  build_loop ~name:"pointer_chase" ~iters
    ~setup:(fun b ->
      let perm = Data_gen.permutation ~seed nodes in
      let next = Builder.alloc_array b ~len:nodes ~init:(fun k -> perm.(k)) in
      let visits = Builder.alloc_array b ~len:nodes ~init:(fun _ -> 0) in
      let nb = base_reg b next in
      let vb = base_reg b visits in
      let cur = Builder.fresh_reg b in
      Builder.mov b ~dst:cur (Imm 0);
      (nb, vb, cur))
    ~body:(fun b ~i (nb, vb, cur) ->
      let off = Builder.fresh_reg b in
      Builder.binop b Instr.Shl ~dst:off ~a:cur (Imm 3);
      let addr = Builder.fresh_reg b in
      Builder.add b ~dst:addr ~a:off (Reg nb);
      Builder.load b ~dst:cur ~base:addr ();
      let pad = alu_chain b ~n:10 ~src:i in
      ignore pad;
      (* Occasionally record the visit (store with data hazard on cur). *)
      let waddr = Builder.fresh_reg b in
      Builder.binop b Instr.Shl ~dst:waddr ~a:cur (Imm 3);
      Builder.add b ~dst:waddr ~a:waddr (Reg vb);
      Builder.store b ~src:i ~base:waddr ())
    ~epilogue:(fun b (_, _, cur) -> emit_result b [ cur ])

(* 3-point stencil: out[i] = in[i-1] + in[i] + in[i+1]. Distinct input and
   output arrays keep stores WAR-free. *)
let stencil ?(seed = 5) ~iters () =
  build_loop ~name:"stencil" ~iters
    ~setup:(fun b ->
      let src =
        Builder.alloc_array b ~len:(iters + 2) ~init:(fun k ->
            Data_gen.small ~seed ~index:k)
      in
      let dst = Builder.alloc_array b ~len:(iters + 2) ~init:(fun _ -> 0) in
      let ps = pointer_iv b ~base:(base_reg b src) in
      let pd = pointer_iv b ~base:(base_reg b dst) in
      let coeff = Builder.fresh_reg b in
      Builder.mov b ~dst:coeff (Imm (3 + (seed land 3)));
      (ps, pd, coeff))
    ~body:(fun b ~i:_ (ps, pd, coeff) ->
      let a = Builder.fresh_reg b
      and c = Builder.fresh_reg b
      and d = Builder.fresh_reg b in
      (* Rematerializable boundary weight: single static definition from a
         loop-invariant coefficient, consumed at the end of the iteration
         (its per-iteration checkpoint is a pruning target). *)
      let weight = Builder.fresh_reg b in
      Builder.add b ~dst:weight ~a:coeff (Imm 2);
      Builder.load b ~dst:a ~base:ps ~off:0 ();
      Builder.load b ~dst:c ~base:ps ~off:word ();
      Builder.load b ~dst:d ~base:ps ~off:(2 * word) ();
      Builder.add b ~dst:a ~a:a (Reg c);
      Builder.add b ~dst:a ~a:a (Reg d);
      let t = alu_chain b ~n:18 ~src:a in
      Builder.store b ~src:t ~base:pd ~off:word ();
      (* weight's only consumer sits after the store: its live range
         crosses the iteration's region boundary, so eager checkpointing
         saves it and pruning removes that checkpoint. *)
      advance b ps ~step:word;
      Builder.add b ~dst:pd ~a:pd (Reg weight);
      Builder.sub b ~dst:pd ~a:pd (Reg weight);
      advance b pd ~step:word)
    ~epilogue:(fun _ _ -> ())

(* In-place smoothing: a[i+1] = a[i] + a[i+2]. The store lands strictly
   *inside* the span of the iteration's loads without matching either
   address, so exact (ideal CLQ) matching proves it WAR-free while
   range checking reports a false WAR — the compact-vs-ideal gap of the
   paper's Figs 14/15. *)
let inplace_shift ?(seed = 6) ~iters () =
  build_loop ~name:"inplace_shift" ~iters
    ~setup:(fun b ->
      let a =
        Builder.alloc_array b ~len:(iters + 3) ~init:(fun k ->
            Data_gen.small ~seed ~index:k)
      in
      let k = Builder.fresh_reg b in
      Builder.mov b ~dst:k (Imm (seed * 11));
      let acc = Builder.fresh_reg b in
      Builder.mov b ~dst:acc (Imm 0);
      let p = pointer_iv b ~base:(base_reg b a) in
      (k, acc, p))
    ~body:(fun b ~i:_ (k, acc, p) ->
      let remat = Builder.fresh_reg b in
      Builder.binop b Instr.Xor ~dst:remat ~a:k (Imm 5);
      let v = Builder.fresh_reg b and w2 = Builder.fresh_reg b in
      Builder.load b ~dst:v ~base:p ~off:0 ();
      Builder.load b ~dst:w2 ~base:p ~off:(2 * word) ();
      Builder.add b ~dst:v ~a:v (Reg w2);
      let t = alu_chain b ~n:16 ~src:v in
      Builder.store b ~src:t ~base:p ~off:word ();
      Builder.add b ~dst:acc ~a:acc (Reg remat);
      advance b p ~step:word)
    ~epilogue:(fun b (_, acc, _) -> emit_result b [ acc ])

(* Data-dependent branching over a table: taken-branch pressure and short
   regions (every join is a region head). *)
let branchy ?(seed = 7) ~iters () =
  let name = "branchy" in
  let b = Builder.create name in
  Builder.label b "entry";
  let data =
    Builder.alloc_array b ~len:(iters + 1) ~init:(fun k -> Data_gen.mix seed k mod 4)
  in
  let p = pointer_iv b ~base:(base_reg b data) in
  let c0 = Builder.fresh_reg b and c1 = Builder.fresh_reg b in
  Builder.mov b ~dst:c0 (Imm 0);
  Builder.mov b ~dst:c1 (Imm 0);
  let i = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  (* Mode selection through a two-sided branch on a run-stable predicate:
     the mode register is defined (and eagerly checkpointed) in each arm
     and is live into the loop — exactly the diamond of paper Fig 9 that
     checkpoint pruning removes by replaying the branch at recovery. *)
  let pred = Builder.fresh_reg b and mode = Builder.fresh_reg b in
  Builder.mov b ~dst:pred (Imm (seed land 1));
  Builder.branch b ~cond:pred ~if_true:"mode_a" ~if_false:"mode_b";
  Builder.label b "mode_a";
  Builder.mov b ~dst:mode (Imm 5);
  Builder.jump b "head";
  Builder.label b "mode_b";
  Builder.mov b ~dst:mode (Imm 9);
  Builder.jump b "head";
  Builder.label b "head";
  let v = Builder.fresh_reg b in
  Builder.load b ~dst:v ~base:p ();
  advance b p ~step:word;
  let t = Builder.fresh_reg b in
  Builder.binop b Instr.And ~dst:t ~a:v (Imm 1);
  Builder.branch b ~cond:t ~if_true:"odd" ~if_false:"even";
  Builder.label b "odd";
  Builder.add b ~dst:c0 ~a:c0 (Reg v);
  Builder.add b ~dst:c0 ~a:c0 (Reg mode);
  Builder.jump b "join";
  Builder.label b "even";
  Builder.add b ~dst:c1 ~a:c1 (Imm 2);
  Builder.jump b "join";
  Builder.label b "join";
  let pad = alu_chain b ~n:10 ~src:v in
  Builder.binop b Instr.Or ~dst:pad ~a:pad (Imm 0);
  Builder.add b ~dst:i ~a:i (Imm 1);
  let cc = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:cc ~a:i (Imm iters);
  Builder.branch b ~cond:cc ~if_true:"head" ~if_false:"exit";
  Builder.label b "exit";
  emit_result b [ c0; c1 ];
  Builder.ret b;
  Builder.finish b

(* Register-pressure kernel: [live] rotating accumulators force the
   allocator to spill; store-aware allocation changes *which* variables
   spill (the frequently-written ones stay in registers). *)
let spill_heavy ?(seed = 8) ~iters ~live () =
  build_loop ~name:"spill_heavy" ~iters
    ~setup:(fun b ->
      let a =
        Builder.alloc_array b ~len:(iters + 1) ~init:(fun k ->
            Data_gen.small ~seed ~index:k)
      in
      let p = pointer_iv b ~base:(base_reg b a) in
      let regs =
        List.init live (fun k ->
            let r = Builder.fresh_reg b in
            Builder.mov b ~dst:r (Imm (k + 1));
            r)
      in
      (p, regs))
    ~body:(fun b ~i:_ (p, regs) ->
      let v = Builder.fresh_reg b in
      Builder.load b ~dst:v ~base:p ();
      (* Hot rotation: the first few registers are written every iteration
         (store-aware RA must keep them resident); the tail is only read. *)
      (match regs with
      | r0 :: r1 :: r2 :: rest ->
        let t = alu_chain b ~n:14 ~src:v in
        Builder.add b ~dst:r0 ~a:r0 (Reg t);
        Builder.add b ~dst:r1 ~a:r1 (Reg r0);
        Builder.add b ~dst:r2 ~a:r2 (Reg r1);
        List.iteri
          (fun k r -> if k mod 7 = 0 then Builder.add b ~dst:r0 ~a:r0 (Reg r))
          rest
      | _ -> ());
      advance b p ~step:word)
    ~epilogue:(fun b (_, regs) -> emit_result b regs)

(* Tiny dense matrix multiply: nested loops, loop headers at two depths. *)
let matmul ?(seed = 9) ~n () =
  let name = "matmul" in
  let b = Builder.create name in
  Builder.label b "entry";
  let mk s =
    Builder.alloc_array b ~len:(n * n) ~init:(fun k -> Data_gen.small ~seed:s ~index:k)
  in
  let am = mk seed and bm = mk (seed + 1) in
  let cm = Builder.alloc_array b ~len:(n * n) ~init:(fun _ -> 0) in
  let ab = base_reg b am and bb = base_reg b bm and cb = base_reg b cm in
  let i = Builder.fresh_reg b and j = Builder.fresh_reg b and k = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "i_head";
  Builder.label b "i_head";
  Builder.mov b ~dst:j (Imm 0);
  Builder.jump b "j_head";
  Builder.label b "j_head";
  Builder.mov b ~dst:k (Imm 0);
  let acc = Builder.fresh_reg b in
  Builder.mov b ~dst:acc (Imm 0);
  Builder.jump b "k_head";
  Builder.label b "k_head";
  (* acc += A[i*n+k] * B[k*n+j] *)
  let t1 = Builder.fresh_reg b and t2 = Builder.fresh_reg b in
  Builder.mul b ~dst:t1 ~a:i (Imm n);
  Builder.add b ~dst:t1 ~a:t1 (Reg k);
  Builder.binop b Instr.Shl ~dst:t1 ~a:t1 (Imm 3);
  Builder.add b ~dst:t1 ~a:t1 (Reg ab);
  let va = Builder.fresh_reg b in
  Builder.load b ~dst:va ~base:t1 ();
  Builder.mul b ~dst:t2 ~a:k (Imm n);
  Builder.add b ~dst:t2 ~a:t2 (Reg j);
  Builder.binop b Instr.Shl ~dst:t2 ~a:t2 (Imm 3);
  Builder.add b ~dst:t2 ~a:t2 (Reg bb);
  let vb = Builder.fresh_reg b in
  Builder.load b ~dst:vb ~base:t2 ();
  Builder.mul b ~dst:va ~a:va (Reg vb);
  Builder.add b ~dst:acc ~a:acc (Reg va);
  Builder.add b ~dst:k ~a:k (Imm 1);
  let ck = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:ck ~a:k (Imm n);
  Builder.branch b ~cond:ck ~if_true:"k_head" ~if_false:"k_exit";
  Builder.label b "k_exit";
  let tc = Builder.fresh_reg b in
  Builder.mul b ~dst:tc ~a:i (Imm n);
  Builder.add b ~dst:tc ~a:tc (Reg j);
  Builder.binop b Instr.Shl ~dst:tc ~a:tc (Imm 3);
  Builder.add b ~dst:tc ~a:tc (Reg cb);
  Builder.store b ~src:acc ~base:tc ();
  Builder.add b ~dst:j ~a:j (Imm 1);
  let cj = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:cj ~a:j (Imm n);
  Builder.branch b ~cond:cj ~if_true:"j_head" ~if_false:"j_exit";
  Builder.label b "j_exit";
  Builder.add b ~dst:i ~a:i (Imm 1);
  let ci = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:ci ~a:i (Imm n);
  Builder.branch b ~cond:ci ~if_true:"i_head" ~if_false:"exit";
  Builder.label b "exit";
  Builder.ret b;
  Builder.finish b

(* Histogram: increment a[bucket(x)] — a load and a store to the *same*
   address in one region: genuine WAR dependences that must quarantine. *)
let histogram ?(seed = 10) ~iters ~buckets () =
  build_loop ~name:"histogram" ~iters
    ~setup:(fun b ->
      let data =
        Builder.alloc_array b ~len:(iters + 1) ~init:(fun k ->
            Data_gen.int ~seed ~index:k ~bound:buckets)
      in
      let hist = Builder.alloc_array b ~len:buckets ~init:(fun _ -> 0) in
      let pd = pointer_iv b ~base:(base_reg b data) in
      let hb = base_reg b hist in
      (pd, hb))
    ~body:(fun b ~i:_ (pd, hb) ->
      let x = Builder.fresh_reg b in
      Builder.load b ~dst:x ~base:pd ();
      advance b pd ~step:word;
      let t = alu_chain b ~n:12 ~src:x in
      ignore t;
      let addr = Builder.fresh_reg b in
      Builder.binop b Instr.Shl ~dst:addr ~a:x (Imm 3);
      Builder.add b ~dst:addr ~a:addr (Reg hb);
      let cnt = Builder.fresh_reg b in
      Builder.load b ~dst:cnt ~base:addr ();
      Builder.add b ~dst:cnt ~a:cnt (Imm 1);
      Builder.store b ~src:cnt ~base:addr ())
    ~epilogue:(fun _ _ -> ())

(* A loop computing a summary flag consumed only after the loop, shaped so
   the flag's per-iteration checkpoint sinks out of the loop under LICM
   (paper Fig 10): the loop exit block stays in the loop head's region
   (single predecessor, store-free) and the flag is only read in a later
   join region, so the checkpoint is live across exactly one region-exit
   edge leaving from the shallower exit block. *)
let flag_loop ?(seed = 11) ~iters () =
  let name = "flag_loop" in
  let b = Builder.create name in
  Builder.label b "entry";
  let data =
    Builder.alloc_array b ~len:(iters + 1) ~init:(fun k -> Data_gen.small ~seed ~index:k)
  in
  let out = Builder.alloc_array b ~len:4 ~init:(fun _ -> 0) in
  let db = base_reg b data in
  let ob = base_reg b out in
  let flag = Builder.fresh_reg b and i = Builder.fresh_reg b in
  Builder.mov b ~dst:flag (Imm 0);
  Builder.mov b ~dst:i (Imm 0);
  let c0 = Builder.fresh_reg b in
  Builder.mov b ~dst:c0 (Imm 1);
  (* Two paths into the merge block make it a join (its own region). *)
  Builder.branch b ~cond:c0 ~if_true:"head" ~if_false:"merge";
  Builder.label b "head";
  (* Index addressing (no pointer induction variable) keeps the loop at
     two loop-carried registers, so the head region's store budget can
     absorb the exit block. *)
  let addr = Builder.fresh_reg b in
  Builder.binop b Instr.Shl ~dst:addr ~a:i (Imm 3);
  Builder.add b ~dst:addr ~a:addr (Reg db);
  let v = Builder.fresh_reg b in
  Builder.load b ~dst:v ~base:addr ();
  Builder.binop b Instr.And ~dst:flag ~a:v (Imm 63);
  let pad = alu_chain b ~n:12 ~src:v in
  Builder.binop b Instr.Or ~dst:pad ~a:pad (Imm 0);
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm iters);
  Builder.branch b ~cond:c ~if_true:"head" ~if_false:"cooldown";
  Builder.label b "cooldown";
  (* Store-free epilogue in the loop head's region: the LICM sink target. *)
  let t = Builder.fresh_reg b in
  Builder.add b ~dst:t ~a:i (Imm 1);
  Builder.binop b Instr.Xor ~dst:t ~a:t (Reg i);
  Builder.jump b "merge";
  Builder.label b "merge";
  Builder.store b ~src:flag ~base:ob ();
  Builder.store b ~src:i ~base:ob ~off:word ();
  Builder.ret b;
  Builder.finish b

(* Indirect gather: acc += data[idx[i]] — two dependent loads per element
   with a cache-hostile index stream (graph/path-search flavour), plus a
   progress store. *)
let gather ?(seed = 13) ~iters ~span () =
  build_loop ~name:"gather" ~iters
    ~setup:(fun b ->
      let idx =
        Builder.alloc_array b ~len:(iters + 1) ~init:(fun k ->
            Data_gen.int ~seed ~index:k ~bound:span)
      in
      let data =
        Builder.alloc_array b ~len:span ~init:(fun k ->
            Data_gen.small ~seed:(seed + 1) ~index:k)
      in
      let out = Builder.alloc_array b ~len:(iters + 1) ~init:(fun _ -> 0) in
      let pi = pointer_iv b ~base:(base_reg b idx) in
      let db = base_reg b data in
      let po = pointer_iv b ~base:(base_reg b out) in
      let acc = Builder.fresh_reg b in
      Builder.mov b ~dst:acc (Imm 0);
      (pi, db, po, acc))
    ~body:(fun b ~i:_ (pi, db, po, acc) ->
      let k = Builder.fresh_reg b in
      Builder.load b ~dst:k ~base:pi ();
      advance b pi ~step:word;
      let addr = Builder.fresh_reg b in
      Builder.binop b Instr.Shl ~dst:addr ~a:k (Imm 3);
      Builder.add b ~dst:addr ~a:addr (Reg db);
      let v = Builder.fresh_reg b in
      Builder.load b ~dst:v ~base:addr ();
      let t = alu_chain b ~n:6 ~src:v in
      Builder.add b ~dst:acc ~a:acc (Reg t);
      Builder.store b ~src:acc ~base:po ();
      advance b po ~step:word)
    ~epilogue:(fun b (_, _, _, acc) -> emit_result b [ acc ])

(* Data-dependent compaction: elements passing a predicate are written to
   an output cursor that only then advances — variable store density,
   branchy control, WAR-free output stream (compressor flavour). *)
let compress ?(seed = 14) ~iters () =
  let name = "compress" in
  let b = Builder.create name in
  Builder.label b "entry";
  let src =
    Builder.alloc_array b ~len:(iters + 1) ~init:(fun k ->
        Data_gen.small ~seed ~index:k)
  in
  let dst = Builder.alloc_array b ~len:(iters + 1) ~init:(fun _ -> 0) in
  let ps = pointer_iv b ~base:(base_reg b src) in
  let pd = pointer_iv b ~base:(base_reg b dst) in
  let i = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "head";
  Builder.label b "head";
  let v = Builder.fresh_reg b in
  Builder.load b ~dst:v ~base:ps ();
  advance b ps ~step:word;
  let t = alu_chain b ~n:8 ~src:v in
  let c = Builder.fresh_reg b in
  Builder.binop b Instr.And ~dst:c ~a:v (Imm 1);
  Builder.branch b ~cond:c ~if_true:"emit" ~if_false:"skip";
  Builder.label b "emit";
  Builder.store b ~src:t ~base:pd ();
  advance b pd ~step:word;
  Builder.jump b "next";
  Builder.label b "skip";
  Builder.nop b;
  Builder.jump b "next";
  Builder.label b "next";
  Builder.add b ~dst:i ~a:i (Imm 1);
  let cc = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:cc ~a:i (Imm iters);
  Builder.branch b ~cond:cc ~if_true:"head" ~if_false:"exit";
  Builder.label b "exit";
  Builder.ret b;
  Builder.finish b

(* Mixed kernel: alternating compute, loads, stores and a branch — a
   middle-of-the-road profile for the many SPEC benchmarks that are
   neither extreme. *)
let mixed ?(seed = 12) ~iters () =
  build_loop ~name:"mixed" ~iters
    ~setup:(fun b ->
      let src =
        Builder.alloc_array b ~len:(iters + 1) ~init:(fun k ->
            Data_gen.small ~seed ~index:k)
      in
      let dst = Builder.alloc_array b ~len:(iters + 1) ~init:(fun _ -> 0) in
      let ps = pointer_iv b ~base:(base_reg b src) in
      let pd = pointer_iv b ~base:(base_reg b dst) in
      let acc = Builder.fresh_reg b in
      Builder.mov b ~dst:acc (Imm 0);
      (ps, pd, acc))
    ~body:(fun b ~i:_ (ps, pd, acc) ->
      let remat = Builder.fresh_reg b in
      Builder.binop b Instr.And ~dst:remat ~a:acc (Imm 0) ;
      Builder.add b ~dst:remat ~a:remat (Imm 17);
      let v = Builder.fresh_reg b in
      Builder.load b ~dst:v ~base:ps ();
      let t = Builder.fresh_reg b in
      Builder.mul b ~dst:t ~a:v (Imm 5);
      Builder.binop b Instr.Xor ~dst:t ~a:t (Reg acc);
      Builder.add b ~dst:acc ~a:acc (Reg v);
      let t2 = alu_chain b ~n:16 ~src:t in
      Builder.store b ~src:t2 ~base:pd ();
      Builder.add b ~dst:acc ~a:acc (Reg remat);
      advance b ps ~step:word;
      advance b pd ~step:word)
    ~epilogue:(fun b (_, _, acc) -> emit_result b [ acc ])
