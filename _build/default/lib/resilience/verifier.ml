(* SDC-freedom verification: compare the observable output of a resilient
   run (with faults injected) against a golden baseline run of the same
   source program. The observable output is the application data segment —
   spill slots and checkpoint storage are implementation details that
   legitimately differ between compilation schemes. *)

open Turnpike_ir

type verdict = Match | Mismatch of { addr : int; golden : int; actual : int }

let data_segment_only k = k >= Layout.data_base && k < Layout.spill_base

let compare_states ~(golden : Interp.state) ~(actual : Interp.state) =
  let bad = ref None in
  let check a b flip =
    Hashtbl.iter
      (fun k v ->
        if !bad = None && data_segment_only k && v <> 0 then begin
          let v' = Option.value (Hashtbl.find_opt b.Interp.mem k) ~default:0 in
          if v <> v' then
            bad :=
              Some
                (if flip then Mismatch { addr = k; golden = v'; actual = v }
                 else Mismatch { addr = k; golden = v; actual = v' })
        end)
      a.Interp.mem
  in
  check golden actual false;
  check actual golden true;
  Option.value !bad ~default:Match

type campaign_report = {
  total : int;
  recovered : int;
  sdc : int;
  crashed : int;
  parity_detections : int;
  sensor_detections : int;
  mean_reexec_overhead : float;
      (* mean of (faulted steps / golden steps) - 1 over recovered runs:
         the execution-time cost of rollback and re-execution *)
}

let run_campaign ?(config = Recovery.default_config) ~golden ~compiled faults =
  let total = List.length faults in
  let recovered = ref 0
  and sdc = ref 0
  and crashed = ref 0
  and parity = ref 0
  and sensor = ref 0
  and reexec_sum = ref 0.0 in
  let golden_steps = max 1 golden.Interp.steps in
  List.iter
    (fun fault ->
      match Recovery.run ~fault ~config compiled with
      | outcome ->
        List.iter
          (function
            | Recovery.Parity -> incr parity
            | Recovery.Sensor -> incr sensor)
          outcome.Recovery.detections;
        (match compare_states ~golden ~actual:outcome.Recovery.state with
        | Match ->
          incr recovered;
          reexec_sum :=
            !reexec_sum
            +. (float_of_int outcome.Recovery.state.Interp.steps
                /. float_of_int golden_steps)
            -. 1.0
        | Mismatch _ -> incr sdc)
      | exception (Recovery.Recovery_failed _ | Interp.Out_of_fuel) -> incr crashed)
    faults;
  {
    total;
    recovered = !recovered;
    sdc = !sdc;
    crashed = !crashed;
    parity_detections = !parity;
    sensor_detections = !sensor;
    mean_reexec_overhead =
      (if !recovered = 0 then 0.0 else !reexec_sum /. float_of_int !recovered);
  }
