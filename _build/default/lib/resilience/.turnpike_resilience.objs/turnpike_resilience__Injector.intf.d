lib/resilience/injector.pp.mli: Fault Trace Turnpike_ir
