lib/resilience/fault.pp.ml: Ppx_deriving_runtime Reg Turnpike_ir
