lib/resilience/injector.pp.ml: Array Fault List Trace Turnpike_ir
