lib/resilience/verifier.pp.mli: Fault Interp Recovery Turnpike_compiler Turnpike_ir
