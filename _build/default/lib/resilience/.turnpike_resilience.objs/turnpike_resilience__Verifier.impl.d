lib/resilience/verifier.pp.ml: Hashtbl Interp Layout List Option Recovery Turnpike_ir
