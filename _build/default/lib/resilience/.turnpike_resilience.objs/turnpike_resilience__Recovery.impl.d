lib/resilience/recovery.pp.ml: Array Block Fault Func Hashtbl Instr Interp Layout List Option Printf Prog Reg String Sys Trace Turnpike_arch Turnpike_compiler Turnpike_ir
