lib/resilience/fault.pp.mli: Ppx_deriving_runtime Reg Turnpike_ir
