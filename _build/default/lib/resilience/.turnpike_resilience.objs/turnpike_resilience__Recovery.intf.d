lib/resilience/recovery.pp.mli: Fault Interp Turnpike_arch Turnpike_compiler Turnpike_ir
