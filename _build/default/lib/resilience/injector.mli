(** Fault-campaign construction: deterministic fault sets spread across a
    program's dynamic execution, targeting freshly written registers so the
    campaign stresses recovery rather than flipping dead bits. *)

open Turnpike_ir

val campaign : ?seed:int -> count:int -> Trace.t -> Fault.t list
(** Build [count] single-bit faults from a reference trace of the program
    (empty when the trace writes no registers). Deterministic in [seed]. *)
