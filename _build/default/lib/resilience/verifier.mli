(** SDC-freedom verification: compares the observable output (application
    data segment) of a resilient, fault-injected run against a golden
    baseline run. Spill slots and checkpoint storage are implementation
    details and are excluded from the comparison. *)

open Turnpike_ir

type verdict = Match | Mismatch of { addr : int; golden : int; actual : int }

val compare_states : golden:Interp.state -> actual:Interp.state -> verdict

type campaign_report = {
  total : int;
  recovered : int;  (** outputs identical to the golden run *)
  sdc : int;  (** silent data corruptions — must be zero for sound schemes *)
  crashed : int;  (** recovery failures / fuel exhaustion *)
  parity_detections : int;
  sensor_detections : int;
  mean_reexec_overhead : float;
      (** mean of (faulted-run steps / golden steps) − 1 over recovered
          runs: the execution cost of rollback and re-execution *)
}

val run_campaign :
  ?config:Recovery.config ->
  golden:Interp.state ->
  compiled:Turnpike_compiler.Pass_pipeline.t ->
  Fault.t list ->
  campaign_report
