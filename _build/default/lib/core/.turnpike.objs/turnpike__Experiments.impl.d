lib/core/experiments.ml: List Printf Run Scheme Turnpike_arch Turnpike_compiler Turnpike_ir Turnpike_resilience Turnpike_workloads
