lib/core/run.ml: Hashtbl Interp Printf Scheme Trace Turnpike_arch Turnpike_compiler Turnpike_ir Turnpike_workloads
