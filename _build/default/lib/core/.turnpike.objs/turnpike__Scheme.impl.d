lib/core/scheme.ml: Printf Turnpike_arch Turnpike_compiler
