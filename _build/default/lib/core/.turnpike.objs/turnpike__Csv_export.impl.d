lib/core/csv_export.ml: Experiments Fun List Printf String
