lib/core/run.mli: Interp Scheme Trace Turnpike_arch Turnpike_compiler Turnpike_ir Turnpike_workloads
