lib/core/scheme.mli: Turnpike_arch Turnpike_compiler
