lib/core/report.mli:
