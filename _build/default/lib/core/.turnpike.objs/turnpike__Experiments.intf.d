lib/core/experiments.mli: Scheme Turnpike_arch Turnpike_resilience Turnpike_workloads
