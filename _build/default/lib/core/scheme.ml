(* Named resilience schemes: each pairs a set of compiler optimizations
   with a hardware feature set. The ablation ladder reproduces the paper's
   Fig 21 configurations in order. *)

module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Machine = Turnpike_arch.Machine
module Clq = Turnpike_arch.Clq

type t = {
  name : string;
  resilient : bool;
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  clq : Clq.design option;
  coloring : bool;
}

let baseline =
  {
    name = "baseline";
    resilient = false;
    store_aware_ra = false;
    livm = false;
    pruning = false;
    licm = false;
    sched = false;
    clq = None;
    coloring = false;
  }

let turnstile = { baseline with name = "turnstile"; resilient = true }

let war_free_checking =
  { turnstile with name = "war-free-checking"; clq = Some (Clq.Compact 2) }

let fast_release = { war_free_checking with name = "fast-release"; coloring = true }

let fast_release_pruning =
  { fast_release with name = "fast-release+pruning"; pruning = true }

let plus_licm = { fast_release_pruning with name = "+licm"; licm = true }

let plus_sched = { plus_licm with name = "+inst-sched"; sched = true }

let plus_ra = { plus_sched with name = "+ra-trick"; store_aware_ra = true }

let turnpike = { plus_ra with name = "turnpike"; livm = true }

let ladder =
  [
    turnstile;
    war_free_checking;
    fast_release;
    fast_release_pruning;
    plus_licm;
    plus_sched;
    plus_ra;
    turnpike;
  ]

let with_clq t design = { t with clq = design }

let compile_opts t ~sb_size =
  {
    Pass_pipeline.turnstile_opts with
    Pass_pipeline.sb_size;
    resilient = t.resilient;
    store_aware_ra = t.store_aware_ra;
    livm = t.livm;
    pruning = t.pruning;
    licm = t.licm;
    sched = t.sched;
  }

let machine t ~wcdl ~sb_size =
  if not t.resilient then { Machine.baseline with Machine.sb_size }
  else
    {
      Machine.baseline with
      Machine.name = t.name;
      sb_size;
      wcdl;
      verification = true;
      clq = t.clq;
      coloring = t.coloring;
    }

(* A key identifying the compile configuration: traces depend only on the
   compiled binary, not on the machine, so runs cache on this key. *)
let compile_key t ~sb_size =
  Printf.sprintf "sb%d:r%b:ra%b:iv%b:pr%b:li%b:sc%b" sb_size t.resilient
    t.store_aware_ra t.livm t.pruning t.licm t.sched
