(* Table formatting and aggregation helpers shared by the experiment
   drivers and the bench harness. *)

let geomean = function
  | [] -> 0.0
  | xs ->
    let n = List.length xs in
    let s = List.fold_left (fun acc x -> acc +. log (max x 1e-12)) 0.0 xs in
    exp (s /. float_of_int n)

let arith_mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

type column = { title : string; width : int }

let print_header cols =
  let line =
    String.concat " | "
      (List.map (fun c -> Printf.sprintf "%-*s" c.width c.title) cols)
  in
  print_endline line;
  print_endline (String.make (String.length line) '-')

let print_row cols cells =
  print_endline
    (String.concat " | "
       (List.map2 (fun c s -> Printf.sprintf "%-*s" c.width s) cols cells))

let fmt_overhead x = Printf.sprintf "%.3f" x

let fmt_pct x = Printf.sprintf "%.2f%%" x

let section title =
  print_newline ();
  print_endline (String.make (String.length title + 4) '=');
  Printf.printf "= %s =\n" title;
  print_endline (String.make (String.length title + 4) '=')

let subsection title =
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '-')
