(** End-to-end driver: build a workload, compile it under a scheme, trace
    it, replay the trace on the scheme's machine, and report counters.
    Compilation and tracing are cached per (benchmark, scale, compile key):
    traces depend only on the binary, so one trace serves every WCDL /
    machine variation of a scheme. *)

open Turnpike_ir
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Static_stats = Turnpike_compiler.Static_stats
module Sim_stats = Turnpike_arch.Sim_stats
module Suite = Turnpike_workloads.Suite

type compiled_run = {
  compiled : Pass_pipeline.t;
  trace : Trace.t;
  final : Interp.state;  (** architectural state at end of trace window *)
}

type result = {
  scheme : string;
  benchmark : string;
  stats : Sim_stats.t;
  static_stats : Static_stats.t;
  trace : Trace.t;
}

val default_scale : int
val default_fuel : int

val clear_cache : unit -> unit

val compile_and_trace :
  ?scale:int -> ?fuel:int -> Scheme.t -> sb_size:int -> Suite.entry -> compiled_run

val run :
  ?scale:int -> ?fuel:int -> ?wcdl:int -> ?sb_size:int -> Scheme.t -> Suite.entry -> result

val overhead : baseline:result -> result -> float
(** Normalized execution time (the paper's y-axis): cycles divided by the
    baseline run's cycles. *)

val normalized :
  ?scale:int ->
  ?fuel:int ->
  ?wcdl:int ->
  ?sb_size:int ->
  ?baseline_sb:int ->
  Scheme.t ->
  Suite.entry ->
  float * result
(** Convenience: run baseline and scheme, returning (overhead, result). *)
