(* End-to-end driver: build a workload, compile it under a scheme, produce
   its dynamic trace, replay the trace on the scheme's machine, and report
   counters. Compilation and tracing are cached per (benchmark, scale,
   compile key): traces depend only on the binary, so a single trace serves
   every WCDL / machine variation of the same scheme. *)

open Turnpike_ir
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Static_stats = Turnpike_compiler.Static_stats
module Timing = Turnpike_arch.Timing
module Sim_stats = Turnpike_arch.Sim_stats
module Suite = Turnpike_workloads.Suite

type compiled_run = {
  compiled : Pass_pipeline.t;
  trace : Trace.t;
  final : Interp.state;
}

type result = {
  scheme : string;
  benchmark : string;
  stats : Sim_stats.t;
  static_stats : Static_stats.t;
  trace : Trace.t;
}

let default_scale = 8
let default_fuel = 400_000

let cache : (string, compiled_run) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let compile_and_trace ?(scale = default_scale) ?(fuel = default_fuel)
    (scheme : Scheme.t) ~sb_size (bench : Suite.entry) =
  let key =
    Printf.sprintf "%s/%d/%d/%s" (Suite.qualified_name bench) scale fuel
      (Scheme.compile_key scheme ~sb_size)
  in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
    let prog = bench.Suite.build ~scale in
    let opts = Scheme.compile_opts scheme ~sb_size in
    let compiled = Pass_pipeline.compile ~opts prog in
    let trace, final = Interp.trace_run ~fuel compiled.Pass_pipeline.prog in
    let c = { compiled; trace; final } in
    Hashtbl.replace cache key c;
    c

let run ?(scale = default_scale) ?(fuel = default_fuel) ?(wcdl = 10) ?(sb_size = 4)
    (scheme : Scheme.t) (bench : Suite.entry) =
  let c = compile_and_trace ~scale ~fuel scheme ~sb_size bench in
  let machine = Scheme.machine scheme ~wcdl ~sb_size in
  let stats = Timing.simulate machine c.trace in
  {
    scheme = scheme.Scheme.name;
    benchmark = Suite.qualified_name bench;
    stats;
    static_stats = c.compiled.Pass_pipeline.stats;
    trace = c.trace;
  }

let overhead ~baseline result =
  if baseline.stats.Sim_stats.cycles = 0 then 1.0
  else
    float_of_int result.stats.Sim_stats.cycles
    /. float_of_int baseline.stats.Sim_stats.cycles

let normalized ?(scale = default_scale) ?(fuel = default_fuel) ?(wcdl = 10)
    ?(sb_size = 4) ?(baseline_sb = 4) (scheme : Scheme.t) (bench : Suite.entry) =
  let base = run ~scale ~fuel ~wcdl ~sb_size:baseline_sb Scheme.baseline bench in
  let r = run ~scale ~fuel ~wcdl ~sb_size scheme bench in
  (overhead ~baseline:base r, r)
