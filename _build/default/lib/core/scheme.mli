(** Named resilience schemes: each pairs a set of compiler optimizations
    with a hardware feature set. The ablation ladder reproduces the
    paper's Fig 21 configurations in order. *)

module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Machine = Turnpike_arch.Machine
module Clq = Turnpike_arch.Clq

type t = {
  name : string;
  resilient : bool;
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  clq : Clq.design option;
  coloring : bool;
}

val baseline : t
(** No resilience: the normalization denominator. *)

val turnstile : t
(** The prior state of the art: verification without any Turnpike
    optimization. *)

val war_free_checking : t
(** Turnstile + CLQ fast release of WAR-free regular stores. *)

val fast_release : t
(** + hardware coloring (fast release of checkpoint stores). *)

val fast_release_pruning : t
val plus_licm : t
val plus_sched : t
val plus_ra : t

val turnpike : t
(** All optimizations (adds loop induction variable merging). *)

val ladder : t list
(** The 8 configurations of the paper's Fig 21, in order. *)

val with_clq : t -> Clq.design option -> t

val compile_opts : t -> sb_size:int -> Pass_pipeline.opts
val machine : t -> wcdl:int -> sb_size:int -> Machine.t

val compile_key : t -> sb_size:int -> string
(** Identifies the compile configuration (traces depend only on the
    binary, not the machine); used as a cache key. *)
