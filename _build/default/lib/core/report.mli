(** Table formatting and aggregation helpers shared by the experiment
    drivers and the bench harness. *)

val geomean : float list -> float
val arith_mean : float list -> float

type column = { title : string; width : int }

val print_header : column list -> unit
val print_row : column list -> string list -> unit

val fmt_overhead : float -> string
(** Normalized execution time with 3 decimals, as in the paper's plots. *)

val fmt_pct : float -> string

val section : string -> unit
val subsection : string -> unit
