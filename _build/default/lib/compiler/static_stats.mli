(** Static (compile-time) counters emitted by the pass pipeline; they feed
    the paper's store-breakdown (Fig 23), checkpoint-ratio (Fig 4) and
    code-size (Fig 26) analyses. *)

type t = {
  mutable regions : int;
  mutable ckpts_inserted : int;  (** eager checkpoints before any removal *)
  mutable ckpts_pruned : int;  (** removed by optimal checkpoint pruning *)
  mutable ckpts_licm_moved : int;  (** sunk out of a loop by LICM *)
  mutable ckpts_licm_eliminated : int;  (** deduplicated after LICM sinking *)
  mutable livm_merged_ivs : int;  (** induction variables merged by LIVM *)
  mutable livm_ckpts_eliminated : int;
  mutable spill_stores : int;  (** static spill stores emitted by regalloc *)
  mutable spill_loads : int;
  mutable spilled_vregs : int;
  mutable sched_moved : int;  (** checkpoints delayed by instruction scheduling *)
  mutable base_code_size : int;  (** instructions before resilience transforms *)
  mutable code_size : int;  (** instructions after the full pipeline *)
}

val create : unit -> t

val code_size_increase : t -> float
(** Percent code-size increase over the baseline (paper Fig 26). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
