(** Linear-scan register allocation with whole-interval spilling.

    The spill-cost model carries the paper's {e store-aware register
    allocation} (§4.1.1): traditional allocators weigh reads and writes
    equally, so frequently-written variables may be spilled — turning every
    write into a spill store that pressures the store buffer. Store-aware
    mode multiplies the write weight so those variables stay in registers,
    while using the same number of allocatable registers (allocation
    quality is preserved). *)

open Turnpike_ir

type config = {
  nregs : int;  (** architectural registers; id 0 is the zero register *)
  store_aware : bool;
  write_weight : int;  (** write-cost multiplier in store-aware mode *)
}

val default_config : config
(** 32 registers, store-unaware, write weight 4. *)

type result = {
  func : Func.t;  (** the same function, rewritten to physical registers *)
  spilled_vregs : int;
  spill_stores : int;  (** static spill stores emitted *)
  spill_loads : int;
  assignment : (Reg.t, Reg.t) Hashtbl.t;  (** virtual -> physical *)
  spill_slots : (Reg.t, int) Hashtbl.t;  (** virtual -> spill slot index *)
}

type location = Phys of Reg.t | Spill of int

val location_of : result -> Reg.t -> location option
(** Where a (virtual) register ended up; [None] for never-seen registers. *)

val remap_inputs : result -> (Reg.t * int) list -> (Reg.t * int) list * (int * int) list
(** Rewrite a program's input-register list through the allocation:
    returns the new register inputs plus memory-image additions for
    spilled inputs. *)

val run : ?config:config -> Func.t -> result
(** Allocate in place. Three registers are reserved as spill scratch;
    register 0 is never allocated. *)
