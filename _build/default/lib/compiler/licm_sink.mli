(** Checkpoint sinking with loop-invariant code motion (paper §4.1.4).

    Eager checkpointing can be relaxed: a checkpoint only has to execute
    before its region ends, so it may sink from right-after-the-definition
    to any later region point. When a region tree spans a loop-exit edge,
    a checkpoint in a loop block sinks into the once-executed exit block —
    leaving the iteration path — provided the register is live on no other
    region exit (in particular, not loop-carried). Checkpoints made
    redundant by the motion are deduplicated. *)

open Turnpike_ir

type result = {
  func : Func.t;
  moved : int;  (** checkpoints sunk to a shallower block *)
  eliminated : int;  (** redundant duplicates removed afterwards *)
}

val run : Func.t -> result
(** Requires boundary markers and checkpoints to be present. *)
