(* Checkpoint-aware instruction scheduling (paper §4.2).

   Eager checkpointing makes each checkpoint store immediately
   read-after-write dependent on the register-update instruction before it;
   on an in-order pipeline the store stalls until the value is ready (a
   full load-use penalty when the producer is a load). The scheduler sinks
   each checkpoint store down its block — past independent instructions —
   until it sits at least [separation] slots away from its producer, giving
   the in-order core an out-of-order-like ability to hide the producer's
   latency. *)

open Turnpike_ir

type result = { func : Func.t; moved : int }

let default_separation = 3

let run ?(separation = default_separation) func =
  if separation < 0 then invalid_arg "Scheduling.run: negative separation";
  let moved = ref 0 in
  Func.iter_blocks
    (fun b ->
      let body = Array.copy b.Block.body in
      let n = Array.length body in
      (* Walk bottom-up so that moving one checkpoint does not disturb the
         indices of the ones still to process above it. *)
      for i = n - 1 downto 0 do
        match body.(i) with
        | Instr.Ckpt r ->
          (* Distance to the producing definition above, and whether that
             producer is multi-cycle. Only load/mul/div producers make the
             checkpoint stall (paper §3.3: "the execution delay of the
             checkpoint store could be significant on cache misses");
             moving a checkpoint fed by 1-cycle ALU work would only create
             memory-port contention further down. *)
          let rec find_def j =
            if j < 0 then None
            else if List.mem r (Instr.defs body.(j)) then Some (i - j, body.(j))
            else find_def (j - 1)
          in
          let dist, slow_producer =
            match find_def (i - 1) with
            | Some (d, Instr.Load _) -> (d, true)
            | Some (d, Instr.Binop ((Instr.Mul | Instr.Div | Instr.Rem), _, _, _)) ->
              (d, true)
            | Some (d, _) -> (d, false)
            | None -> (max_int, false)
          in
          if dist < separation && slow_producer then begin
            let want = separation - dist in
            (* Slide the checkpoint down past pure ALU instructions that do
               not redefine the register. Memory operations stay put:
               hopping over a load or store would contend for the memory
               ports instead of hiding latency, and swapping two checkpoint
               stores gains nothing. *)
            let rec slide pos steps =
              if steps = 0 || pos + 1 >= n then pos
              else
                let next = body.(pos + 1) in
                if (not (Instr.is_pure next)) || List.mem r (Instr.defs next)
                then pos
                else begin
                  body.(pos) <- next;
                  body.(pos + 1) <- Instr.Ckpt r;
                  slide (pos + 1) (steps - 1)
                end
            in
            let final = slide i want in
            if final > i then incr moved
          end
        | _ -> ()
      done;
      b.Block.body <- body)
    func;
  { func; moved = !moved }
