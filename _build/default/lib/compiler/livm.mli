(** Loop induction variable merging (LIVM, paper §4.1.2) — one of
    Turnpike's two novel compiler optimizations.

    Strength reduction turns address expressions into separate basic
    induction variables; each is loop-carried, hence live-out of every
    iteration region and checkpointed every iteration. LIVM merges such a
    variable [r2] (init B, step s2) into an anchor basic induction variable
    [r1] (init 0, step s1 with s1 | s2) by recomputing
    [r2 = B + r1 * (s2 / s1)] locally at each use — the loop-carried
    dependence, and with it the per-iteration checkpoint, disappears.

    Runs before register allocation, on virtual registers. *)

open Turnpike_ir

type result = {
  func : Func.t;
  merged : int;  (** induction variables eliminated by merging *)
}

val run : Func.t -> result
