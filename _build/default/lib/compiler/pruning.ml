(* Optimal checkpoint pruning (paper §4.1.3, after Penny).

   A checkpoint is pruned when the value it would save can be reconstructed
   at recovery time from constants and the verified checkpoint slots of
   other registers. This implementation covers two cases:

   Straight-line: the checkpoint of a register [r] is pruned when
   - [r] has exactly one checkpoint site and exactly one definition in the
     whole function (so every recovery of [r] reconstructs the same way),
   - that definition is a pure instruction (mov / ALU / compare), and
   - each register operand is itself single-definition and either keeps an
     un-pruned checkpoint (read its slot) or recursively reconstructs.

   Diamond (paper Fig 9): [r] has exactly two definitions and two
   checkpoints, one in each arm of a two-sided branch whose condition is
   itself reconstructible; both checkpoints are pruned and recovery
   replays the branch as a select over the reconstructed predicate.

   Since regions verify strictly in order, any slot an expression reads
   was written and verified before the recovering region started —
   reconstruction is exact. The generated expressions are executed for
   real by the resilience engine, so soundness is tested end to end. *)

open Turnpike_ir

type result = {
  func : Func.t;
  exprs : (Reg.t, Recovery_expr.t) Hashtbl.t; (* pruned reg -> reconstruction *)
  pruned : int;
}

let max_depth = 4

let collect_sites func =
  let defs : (Reg.t, (string * Instr.t) list) Hashtbl.t = Hashtbl.create 64 in
  let ckpts : (Reg.t, string list) Hashtbl.t = Hashtbl.create 64 in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          (match i with
          | Instr.Ckpt r ->
            Hashtbl.replace ckpts r
              (b.Block.label :: Option.value (Hashtbl.find_opt ckpts r) ~default:[])
          | _ -> ());
          List.iter
            (fun d ->
              Hashtbl.replace defs d
                ((b.Block.label, i)
                :: Option.value (Hashtbl.find_opt defs d) ~default:[]))
            (Instr.defs i))
        b.Block.body)
    func;
  (defs, ckpts)

let run func =
  let defs, ckpts = collect_sites func in
  let single_def r =
    match Hashtbl.find_opt defs r with
    | Some [ (_, d) ] -> Some d
    | Some _ | None -> None
  in
  let ckpt_count r =
    List.length (Option.value (Hashtbl.find_opt ckpts r) ~default:[])
  in
  (* Registers holding one value for the whole run: program inputs (no
     definition at all) and single-definition temporaries. *)
  let stable_value r =
    match Hashtbl.find_opt defs r with
    | None -> true
    | Some [ _ ] -> true
    | Some _ -> false
  in
  (* Straight-line candidates: single checkpoint, single pure definition. *)
  let candidates = Hashtbl.create 16 in
  Hashtbl.iter
    (fun r sites ->
      if List.length sites = 1 then
        match single_def r with
        | Some d when Instr.is_pure d -> Hashtbl.replace candidates r d
        | Some _ | None -> ())
    ckpts;
  (* Fixpoint: an expression may read the slot of a register only when that
     register's checkpoint survives (is not itself pruned). Start by
     assuming every candidate is pruned and demote until stable. *)
  let pruned = Hashtbl.copy candidates in
  let rec expr_of_reg ~depth r =
    if depth > max_depth then None
    else if Reg.is_zero r then Some (Recovery_expr.Const 0)
    else if
      (* Reading a slot is only exact when the register holds one value for
         the whole run (single definition): a loop-varying operand's slot
         could be out of sync with the value the pruned definition read. *)
      ckpt_count r >= 1 && (not (Hashtbl.mem pruned r)) && stable_value r
    then Some (Recovery_expr.Slot r)
    else
      (* No surviving checkpoint: reconstruct from the single definition. *)
      match single_def r with
      | Some d when Instr.is_pure d -> expr_of_instr ~depth d
      | Some _ | None -> None
  and expr_of_operand ~depth = function
    | Instr.Imm c -> Some (Recovery_expr.Const c)
    | Instr.Reg r -> expr_of_reg ~depth:(depth + 1) r
  and expr_of_instr ~depth = function
    | Instr.Mov (_, o) -> expr_of_operand ~depth o
    | Instr.Binop (op, _, a, o) -> (
      match (expr_of_reg ~depth:(depth + 1) a, expr_of_operand ~depth o) with
      | Some ea, Some eo -> Some (Recovery_expr.Op (op, ea, eo))
      | _ -> None)
    | Instr.Cmp (c, _, a, o) -> (
      match (expr_of_reg ~depth:(depth + 1) a, expr_of_operand ~depth o) with
      | Some ea, Some eo -> Some (Recovery_expr.Cmp (c, ea, eo))
      | _ -> None)
    | Instr.Load _ | Instr.Store _ | Instr.Ckpt _ | Instr.Boundary _ | Instr.Nop ->
      None
  in
  let exprs = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.reset exprs;
    Hashtbl.iter
      (fun r d ->
        match expr_of_instr ~depth:0 d with
        | Some e -> Hashtbl.replace exprs r e
        | None ->
          Hashtbl.remove pruned r;
          changed := true)
      (Hashtbl.copy pruned)
  done;
  (* Diamond pattern (paper Fig 9): two checkpoints of [r], one per arm of
     a two-sided branch with a reconstructible predicate. Diamond-pruned
     registers are multi-definition, so no straight-line expression can
     reference them — a single pass after the fixpoint is enough. *)
  let cfg = Cfg.build func in
  let diamond = Hashtbl.create 8 in
  Hashtbl.iter
    (fun r sites ->
      match (List.sort_uniq compare sites, Hashtbl.find_opt defs r) with
      | [ la; lb ], Some def_sites when List.length def_sites = 2 -> (
        let def_in l =
          List.find_opt (fun (l', _) -> String.equal l l') def_sites
        in
        match (def_in la, def_in lb) with
        | Some (_, da), Some (_, db) when Instr.is_pure da && Instr.is_pure db -> (
          match (Cfg.predecessors cfg la, Cfg.predecessors cfg lb) with
          | [ p ], [ p' ] when String.equal p p' -> (
            match (Func.block func p).Block.term with
            | Block.Branch (c, taken, fall)
              when (String.equal taken la && String.equal fall lb)
                   || (String.equal taken lb && String.equal fall la) -> (
              let taken_def = if String.equal taken la then da else db in
              let fall_def = if String.equal taken la then db else da in
              match
                ( expr_of_reg ~depth:1 c,
                  expr_of_instr ~depth:1 taken_def,
                  expr_of_instr ~depth:1 fall_def )
              with
              | Some ec, Some et, Some ef ->
                Hashtbl.replace diamond r (Recovery_expr.Select (ec, et, ef))
              | _ -> ())
            | Block.Branch _ | Block.Jump _ | Block.Ret -> ())
          | _ -> ())
        | _ -> ())
      | _ -> ())
    ckpts;
  Hashtbl.iter
    (fun r e ->
      Hashtbl.replace pruned r Instr.Nop;
      Hashtbl.replace exprs r e)
    diamond;
  (* Drop the pruned checkpoint instructions. *)
  let removed = ref 0 in
  Func.iter_blocks
    (fun b ->
      Block.set_body b
        (List.filter
           (fun i ->
             match i with
             | Instr.Ckpt r when Hashtbl.mem pruned r ->
               incr removed;
               false
             | _ -> true)
           (Block.body_list b)))
    func;
  { func; exprs; pruned = !removed }
