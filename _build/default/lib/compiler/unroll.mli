(** Loop unrolling for single-block counted loops.

    Not part of Turnpike proper, but the enabling -O3 transformation
    behind the paper's workload characteristics: large (often already
    unrolled) SPEC loop bodies mean each loop-carried register is
    checkpointed once per long iteration, so the 4-color pool covers the
    WCDL window. The ablation bench built on this pass quantifies that
    region-size effect on this repo's smaller kernels.

    Only loops matching the builder's counted-loop skeleton are unrolled,
    and only when the trip count is divisible by the factor (semantics are
    preserved exactly). Runs before register allocation. *)

open Turnpike_ir

type result = {
  func : Func.t;
  unrolled : int;  (** loops transformed *)
}

val run : ?factor:int -> Func.t -> result
(** @raise Invalid_argument when [factor < 1]. Factor 1 is the identity. *)
