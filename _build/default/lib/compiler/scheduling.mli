(** Checkpoint-aware instruction scheduling (paper §4.2).

    Eager checkpointing makes each checkpoint store read-after-write
    dependent on the register-update instruction right before it; an
    in-order pipeline stalls the store until the value is ready (a full
    load-use penalty when the producer is a load). The scheduler sinks
    checkpoint stores past independent instructions until they sit at
    least [separation] slots from their producer, hiding the latency. *)

open Turnpike_ir

type result = {
  func : Func.t;
  moved : int;  (** checkpoints separated from their producer *)
}

val default_separation : int

val run : ?separation:int -> Func.t -> result
(** @raise Invalid_argument on negative separation. *)
