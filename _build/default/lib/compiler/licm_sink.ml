(* Checkpoint sinking with loop-invariant code motion (paper §4.1.4).

   Eager checkpointing can be relaxed: a checkpoint only has to execute
   before its region's boundary, so it can sink from its original position
   (right after the register-update) to any later point of the region.
   When the region tree spans a loop-exit edge, a checkpoint in a loop
   block can sink into the (once-executed) exit block — taking it off the
   iteration path — provided the register is not live on any other exit of
   the region (in particular not loop-carried across the back edge).
   Duplicated checkpoints of the same register that end up together are
   deduplicated. *)

open Turnpike_ir

type result = { func : Func.t; moved : int; eliminated : int }

let run func =
  let cfg = Cfg.build func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  let live = Liveness.compute cfg func in
  let regions = Regions.of_func func in
  let moved = ref 0 in
  let depth l = Loop_info.depth loops l in
  (* For each region: map checkpoint (block, reg) to a sink target block. *)
  let region_of l = Regions.region_of regions l in
  let sink_target ~reg ~from_block =
    let rid = region_of from_block in
    let head =
      match rid with
      | Some id -> (
        match Regions.region regions id with
        | Some r -> r.Regions.head
        | None -> "")
      | None -> ""
    in
    (* Region-exit edges where the register is live; an edge to the
       region's own head (a back edge) crosses the boundary too. *)
    let exits_region s = region_of s <> rid || String.equal s head in
    let live_exits = ref [] in
    Func.iter_blocks
      (fun b ->
        if region_of b.Block.label = rid then
          List.iter
            (fun s ->
              if exits_region s && Reg.Set.mem reg (Liveness.live_in live s)
              then live_exits := (b.Block.label, s) :: !live_exits)
            (Block.successors b))
      func;
    match !live_exits with
    | [ (u, _) ] when depth u < depth from_block && not (String.equal u from_block) ->
      (* Unique live exit from a shallower block: candidate target. The
         path within the region tree from [from_block] to [u] must not
         redefine the register. *)
      let rec path_ok l =
        if String.equal l u then true
        else
          let b = Func.block func l in
          let redefs =
            Array.exists (fun i -> List.mem reg (Instr.defs i)) b.Block.body
          in
          if redefs && not (String.equal l from_block) then false
          else
            (* Follow the in-region successors toward u (never back through
               the region head). *)
            let nexts =
              List.filter
                (fun s -> region_of s = rid && not (String.equal s head))
                (Block.successors b)
            in
            List.exists path_ok nexts
      in
      if path_ok from_block then Some u else None
    | _ -> None
  in
  (* Collect sink decisions, then rewrite. *)
  let decisions = ref [] in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          match i with
          | Instr.Ckpt r when depth b.Block.label > 0 -> (
            match sink_target ~reg:r ~from_block:b.Block.label with
            | Some target -> decisions := (b.Block.label, r, target) :: !decisions
            | None -> ())
          | _ -> ())
        b.Block.body)
    func;
  let remove_last_ckpt body r =
    (* Remove the last [ckpt r] of the block (the one holding the final
       value); earlier duplicates are left for the dedupe pass. *)
    let rev = List.rev body in
    let rec go = function
      | [] -> []
      | i :: rest when Instr.equal i (Instr.Ckpt r) -> rest
      | i :: rest -> i :: go rest
    in
    List.rev (go rev)
  in
  List.iter
    (fun (src, r, target) ->
      let sb = Func.block func src in
      let before = Block.num_instrs sb in
      Block.set_body sb (remove_last_ckpt (Block.body_list sb) r);
      if Block.num_instrs sb < before then begin
        let tb = Func.block func target in
        (* Place at the top of the target block (after a boundary marker if
           one ever appears there — it cannot, since the target is in the
           same region — but keep the guard cheap). *)
        Block.set_body tb (Instr.Ckpt r :: Block.body_list tb);
        incr moved
      end)
    !decisions;
  (* Deduplicate: within a block, a checkpoint of r with no intervening
     definition of r before a later checkpoint of r is redundant. *)
  let eliminated = ref 0 in
  Func.iter_blocks
    (fun b ->
      let body = Block.body_list b in
      let rec dedupe = function
        | [] -> []
        | Instr.Ckpt r :: rest ->
          let rec survives = function
            | [] -> true
            | i :: tl ->
              if Instr.equal i (Instr.Ckpt r) then false
              else if List.mem r (Instr.defs i) then true
              else survives tl
          in
          if survives rest then Instr.Ckpt r :: dedupe rest
          else begin
            incr eliminated;
            dedupe rest
          end
        | i :: rest -> i :: dedupe rest
      in
      Block.set_body b (dedupe body))
    func;
  { func; moved = !moved; eliminated = !eliminated }
