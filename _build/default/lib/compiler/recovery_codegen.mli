(** Recovery-block code generation (paper Fig 1b / Fig 9).

    Emits, per region, the IR of the recovery block the core runs on error
    detection: checkpoint-slot loads for the region's live-in registers and
    recomputation sequences for pruned checkpoints (branch replay lowered
    to mask arithmetic for diamond-pruned registers). The resilience engine
    restores registers through its own color-aware path; this module makes
    the equivalent code explicit so it can be inspected, sized and tested
    against the engine. Emitted loads use color-0 addressing — hardware
    substitutes the verified color at the address stage. *)

open Turnpike_ir

type block = {
  region : int;
  recovery_pc : string;  (** the region head the block jumps back to *)
  body : Instr.t list;  (** restore/recompute code in execution order *)
}

val generate : compiled:Pass_pipeline.t -> nregs:int -> block list
(** One block per region, in region-id order. Two spill-scratch registers
    (dead at region entry) plus a dedicated scratch area in the spill
    segment hold intermediates. *)

val size : block list -> int
(** Total recovery-code instructions (recovery code-size accounting). *)

val to_string : block -> string
