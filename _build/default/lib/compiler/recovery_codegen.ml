(* Recovery-block code generation (paper Fig 1b / Fig 9).

   For each region, emit the IR of the recovery block the core jumps to on
   error detection: loads restoring the region's live-in registers from
   their checkpoint slots, recomputation sequences for pruned checkpoints
   (including branch replay, as mask arithmetic, for diamond-pruned
   registers), ending at the recovery PC (the region head).

   The resilience engine restores registers through its own color-aware
   read path; this module makes the equivalent *code* explicit so it can
   be inspected, sized and tested: executing an emitted block over a
   machine state must produce exactly the register values the engine's
   restore path computes. Emitted loads use color-0 slot addressing — the
   hardware substitutes the verified color at the address stage, so the
   static code is color-oblivious, just as a [Ckpt r] store is.

   Expressions lower as a stack machine: two spill-scratch registers (dead
   at any region entry, so recovery may clobber them) plus a dedicated
   scratch area in the spill segment for intermediate values. *)

open Turnpike_ir

type block = {
  region : int;
  recovery_pc : string; (* the region head the block jumps back to *)
  body : Instr.t list; (* restore/recompute code, in execution order *)
}

(* Recovery scratch slots live far above ordinary spill slots. *)
let scratch_slot depth = Layout.spill_slot (100_000 + depth)

(* Lower [expr] so its value ends in [s1]; [s2] is a helper; intermediate
   values spill to [scratch_slot] at increasing depths. Emits in reverse
   onto [acc]. *)
let rec lower ~s1 ~s2 ~depth expr acc =
  match expr with
  | Recovery_expr.Const c -> Instr.Mov (s1, Instr.Imm c) :: acc
  | Recovery_expr.Slot r ->
    Instr.Load (s1, Reg.zero, Layout.ckpt_slot ~reg:r ~color:0, Instr.Ckpt_mem) :: acc
  | Recovery_expr.Op (op, a, b) ->
    let acc = lower ~s1 ~s2 ~depth b acc in
    let acc = Instr.Store (s1, Reg.zero, scratch_slot depth, Instr.Spill_mem) :: acc in
    let acc = lower ~s1 ~s2 ~depth:(depth + 1) a acc in
    let acc = Instr.Load (s2, Reg.zero, scratch_slot depth, Instr.Spill_mem) :: acc in
    Instr.Binop (op, s1, s1, Instr.Reg s2) :: acc
  | Recovery_expr.Cmp (c, a, b) ->
    let acc = lower ~s1 ~s2 ~depth b acc in
    let acc = Instr.Store (s1, Reg.zero, scratch_slot depth, Instr.Spill_mem) :: acc in
    let acc = lower ~s1 ~s2 ~depth:(depth + 1) a acc in
    let acc = Instr.Load (s2, Reg.zero, scratch_slot depth, Instr.Spill_mem) :: acc in
    Instr.Cmp (c, s1, s1, Instr.Reg s2) :: acc
  | Recovery_expr.Select (c, a, b) ->
    (* Branch replay as mask arithmetic: m = (c <> 0);
       result = a*m + b*(1-m). *)
    let m_slot = scratch_slot depth and am_slot = scratch_slot (depth + 1) in
    let acc = lower ~s1 ~s2 ~depth:(depth + 2) c acc in
    let acc = Instr.Cmp (Instr.Ne, s1, s1, Instr.Imm 0) :: acc in
    let acc = Instr.Store (s1, Reg.zero, m_slot, Instr.Spill_mem) :: acc in
    let acc = lower ~s1 ~s2 ~depth:(depth + 2) a acc in
    let acc = Instr.Load (s2, Reg.zero, m_slot, Instr.Spill_mem) :: acc in
    let acc = Instr.Binop (Instr.Mul, s1, s1, Instr.Reg s2) :: acc in
    let acc = Instr.Store (s1, Reg.zero, am_slot, Instr.Spill_mem) :: acc in
    let acc = lower ~s1 ~s2 ~depth:(depth + 2) b acc in
    let acc = Instr.Load (s2, Reg.zero, m_slot, Instr.Spill_mem) :: acc in
    let acc = Instr.Binop (Instr.Xor, s2, s2, Instr.Imm 1) :: acc in
    let acc = Instr.Binop (Instr.Mul, s1, s1, Instr.Reg s2) :: acc in
    let acc = Instr.Load (s2, Reg.zero, am_slot, Instr.Spill_mem) :: acc in
    Instr.Binop (Instr.Add, s1, s1, Instr.Reg s2) :: acc

let generate ~(compiled : Pass_pipeline.t) ~nregs =
  let s1 = nregs - 3 and s2 = nregs - 2 in
  Array.to_list compiled.Pass_pipeline.regions
  |> List.map (fun (info : Pass_pipeline.region_info) ->
         let body =
           List.concat_map
             (fun reg ->
               match Hashtbl.find_opt compiled.Pass_pipeline.recovery_exprs reg with
               | None ->
                 [ Instr.Load
                     (reg, Reg.zero, Layout.ckpt_slot ~reg ~color:0, Instr.Ckpt_mem) ]
               | Some expr ->
                 List.rev (lower ~s1 ~s2 ~depth:0 expr [])
                 @ [ Instr.Mov (reg, Instr.Reg s1) ])
             info.Pass_pipeline.live_in
         in
         { region = info.Pass_pipeline.id; recovery_pc = info.Pass_pipeline.head; body })

let size blocks = List.fold_left (fun acc b -> acc + List.length b.body) 0 blocks

let to_string b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "recovery block for region %d (-> %s):\n" b.region b.recovery_pc);
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ Instr.to_string i ^ "\n"))
    b.body;
  Buffer.contents buf
