(* Loop unrolling for single-block counted loops.

   Not part of Turnpike proper, but the enabling -O3 transformation behind
   the paper's workload characteristics: SPEC loop bodies are large (often
   already unrolled), so each loop-carried register is checkpointed once
   per *long* iteration and the 4-color pool easily covers the WCDL
   window. The unrolling ablation bench quantifies exactly that effect on
   this repo's smaller kernels.

   Recognized shape (what the workload templates and the builder's
   counted-loop skeleton emit):

     head:  <body>; i = i + 1; c = cmp lt i, N; br c head exit

   with [i] incremented exactly once and [c] defined only by that compare.
   The loop is unrolled by [factor] when N is divisible by it: the body
   (including the increment) is replicated, intermediate compares are
   dropped, and only the final compare/branch survives. Runs before
   register allocation, on virtual registers. *)

open Turnpike_ir

type result = { func : Func.t; unrolled : int }

let match_counted_loop (b : Block.t) =
  match b.Block.term with
  | Block.Branch (c, back, _exit) when String.equal back b.Block.label -> (
    let body = Block.body_list b in
    match List.rev body with
    | Instr.Cmp (Instr.Lt, c', i, Instr.Imm n) :: Instr.Binop (Instr.Add, i', i'', Instr.Imm 1) :: rest_rev
      when Reg.equal c c' && Reg.equal i i' && Reg.equal i' i'' ->
      (* [i] must not be redefined elsewhere in the body, and [c] must not
         be used inside it (it exists only for the branch). *)
      let rest = List.rev rest_rev in
      let i_redefined =
        List.exists (fun ins -> List.mem i (Instr.defs ins)) rest
      in
      let c_used =
        List.exists
          (fun ins -> List.mem c (Instr.uses ins) || List.mem c (Instr.defs ins))
          rest
      in
      if i_redefined || c_used then None else Some (rest, i, c, n)
    | _ -> None)
  | Block.Branch _ | Block.Jump _ | Block.Ret -> None

let run ?(factor = 4) func =
  if factor < 1 then invalid_arg "Unroll.run: factor must be >= 1";
  let unrolled = ref 0 in
  if factor > 1 then
    Func.iter_blocks
      (fun b ->
        match match_counted_loop b with
        | Some (body, i, c, n) when n mod factor = 0 && n >= factor ->
          let copy = body @ [ Instr.Binop (Instr.Add, i, i, Instr.Imm 1) ] in
          let replicated =
            List.concat (List.init factor (fun _ -> copy))
            @ [ Instr.Cmp (Instr.Lt, c, i, Instr.Imm n) ]
          in
          Block.set_body b replicated;
          incr unrolled
        | Some _ | None -> ())
      func;
  { func; unrolled = !unrolled }
