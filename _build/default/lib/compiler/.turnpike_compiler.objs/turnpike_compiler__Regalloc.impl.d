lib/compiler/regalloc.pp.ml: Array Block Cfg Dominance Func Hashtbl Instr Layout List Liveness Loop_info Reg Turnpike_ir
