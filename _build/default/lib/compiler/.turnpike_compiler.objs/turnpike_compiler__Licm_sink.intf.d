lib/compiler/licm_sink.pp.mli: Func Turnpike_ir
