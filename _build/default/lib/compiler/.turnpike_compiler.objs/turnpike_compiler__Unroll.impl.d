lib/compiler/unroll.pp.ml: Block Func Instr List Reg String Turnpike_ir
