lib/compiler/pruning.pp.ml: Array Block Cfg Func Hashtbl Instr List Option Recovery_expr Reg String Turnpike_ir
