lib/compiler/recovery_codegen.pp.mli: Instr Pass_pipeline Turnpike_ir
