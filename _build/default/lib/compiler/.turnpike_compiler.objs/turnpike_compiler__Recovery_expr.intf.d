lib/compiler/recovery_expr.pp.mli: Instr Ppx_deriving_runtime Reg Turnpike_ir
