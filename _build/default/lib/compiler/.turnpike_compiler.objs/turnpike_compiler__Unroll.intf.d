lib/compiler/unroll.pp.mli: Func Turnpike_ir
