lib/compiler/recovery_codegen.pp.ml: Array Buffer Hashtbl Instr Layout List Pass_pipeline Printf Recovery_expr Reg Turnpike_ir
