lib/compiler/static_stats.pp.ml: Format
