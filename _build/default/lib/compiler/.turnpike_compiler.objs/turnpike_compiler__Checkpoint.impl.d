lib/compiler/checkpoint.pp.ml: Array Block Cfg Func Hashtbl Instr List Liveness Option Reg Regions String Turnpike_ir
