lib/compiler/pass_pipeline.pp.ml: Array Cfg Checkpoint Func Hashtbl Instr Licm_sink List Liveness Livm Prog Pruning Recovery_expr Reg Regalloc Regions Scheduling Static_stats Turnpike_ir Unroll
