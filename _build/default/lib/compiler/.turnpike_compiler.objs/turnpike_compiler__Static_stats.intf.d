lib/compiler/static_stats.pp.mli: Format
