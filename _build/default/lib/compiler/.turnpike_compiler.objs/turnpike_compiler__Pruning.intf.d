lib/compiler/pruning.pp.mli: Func Hashtbl Recovery_expr Reg Turnpike_ir
