lib/compiler/regions.pp.ml: Array Block Cfg Dominance Func Hashtbl Instr List Liveness Loop_info Option Printf Reg Set String Turnpike_ir
