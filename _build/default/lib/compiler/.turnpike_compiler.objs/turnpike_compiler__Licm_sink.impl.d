lib/compiler/licm_sink.pp.ml: Array Block Cfg Dominance Func Instr List Liveness Loop_info Reg Regions String Turnpike_ir
