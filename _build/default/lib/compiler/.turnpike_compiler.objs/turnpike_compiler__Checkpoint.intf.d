lib/compiler/checkpoint.pp.mli: Func Reg Turnpike_ir
