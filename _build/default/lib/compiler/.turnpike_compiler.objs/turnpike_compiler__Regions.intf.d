lib/compiler/regions.pp.mli: Func Turnpike_ir
