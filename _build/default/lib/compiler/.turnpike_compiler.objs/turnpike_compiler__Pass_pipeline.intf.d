lib/compiler/pass_pipeline.pp.mli: Hashtbl Prog Recovery_expr Reg Static_stats Turnpike_ir
