lib/compiler/recovery_expr.pp.ml: Instr Ppx_deriving_runtime Printf Reg Turnpike_ir
