lib/compiler/regalloc.pp.mli: Func Hashtbl Reg Turnpike_ir
