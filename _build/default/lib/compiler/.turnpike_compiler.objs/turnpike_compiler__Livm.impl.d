lib/compiler/livm.pp.ml: Array Block Cfg Dominance Func Hashtbl Instr List Liveness Loop_info Option Reg String Turnpike_ir
