lib/compiler/livm.pp.mli: Func Turnpike_ir
