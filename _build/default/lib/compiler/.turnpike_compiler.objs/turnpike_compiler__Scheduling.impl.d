lib/compiler/scheduling.pp.ml: Array Block Func Instr List Turnpike_ir
