lib/compiler/scheduling.pp.mli: Func Turnpike_ir
