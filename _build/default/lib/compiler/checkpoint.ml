(* Eager checkpointing (paper §2.2). A checkpoint store is inserted right
   after the last definition of every register that leaves its region live
   (it will be the input of some later region). Walking each region tree
   backward with a "needed at a region exit" set implements exactly that:
   hitting a definition of a needed register inserts the checkpoint and
   satisfies the need.

   The entry region additionally checkpoints the program's input registers
   (they were "defined" by initialization, not by an instruction). *)

open Turnpike_ir

let strip func =
  Func.iter_blocks
    (fun b ->
      Block.set_body b
        (List.filter (fun i -> not (Instr.is_ckpt i)) (Block.body_list b)))
    func;
  func

(* Reverse-topological order of a region's tree (leaves first). *)
let region_blocks_bottom_up func regions (r : Regions.region) =
  let in_region l = Regions.region_of regions l = Some r.Regions.id in
  let order = ref [] in
  let visited = Hashtbl.create 8 in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter
        (fun s -> if in_region s then dfs s)
        (Block.successors (Func.block func l));
      order := l :: !order
    end
  in
  dfs r.Regions.head;
  (* !order is now top-down (head first); bottom-up is its reverse. *)
  List.rev !order

let insert ?(entry_live = []) func =
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  let regions = Regions.of_func func in
  let inserted = ref 0 in
  (* need_in.(region head traversal): registers that must still be
     checkpointed above the current point. *)
  let need_in = Hashtbl.create 64 in
  List.iter
    (fun (r : Regions.region) ->
      (* An edge back to the region's own head crosses the boundary into a
         new dynamic instance, so it is an exit edge (liveness applies). *)
      let in_region l =
        Regions.region_of regions l = Some r.Regions.id
        && not (String.equal l r.Regions.head)
      in
      List.iter
        (fun l ->
          let b = Func.block func l in
          let need_out =
            List.fold_left
              (fun acc s ->
                if in_region s then
                  Reg.Set.union acc
                    (Option.value (Hashtbl.find_opt need_in s) ~default:Reg.Set.empty)
                else Reg.Set.union acc (Liveness.live_in live s))
              Reg.Set.empty (Block.successors b)
          in
          let body = Array.to_list b.Block.body in
          let rev = List.rev body in
          let need = ref need_out and out = ref [] in
          List.iter
            (fun i ->
              (* Walking backward: first emit the instruction, then decide
                 whether its definition needs a checkpoint placed after it. *)
              let defs = Instr.defs i in
              let needed_defs = List.filter (fun d -> Reg.Set.mem d !need) defs in
              List.iter
                (fun d ->
                  out := Instr.Ckpt d :: !out;
                  incr inserted)
                needed_defs;
              List.iter (fun d -> need := Reg.Set.remove d !need) defs;
              out := i :: !out)
            rev;
          Hashtbl.replace need_in l !need;
          Block.set_body b !out)
        (region_blocks_bottom_up func regions r))
    (Regions.regions regions);
  (* Program inputs live into later regions are checkpointed right after
     the entry boundary. *)
  let entry = Func.entry_block func in
  let entry_need =
    Option.value (Hashtbl.find_opt need_in entry.Block.label) ~default:Reg.Set.empty
  in
  let prologue =
    List.filter (fun r -> Reg.Set.mem r entry_need && not (Reg.is_zero r)) entry_live
  in
  if prologue <> [] then begin
    let body = Block.body_list entry in
    let body =
      match body with
      | (Instr.Boundary _ as bd) :: rest ->
        bd :: (List.map (fun r -> Instr.Ckpt r) prologue @ rest)
      | rest -> List.map (fun r -> Instr.Ckpt r) prologue @ rest
    in
    Block.set_body entry body;
    inserted := !inserted + List.length prologue
  end;
  (func, !inserted)

let count func =
  Func.fold_instrs (fun acc i -> if Instr.is_ckpt i then acc + 1 else acc) 0 func
