(** Store-buffer-aware region partitioning (paper §2.1, §4.3.1).

    Boundaries are pseudo-instructions at the start of region head blocks.
    Heads are the entry block, loop headers, join blocks, plus blocks
    promoted so that no region's path exceeds the store budget (SB/2, so
    one region's verification overlaps the next region's execution).
    Every non-head block has exactly one predecessor, making each region a
    single-entry tree of whole blocks. *)

open Turnpike_ir

type region = {
  id : int;
  head : string;  (** block whose first instruction is the boundary *)
  blocks : string list;  (** members in discovery order, head first *)
}

type t

val partition : ?budget:int -> Func.t -> Func.t
(** Strip any existing boundaries and re-partition the function in place
    (oversized blocks are physically split; the same function is
    returned). [budget] is the max SB writes per region path, normally
    [sb_size / 2]. @raise Invalid_argument when [budget < 1]. *)

val strip : Func.t -> Func.t
(** Remove all boundary markers (in place). *)

val of_func : Func.t -> t
(** Recover the region structure from boundary markers.
    @raise Invalid_argument if a non-head block has several predecessors
    (partitioning invariant violation). *)

val region_of : t -> string -> int option
(** Region id of a block. *)

val region : t -> int -> region option
val num_regions : t -> int
val regions : t -> region list

val max_region_sb_writes : Func.t -> t -> int
(** Largest per-region SB-write total (block-sum upper bound). *)

val worst_path_sb_writes : Func.t -> t -> int -> int
(** Worst-path SB writes within one region's tree. *)

val worst_region_path : Func.t -> t -> int
(** Maximum of {!worst_path_sb_writes} over all regions — must stay at or
    below the machine's SB size for deadlock freedom. *)
