(* Linear-scan register allocation with whole-interval spilling.

   The spill-cost model is the vehicle for the paper's store-aware register
   allocation (§4.1.1): a traditional allocator weighs reads and writes
   equally, so frequently-written variables may be spilled, turning every
   write into a spill store that pressures the store buffer. Store-aware
   allocation multiplies the write weight so those variables stay in
   registers. The number of allocatable registers is identical in both
   modes, preserving allocation quality. *)

open Turnpike_ir

type config = {
  nregs : int; (* architectural registers, id 0 = hard-wired zero *)
  store_aware : bool;
  write_weight : int; (* write multiplier in store-aware mode *)
}

let default_config = { nregs = 32; store_aware = false; write_weight = 4 }

type result = {
  func : Func.t;
  spilled_vregs : int;
  spill_stores : int;
  spill_loads : int;
  assignment : (Reg.t, Reg.t) Hashtbl.t;
  spill_slots : (Reg.t, int) Hashtbl.t;
}

type location = Phys of Reg.t | Spill of int

let location_of result r =
  if not (Reg.is_virtual r) then Some (Phys r)
  else
    match Hashtbl.find_opt result.assignment r with
    | Some p -> Some (Phys p)
    | None -> (
      match Hashtbl.find_opt result.spill_slots r with
      | Some s -> Some (Spill s)
      | None -> None)

(* Rewrite a program's input-register list through the allocation:
   register-allocated inputs keep their value in the assigned physical
   register; spilled inputs start life in their spill slot. *)
let remap_inputs result reg_init =
  List.fold_left
    (fun (regs, mem) (r, v) ->
      match location_of result r with
      | Some (Phys p) -> ((p, v) :: regs, mem)
      | Some (Spill s) -> (regs, (Turnpike_ir.Layout.spill_slot s, v) :: mem)
      | None -> (regs, mem))
    ([], []) (List.rev reg_init)

type interval = {
  vreg : Reg.t;
  mutable first : int;
  mutable last : int;
  mutable weight : float;
}

let scratch_regs config =
  [ config.nregs - 1; config.nregs - 2; config.nregs - 3 ]

let pool config ~used_phys =
  let scratch = scratch_regs config in
  let rec build i acc =
    if i >= config.nregs then List.rev acc
    else if List.mem i scratch || Reg.Set.mem i used_phys then build (i + 1) acc
    else build (i + 1) (i :: acc)
  in
  build 1 [] (* r0 is the zero register *)

let run ?(config = default_config) func =
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  (* Global instruction numbering in layout order. *)
  let block_range = Hashtbl.create 32 in
  let counter = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      let s = !counter in
      counter := !counter + Array.length b.Block.body + 1 (* terminator *);
      Hashtbl.replace block_range b.Block.label (s, !counter - 1))
    (Func.blocks func);
  (* Live intervals and spill weights. *)
  let intervals : (Reg.t, interval) Hashtbl.t = Hashtbl.create 64 in
  let used_phys = ref Reg.Set.empty in
  let touch r p ~is_def ~depth =
    if Reg.is_virtual r then begin
      let iv =
        match Hashtbl.find_opt intervals r with
        | Some iv -> iv
        | None ->
          let iv = { vreg = r; first = p; last = p; weight = 0.0 } in
          Hashtbl.replace intervals r iv;
          iv
      in
      if p < iv.first then iv.first <- p;
      if p > iv.last then iv.last <- p;
      let freq = 10.0 ** float_of_int (min depth 3) in
      let w =
        if is_def && config.store_aware then float_of_int config.write_weight
        else 1.0
      in
      iv.weight <- iv.weight +. (w *. freq)
    end
    else if not (Reg.is_zero r) then used_phys := Reg.Set.add r !used_phys
  in
  let extend r p =
    if Reg.is_virtual r then
      match Hashtbl.find_opt intervals r with
      | Some iv ->
        if p < iv.first then iv.first <- p;
        if p > iv.last then iv.last <- p
      | None ->
        Hashtbl.replace intervals r { vreg = r; first = p; last = p; weight = 0.0 }
  in
  List.iter
    (fun (b : Block.t) ->
      let s, e = Hashtbl.find block_range b.Block.label in
      let depth = Loop_info.depth loops b.Block.label in
      Reg.Set.iter (fun r -> extend r s) (Liveness.live_in live b.Block.label);
      Reg.Set.iter (fun r -> extend r e) (Liveness.live_out live b.Block.label);
      Array.iteri
        (fun i ins ->
          let p = s + i in
          List.iter (fun r -> touch r p ~is_def:false ~depth) (Instr.uses ins);
          List.iter (fun r -> touch r p ~is_def:true ~depth) (Instr.defs ins))
        b.Block.body;
      List.iter (fun r -> touch r e ~is_def:false ~depth) (Block.term_uses b))
    (Func.blocks func);
  (* Linear scan with min-weight eviction. *)
  let sorted =
    List.sort
      (fun a b -> compare (a.first, a.last) (b.first, b.last))
      (Hashtbl.fold (fun _ iv acc -> iv :: acc) intervals [])
  in
  let free = ref (pool config ~used_phys:!used_phys) in
  let assignment : (Reg.t, Reg.t) Hashtbl.t = Hashtbl.create 64 in
  let spilled : (Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
  let next_slot = ref 0 in
  let spill_slot_of r =
    match Hashtbl.find_opt spilled r with
    | Some s -> s
    | None ->
      let s = !next_slot in
      incr next_slot;
      Hashtbl.replace spilled r s;
      s
  in
  let active : interval list ref = ref [] in
  let expire p =
    let expired, kept = List.partition (fun iv -> iv.last < p) !active in
    List.iter
      (fun iv ->
        match Hashtbl.find_opt assignment iv.vreg with
        (* Round-robin recycling (append, don't push): distinct values keep
           distinct physical registers whenever pressure allows, preserving
           the single-definition property that checkpoint pruning's
           reconstruction analysis depends on. *)
        | Some phys -> free := !free @ [ phys ]
        | None -> ())
      expired;
    active := kept
  in
  List.iter
    (fun iv ->
      expire iv.first;
      match !free with
      | phys :: rest ->
        free := rest;
        Hashtbl.replace assignment iv.vreg phys;
        active := iv :: !active
      | [] ->
        (* Evict the cheapest of active + current. *)
        let victim =
          List.fold_left
            (fun best c -> if c.weight < best.weight then c else best)
            iv !active
        in
        if victim == iv then ignore (spill_slot_of iv.vreg)
        else begin
          let phys = Hashtbl.find assignment victim.vreg in
          Hashtbl.remove assignment victim.vreg;
          ignore (spill_slot_of victim.vreg);
          Hashtbl.replace assignment iv.vreg phys;
          active := iv :: List.filter (fun c -> not (c == victim)) !active
        end)
    sorted;
  (* Rewrite: spilled uses load into scratch, spilled defs store from
     scratch; everything else maps to its physical register. *)
  let s1, s2, s3 =
    match scratch_regs config with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let spill_stores = ref 0 and spill_loads = ref 0 in
  let map_reg scratch_assoc r =
    if not (Reg.is_virtual r) then r
    else
      match List.assq_opt r scratch_assoc with
      | Some s -> s
      | None -> (
        match Hashtbl.find_opt assignment r with
        | Some p -> p
        | None -> s3 (* dead value with no interval pressure: scratch *))
  in
  Func.iter_blocks
    (fun b ->
      let out = ref [] in
      Array.iter
        (fun ins ->
          let uses = List.filter (fun r -> Hashtbl.mem spilled r) (Instr.uses ins) in
          let uses = List.sort_uniq compare uses in
          let scratch_assoc =
            List.mapi (fun i r -> (r, if i = 0 then s1 else s2)) uses
          in
          List.iter
            (fun (r, s) ->
              incr spill_loads;
              out :=
                Instr.Load (s, Reg.zero, Layout.spill_slot (spill_slot_of r), Instr.Spill_mem)
                :: !out)
            scratch_assoc;
          let defs = List.filter (fun r -> Hashtbl.mem spilled r) (Instr.defs ins) in
          let def_assoc = List.map (fun r -> (r, s3)) defs in
          let ins' = Instr.rename (map_reg (scratch_assoc @ def_assoc)) ins in
          out := ins' :: !out;
          List.iter
            (fun (r, s) ->
              incr spill_stores;
              out :=
                Instr.Store (s, Reg.zero, Layout.spill_slot (spill_slot_of r), Instr.Spill_mem)
                :: !out)
            def_assoc)
        b.Block.body;
      Block.set_body b (List.rev !out);
      (* Terminator condition register. *)
      (match b.Block.term with
      | Block.Branch (r, l1, l2) when Hashtbl.mem spilled r ->
        incr spill_loads;
        Block.set_body b
          (Block.body_list b
          @ [ Instr.Load (s1, Reg.zero, Layout.spill_slot (spill_slot_of r), Instr.Spill_mem) ]);
        b.Block.term <- Block.Branch (s1, l1, l2)
      | Block.Branch _ | Block.Jump _ | Block.Ret -> ());
      Block.rename_term (map_reg []) b)
    func;
  {
    func;
    spilled_vregs = Hashtbl.length spilled;
    spill_stores = !spill_stores;
    spill_loads = !spill_loads;
    assignment;
    spill_slots = spilled;
  }
