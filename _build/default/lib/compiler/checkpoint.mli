(** Eager checkpointing (paper §2.2).

    Inserts a checkpoint store right after the last definition of every
    register that leaves its region live — turning register verification
    into memory verification. The entry region additionally checkpoints the
    program's input registers. *)

open Turnpike_ir

val insert : ?entry_live:Reg.t list -> Func.t -> Func.t * int
(** Insert checkpoints (in place; the function is also returned) and report
    how many were inserted. Requires boundary markers
    ({!Regions.partition} must have run). *)

val strip : Func.t -> Func.t
(** Remove all checkpoint instructions (in place). *)

val count : Func.t -> int
(** Static checkpoint-store count. *)
