(* Store-buffer-aware region partitioning (paper §2.1, §4.3.1).

   Region boundaries are pseudo-instructions placed at the start of region
   head blocks. Heads are: the entry block, loop headers (footnote 2 of the
   paper), join blocks, and blocks promoted so that no region exceeds the
   store budget (SB size / 2, so that one region's verification overlaps
   the next region's execution). Every non-head block has exactly one
   predecessor; a region is thus a single-entry tree of whole blocks. *)

open Turnpike_ir

type region = { id : int; head : string; blocks : string list }

type t = {
  regions : region array;
  of_block : (string, int) Hashtbl.t;
}

module SS = Set.Make (String)

let strip func =
  Func.iter_blocks
    (fun b ->
      Block.set_body b
        (List.filter (fun i -> not (Instr.is_boundary i)) (Block.body_list b)))
    func;
  func

(* Split any block holding more than [budget] SB writes into pieces of at
   most [budget] writes each. Fresh blocks are single-pred continuations;
   they are promoted to heads by the caller's budget walk.

   Cut placement matters: a boundary landing in the middle of an
   expression makes its temporaries live across the new region border, so
   eager checkpointing would save them — adding writes that force yet more
   splits (a cascade ending in 2-instruction regions). Each cut is
   therefore placed at the legal position with the FEWEST live registers
   (liveness-aware region formation), never separating an eager
   checkpoint from the definition right above it. *)
let split_oversized_blocks func ~budget =
  (* Partitioning may run several times on the same function (the pipeline
     iterates with checkpoints in place), so fresh labels must dodge the
     labels of earlier rounds. *)
  let counter = ref 0 in
  let rec fresh_label base =
    incr counter;
    let l = Printf.sprintf "%s.part%d" base !counter in
    if Hashtbl.mem func.Func.blocks l then fresh_label base else l
  in
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  let oversized =
    List.filter (fun b -> Block.num_stores b > budget) (Func.blocks func)
  in
  List.iter
    (fun (b : Block.t) ->
      let body = b.Block.body in
      let n = Array.length body in
      let live_at = Liveness.live_before_each live b in
      (* A cut before position j is legal when it does not separate an
         eager checkpoint from its producing definition. *)
      let legal j =
        j > 0 && j < n
        &&
        match body.(j) with
        | Instr.Ckpt r -> not (List.mem r (Instr.defs body.(j - 1)))
        | _ -> true
      in
      (* Choose cut points: after every [budget]-th write, place the cut at
         the minimal-liveness legal position before the next write. *)
      let cuts = ref [] in
      let count = ref 0 in
      let pending = ref None in
      (* pending = Some p: the budget filled at position p; cut somewhere in
         (p, next_write]. *)
      for j = 0 to n - 1 do
        (match !pending with
        | Some first_candidate when Instr.is_sb_write body.(j) ->
          (* Must cut at some legal position in [first_candidate, j]. *)
          let best = ref None in
          for k = first_candidate to j do
            if legal k then
              match !best with
              | Some (_, sz) when Reg.Set.cardinal live_at.(k) >= sz -> ()
              | _ -> best := Some (k, Reg.Set.cardinal live_at.(k))
          done;
          (match !best with
          | Some (k, _) ->
            cuts := k :: !cuts;
            count := 0;
            pending := None;
            (* The write at j now counts toward the new piece. *)
            incr count
          | None ->
            (* No legal cut (pathological); give up on this window. *)
            pending := None;
            incr count)
        | Some _ -> ()
        | None ->
          if Instr.is_sb_write body.(j) then begin
            incr count;
            if !count >= budget then begin
              pending := Some (j + 1);
              count := 0
            end
          end)
      done;
      match List.rev !cuts with
      | [] -> ()
      | cuts ->
        (* Materialize the pieces: the original block keeps the first
           segment; each further segment becomes a fresh fall-through
           block. *)
        let segments =
          let rec slice start = function
            | [] -> [ Array.to_list (Array.sub body start (n - start)) ]
            | c :: rest -> Array.to_list (Array.sub body start (c - start)) :: slice c rest
          in
          slice 0 cuts
        in
        (match segments with
        | first :: rest ->
          Block.set_body b first;
          let prev = ref b in
          List.iter
            (fun seg ->
              let nb =
                Block.create ~body:(Array.of_list seg) ~term:!prev.Block.term
                  (fresh_label b.Block.label)
              in
              !prev.Block.term <- Block.Jump nb.Block.label;
              Func.add_block func nb ~after:!prev.Block.label;
              prev := nb)
            rest
        | [] -> ()))
    oversized

let mandatory_heads func cfg loops =
  let heads = ref (SS.singleton func.Func.entry) in
  List.iter
    (fun l ->
      if List.length (Cfg.predecessors cfg l) >= 2 then heads := SS.add l !heads;
      if Loop_info.is_header loops l then heads := SS.add l !heads)
    (Cfg.reachable_labels cfg);
  !heads

(* Walk the region trees rooted at the mandatory heads, promoting blocks to
   heads whenever the running SB-write count on the path would exceed the
   budget. Returns the final head set. *)
let budget_heads func cfg heads ~budget =
  let final = ref heads in
  let rec walk l count =
    let b = Func.block func l in
    let w = Block.num_stores b in
    let count =
      if count + w > budget && count > 0 && SS.mem l !final = false then begin
        final := SS.add l !final;
        w
      end
      else count + w
    in
    List.iter
      (fun s ->
        if (not (SS.mem s heads)) && not (SS.mem s !final) then
          (* Single-pred continuation block: keep walking the tree. *)
          walk s count)
      (Block.successors b)
  in
  SS.iter (fun h -> walk h 0) heads;
  (* Unreachable blocks become their own regions so the structure stays
     total. *)
  Func.iter_blocks
    (fun b ->
      if not (Cfg.is_reachable cfg b.Block.label) then
        final := SS.add b.Block.label !final)
    func;
  !final

let insert_boundaries func heads =
  (* Region ids in layout order for readable dumps. *)
  let id = ref (-1) in
  List.iter
    (fun l ->
      if SS.mem l heads then begin
        incr id;
        let b = Func.block func l in
        Block.set_body b (Instr.Boundary !id :: Block.body_list b)
      end)
    (Func.labels func)

let partition ?(budget = 2) func =
  if budget < 1 then invalid_arg "Regions.partition: budget must be >= 1";
  let func = strip func in
  split_oversized_blocks func ~budget;
  let cfg = Cfg.build func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  let heads = mandatory_heads func cfg loops in
  let heads = budget_heads func cfg heads ~budget in
  insert_boundaries func heads;
  func

let head_of_block (b : Block.t) =
  match Array.length b.Block.body with
  | 0 -> None
  | _ -> (
    match b.Block.body.(0) with Instr.Boundary id -> Some id | _ -> None)

let of_func func =
  let cfg = Cfg.build func in
  let of_block = Hashtbl.create 64 in
  let members = Hashtbl.create 16 in
  let add id l =
    Hashtbl.replace of_block l id;
    let cur = Option.value (Hashtbl.find_opt members id) ~default:[] in
    Hashtbl.replace members id (l :: cur)
  in
  let heads =
    List.filter_map
      (fun (b : Block.t) ->
        match head_of_block b with Some id -> Some (id, b.Block.label) | None -> None)
      (Func.blocks func)
  in
  let rec attach id l =
    add id l;
    List.iter
      (fun s ->
        let sb = Func.block func s in
        if head_of_block sb = None && not (Hashtbl.mem of_block s) then begin
          (match Cfg.predecessors cfg s with
          | [ _ ] -> ()
          | preds ->
            invalid_arg
              (Printf.sprintf
                 "Regions.of_func: non-head block %s has %d predecessors" s
                 (List.length preds)));
          attach id s
        end)
      (Block.successors (Func.block func l))
  in
  List.iter (fun (id, l) -> attach id l) heads;
  (* Any block left unassigned (unreachable, no boundary) gets a fresh
     region of its own to keep lookups total. *)
  let next = ref (List.fold_left (fun a (id, _) -> max a (id + 1)) 0 heads) in
  Func.iter_blocks
    (fun b ->
      if not (Hashtbl.mem of_block b.Block.label) then begin
        add !next b.Block.label;
        incr next
      end)
    func;
  let max_id = Hashtbl.fold (fun _ id acc -> max id acc) of_block (-1) in
  let heads_by_id = Hashtbl.create 16 in
  List.iter (fun (id, l) -> Hashtbl.replace heads_by_id id l) heads;
  let regions =
    Array.init (max_id + 1) (fun id ->
        let blocks = Option.value (Hashtbl.find_opt members id) ~default:[] in
        let head =
          match Hashtbl.find_opt heads_by_id id with
          | Some h -> h
          | None -> ( match blocks with l :: _ -> l | [] -> "")
        in
        { id; head; blocks = List.rev blocks })
  in
  { regions; of_block }

let region_of t l = Hashtbl.find_opt t.of_block l

let region t id =
  if id < 0 || id >= Array.length t.regions then None else Some t.regions.(id)

let num_regions t = Array.length t.regions

let regions t = Array.to_list t.regions

(* Maximum SB writes of any single region, path-insensitively (the sum over
   the region's blocks is a safe upper bound for the tree's worst path). *)
let max_region_sb_writes func t =
  Array.fold_left
    (fun acc r ->
      let writes =
        List.fold_left (fun a l -> a + Block.num_stores (Func.block func l)) 0 r.blocks
      in
      max acc writes)
    0 t.regions

(* Worst path SB writes within one region tree. *)
let worst_path_sb_writes func t id =
  match region t id with
  | None -> 0
  | Some r ->
    (* An edge to the region's own head is a back edge crossing the
       boundary (a new dynamic instance), so it is an exit edge. *)
    let in_region l = region_of t l = Some id && not (String.equal l r.head) in
    let rec walk l =
      let b = Func.block func l in
      let w = Block.num_stores b in
      let succs = List.filter in_region (Block.successors b) in
      w + List.fold_left (fun acc s -> max acc (walk s)) 0 succs
    in
    walk r.head

let worst_region_path func t =
  let worst = ref 0 in
  Array.iter (fun r -> worst := max !worst (worst_path_sb_writes func t r.id)) t.regions;
  !worst
