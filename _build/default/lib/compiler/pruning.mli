(** Optimal checkpoint pruning (paper §4.1.3, after Penny).

    A checkpoint is removed when its value is reconstructible at recovery
    time from constants and the verified checkpoint slots of other
    registers. This is the conservative core of the algorithm: it requires
    the register (and each expression operand) to have a single definition
    so the reconstruction is unique and exact. The produced
    {!Recovery_expr.t} values are executed for real by the resilience
    engine, making pruning soundness an end-to-end tested property. *)

open Turnpike_ir

type result = {
  func : Func.t;  (** the same function with pruned checkpoints removed *)
  exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
      (** pruned register -> reconstruction expression *)
  pruned : int;  (** checkpoint instructions removed *)
}

val run : Func.t -> result
