(** Functions: a named collection of basic blocks with a designated entry
    and a layout order (used for fallthrough-aware passes and code-size
    accounting). *)

type t = {
  name : string;
  entry : string;
  blocks : (string, Block.t) Hashtbl.t;
  mutable order : string list;
}

val create : name:string -> entry:string -> Block.t list -> t
(** Build a function from blocks in layout order.
    @raise Invalid_argument on duplicate labels or missing entry. *)

val block : t -> string -> Block.t
(** @raise Invalid_argument on unknown label. *)

val block_opt : t -> string -> Block.t option
val labels : t -> string list
val blocks : t -> Block.t list
val entry_block : t -> Block.t
val num_blocks : t -> int
val num_instrs : t -> int
val iter_blocks : (Block.t -> unit) -> t -> unit
val fold_instrs : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a

val add_block : t -> Block.t -> after:string -> unit
(** Insert a new block immediately after [after] in layout order.
    @raise Invalid_argument on duplicate label. *)

val fallthrough_of : t -> string -> string option
(** The block following a label in layout order; jumping to it costs no
    fetch redirect. *)

val fallthrough_table : t -> (string, string) Hashtbl.t
(** All fall-through pairs at once (for hot loops). *)

val validate : t -> string list
(** Structural well-formedness check; returns a list of problems (empty
    when the function is well formed). *)

val copy : t -> t
(** Deep copy (blocks and bodies are fresh). *)

val max_reg : t -> Reg.t
(** Largest register id mentioned anywhere in the function. *)

val to_string : t -> string
