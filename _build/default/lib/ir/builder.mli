(** Imperative IR-construction DSL used by the workload suite and tests.

    Typical use:
    {[
      let b = Builder.create "kernel" in
      let arr = Builder.alloc_array b ~len:64 ~init:(fun i -> i) in
      let i = Builder.fresh_reg b and base = Builder.fresh_reg b in
      Builder.label b "entry";
      Builder.mov b ~dst:i (Imm 0);
      Builder.mov b ~dst:base (Imm arr);
      Builder.jump b "loop";
      (* ... *)
      let prog = Builder.finish b
    ]} *)

type t

val create : string -> t

val fresh_reg : t -> Reg.t
(** A fresh virtual register. *)

val label : t -> string -> unit
(** Open a new block. If a block is still open, it falls through (an
    implicit [Jump]) to the new one. The first label is the entry. *)

val emit : t -> Instr.t -> unit
(** Append an arbitrary instruction to the open block.
    @raise Invalid_argument when no block is open. *)

val mov : t -> dst:Reg.t -> Instr.operand -> unit
val binop : t -> Instr.binop -> dst:Reg.t -> a:Reg.t -> Instr.operand -> unit
val add : t -> dst:Reg.t -> a:Reg.t -> Instr.operand -> unit
val sub : t -> dst:Reg.t -> a:Reg.t -> Instr.operand -> unit
val mul : t -> dst:Reg.t -> a:Reg.t -> Instr.operand -> unit
val cmp : t -> Instr.cmp -> dst:Reg.t -> a:Reg.t -> Instr.operand -> unit
val load : t -> dst:Reg.t -> base:Reg.t -> ?off:int -> unit -> unit
val store : t -> src:Reg.t -> base:Reg.t -> ?off:int -> unit -> unit
val nop : t -> unit

val jump : t -> string -> unit
val branch : t -> cond:Reg.t -> if_true:string -> if_false:string -> unit
val ret : t -> unit

val alloc_array : t -> len:int -> init:(int -> int) -> int
(** Reserve [len] words in the data segment, record their initial values,
    and return the base address. *)

val input_reg : t -> int -> Reg.t
(** A fresh virtual register recorded as a program input with the given
    initial value. *)

val finish : t -> Prog.t
(** Close any open block with [Ret] and package the program.
    @raise Invalid_argument if no block was ever defined. *)
