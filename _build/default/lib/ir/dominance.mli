(** Dominator tree over the reachable blocks of a CFG
    (iterative Cooper-Harvey-Kennedy algorithm). *)

type t

val compute : Cfg.t -> t

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block and unreachable
    blocks. *)

val dominates : t -> dom:string -> sub:string -> bool
(** Reflexive dominance. Unreachable [sub] is dominated by nothing. *)

val strictly_dominates : t -> dom:string -> sub:string -> bool

val dominators : t -> string -> string list
(** All dominators of a block, the block itself included. *)
