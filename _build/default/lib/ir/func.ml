type t = {
  name : string;
  entry : string;
  blocks : (string, Block.t) Hashtbl.t;
  mutable order : string list;
}

let create ~name ~entry blocks =
  let tbl = Hashtbl.create (List.length blocks * 2) in
  List.iter
    (fun (b : Block.t) ->
      if Hashtbl.mem tbl b.label then
        invalid_arg (Printf.sprintf "Func.create: duplicate label %s" b.label);
      Hashtbl.add tbl b.label b)
    blocks;
  if not (Hashtbl.mem tbl entry) then
    invalid_arg (Printf.sprintf "Func.create: entry %s not among blocks" entry);
  { name; entry; blocks = tbl; order = List.map (fun (b : Block.t) -> b.label) blocks }

let block f l =
  match Hashtbl.find_opt f.blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.block: unknown label %s in %s" l f.name)

let block_opt f l = Hashtbl.find_opt f.blocks l

let labels f = f.order

let blocks f = List.map (block f) f.order

let entry_block f = block f f.entry

let num_blocks f = List.length f.order

let num_instrs f =
  List.fold_left (fun acc b -> acc + Block.num_instrs b) 0 (blocks f)

let iter_blocks g f = List.iter g (blocks f)

let fold_instrs g acc f =
  List.fold_left
    (fun acc b -> Array.fold_left g acc b.Block.body)
    acc (blocks f)

let add_block f (b : Block.t) ~after =
  if Hashtbl.mem f.blocks b.label then
    invalid_arg (Printf.sprintf "Func.add_block: duplicate label %s" b.label);
  Hashtbl.add f.blocks b.label b;
  let rec insert = function
    | [] -> [ b.label ]
    | l :: rest when String.equal l after -> l :: b.label :: rest
    | l :: rest -> l :: insert rest
  in
  f.order <- insert f.order

(* Layout successor: the block that follows [l] in emission order. A jump
   or branch to it is a fall-through (no fetch redirect). *)
let fallthrough_of f l =
  let rec find = function
    | a :: b :: _ when String.equal a l -> Some b
    | _ :: rest -> find rest
    | [] -> None
  in
  find f.order

let fallthrough_table f =
  let tbl = Hashtbl.create 64 in
  let rec go = function
    | a :: (b :: _ as rest) ->
      Hashtbl.replace tbl a b;
      go rest
    | [ _ ] | [] -> ()
  in
  go f.order;
  tbl

let validate f =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem f.blocks s) then
            err "block %s: unknown successor %s" b.Block.label s)
        (Block.successors b))
    (blocks f);
  if List.length f.order <> Hashtbl.length f.blocks then
    err "order list and block table disagree";
  List.rev !errors

let copy f =
  let cp (b : Block.t) =
    { Block.label = b.label; body = Array.copy b.body; term = b.term }
  in
  let blocks = List.map (fun l -> cp (block f l)) f.order in
  create ~name:f.name ~entry:f.entry blocks

let max_reg f =
  let on_instr acc i =
    List.fold_left max acc (Instr.defs i @ Instr.uses i)
  in
  let acc = fold_instrs on_instr 0 f in
  List.fold_left
    (fun acc b -> List.fold_left max acc (Block.term_uses b))
    acc (blocks f)

let to_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "func %s (entry %s):\n" f.name f.entry);
  List.iter (fun b -> Buffer.add_string buf (Block.to_string b)) (blocks f);
  Buffer.contents buf
