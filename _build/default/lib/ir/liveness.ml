(* Classic backward liveness over registers, plus a per-instruction view
   used by checkpoint insertion and pruning. *)

type t = {
  live_in : (string, Reg.Set.t) Hashtbl.t;
  live_out : (string, Reg.Set.t) Hashtbl.t;
}

let block_use_def (b : Block.t) =
  (* use = read before any write in the block (terminator included). *)
  let use = ref Reg.Set.empty and def = ref Reg.Set.empty in
  Array.iter
    (fun i ->
      List.iter
        (fun r -> if not (Reg.Set.mem r !def) then use := Reg.Set.add r !use)
        (Instr.uses i);
      List.iter (fun r -> def := Reg.Set.add r !def) (Instr.defs i))
    b.Block.body;
  List.iter
    (fun r -> if not (Reg.Set.mem r !def) then use := Reg.Set.add r !use)
    (Block.term_uses b);
  (!use, !def)

let compute cfg func =
  let live_in = Hashtbl.create 64 and live_out = Hashtbl.create 64 in
  let use_def = Hashtbl.create 64 in
  Func.iter_blocks
    (fun b -> Hashtbl.replace use_def b.Block.label (block_use_def b))
    func;
  Func.iter_blocks
    (fun b ->
      Hashtbl.replace live_in b.Block.label Reg.Set.empty;
      Hashtbl.replace live_out b.Block.label Reg.Set.empty)
    func;
  let changed = ref true in
  let order = Cfg.postorder cfg in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc (Hashtbl.find live_in s))
            Reg.Set.empty (Cfg.successors cfg l)
        in
        let use, def = Hashtbl.find use_def l in
        let inn = Reg.Set.union use (Reg.Set.diff out def) in
        if not (Reg.Set.equal out (Hashtbl.find live_out l)) then begin
          Hashtbl.replace live_out l out;
          changed := true
        end;
        if not (Reg.Set.equal inn (Hashtbl.find live_in l)) then begin
          Hashtbl.replace live_in l inn;
          changed := true
        end)
      order
  done;
  { live_in; live_out }

let live_in t l = Option.value (Hashtbl.find_opt t.live_in l) ~default:Reg.Set.empty

let live_out t l = Option.value (Hashtbl.find_opt t.live_out l) ~default:Reg.Set.empty

let live_before_each t (b : Block.t) =
  (* live.(i) = registers live immediately before instruction i. The array
     has one extra slot: live.(n) is liveness before the terminator. *)
  let n = Array.length b.body in
  let live = Array.make (n + 1) Reg.Set.empty in
  let after_term = live_out t b.label in
  let before_term =
    List.fold_left (fun acc r -> Reg.Set.add r acc) after_term (Block.term_uses b)
  in
  live.(n) <- before_term;
  for i = n - 1 downto 0 do
    let ins = b.body.(i) in
    let s = live.(i + 1) in
    let s = List.fold_left (fun acc r -> Reg.Set.remove r acc) s (Instr.defs ins) in
    let s = List.fold_left (fun acc r -> Reg.Set.add r acc) s (Instr.uses ins) in
    live.(i) <- s
  done;
  live
