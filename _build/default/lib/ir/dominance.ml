(* Iterative dominator computation (Cooper-Harvey-Kennedy) over the RPO of
   reachable blocks. *)

type t = {
  cfg : Cfg.t;
  idom : (string, string) Hashtbl.t; (* entry maps to itself *)
}

let compute cfg =
  let rpo = Array.of_list (Cfg.reverse_postorder cfg) in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let entry = rpo.(0) in
  let idom = Hashtbl.create 64 in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    (* Walk up the (partially built) dominator tree in RPO-index space. *)
    let rec up x y =
      if String.equal x y then x
      else
        let ix = Hashtbl.find index x and iy = Hashtbl.find index y in
        if ix > iy then up (Hashtbl.find idom x) y else up x (Hashtbl.find idom y)
    in
    up a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun l ->
        if not (String.equal l entry) then begin
          let processed_preds =
            List.filter
              (fun p -> Hashtbl.mem idom p && Hashtbl.mem index p)
              (Cfg.predecessors cfg l)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Hashtbl.find_opt idom l with
            | Some old when String.equal old new_idom -> ()
            | _ ->
              Hashtbl.replace idom l new_idom;
              changed := true)
        end)
      rpo
  done;
  { cfg; idom }

let idom t l =
  match Hashtbl.find_opt t.idom l with
  | Some d when not (String.equal d l) -> Some d
  | Some _ -> None (* entry *)
  | None -> None (* unreachable *)

let dominates t ~dom ~sub =
  if not (Cfg.is_reachable t.cfg sub) then false
  else
    let rec up x =
      if String.equal x dom then true
      else
        match Hashtbl.find_opt t.idom x with
        | Some d when not (String.equal d x) -> up d
        | _ -> false
    in
    up sub

let strictly_dominates t ~dom ~sub =
  (not (String.equal dom sub)) && dominates t ~dom ~sub

let dominators t l =
  let rec up x acc =
    match Hashtbl.find_opt t.idom x with
    | Some d when not (String.equal d x) -> up d (d :: acc)
    | _ -> acc
  in
  if Cfg.is_reachable t.cfg l then l :: up l [] else []
