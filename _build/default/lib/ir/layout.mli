(** Address-space layout shared by the compiler, the interpreter and the
    timing model. All addresses are byte addresses; memory is word
    (8-byte) granular. *)

val word : int
(** Word size in bytes (8). *)

val data_base : int
(** Base of the workload data segment. *)

val spill_base : int
(** Base of the register-allocator spill area (stack stand-in). *)

val ckpt_base : int
(** Base of the checkpoint storage region. Each architectural register owns
    {!colors} consecutive word slots (one per hardware color). *)

val colors : int
(** Number of hardware colors per register (paper §4.3.2: a 4-color pool). *)

val ckpt_slot : reg:int -> color:int -> int
(** [ckpt_slot ~reg ~color] is the checkpoint address of [reg] in [color].
    Turnstile (no coloring) always uses color 0.
    @raise Invalid_argument if [color] is outside [0, colors). *)

val spill_slot : int -> int
(** [spill_slot i] is the address of the [i]-th spill slot. *)

val is_ckpt_addr : int -> bool
val is_spill_addr : int -> bool

val ckpt_slot_reg : int -> int
(** Register owning a checkpoint-slot address.
    @raise Invalid_argument if the address is not a checkpoint slot. *)
