(** Register identifiers.

    Registers are plain integers. Ids below {!virt_base} denote
    architectural (physical) registers; ids at or above it denote compiler
    temporaries (virtual registers) that register allocation must eliminate
    before timing simulation. Register {!zero} is hard-wired to zero. *)

type t = int [@@deriving show, eq, ord]

val zero : t
(** The hard-wired zero register. Never allocated, never checkpointed;
    used as base register for absolute addressing. *)

val virt_base : int
(** First id reserved for virtual registers. *)

val phys : int -> t
(** [phys i] is physical register [i].
    @raise Invalid_argument if [i] is outside [0, virt_base). *)

val virt : int -> t
(** [virt i] is the [i]-th virtual register.
    @raise Invalid_argument if [i < 0]. *)

val is_virtual : t -> bool
val is_physical : t -> bool
val is_zero : t -> bool

val to_string : t -> string
(** ["rz"], ["rN"] for physical, ["vN"] for virtual registers. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
