(* Registers are small integers. Ids below [virt_base] are architectural
   (physical) registers; ids at or above it are compiler temporaries that a
   register-allocation pass must eliminate before timing simulation.
   Register 0 is hard-wired to zero (RISC convention): it is never
   allocated, never checkpointed, and serves as the base register for
   absolute addressing of spill and checkpoint slots. *)

type t = int [@@deriving show, eq, ord]

let zero = 0

let virt_base = 1024

let phys i =
  if i < 0 || i >= virt_base then
    invalid_arg (Printf.sprintf "Reg.phys: %d out of range" i);
  i

let virt i =
  if i < 0 then invalid_arg "Reg.virt: negative id";
  virt_base + i

let is_virtual r = r >= virt_base

let is_physical r = r >= 0 && r < virt_base

let is_zero r = r = zero

let to_string r =
  if r = zero then "rz"
  else if is_virtual r then Printf.sprintf "v%d" (r - virt_base)
  else Printf.sprintf "r%d" r

let pp fmt r = Format.pp_print_string fmt (to_string r)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
