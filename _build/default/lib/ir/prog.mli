(** A whole program: one function plus its initial memory image and initial
    register values (the workload inputs). *)

type t = {
  func : Func.t;
  mem_init : (int * int) list;  (** initial (address, value) pairs *)
  reg_init : (Reg.t * int) list;  (** input registers and their values *)
}

val create : ?mem_init:(int * int) list -> ?reg_init:(Reg.t * int) list -> Func.t -> t

val live_in_regs : t -> Reg.t list
(** The input registers (live at program entry). *)

val with_func : t -> Func.t -> t
val map_func : (Func.t -> Func.t) -> t -> t

val validate : t -> string list
(** Structural checks over function and images; empty when well formed. *)
