lib/ir/prog.pp.ml: Func Layout List Printf Reg
