lib/ir/func.pp.mli: Block Hashtbl Instr Reg
