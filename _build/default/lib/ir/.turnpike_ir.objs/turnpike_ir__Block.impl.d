lib/ir/block.pp.ml: Array Buffer Instr Ppx_deriving_runtime Printf Reg String
