lib/ir/instr.pp.mli: Ppx_deriving_runtime Reg
