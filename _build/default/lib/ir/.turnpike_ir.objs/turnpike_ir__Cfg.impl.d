lib/ir/cfg.pp.ml: Array Block Func Hashtbl List Option
