lib/ir/builder.pp.mli: Instr Prog Reg
