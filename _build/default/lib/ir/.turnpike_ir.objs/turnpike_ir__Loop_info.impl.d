lib/ir/loop_info.pp.ml: Cfg Dominance Hashtbl List Set String
