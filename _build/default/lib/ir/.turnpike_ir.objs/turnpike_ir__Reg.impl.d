lib/ir/reg.pp.ml: Format Hashtbl Int Map Ppx_deriving_runtime Printf Set
