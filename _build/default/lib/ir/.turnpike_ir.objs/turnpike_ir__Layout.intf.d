lib/ir/layout.pp.mli:
