lib/ir/func.pp.ml: Array Block Buffer Hashtbl Instr List Printf String
