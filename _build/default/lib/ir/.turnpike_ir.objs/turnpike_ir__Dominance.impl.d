lib/ir/dominance.pp.ml: Array Cfg Hashtbl List String
