lib/ir/trace.pp.ml: Array Instr List Ppx_deriving_runtime Reg
