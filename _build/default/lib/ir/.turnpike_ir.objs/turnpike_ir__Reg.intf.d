lib/ir/reg.pp.mli: Format Hashtbl Map Ppx_deriving_runtime Set
