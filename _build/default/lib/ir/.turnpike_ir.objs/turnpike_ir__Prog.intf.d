lib/ir/prog.pp.mli: Func Reg
