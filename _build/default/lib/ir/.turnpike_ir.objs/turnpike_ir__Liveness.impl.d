lib/ir/liveness.pp.ml: Array Block Cfg Func Hashtbl Instr List Option Reg
