lib/ir/instr.pp.ml: Ppx_deriving_runtime Printf Reg
