lib/ir/builder.pp.ml: Array Block Func Instr Layout List Prog Reg
