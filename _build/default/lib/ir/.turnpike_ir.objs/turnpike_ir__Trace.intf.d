lib/ir/trace.pp.mli: Instr Ppx_deriving_runtime Reg
