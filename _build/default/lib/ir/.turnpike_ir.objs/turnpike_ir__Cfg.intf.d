lib/ir/cfg.pp.mli: Func
