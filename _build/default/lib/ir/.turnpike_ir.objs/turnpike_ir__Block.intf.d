lib/ir/block.pp.mli: Instr Ppx_deriving_runtime Reg
