lib/ir/interp.pp.mli: Func Hashtbl Instr Prog Reg Trace
