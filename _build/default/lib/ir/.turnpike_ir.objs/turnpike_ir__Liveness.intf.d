lib/ir/liveness.pp.mli: Block Cfg Func Reg
