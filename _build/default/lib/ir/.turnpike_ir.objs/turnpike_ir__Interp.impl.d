lib/ir/interp.pp.ml: Array Block Func Hashtbl Instr Layout List Option Prog Reg String Trace
