lib/ir/loop_info.pp.mli: Cfg Dominance
