lib/ir/layout.pp.ml:
