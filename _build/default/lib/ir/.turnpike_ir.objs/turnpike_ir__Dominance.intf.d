lib/ir/dominance.pp.mli: Cfg
