(* Dynamic execution trace consumed by the timing model. Each event carries
   exactly what the in-order pipeline needs: which registers it reads and
   writes, what kind of functional unit it uses, and (for memory
   operations) the effective address. *)

type store_class = Regular_app | Regular_spill | Checkpoint
[@@deriving show { with_path = false }, eq]

type event =
  | Alu of { dst : Reg.t option; srcs : Reg.t list }
  | Load of { dst : Reg.t; srcs : Reg.t list; addr : int; kind : Instr.mem_kind }
  | Store of { srcs : Reg.t list; addr : int; cls : store_class }
  | Ckpt of { src : Reg.t }
  | Branch of { srcs : Reg.t list; taken : bool; pc : int }
  | Boundary of { region : int }
[@@deriving show { with_path = false }, eq]

type t = {
  events : event array;
  complete : bool; (* false when the fuel budget cut execution short *)
}

let length t = Array.length t.events

let count p t =
  Array.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 t.events

let num_sb_writes t =
  count (function Store _ | Ckpt _ -> true | _ -> false) t

let num_ckpts t = count (function Ckpt _ -> true | _ -> false) t

let num_boundaries t = count (function Boundary _ -> true | _ -> false) t

let num_instructions t =
  (* Boundaries are markers, not executed instructions. *)
  count (function Boundary _ -> false | _ -> true) t

let iter f t = Array.iter f t.events
