(* Imperative IR construction DSL used by workloads and tests. Blocks are
   opened with [label] and closed by a terminator; instructions append to
   the current block. *)

type t = {
  name : string;
  mutable next_virt : int;
  mutable next_data : int;
  mutable blocks_rev : Block.t list;
  mutable current : (string * Instr.t list ref) option;
  mutable mem_init_rev : (int * int) list;
  mutable reg_init_rev : (Reg.t * int) list;
  mutable entry : string option;
}

let create name =
  {
    name;
    next_virt = 0;
    next_data = Layout.data_base;
    blocks_rev = [];
    current = None;
    mem_init_rev = [];
    reg_init_rev = [];
    entry = None;
  }

let fresh_reg b =
  let r = Reg.virt b.next_virt in
  b.next_virt <- b.next_virt + 1;
  r

let close_block b term =
  match b.current with
  | None -> invalid_arg "Builder: terminator with no open block"
  | Some (label, body) ->
    b.blocks_rev <-
      Block.create ~body:(Array.of_list (List.rev !body)) ~term label :: b.blocks_rev;
    b.current <- None

let label b l =
  (match b.current with
  | Some (cur, _) ->
    (* Implicit fallthrough from the still-open block. *)
    ignore cur;
    close_block b (Block.Jump l)
  | None -> ());
  if b.entry = None then b.entry <- Some l;
  b.current <- Some (l, ref [])

let emit b i =
  match b.current with
  | None -> invalid_arg "Builder: instruction outside any block"
  | Some (_, body) -> body := i :: !body

let mov b ~dst o = emit b (Instr.Mov (dst, o))
let binop b op ~dst ~a o = emit b (Instr.Binop (op, dst, a, o))
let add b ~dst ~a o = binop b Instr.Add ~dst ~a o
let sub b ~dst ~a o = binop b Instr.Sub ~dst ~a o
let mul b ~dst ~a o = binop b Instr.Mul ~dst ~a o
let cmp b c ~dst ~a o = emit b (Instr.Cmp (c, dst, a, o))
let load b ~dst ~base ?(off = 0) () = emit b (Instr.Load (dst, base, off, Instr.App_mem))
let store b ~src ~base ?(off = 0) () = emit b (Instr.Store (src, base, off, Instr.App_mem))
let nop b = emit b Instr.Nop

let jump b l = close_block b (Block.Jump l)
let branch b ~cond ~if_true ~if_false = close_block b (Block.Branch (cond, if_true, if_false))
let ret b = close_block b Block.Ret

let alloc_array b ~len ~init =
  let base = b.next_data in
  b.next_data <- b.next_data + (len * Layout.word);
  for i = 0 to len - 1 do
    b.mem_init_rev <- ((base + (i * Layout.word)), init i) :: b.mem_init_rev
  done;
  base

let input_reg b value =
  let r = fresh_reg b in
  b.reg_init_rev <- (r, value) :: b.reg_init_rev;
  r

let finish b =
  (match b.current with Some _ -> close_block b Block.Ret | None -> ());
  let entry =
    match b.entry with
    | Some e -> e
    | None -> invalid_arg "Builder.finish: no blocks were defined"
  in
  let func = Func.create ~name:b.name ~entry (List.rev b.blocks_rev) in
  Prog.create ~mem_init:(List.rev b.mem_init_rev)
    ~reg_init:(List.rev b.reg_init_rev) func
