(** Dynamic execution traces: the interface between the functional
    interpreter and the cycle-level timing model. *)

type store_class = Regular_app | Regular_spill | Checkpoint
[@@deriving show, eq]

type event =
  | Alu of { dst : Reg.t option; srcs : Reg.t list }
  | Load of { dst : Reg.t; srcs : Reg.t list; addr : int; kind : Instr.mem_kind }
  | Store of { srcs : Reg.t list; addr : int; cls : store_class }
  | Ckpt of { src : Reg.t }
      (** Checkpoint store; the slot address depends on the hardware color
          assigned at commit, so the timing model resolves it. *)
  | Branch of { srcs : Reg.t list; taken : bool; pc : int }
  | Boundary of { region : int }  (** static region id *)
[@@deriving show, eq]

type t = {
  events : event array;
  complete : bool;  (** [false] when the fuel budget cut execution short *)
}

val length : t -> int
val count : (event -> bool) -> t -> int

val num_sb_writes : t -> int
(** Dynamic store-buffer writes (stores + checkpoints). *)

val num_ckpts : t -> int
val num_boundaries : t -> int

val num_instructions : t -> int
(** Executed instructions, boundary markers excluded. *)

val iter : (event -> unit) -> t -> unit
