(** Natural-loop analysis: back edges, loop bodies, nesting depth. *)

type loop = {
  header : string;
  latches : string list;  (** sources of back edges into [header] *)
  blocks : string list;  (** loop body, header included *)
  depth : int;  (** nesting depth; outermost loops have depth 1 *)
  parent : string option;  (** header of the innermost enclosing loop *)
}

type t

val compute : Cfg.t -> Dominance.t -> t

val loops : t -> loop list
val loop_of_header : t -> string -> loop option

val innermost_loop : t -> string -> loop option
(** Innermost loop containing a block, if any. *)

val is_header : t -> string -> bool
val in_loop : t -> header:string -> block:string -> bool

val depth : t -> string -> int
(** Loop-nesting depth of a block (0 when outside all loops). *)

val exits : t -> Cfg.t -> string -> (string * string) list
(** Exit edges [(from_block, to_block)] of the loop with the given
    header. *)
