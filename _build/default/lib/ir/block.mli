(** Basic blocks: a label, a straight-line body and one terminator. *)

type terminator =
  | Jump of string
  | Branch of Reg.t * string * string
      (** [Branch (r, taken, fallthrough)]: go to [taken] if [r <> 0]. *)
  | Ret
[@@deriving show, eq]

type t = {
  label : string;
  mutable body : Instr.t array;
  mutable term : terminator;
}

val create : ?body:Instr.t array -> ?term:terminator -> string -> t

val successors : t -> string list
(** Successor labels, deduplicated. *)

val term_uses : t -> Reg.t list
(** Registers read by the terminator. *)

val num_instrs : t -> int

val count : (Instr.t -> bool) -> t -> int

val num_stores : t -> int
(** Store-buffer writes in the body (regular stores + checkpoints). *)

val iter : (Instr.t -> unit) -> t -> unit
val set_body : t -> Instr.t list -> unit
val body_list : t -> Instr.t list

val rename_term : (Reg.t -> Reg.t) -> t -> unit

val to_string : t -> string
