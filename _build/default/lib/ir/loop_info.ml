type loop = {
  header : string;
  latches : string list;
  blocks : string list;
  depth : int;
  parent : string option;
}

type t = {
  loops : (string, loop) Hashtbl.t; (* keyed by header *)
  innermost : (string, string) Hashtbl.t; (* block -> innermost header *)
}

module SS = Set.Make (String)

let compute cfg dom =
  (* A back edge src->dst exists when dst dominates src. The natural loop
     of the edge is dst plus everything that reaches src without passing
     through dst. *)
  let back_edges = ref [] in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if Dominance.dominates dom ~dom:dst ~sub:src then
            back_edges := (src, dst) :: !back_edges)
        (Cfg.successors cfg src))
    (Cfg.reachable_labels cfg);
  let natural (src, header) =
    let body = ref (SS.singleton header) in
    let rec pull l =
      if not (SS.mem l !body) then begin
        body := SS.add l !body;
        List.iter pull (Cfg.predecessors cfg l)
      end
    in
    pull src;
    !body
  in
  (* Merge loops sharing a header (multiple latches). *)
  let merged = Hashtbl.create 8 in
  List.iter
    (fun ((src, header) as e) ->
      let body = natural e in
      match Hashtbl.find_opt merged header with
      | None -> Hashtbl.replace merged header (body, [ src ])
      | Some (b, latches) -> Hashtbl.replace merged header (SS.union b body, src :: latches))
    !back_edges;
  (* Nesting: loop A is inside loop B when A's header is in B's body and
     A <> B. Depth = number of enclosing loops + 1. *)
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) merged [] in
  let enclosing h =
    List.filter
      (fun h' ->
        (not (String.equal h h'))
        &&
        let b', _ = Hashtbl.find merged h' in
        SS.mem h b')
      headers
  in
  let loops = Hashtbl.create 8 in
  List.iter
    (fun h ->
      let body, latches = Hashtbl.find merged h in
      let encl = enclosing h in
      let parent =
        (* Innermost enclosing loop = the enclosing loop with the largest
           depth i.e. smallest body. *)
        match encl with
        | [] -> None
        | _ ->
          let size h' = SS.cardinal (fst (Hashtbl.find merged h')) in
          Some (List.fold_left (fun best c -> if size c < size best then c else best)
                  (List.hd encl) (List.tl encl))
      in
      Hashtbl.replace loops h
        {
          header = h;
          latches;
          blocks = SS.elements body;
          depth = List.length encl + 1;
          parent;
        })
    headers;
  let innermost = Hashtbl.create 64 in
  Hashtbl.iter
    (fun h (body, _) ->
      SS.iter
        (fun l ->
          match Hashtbl.find_opt innermost l with
          | None -> Hashtbl.replace innermost l h
          | Some prev ->
            let size x = SS.cardinal (fst (Hashtbl.find merged x)) in
            if size h < size prev then Hashtbl.replace innermost l h)
        body)
    merged;
  { loops; innermost }

let loops t = Hashtbl.fold (fun _ l acc -> l :: acc) t.loops []

let loop_of_header t h = Hashtbl.find_opt t.loops h

let innermost_loop t l =
  match Hashtbl.find_opt t.innermost l with
  | None -> None
  | Some h -> Hashtbl.find_opt t.loops h

let is_header t l = Hashtbl.mem t.loops l

let in_loop t ~header ~block =
  match Hashtbl.find_opt t.loops header with
  | None -> false
  | Some lp -> List.exists (String.equal block) lp.blocks

let depth t l =
  match innermost_loop t l with None -> 0 | Some lp -> lp.depth

let exits t cfg header =
  match Hashtbl.find_opt t.loops header with
  | None -> []
  | Some lp ->
    let body = SS.of_list lp.blocks in
    List.concat_map
      (fun b ->
        List.filter_map
          (fun s -> if SS.mem s body then None else Some (b, s))
          (Cfg.successors cfg b))
      lp.blocks
