(** Control-flow graph view of a {!Func.t}: predecessor lists and a
    reverse-postorder numbering of the reachable blocks. *)

type t

val build : Func.t -> t
(** Snapshot of the function's CFG. Rebuild after structural edits. *)

val predecessors : t -> string -> string list
val successors : t -> string -> string list

val reverse_postorder : t -> string list
(** Reachable labels in reverse postorder (entry first). *)

val postorder : t -> string list

val rpo_number : t -> string -> int option
(** RPO index, or [None] for unreachable blocks. *)

val is_reachable : t -> string -> bool
val reachable_labels : t -> string list

val is_back_edge_candidate : t -> src:string -> dst:string -> bool
(** RPO-based retreat-edge test ([dst] not after [src]); combined with a
    dominance check this identifies loop back edges. *)
