(** Backward live-register analysis. *)

type t

val compute : Cfg.t -> Func.t -> t

val live_in : t -> string -> Reg.Set.t
(** Registers live at block entry. Empty for unknown labels. *)

val live_out : t -> string -> Reg.Set.t
(** Registers live at block exit (before the terminator's targets). *)

val live_before_each : t -> Block.t -> Reg.Set.t array
(** [live_before_each t b] has length [Block.num_instrs b + 1]; slot [i]
    holds the registers live immediately before instruction [i], and the
    final slot the registers live before the terminator. *)

val block_use_def : Block.t -> Reg.Set.t * Reg.Set.t
(** Upward-exposed uses and defs of a block (terminator included in
    uses). *)
