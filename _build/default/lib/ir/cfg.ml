type t = {
  func : Func.t;
  preds : (string, string list) Hashtbl.t;
  rpo : string array;
  rpo_index : (string, int) Hashtbl.t;
}

let build func =
  let preds = Hashtbl.create 64 in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt preds s) ~default:[] in
          Hashtbl.replace preds s (b.Block.label :: cur))
        (Block.successors b))
    func;
  (* Post-order DFS from entry; reverse for RPO. Unreachable blocks are
     excluded from the RPO but remain in the function. *)
  let visited = Hashtbl.create 64 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (Block.successors (Func.block func l));
      post := l :: !post
    end
  in
  dfs func.Func.entry;
  let rpo = Array.of_list !post in
  let rpo_index = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace rpo_index l i) rpo;
  { func; preds; rpo; rpo_index }

let predecessors t l = Option.value (Hashtbl.find_opt t.preds l) ~default:[]

let successors t l = Block.successors (Func.block t.func l)

let reverse_postorder t = Array.to_list t.rpo

let postorder t = List.rev (Array.to_list t.rpo)

let rpo_number t l = Hashtbl.find_opt t.rpo_index l

let is_reachable t l = Hashtbl.mem t.rpo_index l

let reachable_labels t = Array.to_list t.rpo

let is_back_edge_candidate t ~src ~dst =
  match (rpo_number t src, rpo_number t dst) with
  | Some a, Some b -> b <= a
  | _ -> false
