type terminator =
  | Jump of string
  | Branch of Reg.t * string * string
  | Ret
[@@deriving show { with_path = false }, eq]

type t = {
  label : string;
  mutable body : Instr.t array;
  mutable term : terminator;
}

let create ?(body = [||]) ?(term = Ret) label = { label; body; term }

let successors b =
  match b.term with
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> if String.equal l1 l2 then [ l1 ] else [ l1; l2 ]
  | Ret -> []

let term_uses b =
  match b.term with
  | Branch (r, _, _) when not (Reg.is_zero r) -> [ r ]
  | Branch _ | Jump _ | Ret -> []

let num_instrs b = Array.length b.body

let count p b = Array.fold_left (fun acc i -> if p i then acc + 1 else acc) 0 b.body

let num_stores b = count Instr.is_sb_write b

let iter f b = Array.iter f b.body

let set_body b instrs = b.body <- Array.of_list instrs

let body_list b = Array.to_list b.body

let rename_term f b =
  match b.term with
  | Branch (r, l1, l2) -> b.term <- Branch (f r, l1, l2)
  | Jump _ | Ret -> ()

let to_string b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (b.label ^ ":\n");
  Array.iter (fun i -> Buffer.add_string buf ("  " ^ Instr.to_string i ^ "\n")) b.body;
  let t =
    match b.term with
    | Jump l -> Printf.sprintf "  jmp %s" l
    | Branch (r, l1, l2) -> Printf.sprintf "  br %s, %s, %s" (Reg.to_string r) l1 l2
    | Ret -> "  ret"
  in
  Buffer.add_string buf (t ^ "\n");
  Buffer.contents buf
