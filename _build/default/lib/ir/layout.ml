(* Address-space layout shared by the compiler, interpreter and timing
   model. All addresses are byte addresses; data is word (8-byte) granular. *)

let word = 8

let data_base = 0x1000_0000

let spill_base = 0x2000_0000

let ckpt_base = 0x4000_0000

let colors = 4

let ckpt_slot ~reg ~color =
  if color < 0 || color >= colors then invalid_arg "Layout.ckpt_slot: color";
  ckpt_base + (reg * colors * word) + (color * word)

let spill_slot i =
  if i < 0 then invalid_arg "Layout.spill_slot: negative index";
  spill_base + (i * word)

let is_ckpt_addr a = a >= ckpt_base

let is_spill_addr a = a >= spill_base && a < ckpt_base

let ckpt_slot_reg a =
  if not (is_ckpt_addr a) then invalid_arg "Layout.ckpt_slot_reg";
  (a - ckpt_base) / (colors * word)
