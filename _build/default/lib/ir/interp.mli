(** Functional (architectural) interpreter.

    It defines the reference semantics used by correctness checks, produces
    dynamic traces for the cycle-level timing model, and exposes a
    single-step API that the resilience engine drives for fault injection
    and region-restart recovery. *)

type pc = { block : string; index : int }
(** Program counter: a block label and an instruction index within it;
    index [= Array.length body] denotes the terminator. *)

type state = {
  regs : (Reg.t, int) Hashtbl.t;
  mem : (int, int) Hashtbl.t;
  mutable pc : pc;
  mutable steps : int;
  mutable halted : bool;
}

exception Out_of_fuel

val get_reg : state -> Reg.t -> int
(** {!Reg.zero} always reads 0; unset registers read 0. *)

val set_reg : state -> Reg.t -> int -> unit
(** Writes to {!Reg.zero} are discarded. *)

val get_mem : state -> int -> int
(** Uninitialized memory reads 0. *)

val set_mem : state -> int -> int -> unit

val init : Prog.t -> state
(** Fresh state with the program's memory image and input registers. *)

type hooks = {
  on_ckpt : state -> Reg.t -> unit;
      (** Semantics of [Ckpt r]. The default writes the register to its
          color-0 checkpoint slot (Turnstile behaviour); the resilience
          engine substitutes color-aware behaviour. *)
  on_boundary : state -> int -> unit;
  on_event : Trace.event -> unit;
  write_mem : state -> int -> int -> unit;
      (** Semantics of a store's memory write. The default writes through;
          the resilience engine substitutes an undo-logged (quarantined)
          write. *)
}

val no_hooks : hooks

val default_ckpt : state -> Reg.t -> unit

val exec_instr : hooks -> state -> Instr.t -> unit
(** Execute one instruction's data semantics (no PC update). *)

val step : ?hooks:hooks -> ?fallthrough:(string, string) Hashtbl.t -> Func.t -> state -> unit
(** Execute the instruction (or terminator) at the current PC and advance.
    No-op once [halted]. A control transfer to the layout successor costs
    no fetch redirect: a fall-through unconditional jump emits no event
    (boundary block splits are PC markers, not code), and a branch's
    [taken] flag means "fetch redirected". [fallthrough] (from
    {!Func.fallthrough_table}) avoids recomputing layout per step. *)

val run : ?fuel:int -> ?hooks:hooks -> Prog.t -> state
(** Run to completion. @raise Out_of_fuel after [fuel] steps (default 1e7). *)

val trace_run : ?fuel:int -> Prog.t -> Trace.t * state
(** Run (up to [fuel] steps, default 1e6) collecting the dynamic trace.
    The trace is marked incomplete instead of raising when fuel runs out —
    mirroring the paper's fixed-length simulation windows. *)

val mem_equal : state -> state -> bool
(** Memory equality, treating absent bindings as zero. *)

val app_mem_equal : state -> state -> bool
(** Memory equality restricted to non-checkpoint addresses — the
    observable application state compared by SDC verification. *)
