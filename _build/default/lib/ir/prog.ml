type t = {
  func : Func.t;
  mem_init : (int * int) list;
  reg_init : (Reg.t * int) list;
}

let create ?(mem_init = []) ?(reg_init = []) func = { func; mem_init; reg_init }

let live_in_regs t = List.map fst t.reg_init

let with_func t func = { t with func }

let map_func f t = { t with func = f t.func }

let validate t =
  let errs = Func.validate t.func in
  let errs =
    List.fold_left
      (fun acc (a, _) ->
        if a mod Layout.word <> 0 then
          Printf.sprintf "mem_init address %#x not word aligned" a :: acc
        else acc)
      errs t.mem_init
  in
  let errs =
    List.fold_left
      (fun acc (r, _) ->
        if Reg.is_zero r then "reg_init writes the zero register" :: acc else acc)
      errs t.reg_init
  in
  errs
