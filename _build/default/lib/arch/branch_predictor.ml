(* Bimodal (2-bit saturating counter) branch predictor with a direct-mapped
   pattern table, as fitted to small in-order cores. The timing model
   charges the redirect penalty only on mispredictions; unconditional
   fall-throughs never reach the predictor. *)

type t = {
  counters : int array; (* 0..3; >=2 predicts taken *)
  mask : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(entries = 512) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Branch_predictor.create: entries must be a positive power of two";
  (* Weakly taken initial state: loops start off predicted correctly. *)
  { counters = Array.make entries 2; mask = entries - 1; lookups = 0; mispredicts = 0 }

let index t pc = pc land t.mask

let predict t ~pc = t.counters.(index t pc) >= 2

let update t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let i = index t pc in
  let predicted = t.counters.(i) >= 2 in
  if predicted <> taken then t.mispredicts <- t.mispredicts + 1;
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  predicted = taken

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let mispredict_rate t =
  if t.lookups = 0 then 0.0 else float_of_int t.mispredicts /. float_of_int t.lookups
