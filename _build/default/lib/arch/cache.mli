(** Set-associative, write-back, write-allocate cache with true-LRU
    replacement. This module tracks only hit/miss state; latency accounting
    lives in {!Mem_hierarchy}. *)

type t

val create : name:string -> size_bytes:int -> assoc:int -> line_bytes:int -> t
(** @raise Invalid_argument unless sizes are powers of two and consistent. *)

val access : t -> write:bool -> int -> [ `Hit | `Miss ]
(** Probe (and on miss, fill) the line holding a byte address. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
