(* Region boundary buffer: one entry per in-flight (unverified) dynamic
   region, recording when it ended and when it will be verified. The entry
   also anchors the recovery PC (represented here by the static region id). *)

type region = {
  seq : int;
  static_id : int;
  mutable end_cycle : int option;
  mutable verify_at : int option;
}

type t = {
  size : int;
  mutable pending : region list; (* oldest first; all unverified *)
  mutable current : region option; (* open region, not yet in pending *)
  mutable next_seq : int;
  mutable last_verified_static : int option;
}

let create size =
  if size <= 0 then invalid_arg "Rbb.create: size must be positive";
  { size; pending = []; current = None; next_seq = 0; last_verified_static = None }

let current t = t.current

let current_seq t = match t.current with Some r -> r.seq | None -> -1

let unverified_count t =
  List.length t.pending + match t.current with Some _ -> 1 | None -> 0

let is_full t = unverified_count t >= t.size

let open_region t ~static_id =
  if t.current <> None then invalid_arg "Rbb.open_region: a region is already open";
  let r = { seq = t.next_seq; static_id; end_cycle = None; verify_at = None } in
  t.next_seq <- t.next_seq + 1;
  t.current <- Some r;
  r

let close_region t ~end_cycle ~wcdl =
  match t.current with
  | None -> invalid_arg "Rbb.close_region: no open region"
  | Some r ->
    r.end_cycle <- Some end_cycle;
    r.verify_at <- Some (end_cycle + wcdl);
    t.pending <- t.pending @ [ r ];
    t.current <- None;
    r

let next_verify_time t =
  match t.pending with
  | [] -> None
  | r :: _ -> r.verify_at

let pop_verified t ~cycle =
  (* Regions verify in order; pop every closed region whose WCDL window has
     elapsed by [cycle]. *)
  let rec go acc =
    match t.pending with
    | r :: rest when (match r.verify_at with Some v -> v <= cycle | None -> false) ->
      t.pending <- rest;
      t.last_verified_static <- Some r.static_id;
      go (r :: acc)
    | _ -> List.rev acc
  in
  go []

let pending_regions t = t.pending

let last_verified_static t = t.last_verified_static
