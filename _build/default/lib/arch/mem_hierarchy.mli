(** Two-level data hierarchy modelled after the paper's gem5 configuration
    (§6.1): 64KB 2-way L1D with 2-cycle hits and a unified 128KB 16-way L2
    with 20-cycle hits, backed by flat-latency DRAM. *)

type config = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  line_bytes : int;
  l1_hit : int;  (** cycles *)
  l2_hit : int;  (** additional cycles beyond L1 *)
  mem_latency : int;  (** additional cycles beyond L2 *)
}

val default_config : config

type t

val create : config -> t

val load_latency : t -> int -> int
(** Latency in cycles of a load to a byte address, updating cache state. *)

val store_release : t -> int -> unit
(** Background store-buffer release: updates cache state (write-allocate)
    without stalling the pipeline. *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t
