type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int; (* regular stores (app + spill) *)
  mutable ckpts : int;
  mutable boundaries : int;
  mutable war_free_released : int;
  mutable colored_released : int;
  mutable quarantined : int;
  mutable ckpt_quarantined : int;
  mutable sb_full_stall_cycles : int;
  mutable data_stall_cycles : int;
  mutable rbb_stall_cycles : int;
  mutable partition_violations : int;
  mutable clq_overflows : int;
  mutable clq_mean_populated : float;
  mutable clq_max_populated : int;
  mutable coloring_fallbacks : int;
  mutable sb_mean_occupancy : float;
  mutable l1_hit_rate : float;
  mutable sb_forwards : int;
  mutable branch_mispredicts : int;
  mutable complete : bool;
}

let create () =
  {
    cycles = 0;
    instructions = 0;
    loads = 0;
    stores = 0;
    ckpts = 0;
    boundaries = 0;
    war_free_released = 0;
    colored_released = 0;
    quarantined = 0;
    ckpt_quarantined = 0;
    sb_full_stall_cycles = 0;
    data_stall_cycles = 0;
    rbb_stall_cycles = 0;
    partition_violations = 0;
    clq_overflows = 0;
    clq_mean_populated = 0.0;
    clq_max_populated = 0;
    coloring_fallbacks = 0;
    sb_mean_occupancy = 0.0;
    l1_hit_rate = 1.0;
    sb_forwards = 0;
    branch_mispredicts = 0;
    complete = true;
  }

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.instructions /. float_of_int t.cycles

let sb_writes t = t.stores + t.ckpts

let fast_released t = t.war_free_released + t.colored_released

let ckpt_ratio t =
  if t.instructions = 0 then 0.0
  else float_of_int t.ckpts /. float_of_int t.instructions

let war_free_ratio t =
  let sw = sb_writes t in
  if sw = 0 then 0.0 else float_of_int t.war_free_released /. float_of_int sw

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles=%d instrs=%d ipc=%.3f@,\
     loads=%d stores=%d ckpts=%d regions=%d@,\
     fast: war-free=%d colored=%d; quarantined=%d (ckpt %d)@,\
     stalls: sb=%d data=%d rbb=%d; clq ovf=%d mean=%.2f max=%d@,\
     l1 hit=%.3f sb occ=%.2f violations=%d@]"
    t.cycles t.instructions (ipc t) t.loads t.stores t.ckpts t.boundaries
    t.war_free_released t.colored_released t.quarantined t.ckpt_quarantined
    t.sb_full_stall_cycles t.data_stall_cycles t.rbb_stall_cycles t.clq_overflows
    t.clq_mean_populated t.clq_max_populated t.l1_hit_rate t.sb_mean_occupancy
    t.partition_violations

let to_string t = Format.asprintf "%a" pp t

let to_json t =
  let b = Buffer.create 512 in
  let field name v = Buffer.add_string b (Printf.sprintf "\"%s\":%s," name v) in
  Buffer.add_char b '{';
  field "cycles" (string_of_int t.cycles);
  field "instructions" (string_of_int t.instructions);
  field "ipc" (Printf.sprintf "%.4f" (ipc t));
  field "loads" (string_of_int t.loads);
  field "stores" (string_of_int t.stores);
  field "ckpts" (string_of_int t.ckpts);
  field "regions" (string_of_int t.boundaries);
  field "war_free_released" (string_of_int t.war_free_released);
  field "colored_released" (string_of_int t.colored_released);
  field "quarantined" (string_of_int t.quarantined);
  field "ckpt_quarantined" (string_of_int t.ckpt_quarantined);
  field "sb_full_stall_cycles" (string_of_int t.sb_full_stall_cycles);
  field "data_stall_cycles" (string_of_int t.data_stall_cycles);
  field "rbb_stall_cycles" (string_of_int t.rbb_stall_cycles);
  field "clq_overflows" (string_of_int t.clq_overflows);
  field "clq_mean_populated" (Printf.sprintf "%.4f" t.clq_mean_populated);
  field "clq_max_populated" (string_of_int t.clq_max_populated);
  field "coloring_fallbacks" (string_of_int t.coloring_fallbacks);
  field "sb_mean_occupancy" (Printf.sprintf "%.4f" t.sb_mean_occupancy);
  field "l1_hit_rate" (Printf.sprintf "%.4f" t.l1_hit_rate);
  field "sb_forwards" (string_of_int t.sb_forwards);
  field "branch_mispredicts" (string_of_int t.branch_mispredicts);
  Buffer.add_string b (Printf.sprintf "\"complete\":%b}" t.complete);
  Buffer.contents b
