(* Set-associative write-back, write-allocate cache with true-LRU
   replacement. Timing is supplied by the enclosing hierarchy; this module
   only tracks hit/miss state. *)

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  name : string;
  sets : line array array;
  set_bits : int;
  line_bits : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let log2_exact n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v / 2) in
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Cache: size must be a power of two";
  go 0 n

let create ~name ~size_bytes ~assoc ~line_bytes =
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc*line";
  let n_sets = size_bytes / (assoc * line_bytes) in
  let set_bits = log2_exact n_sets and line_bits = log2_exact line_bytes in
  let sets =
    Array.init n_sets (fun _ ->
        Array.init assoc (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 }))
  in
  { name; sets; set_bits; line_bits; tick = 0; hits = 0; misses = 0; writebacks = 0 }

let index_tag t addr =
  let line_addr = addr lsr t.line_bits in
  let idx = line_addr land ((1 lsl t.set_bits) - 1) in
  let tag = line_addr lsr t.set_bits in
  (idx, tag)

let touch t line =
  t.tick <- t.tick + 1;
  line.lru <- t.tick

let access t ~write addr =
  let idx, tag = index_tag t addr in
  let set = t.sets.(idx) in
  let found = ref None in
  Array.iter (fun l -> if l.valid && l.tag = tag then found := Some l) set;
  match !found with
  | Some l ->
    touch t l;
    if write then l.dirty <- true;
    t.hits <- t.hits + 1;
    `Hit
  | None ->
    t.misses <- t.misses + 1;
    (* Victim = least recently used (invalid lines first). *)
    let victim = ref set.(0) in
    Array.iter
      (fun l ->
        if not l.valid then victim := l
        else if !victim.valid && l.lru < !victim.lru then victim := l)
      set;
    let v = !victim in
    if v.valid && v.dirty then t.writebacks <- t.writebacks + 1;
    v.valid <- true;
    v.tag <- tag;
    v.dirty <- write;
    touch t v;
    `Miss

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
