(** Trace-driven model of an out-of-order core, for the paper's motivating
    comparison (§1, §3): Turnstile's verification is cheap on OoO machines
    (40-entry store buffer, dynamic scheduling hides checkpoint hazards)
    while the same scheme devastates an in-order core. Dataflow-limited
    execution under a reorder window, 2 ALUs, one load and one store port,
    and branch-misprediction fetch stalls. *)

type config = {
  rob_size : int;
  alus : int;
  sb_size : int;  (** 40 entries, as the paper attributes to OoO cores *)
  wcdl : int;
  verification : bool;  (** quarantine stores until region verification *)
  branch_penalty : int;
  mem : Mem_hierarchy.config;
}

val default_config : config
(** Unprotected OoO baseline: 64-entry window, 40-entry SB. *)

val turnstile_config : ?wcdl:int -> unit -> config
(** Turnstile on the OoO core: verification on. *)

val simulate : config -> Turnpike_ir.Trace.t -> Sim_stats.t
