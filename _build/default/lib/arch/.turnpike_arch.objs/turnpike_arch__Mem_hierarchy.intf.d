lib/arch/mem_hierarchy.pp.mli: Cache
