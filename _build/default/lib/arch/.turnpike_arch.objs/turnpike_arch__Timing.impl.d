lib/arch/timing.pp.ml: Branch_predictor Cache Clq Coloring Hashtbl Layout List Machine Mem_hierarchy Option Printf Rbb Reg Sim_stats Store_buffer Trace Turnpike_ir
