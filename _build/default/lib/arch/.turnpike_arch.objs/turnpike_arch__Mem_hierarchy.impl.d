lib/arch/mem_hierarchy.pp.ml: Cache
