lib/arch/ooo_timing.pp.mli: Mem_hierarchy Sim_stats Turnpike_ir
