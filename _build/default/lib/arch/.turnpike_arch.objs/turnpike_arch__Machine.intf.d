lib/arch/machine.pp.mli: Clq Mem_hierarchy
