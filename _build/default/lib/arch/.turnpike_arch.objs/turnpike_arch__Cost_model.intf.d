lib/arch/cost_model.pp.mli:
