lib/arch/clq.pp.ml: Int List Set
