lib/arch/branch_predictor.pp.mli:
