lib/arch/coloring.pp.mli:
