lib/arch/timing.pp.mli: Machine Sim_stats Turnpike_ir
