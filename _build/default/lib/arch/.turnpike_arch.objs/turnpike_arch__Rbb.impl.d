lib/arch/rbb.pp.ml: List
