lib/arch/ooo_timing.pp.ml: Array Branch_predictor Cache Hashtbl Layout List Mem_hierarchy Option Rbb Reg Sim_stats Store_buffer Trace Turnpike_ir
