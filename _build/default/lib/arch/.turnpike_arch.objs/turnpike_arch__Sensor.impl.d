lib/arch/sensor.pp.ml: Float
