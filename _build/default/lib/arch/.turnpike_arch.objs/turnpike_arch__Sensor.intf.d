lib/arch/sensor.pp.mli:
