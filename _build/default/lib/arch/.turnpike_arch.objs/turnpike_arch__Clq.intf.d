lib/arch/clq.pp.mli:
