lib/arch/store_buffer.pp.mli:
