lib/arch/sim_stats.pp.ml: Buffer Format Printf
