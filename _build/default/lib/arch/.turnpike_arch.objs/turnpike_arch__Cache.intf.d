lib/arch/cache.pp.mli:
