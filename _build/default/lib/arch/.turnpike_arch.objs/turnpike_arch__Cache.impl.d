lib/arch/cache.pp.ml: Array
