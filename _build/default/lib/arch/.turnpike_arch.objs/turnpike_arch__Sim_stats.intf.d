lib/arch/sim_stats.pp.mli: Format
