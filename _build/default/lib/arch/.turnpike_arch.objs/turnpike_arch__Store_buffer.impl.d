lib/arch/store_buffer.pp.ml: List
