lib/arch/rbb.pp.mli:
