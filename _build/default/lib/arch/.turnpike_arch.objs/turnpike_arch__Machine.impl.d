lib/arch/machine.pp.ml: Clq Mem_hierarchy Printf Sensor
