lib/arch/cost_model.pp.ml: Turnpike_ir
