lib/arch/coloring.pp.ml: Array List Turnpike_ir
