lib/arch/branch_predictor.pp.ml: Array
