(** Bimodal (2-bit saturating counter) branch predictor with a
    direct-mapped pattern table, sized for small in-order cores. The
    timing model charges the fetch-redirect penalty only on
    mispredictions. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] (default 512) must be a positive power of two.
    Counters start weakly taken so loops begin predicted correctly. *)

val predict : t -> pc:int -> bool

val update : t -> pc:int -> taken:bool -> bool
(** Record the outcome and train; returns whether the prediction was
    correct. *)

val lookups : t -> int
val mispredicts : t -> int
val mispredict_rate : t -> float
