(** Per-simulation counters emitted by the timing model. *)

type t = {
  mutable cycles : int;
  mutable instructions : int;  (** executed instructions (boundaries excluded) *)
  mutable loads : int;
  mutable stores : int;  (** regular stores (application + spill) *)
  mutable ckpts : int;
  mutable boundaries : int;  (** dynamic regions entered *)
  mutable war_free_released : int;
      (** regular stores released without verification (CLQ) *)
  mutable colored_released : int;
      (** checkpoint stores released without verification (coloring) *)
  mutable quarantined : int;  (** store-buffer writes that waited for verification *)
  mutable ckpt_quarantined : int;  (** the checkpoint subset of [quarantined] *)
  mutable sb_full_stall_cycles : int;
  mutable data_stall_cycles : int;
  mutable rbb_stall_cycles : int;
  mutable partition_violations : int;
      (** force-released entries of an over-full single region *)
  mutable clq_overflows : int;
  mutable clq_mean_populated : float;
  mutable clq_max_populated : int;
  mutable coloring_fallbacks : int;
  mutable sb_mean_occupancy : float;
  mutable l1_hit_rate : float;
  mutable sb_forwards : int;  (** loads served by store-to-load forwarding *)
  mutable branch_mispredicts : int;
  mutable complete : bool;  (** trace ran to program completion *)
}

val create : unit -> t

val ipc : t -> float
val sb_writes : t -> int
val fast_released : t -> int

val ckpt_ratio : t -> float
(** Dynamic checkpoints / executed instructions (paper Fig 4). *)

val war_free_ratio : t -> float
(** WAR-free released stores / all store-buffer writes (paper Fig 15). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> string
(** One flat JSON object of all counters (for external tooling). *)
