(* Two-level data hierarchy modelled after the paper's gem5 configuration:
   64KB 2-way L1D (2-cycle hit), unified 128KB 16-way L2 (20-cycle hit),
   flat DRAM latency behind it. *)

type config = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  line_bytes : int;
  l1_hit : int;
  l2_hit : int;
  mem_latency : int;
}

let default_config =
  {
    l1_size = 64 * 1024;
    l1_assoc = 2;
    l2_size = 128 * 1024;
    l2_assoc = 16;
    line_bytes = 64;
    l1_hit = 2;
    l2_hit = 20;
    mem_latency = 80;
  }

type t = { config : config; l1 : Cache.t; l2 : Cache.t }

let create config =
  {
    config;
    l1 =
      Cache.create ~name:"L1D" ~size_bytes:config.l1_size ~assoc:config.l1_assoc
        ~line_bytes:config.line_bytes;
    l2 =
      Cache.create ~name:"L2" ~size_bytes:config.l2_size ~assoc:config.l2_assoc
        ~line_bytes:config.line_bytes;
  }

let load_latency t addr =
  match Cache.access t.l1 ~write:false addr with
  | `Hit -> t.config.l1_hit
  | `Miss -> (
    match Cache.access t.l2 ~write:false addr with
    | `Hit -> t.config.l1_hit + t.config.l2_hit
    | `Miss -> t.config.l1_hit + t.config.l2_hit + t.config.mem_latency)

let store_release t addr =
  (* Store-buffer releases happen in the background; they update cache
     state (write-allocate) but do not stall the pipeline. *)
  match Cache.access t.l1 ~write:true addr with
  | `Hit -> ()
  | `Miss -> ignore (Cache.access t.l2 ~write:true addr)

let l1 t = t.l1
let l2 t = t.l2
