(** Region boundary buffer (RBB), paper §2.1 and Fig 2.

    One entry per in-flight (unverified) dynamic region: when the region
    ended, when it verifies, and which static region it instantiates (the
    recovery-PC anchor). Regions verify strictly in order. *)

type region = {
  seq : int;  (** dynamic region sequence number *)
  static_id : int;  (** static region id of the boundary that opened it *)
  mutable end_cycle : int option;
  mutable verify_at : int option;
}

type t

val create : int -> t
(** [create size]. @raise Invalid_argument on non-positive size. *)

val current : t -> region option
(** The open (still executing) region, if any. *)

val current_seq : t -> int
(** Sequence number of the open region, or [-1]. *)

val unverified_count : t -> int
(** Open region plus closed-but-unverified regions. *)

val is_full : t -> bool

val open_region : t -> static_id:int -> region
(** @raise Invalid_argument if a region is already open. *)

val close_region : t -> end_cycle:int -> wcdl:int -> region
(** Close the open region: it will verify at [end_cycle + wcdl].
    @raise Invalid_argument if no region is open. *)

val next_verify_time : t -> int option
(** Verification time of the oldest closed region. *)

val pop_verified : t -> cycle:int -> region list
(** Remove (in order) every closed region verified by [cycle]. *)

val pending_regions : t -> region list
val last_verified_static : t -> int option
