(* Compiler explorer: dump the IR of one kernel after each phase of the
   Turnpike pipeline, making the paper's Fig 7 workflow visible — region
   boundaries, eager checkpoints, pruning, LICM sinking and
   checkpoint-aware scheduling.

   Run with:  dune exec examples/compiler_explorer.exe *)

open Turnpike_ir
open Turnpike_compiler

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let dump func = print_string (Func.to_string func)

let () =
  let prog = Turnpike_workloads.Templates.flag_loop ~seed:5 ~iters:16 () in

  banner "Source (virtual registers)";
  dump prog.Prog.func;

  (* Phase 1a: loop induction variable merging happens pre-RA; flag_loop
     uses index addressing, so show it on a stream kernel instead. *)
  let stream = Turnpike_workloads.Templates.stream_store ~seed:3 ~iters:16 ~ways:1 () in
  let f = Func.copy stream.Prog.func in
  let livm = Livm.run f in
  banner (Printf.sprintf "LIVM on a stream kernel (%d induction variable(s) merged)" livm.Livm.merged);
  dump livm.Livm.func;

  (* Phase 1b: register allocation. *)
  let prog = Prog.with_func prog (Func.copy prog.Prog.func) in
  let ra = Regalloc.run prog.Prog.func in
  banner
    (Printf.sprintf "After register allocation (%d spills, %d spill stores)"
       ra.Regalloc.spilled_vregs ra.Regalloc.spill_stores);
  dump ra.Regalloc.func;

  (* Phase 2: SB-aware partitioning + eager checkpointing. *)
  ignore (Regions.partition ~budget:2 prog.Prog.func);
  let _, inserted = Checkpoint.insert prog.Prog.func in
  banner (Printf.sprintf "Regions + eager checkpoints (%d inserted)" inserted);
  dump prog.Prog.func;

  (* Phase 3: optimal checkpoint pruning. *)
  let pr = Pruning.run prog.Prog.func in
  banner (Printf.sprintf "After pruning (%d checkpoints removed)" pr.Pruning.pruned);
  Hashtbl.iter
    (fun reg expr ->
      Printf.printf "  recovery: %s := %s\n" (Reg.to_string reg)
        (Recovery_expr.to_string expr))
    pr.Pruning.exprs;
  dump prog.Prog.func;

  (* Phase 4: LICM checkpoint sinking. *)
  let li = Licm_sink.run prog.Prog.func in
  banner
    (Printf.sprintf "After LICM sinking (%d moved, %d deduplicated)" li.Licm_sink.moved
       li.Licm_sink.eliminated);
  dump prog.Prog.func;

  (* Phase 5: checkpoint-aware scheduling. *)
  let sc = Scheduling.run prog.Prog.func in
  banner (Printf.sprintf "After scheduling (%d checkpoints separated)" sc.Scheduling.moved);
  dump prog.Prog.func;

  (* Region metadata the resilience engine consumes. *)
  let compiled = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
  banner "Recovery metadata (per region: head block + live-in registers)";
  Array.iter
    (fun (info : Pass_pipeline.region_info) ->
      Printf.printf "  region %d @ %s: restore [%s]\n" info.Pass_pipeline.id
        info.Pass_pipeline.head
        (String.concat ", "
           (List.map Reg.to_string info.Pass_pipeline.live_in)))
    compiled.Pass_pipeline.regions;

  (* The actual recovery blocks the core would execute (paper Fig 1b). *)
  let blocks = Recovery_codegen.generate ~compiled ~nregs:32 in
  banner
    (Printf.sprintf "Generated recovery blocks (%d instructions total)"
       (Recovery_codegen.size blocks));
  List.iter (fun blk -> print_string (Recovery_codegen.to_string blk)) blocks
