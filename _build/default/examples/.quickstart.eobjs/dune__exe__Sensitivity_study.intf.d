examples/sensitivity_study.mli:
