examples/sensitivity_study.ml: List Printf Turnpike Turnpike_arch Turnpike_workloads
