examples/quickstart.ml: Builder Instr Interp Layout List Printf Turnpike Turnpike_arch Turnpike_compiler Turnpike_ir Turnpike_workloads
