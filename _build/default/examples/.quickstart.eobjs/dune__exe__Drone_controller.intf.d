examples/drone_controller.mli:
