examples/quickstart.mli:
