(* Domain example: a flight-controller-style control loop on a
   radiation-exposed in-order core — the embedded, battery-powered setting
   the paper motivates (drones, wearables, automotive ECUs) where DMR/TMR
   is too heavy and soft errors must still never corrupt actuator output.

   The kernel reads a sensor ring buffer, runs a PI-style control update
   and writes actuator commands. We (1) measure Turnpike's run-time cost
   on this loop, and (2) bombard it with single-bit register faults and
   verify the actuator trace is bit-identical to the fault-free run —
   SDC-freedom, the property acoustic-sensor verification exists to
   provide.

   Run with:  dune exec examples/drone_controller.exe *)

open Turnpike_ir
module Recovery = Turnpike_resilience.Recovery
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier

let build_controller ~steps =
  let b = Builder.create "flight_controller" in
  Builder.label b "entry";
  (* Sensor readings (altitude error samples) and actuator output. *)
  let sensors =
    Builder.alloc_array b ~len:(steps + 1) ~init:(fun k ->
        Turnpike_workloads.Data_gen.int ~seed:99 ~index:k ~bound:200 - 100)
  in
  let actuators = Builder.alloc_array b ~len:(steps + 1) ~init:(fun _ -> 0) in
  let sb = Builder.fresh_reg b and ab = Builder.fresh_reg b in
  Builder.mov b ~dst:sb (Imm sensors);
  Builder.mov b ~dst:ab (Imm actuators);
  let integ = Builder.fresh_reg b and i = Builder.fresh_reg b in
  Builder.mov b ~dst:integ (Imm 0);
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "tick";
  Builder.label b "tick";
  (* err = sensors[i] *)
  let off = Builder.fresh_reg b and addr = Builder.fresh_reg b in
  Builder.binop b Instr.Shl ~dst:off ~a:i (Imm 3);
  Builder.add b ~dst:addr ~a:off (Reg sb);
  let err = Builder.fresh_reg b in
  Builder.load b ~dst:err ~base:addr ();
  (* integ += err; cmd = 3*err + integ/4 (PI controller, integer gains) *)
  Builder.add b ~dst:integ ~a:integ (Reg err);
  let p = Builder.fresh_reg b and ii = Builder.fresh_reg b and cmd = Builder.fresh_reg b in
  Builder.mul b ~dst:p ~a:err (Imm 3);
  Builder.binop b Instr.Shr ~dst:ii ~a:integ (Imm 2);
  Builder.add b ~dst:cmd ~a:p (Reg ii);
  (* actuators[i] = cmd *)
  let waddr = Builder.fresh_reg b in
  Builder.add b ~dst:waddr ~a:off (Reg ab);
  Builder.store b ~src:cmd ~base:waddr ();
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm steps);
  Builder.branch b ~cond:c ~if_true:"tick" ~if_false:"land";
  Builder.label b "land";
  Builder.ret b;
  (Builder.finish b, actuators)

let () =
  let steps = 800 in
  let prog, actuators = build_controller ~steps in

  (* ---- Cost: what does guaranteed resilience cost this control loop? *)
  let overhead scheme wcdl =
    let opts = Turnpike.Scheme.compile_opts scheme ~sb_size:4 in
    let compiled = Turnpike_compiler.Pass_pipeline.compile ~opts prog in
    let trace, _ = Interp.trace_run compiled.Turnpike_compiler.Pass_pipeline.prog in
    let machine = Turnpike.Scheme.machine scheme ~wcdl ~sb_size:4 in
    (Turnpike_arch.Timing.simulate machine trace).Turnpike_arch.Sim_stats.cycles
  in
  let base = overhead Turnpike.Scheme.baseline 10 in
  Printf.printf "control loop: %d ticks, %d baseline cycles\n" steps base;
  List.iter
    (fun wcdl ->
      Printf.printf "  WCDL=%2d: turnstile %.3fx, turnpike %.3fx\n" wcdl
        (float_of_int (overhead Turnpike.Scheme.turnstile wcdl) /. float_of_int base)
        (float_of_int (overhead Turnpike.Scheme.turnpike wcdl) /. float_of_int base))
    [ 10; 30; 50 ];

  (* ---- Safety: bombard the controller with bit flips; actuator output
     must stay bit-identical to the fault-free flight. *)
  let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.turnpike ~sb_size:4 in
  let compiled = Turnpike_compiler.Pass_pipeline.compile ~opts prog in
  let trace, golden = Interp.trace_run compiled.Turnpike_compiler.Pass_pipeline.prog in
  let faults = Injector.campaign ~seed:2024 ~count:60 trace in
  let report =
    Verifier.run_campaign ~golden ~compiled:compiled
      faults
  in
  Printf.printf
    "\nfault campaign: %d single-bit register strikes mid-flight\n"
    report.Verifier.total;
  Printf.printf "  recovered bit-exact: %d\n" report.Verifier.recovered;
  Printf.printf "  silent corruptions:  %d\n" report.Verifier.sdc;
  Printf.printf "  crashes:             %d\n" report.Verifier.crashed;
  Printf.printf "  detected by parity/AGU: %d, by acoustic sensors: %d\n"
    report.Verifier.parity_detections report.Verifier.sensor_detections;

  (* Show one recovery in action. *)
  let fault = Turnpike_resilience.Fault.single_bit ~at_step:4321 ~reg:3 ~bit:17 in
  let out = Recovery.run ~fault compiled in
  let sample k = Interp.get_mem out.Recovery.state (actuators + (k * Layout.word)) in
  let gsample k = Interp.get_mem golden (actuators + (k * Layout.word)) in
  Printf.printf
    "\nsingle strike at step %d (bit %d of r%d): %d region restart(s); actuator[300] = %d (golden %d)\n"
    fault.Turnpike_resilience.Fault.at_step 17 3 out.Recovery.recoveries (sample 300) (gsample 300);
  if report.Verifier.sdc = 0 && report.Verifier.crashed = 0 then
    print_endline "\nSDC-free: every fault was contained and recovered."
  else print_endline "\nWARNING: resilience property violated!"
