#!/usr/bin/env bash
# Tier-1 gate plus the parallel-determinism smoke tests.
#
#   tools/check.sh            build, run the test suite, then verify that
#                             --jobs 1 and --jobs 4 produce byte-identical
#                             output for the experiment grid (fig19 CSV),
#                             the fault-injection campaign (resilience
#                             table), and the telemetry timeline export
#                             (turnpike-cli trace), which must also be
#                             well-formed JSON. Also asserts that
#                             snapshot-forked campaigns are byte-identical
#                             to from-scratch replays, that --ci stopping
#                             is deterministic at any job count, that the
#                             incremental per-pass lint report is
#                             byte-identical to the forced full re-check,
#                             that forensic lifecycle exports are
#                             byte-identical at any job count and across
#                             fork vs scratch replay (and that the report
#                             subcommand convicts a planted compiler bug),
#                             that .tk kernel compiles and campaigns are
#                             byte-identical at any job count, that a bad
#                             --pipeline spec exits 1 with a diagnostic,
#                             that every command block in docs/TUTORIAL.md
#                             runs verbatim, and (advisorily) that the
#                             odoc docs build.
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== determinism smoke: fig19 CSV at --jobs 1 vs --jobs 4 =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/csv1" "$tmp/csv4"
dune exec --no-build bench/main.exe -- fig19 --scale 1 --fuel 20000 \
  --jobs 1 --csv "$tmp/csv1" > "$tmp/fig19_j1.txt"
dune exec --no-build bench/main.exe -- fig19 --scale 1 --fuel 20000 \
  --jobs 4 --csv "$tmp/csv4" > "$tmp/fig19_j4.txt"
diff -r "$tmp/csv1" "$tmp/csv4"
# The "[csv written to ...]" line names the (different) temp dirs; every
# other stdout byte must match.
diff <(grep -v '^\[csv written' "$tmp/fig19_j1.txt") \
     <(grep -v '^\[csv written' "$tmp/fig19_j4.txt")

echo "== determinism smoke: injection campaign at --jobs 1 vs --jobs 4 =="
dune exec --no-build bench/main.exe -- resilience --scale 2 --fuel 20000 \
  --faults 8 --seed 3 --jobs 1 > "$tmp/camp_j1.txt"
dune exec --no-build bench/main.exe -- resilience --scale 2 --fuel 20000 \
  --faults 8 --seed 3 --jobs 4 > "$tmp/camp_j4.txt"
diff "$tmp/camp_j1.txt" "$tmp/camp_j4.txt"

echo "== campaign smoke: snapshot-forked vs from-scratch parity =="
# The snapshot/fork replay path (default) must produce a report
# byte-identical to replaying every fault from step 0.
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 16 --seed 3 --jobs 2 > "$tmp/inject_snap.txt"
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 16 --seed 3 --jobs 2 --scratch > "$tmp/inject_scratch.txt"
diff "$tmp/inject_snap.txt" "$tmp/inject_scratch.txt"

echo "== campaign smoke: --ci stopping deterministic at --jobs 1 vs --jobs 4 =="
# Same seed and CI target => identical stopping point and report at any
# job count.
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 200 --seed 3 --ci 0.05 --batch 16 --jobs 1 > "$tmp/inject_ci_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 200 --seed 3 --ci 0.05 --batch 16 --jobs 4 > "$tmp/inject_ci_j4.txt"
diff "$tmp/inject_ci_j1.txt" "$tmp/inject_ci_j4.txt"
grep -q 'confidence' "$tmp/inject_ci_j1.txt"

echo "== forensics smoke: lifecycle export at --jobs 1 vs --jobs 4 =="
# Per-fault lifecycle traces (strike, detect, rollback, reexec,
# reconverge, outcome) must export byte-identically at any job count.
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 16 --seed 3 --jobs 1 --forensics --jsonl "$tmp/forensics_j1.jsonl" \
  > "$tmp/forensics_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 16 --seed 3 --jobs 4 --forensics --jsonl "$tmp/forensics_j4.jsonl" \
  > "$tmp/forensics_j4.txt"
diff "$tmp/forensics_j1.jsonl" "$tmp/forensics_j4.jsonl"
diff "$tmp/forensics_j1.txt" "$tmp/forensics_j4.txt"
grep -q '"name":"strike"' "$tmp/forensics_j1.jsonl"

echo "== forensics smoke: fork vs scratch lifecycle parity =="
# Snapshot-forked and from-scratch replays must trace identical
# lifecycles, byte for byte.
dune exec --no-build bin/turnpike_cli.exe -- inject -b libquan --scale 2 \
  -n 16 --seed 3 --jobs 2 --scratch --jsonl "$tmp/forensics_scratch.jsonl" \
  > /dev/null
diff "$tmp/forensics_j1.jsonl" "$tmp/forensics_scratch.jsonl"

echo "== forensics smoke: report convicts the drop-ckpt mutant =="
# The vulnerability ranking must localize a planted compiler bug: the
# top-ranked region is one that lost its live-in checkpoint (the command
# exits non-zero otherwise).
dune exec --no-build bin/turnpike_cli.exe -- report -b mcf --scale 2 -n 40 \
  --seed 11 --jobs 2 --mutant drop-ckpt > "$tmp/report_mutant.txt"
grep -q 'CONVICTED' "$tmp/report_mutant.txt"

echo "== telemetry smoke: timeline export at --jobs 1 vs --jobs 4 =="
dune exec --no-build bin/turnpike_cli.exe -- trace -b libquan --scale 1 \
  --jobs 1 --timeline "$tmp/trace_j1.json" --jsonl "$tmp/trace_j1.jsonl" \
  > "$tmp/trace_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- trace -b libquan --scale 1 \
  --jobs 4 --timeline "$tmp/trace_j4.json" --jsonl "$tmp/trace_j4.jsonl" \
  > "$tmp/trace_j4.txt"
test -s "$tmp/trace_j1.json"
grep -q '"traceEvents"' "$tmp/trace_j1.json"
grep -q '"verify_window"' "$tmp/trace_j1.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$tmp/trace_j1.json" > /dev/null
else
  echo "(python3 not found; skipping JSON syntax validation)"
fi
diff "$tmp/trace_j1.json" "$tmp/trace_j4.json"
diff "$tmp/trace_j1.jsonl" "$tmp/trace_j4.jsonl"
diff "$tmp/trace_j1.txt" "$tmp/trace_j4.txt"

echo "== lint smoke: static soundness checks over every workload =="
# Clean exit (0) is asserted by set -e; every ladder rung of every
# benchmark must produce zero Error diagnostics in per-pass mode.
dune exec --no-build bin/turnpike_cli.exe -- lint --per-pass --scale 2 \
  --jobs 1 --json > "$tmp/lint_j1.json"
grep -q '"errors":0' "$tmp/lint_j1.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$tmp/lint_j1.json" > /dev/null
fi
# Byte-identical report at any job count.
dune exec --no-build bin/turnpike_cli.exe -- lint --per-pass --scale 2 \
  --jobs 4 --json > "$tmp/lint_j4.json"
diff "$tmp/lint_j1.json" "$tmp/lint_j4.json"
# The failure path exits non-zero (unknown scheme).
if dune exec --no-build bin/turnpike_cli.exe -- lint -s no-such-scheme \
     > /dev/null 2>&1; then
  echo "lint should have failed on an unknown scheme" >&2
  exit 1
fi

echo "== lint smoke: incremental vs full re-check byte parity =="
# The incremental per-pass engine (facet invalidation) must produce a
# report byte-identical to the forced non-incremental oracle.
for b in mcf radix; do
  dune exec --no-build bin/turnpike_cli.exe -- lint --per-pass -b "$b" \
    --scale 2 --jobs 1 --json > "$tmp/lint_${b}_inc.json"
  dune exec --no-build bin/turnpike_cli.exe -- lint --per-pass --full-recheck \
    -b "$b" --scale 2 --jobs 1 --json > "$tmp/lint_${b}_full.json"
  diff "$tmp/lint_${b}_inc.json" "$tmp/lint_${b}_full.json"
done

echo "== explore smoke: tiny design grid at --jobs 1 vs --jobs 4 =="
# The design-space explorer (successive halving + Pareto frontier) must
# emit byte-identical CSV artifacts and stdout at any job count, and its
# frontier must re-validate at full scale (non-zero exit otherwise).
mkdir -p "$tmp/explore1" "$tmp/explore4"
dune exec --no-build bench/main.exe -- explore --grid tiny --scale 1 \
  --fuel 20000 --jobs 1 --csv "$tmp/explore1" > "$tmp/explore_j1.txt"
dune exec --no-build bench/main.exe -- explore --grid tiny --scale 1 \
  --fuel 20000 --jobs 4 --csv "$tmp/explore4" > "$tmp/explore_j4.txt"
diff -r "$tmp/explore1" "$tmp/explore4"
diff <(grep -v '^\[csv written' "$tmp/explore_j1.txt") \
     <(grep -v '^\[csv written' "$tmp/explore_j4.txt")
grep -q 're-validation at full scale: ok' "$tmp/explore_j1.txt"
test -s "$tmp/explore1/explore_grid.csv"
test -s "$tmp/explore1/explore_pareto.csv"
# The CLI front end drives the same engine.
dune exec --no-build bin/turnpike_cli.exe -- explore --grid tiny --scale 1 \
  --jobs 2 > "$tmp/explore_cli.txt"
grep -q 'Pareto frontier' "$tmp/explore_cli.txt"

echo "== vuln smoke: static ACE/AVF tables at --jobs 1 vs --jobs 4 =="
# The static vulnerability report must be byte-identical at any job
# count, rank at least one region, and never inject a fault.
dune exec --no-build bin/turnpike_cli.exe -- lint --vuln -b mcf --scale 2 \
  --jobs 1 --json > "$tmp/vuln_j1.json"
dune exec --no-build bin/turnpike_cli.exe -- lint --vuln -b mcf --scale 2 \
  --jobs 4 --json > "$tmp/vuln_j4.json"
diff "$tmp/vuln_j1.json" "$tmp/vuln_j4.json"
grep -q '"predicted_avf"' "$tmp/vuln_j1.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$tmp/vuln_j1.json" > /dev/null
fi
dune exec --no-build bin/turnpike_cli.exe -- lint --vuln -b mcf --scale 2 \
  --jobs 1 --csv "$tmp/vulncsv" > /dev/null
test -s "$tmp/vulncsv/vuln_by_region.csv"
test -s "$tmp/vulncsv/vuln_by_register.csv"
test -s "$tmp/vulncsv/vuln_by_site.csv"
# The static ranking must be comparable against a real campaign's
# forensics tables from the report CLI.
dune exec --no-build bin/turnpike_cli.exe -- report -b mcf --scale 2 -n 40 \
  --seed 11 --compare-static > "$tmp/vuln_compare.txt"
grep -q 'static-vs-dynamic rank agreement' "$tmp/vuln_compare.txt"

echo "== explore smoke: static rung prunes before any simulation =="
# With --static-proxy the zero-campaign static rung must score the whole
# grid, halve it before the first simulated cycle, and leave the final
# frontier re-validating bit-exact at full scale — all byte-identical at
# any job count.
dune exec --no-build bin/turnpike_cli.exe -- explore --grid tiny --scale 1 \
  --static-proxy --jobs 1 > "$tmp/explore_static_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- explore --grid tiny --scale 1 \
  --static-proxy --jobs 4 > "$tmp/explore_static_j4.txt"
diff "$tmp/explore_static_j1.txt" "$tmp/explore_static_j4.txt"
grep -q 'static=4' "$tmp/explore_static_j1.txt"
grep -q 're-validation at full scale: ok' "$tmp/explore_static_j1.txt"

echo "== .tk smoke: compile + campaign byte-identical at --jobs 1 vs --jobs 4 =="
# The .tk frontend feeds the same deterministic machinery: the compile
# listing and a fault campaign on a user kernel must not depend on the
# worker count.
dune exec --no-build bin/turnpike_cli.exe -- compile examples/triad.tk \
  --scale 2 --jobs 1 --pipeline=default > "$tmp/tk_compile_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- compile examples/triad.tk \
  --scale 2 --jobs 4 --pipeline=default > "$tmp/tk_compile_j4.txt"
diff "$tmp/tk_compile_j1.txt" "$tmp/tk_compile_j4.txt"
grep -q 'passes:' "$tmp/tk_compile_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- inject -b examples/triad.tk \
  --scale 2 -n 16 --seed 3 --jobs 1 > "$tmp/tk_inject_j1.txt"
dune exec --no-build bin/turnpike_cli.exe -- inject -b examples/triad.tk \
  --scale 2 -n 16 --seed 3 --jobs 4 > "$tmp/tk_inject_j4.txt"
diff "$tmp/tk_inject_j1.txt" "$tmp/tk_inject_j4.txt"
grep -q 'triad@tk' "$tmp/tk_inject_j1.txt"

echo "== .tk smoke: bad --pipeline specs exit 1 with a diagnostic =="
if dune exec --no-build bin/turnpike_cli.exe -- compile examples/triad.tk \
     --pipeline=nope > /dev/null 2> "$tmp/pipe_unknown.err"; then
  echo "compile should have rejected an unknown pass" >&2
  exit 1
fi
grep -q "unknown pass \`nope'" "$tmp/pipe_unknown.err"
if dune exec --no-build bin/turnpike_cli.exe -- compile examples/triad.tk \
     --pipeline=-regalloc > /dev/null 2> "$tmp/pipe_mandatory.err"; then
  echo "compile should have rejected dropping a mandatory pass" >&2
  exit 1
fi
grep -q 'mandatory' "$tmp/pipe_mandatory.err"
if dune exec --no-build bin/turnpike_cli.exe -- compile examples/triad.tk \
     --pipeline=regalloc,livm,partition_and_checkpoint,region_metadata \
     > /dev/null 2> "$tmp/pipe_order.err"; then
  echo "compile should have rejected an unsound pass order" >&2
  exit 1
fi
grep -q 'must run before' "$tmp/pipe_order.err"

echo "== tutorial smoke: docs/TUTORIAL.md command blocks run verbatim =="
# Every ```sh block in the tutorial executes in a scratch directory with
# turnpike-cli shimmed to the freshly built binary.
repo="$PWD"
mkdir -p "$tmp/shim" "$tmp/tutorial"
printf '#!/usr/bin/env bash\nexec "%s/_build/default/bin/turnpike_cli.exe" "$@"\n' \
  "$repo" > "$tmp/shim/turnpike-cli"
chmod +x "$tmp/shim/turnpike-cli"
awk '/^```sh$/ { run = 1; next } /^```$/ { run = 0 } run' docs/TUTORIAL.md \
  > "$tmp/tutorial/script.sh"
grep -q 'turnpike-cli report' "$tmp/tutorial/script.sh"
(cd "$tmp/tutorial" && PATH="$tmp/shim:$PATH" bash -euo pipefail script.sh \
  > tutorial.log)
test -s "$tmp/tutorial/vuln.json"
grep -q 'confidence' "$tmp/tutorial/tutorial.log"

echo "== docs smoke: odoc build (advisory) =="
if command -v odoc > /dev/null 2>&1; then
  if ! dune build @doc > "$tmp/odoc.log" 2>&1; then
    echo "(advisory) dune build @doc failed:" >&2
    cat "$tmp/odoc.log" >&2
  fi
else
  echo "(odoc not found; skipping doc build)"
fi

echo "check.sh: OK"
