(** Domain-based work pool underlying every Turnpike fan-out.

    Tasks are indexed and workers pull indices from an atomic counter, so
    scheduling is dynamic but results are always delivered in task order:
    output is identical regardless of the number of domains. The library
    has no simulator dependencies and sits below everything else in the
    stack — the experiment grid ({!Turnpike.Experiments}), the per-fault
    injection campaign ({!Turnpike_resilience.Verifier}) and the
    executables all share one pool configuration.

    A {!map} issued from inside a pool worker runs sequentially in that
    worker, so nested fan-outs (a campaign inside a grid cell) never
    multiply the domain count past the configured width — and stay
    deterministic. *)

val set_telemetry : Turnpike_telemetry.sink -> unit
(** Install a pool telemetry sink. While an enabled sink is installed,
    every {!map} records one wall-clock span per task (tid = executing
    worker index, ["pool"] category), a map-level span, and publishes a
    {!map_stats} summary via {!last_map_stats}. Install
    {!Turnpike_telemetry.null} (the initial state) to turn recording off;
    the task loop then performs no clock reads. Nested maps record
    nothing: their time is accounted to the enclosing worker's task
    span. *)

type map_stats = {
  tasks : int;
  jobs : int;  (** workers used, including the calling domain *)
  wall_us : int;  (** wall-clock of the whole map call *)
  busy_us : int array;  (** per-worker task time; index 0 = calling domain *)
  worker_tasks : int array;  (** tasks executed per worker *)
}

val utilization : map_stats -> float
(** Mean worker utilization in [0, 1]: total busy time over
    [jobs × wall]. The pool-health number multi-core scaling claims rest
    on. *)

val last_map_stats : unit -> map_stats option
(** The summary of the most recent recorded (non-nested) {!map}, if any
    map ran while an enabled telemetry sink was installed. *)

val set_default_jobs : int -> unit
(** Set the pool width used when [?jobs] is not passed. [0] restores the
    default: [Domain.recommended_domain_count ()]. This is what the
    [--jobs N] flag of the executables sets. *)

val effective_jobs : unit -> int
(** The pool width that an unqualified {!map} will use right now. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f tasks] applies [f] to every task, distributing tasks over
    [jobs] domains (default {!effective_jobs}); [results.(i) = f tasks.(i)].
    With [jobs = 1] (or a single task, or when called from inside another
    [map]'s worker) everything runs sequentially in the calling domain —
    bit-for-bit the pre-parallel behaviour. If any task raises, all
    workers drain and the exception of the lowest-indexed failing task is
    re-raised. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val grid :
  ?jobs:int ->
  items:'a list ->
  configs:'c list ->
  ('a -> 'c -> 'b) ->
  ('a * ('c * 'b) list) list
(** [grid ~items ~configs f] evaluates [f item config] over the full
    cartesian product as one flat task list (so the pool sees the whole
    (benchmark × config) grid at once), then regroups the results per item
    in input order. *)
