(** Domain-based work pool underlying every Turnpike fan-out.

    Tasks are indexed and workers pull indices from an atomic counter, so
    scheduling is dynamic but results are always delivered in task order:
    output is identical regardless of the number of domains. The library
    has no simulator dependencies and sits below everything else in the
    stack — the experiment grid ({!Turnpike.Experiments}), the per-fault
    injection campaign ({!Turnpike_resilience.Verifier}) and the
    executables all share one pool configuration.

    A {!map} issued from inside a pool worker runs sequentially in that
    worker, so nested fan-outs (a campaign inside a grid cell) never
    multiply the domain count past the configured width — and stay
    deterministic. *)

val set_default_jobs : int -> unit
(** Set the pool width used when [?jobs] is not passed. [0] restores the
    default: [Domain.recommended_domain_count ()]. This is what the
    [--jobs N] flag of the executables sets. *)

val effective_jobs : unit -> int
(** The pool width that an unqualified {!map} will use right now. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f tasks] applies [f] to every task, distributing tasks over
    [jobs] domains (default {!effective_jobs}); [results.(i) = f tasks.(i)].
    With [jobs = 1] (or a single task, or when called from inside another
    [map]'s worker) everything runs sequentially in the calling domain —
    bit-for-bit the pre-parallel behaviour. If any task raises, all
    workers drain and the exception of the lowest-indexed failing task is
    re-raised. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val grid :
  ?jobs:int ->
  items:'a list ->
  configs:'c list ->
  ('a -> 'c -> 'b) ->
  ('a * ('c * 'b) list) list
(** [grid ~items ~configs f] evaluates [f item config] over the full
    cartesian product as one flat task list (so the pool sees the whole
    (benchmark × config) grid at once), then regroups the results per item
    in input order. *)
