(* Domain-based work pool. Tasks are indexed; workers pull the next index
   from an atomic counter, so scheduling is dynamic but results are always
   delivered in task order — identical output regardless of the number of
   domains. [jobs = 1] runs every task in the calling domain, preserving
   strictly sequential behaviour.

   The pool sits below every simulation layer (it has no Turnpike
   dependencies), so both the experiment grid in [Turnpike.Experiments]
   and the per-fault campaign fan-out in [Turnpike_resilience.Verifier]
   run on the same domain budget. A map issued from inside a worker runs
   sequentially in that worker (tracked with a domain-local flag): nested
   fan-out never multiplies the domain count past the configured width. *)

module Telemetry = Turnpike_telemetry

let default_jobs : int Atomic.t = Atomic.make 0
(* 0 means "auto": the runtime's recommended domain count. *)

(* Pool telemetry. When a sink is installed, every [map] records one
   wall-clock span per task (tid = worker index) plus a map-level span,
   and publishes a [map_stats] summary — per-worker busy time against the
   map's wall time, the utilization evidence the multi-core scaling
   numbers need. The default [Telemetry.null] sink keeps the task loop
   free of clock reads. *)
let telemetry : Telemetry.sink Atomic.t = Atomic.make Telemetry.null

let set_telemetry s = Atomic.set telemetry s

type map_stats = {
  tasks : int;
  jobs : int;
  wall_us : int;
  busy_us : int array; (* per worker; index 0 is the calling domain *)
  worker_tasks : int array;
}

let utilization (s : map_stats) =
  if s.wall_us <= 0 || s.jobs = 0 then 0.0
  else
    let busy = Array.fold_left ( + ) 0 s.busy_us in
    float_of_int busy /. (float_of_int s.wall_us *. float_of_int s.jobs)

let last_stats : map_stats option Atomic.t = Atomic.make None

let last_map_stats () = Atomic.get last_stats

let set_default_jobs n = Atomic.set default_jobs (max 0 n)

let effective_jobs () =
  match Atomic.get default_jobs with
  | 0 -> Domain.recommended_domain_count ()
  | n -> n

(* True while the current domain is executing tasks on behalf of a pool;
   a nested [map] then degrades to sequential instead of spawning. *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Exceptions raised by tasks are captured per-index and the one with the
   lowest task index is re-raised after all workers drain — so failure
   behaviour is deterministic too, and no domain is left unjoined. *)
let map ?jobs (f : 'a -> 'b) (tasks : 'a array) : 'b array =
  let n = Array.length tasks in
  let jobs =
    min n (match jobs with Some j -> max 1 j | None -> effective_jobs ())
  in
  let nested = Domain.DLS.get inside_worker in
  let tel = Atomic.get telemetry in
  (* A nested map is accounted to the enclosing worker's task span, so it
     records nothing of its own. *)
  let record = Telemetry.enabled tel && not nested in
  if jobs <= 1 || n <= 1 || nested then
    if not record then Array.map f tasks
    else begin
      let t0 = Telemetry.Clock.now_us () in
      let busy = ref 0 in
      let results =
        Array.mapi
          (fun i x ->
            let s = Telemetry.Clock.now_us () in
            let v = f x in
            let d = Telemetry.Clock.now_us () - s in
            busy := !busy + d;
            Telemetry.complete tel ~ts:s ~dur:d ~tid:0 ~cat:"pool"
              ~args:[ ("index", Telemetry.Int i) ]
              "task";
            v)
          tasks
      in
      let wall = Telemetry.Clock.now_us () - t0 in
      Telemetry.complete tel ~ts:t0 ~dur:wall ~tid:1 ~cat:"pool"
        ~args:[ ("tasks", Telemetry.Int n); ("jobs", Telemetry.Int 1) ]
        "map";
      Atomic.set last_stats
        (Some
           {
             tasks = n;
             jobs = 1;
             wall_us = wall;
             busy_us = [| !busy |];
             worker_tasks = [| n |];
           });
      results
    end
  else begin
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let next = Atomic.make 0 in
    let t0 = if record then Telemetry.Clock.now_us () else 0 in
    (* Each slot is written by exactly its own worker. *)
    let busy = Array.make jobs 0 in
    let worker_tasks = Array.make jobs 0 in
    let run_task i =
      match f tasks.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    in
    let rec worker w =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        if record then begin
          let s = Telemetry.Clock.now_us () in
          run_task i;
          let d = Telemetry.Clock.now_us () - s in
          busy.(w) <- busy.(w) + d;
          worker_tasks.(w) <- worker_tasks.(w) + 1;
          Telemetry.complete tel ~ts:s ~dur:d ~tid:w ~cat:"pool"
            ~args:[ ("index", Telemetry.Int i) ]
            "task"
        end
        else run_task i;
        worker w
      end
    in
    let guarded_worker w () =
      Domain.DLS.set inside_worker true;
      Fun.protect
        (fun () -> worker w)
        ~finally:(fun () -> Domain.DLS.set inside_worker false)
    in
    let helpers =
      List.init (jobs - 1) (fun k -> Domain.spawn (guarded_worker (k + 1)))
    in
    guarded_worker 0 ();
    List.iter Domain.join helpers;
    if record then begin
      let wall = Telemetry.Clock.now_us () - t0 in
      Telemetry.complete tel ~ts:t0 ~dur:wall ~tid:jobs ~cat:"pool"
        ~args:[ ("tasks", Telemetry.Int n); ("jobs", Telemetry.Int jobs) ]
        "map";
      Atomic.set last_stats
        (Some { tasks = n; jobs; wall_us = wall; busy_us = busy; worker_tasks })
    end;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> assert false (* all indices visited *))
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

(* The (item × config) grid pattern used by the figure drivers: flatten the
   cartesian product into one task list, fan it out, and regroup the
   results per item (each item owns a consecutive run of |configs| tasks,
   so regrouping is deterministic). *)
let grid ?jobs ~items ~configs (f : 'a -> 'c -> 'b) : ('a * ('c * 'b) list) list =
  let tasks =
    List.concat_map (fun it -> List.map (fun c -> (it, c)) configs) items
  in
  let results = map_list ?jobs (fun (it, c) -> f it c) tasks in
  let k = List.length configs in
  let rec split acc rs = function
    | [] ->
      assert (rs = []);
      List.rev acc
    | it :: items ->
      let rec take n rs =
        if n = 0 then ([], rs)
        else
          match rs with
          | r :: rest ->
            let taken, rest = take (n - 1) rest in
            (r :: taken, rest)
          | [] -> assert false
      in
      let mine, rest = take k rs in
      split ((it, List.combine configs mine) :: acc) rest items
  in
  split [] results items
