(* Domain-based work pool. Tasks are indexed; workers pull the next index
   from an atomic counter, so scheduling is dynamic but results are always
   delivered in task order — identical output regardless of the number of
   domains. [jobs = 1] runs every task in the calling domain, preserving
   strictly sequential behaviour.

   The pool sits below every simulation layer (it has no Turnpike
   dependencies), so both the experiment grid in [Turnpike.Experiments]
   and the per-fault campaign fan-out in [Turnpike_resilience.Verifier]
   run on the same domain budget. A map issued from inside a worker runs
   sequentially in that worker (tracked with a domain-local flag): nested
   fan-out never multiplies the domain count past the configured width. *)

let default_jobs : int Atomic.t = Atomic.make 0
(* 0 means "auto": the runtime's recommended domain count. *)

let set_default_jobs n = Atomic.set default_jobs (max 0 n)

let effective_jobs () =
  match Atomic.get default_jobs with
  | 0 -> Domain.recommended_domain_count ()
  | n -> n

(* True while the current domain is executing tasks on behalf of a pool;
   a nested [map] then degrades to sequential instead of spawning. *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Exceptions raised by tasks are captured per-index and the one with the
   lowest task index is re-raised after all workers drain — so failure
   behaviour is deterministic too, and no domain is left unjoined. *)
let map ?jobs (f : 'a -> 'b) (tasks : 'a array) : 'b array =
  let n = Array.length tasks in
  let jobs =
    min n (match jobs with Some j -> max 1 j | None -> effective_jobs ())
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_worker then Array.map f tasks
  else begin
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f tasks.(i) with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some e);
        worker ()
      end
    in
    let guarded_worker () =
      Domain.DLS.set inside_worker true;
      Fun.protect worker ~finally:(fun () -> Domain.DLS.set inside_worker false)
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn guarded_worker) in
    guarded_worker ();
    List.iter Domain.join helpers;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> assert false (* all indices visited *))
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

(* The (item × config) grid pattern used by the figure drivers: flatten the
   cartesian product into one task list, fan it out, and regroup the
   results per item (each item owns a consecutive run of |configs| tasks,
   so regrouping is deterministic). *)
let grid ?jobs ~items ~configs (f : 'a -> 'c -> 'b) : ('a * ('c * 'b) list) list =
  let tasks =
    List.concat_map (fun it -> List.map (fun c -> (it, c)) configs) items
  in
  let results = map_list ?jobs (fun (it, c) -> f it c) tasks in
  let k = List.length configs in
  let rec split acc rs = function
    | [] ->
      assert (rs = []);
      List.rev acc
    | it :: items ->
      let rec take n rs =
        if n = 0 then ([], rs)
        else
          match rs with
          | r :: rest ->
            let taken, rest = take (n - 1) rest in
            (r :: taken, rest)
          | [] -> assert false
      in
      let mine, rest = take k rs in
      split ((it, List.combine configs mine) :: acc) rest items
  in
  split [] results items
