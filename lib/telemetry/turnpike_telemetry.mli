(** Counters, spans and a bounded event sink with pluggable export (JSONL
    and Chrome trace-event JSON, loadable in Perfetto).

    The library has no Turnpike dependencies and sits next to
    {!Turnpike_parallel} below every simulation layer. Three producers feed
    it: the cycle-level timing model (cycle-stamped timeline), the compile
    pipeline (per-pass wall-clock spans) and the domain pool (per-task and
    per-worker utilization spans).

    {b Determinism.} Every event carries a (task, seq) key: [task]
    identifies the producing sink — one sink per unit of parallel work —
    and [seq] is the sink-local emission index. {!merge} sorts by that
    key, so merged output depends only on what each task emitted, never on
    domain interleaving: cycle-stamped timelines export byte-identically
    at any [--jobs] count.

    {b Cost.} The {!null} sink is permanently disabled. Emission sites
    guard on {!enabled} (one immutable-field load), so simulation with
    telemetry off pays a predictable branch per would-be event and
    allocates nothing. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Counter  (** sampled value, Chrome ph "C" *)
  | Instant  (** point event, ph "i" *)
  | Begin  (** open a span on (task, tid), ph "B" *)
  | End  (** close the innermost open span, ph "E" *)
  | Complete of int  (** self-contained span with duration, ph "X" *)

type event = {
  task : int;  (** producing sink's task index (merge key, Chrome pid) *)
  seq : int;  (** sink-local emission index (merge tiebreaker) *)
  ts : int;  (** timestamp: simulation cycle or wall-clock microsecond *)
  tid : int;  (** track within the task (Chrome tid) *)
  cat : string;
  name : string;
  kind : kind;
  args : (string * value) list;
}

type sink

val null : sink
(** The permanently disabled sink: {!emit} returns immediately, nothing is
    ever stored. Default everywhere telemetry is optional. *)

val default_capacity : int

val create : ?task:int -> ?capacity:int -> unit -> sink
(** An enabled sink holding at most [capacity] (default
    {!default_capacity}) events; further emissions are counted in
    {!dropped} instead of stored. [task] (default 0) keys every event this
    sink produces. Pushes are serialized internally, so one sink may be
    shared across domains. @raise Invalid_argument on non-positive
    capacity. *)

val enabled : sink -> bool
val task : sink -> int

val emit :
  sink ->
  ?ts:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * value) list ->
  kind ->
  string ->
  unit
(** [emit sink kind name] appends one event. No-op on a disabled sink. *)

val counter : sink -> ts:int -> string -> (string * value) list -> unit
(** Sampled values (category ["counter"]); Perfetto renders each arg as a
    series. *)

val instant :
  sink -> ts:int -> ?tid:int -> ?cat:string -> ?args:(string * value) list ->
  string -> unit

val span_begin :
  sink -> ts:int -> ?tid:int -> ?cat:string -> ?args:(string * value) list ->
  string -> unit

val span_end :
  sink -> ts:int -> ?tid:int -> ?cat:string -> ?args:(string * value) list ->
  string -> unit

val complete :
  sink -> ts:int -> dur:int -> ?tid:int -> ?cat:string ->
  ?args:(string * value) list -> string -> unit
(** A self-contained span of [dur] at [ts] (clamped to non-negative). *)

val events : sink -> event list
(** Everything stored so far, in emission (seq) order. *)

val length : sink -> int

val dropped : sink -> int
(** Events rejected because the sink was at capacity. *)

val merge : sink list -> event list
(** All events of all sinks, sorted by (task, seq): the deterministic
    export order. *)

val total_dropped : sink list -> int
(** Sum of {!dropped} across [sinks] — carried alongside {!merge} so
    bounded-capacity overflow is never silent. *)

val merge_with_drops : sink list -> event list * int
(** {!merge} paired with {!total_dropped} over the same sinks. *)

(** String-keyed counting histogram with deterministic (key-sorted)
    readout; attribution layers bin events into these. Not thread-safe —
    fill from one domain or merge per-task histograms afterwards. *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> ?by:int -> string -> unit
  (** Add [by] (default 1) to the bin for [key]. *)

  val count : t -> string -> int
  (** Current count for [key] (0 when absent). *)

  val total : t -> int
  (** Sum over all bins. *)

  val to_list : t -> (string * int) list
  (** All (key, count) bins sorted by key — never hash order. *)

  val merge_into : into:t -> t -> unit
  (** Fold every bin of the second histogram into [into]. *)
end

(** Wall-clock source for {!span_start}/{!with_span}. The stdlib has no
    sub-second wall clock, so executables install [Unix.gettimeofday] at
    startup; the default is [Sys.time] (CPU seconds), which keeps this
    bottom layer dependency-free. *)
module Clock : sig
  val set : (unit -> float) -> unit
  (** Install a clock returning seconds as a float. *)

  val now_us : unit -> int
  (** Current clock reading in microseconds. *)
end

val span_start : sink -> int
(** Read the clock for a later {!span_finish}; returns 0 without touching
    the clock when the sink is disabled. *)

val span_finish :
  sink -> start:int -> ?tid:int -> ?cat:string ->
  ?args:(string * value) list -> string -> unit
(** Emit a {!Complete} wall-clock span started at [start] (from
    {!span_start}); args — e.g. a stats delta computed after the work —
    attach at finish time. No-op on a disabled sink. *)

val with_span : sink -> ?tid:int -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run a thunk under a wall-clock span. An escaping exception still emits
    the span (with an ["error"] arg) and is re-raised. *)

module Export : sig
  val escape : string -> string
  (** JSON string-body escaping (quotes, backslashes, control chars), as
      used by every exporter here — shared so layers above emit JSON with
      identical byte-level conventions. *)

  val event_to_json : event -> string
  (** One self-describing JSON object (includes task/seq). *)

  val jsonl : ?dropped:int -> event list -> string
  (** One event per line, {!event_to_json} format. A positive [dropped]
      total (from {!total_dropped}) appends a final
      [{"meta":"telemetry","dropped":N}] line so capacity overflow is
      never silent; [dropped = 0] (the default) adds nothing. *)

  val chrome :
    ?process_names:(int * string) list ->
    ?thread_names:((int * int) * string) list ->
    ?dropped:int ->
    event list ->
    string
  (** Chrome trace-event JSON ({"traceEvents":[…]}), loadable in
      Perfetto / chrome://tracing. Each task renders as a process
      (pid = task, labelled via [process_names]); [tid] separates tracks,
      labelled via [thread_names] keyed by (task, tid). A positive
      [dropped] total surfaces as ["otherData":{"droppedEvents":N}].
      Equal event lists serialize to equal bytes. *)

  val to_file : string -> string -> unit
  (** [to_file path contents]. *)
end
