(* Counters, spans and a bounded event sink with pluggable export (JSONL
   and Chrome trace-event JSON, loadable in Perfetto). The library has no
   Turnpike dependencies and sits next to [Turnpike_parallel] below every
   simulation layer.

   Determinism contract: every event carries a (task, seq) key — [task]
   identifies the producing sink (one sink per unit of parallel work) and
   [seq] is the sink-local emission index. [merge] sorts by that key, so
   the merged stream depends only on what each task emitted, never on how
   tasks interleaved across domains. Cycle-stamped simulation events are
   therefore byte-identical at any --jobs count; wall-clock spans (compile
   profiling, pool utilization) are inherently run-dependent and are kept
   out of the deterministic timeline exports.

   Cost contract: the [null] sink is permanently disabled; every emission
   site guards on [enabled], which is a single immutable-field load, so a
   simulation run with telemetry off pays one predictable branch per
   would-be event and allocates nothing. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Counter | Instant | Begin | End | Complete of int

type event = {
  task : int;
  seq : int;
  ts : int;
  tid : int;
  cat : string;
  name : string;
  kind : kind;
  args : (string * value) list;
}

type sink = {
  enabled : bool;
  task : int;
  capacity : int;
  lock : Mutex.t;
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable next_seq : int;
}

let make ~enabled ~task ~capacity =
  {
    enabled;
    task;
    capacity;
    lock = Mutex.create ();
    events = [];
    count = 0;
    dropped = 0;
    next_seq = 0;
  }

let null = make ~enabled:false ~task:0 ~capacity:0

let default_capacity = 1_000_000

let create ?(task = 0) ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Telemetry.create: capacity must be positive";
  make ~enabled:true ~task ~capacity

let enabled t = t.enabled

let task t = t.task

(* The sink is shared between pool workers (pool spans) and its own task's
   simulation, so pushes are serialized; [seq] is assigned under the lock.
   Disabled sinks return before taking it. *)
let emit t ?(ts = 0) ?(tid = 0) ?(cat = "") ?(args = []) kind name =
  if t.enabled then begin
    Mutex.lock t.lock;
    if t.count < t.capacity then begin
      let e =
        { task = t.task; seq = t.next_seq; ts; tid; cat; name; kind; args }
      in
      t.next_seq <- t.next_seq + 1;
      t.events <- e :: t.events;
      t.count <- t.count + 1
    end
    else t.dropped <- t.dropped + 1;
    Mutex.unlock t.lock
  end

let counter t ~ts name args = emit t ~ts ~cat:"counter" ~args Counter name

let instant t ~ts ?tid ?cat ?args name = emit t ~ts ?tid ?cat ?args Instant name

let span_begin t ~ts ?tid ?cat ?args name = emit t ~ts ?tid ?cat ?args Begin name

let span_end t ~ts ?tid ?cat ?args name = emit t ~ts ?tid ?cat ?args End name

let complete t ~ts ~dur ?tid ?cat ?args name =
  emit t ~ts ?tid ?cat ?args (Complete (max 0 dur)) name

let events t =
  Mutex.lock t.lock;
  let es = List.rev t.events in
  Mutex.unlock t.lock;
  es

let length t = t.count

let dropped t = t.dropped

let merge sinks =
  let all = List.concat_map events sinks in
  List.sort
    (fun (a : event) (b : event) -> compare (a.task, a.seq) (b.task, b.seq))
    all

let total_dropped sinks = List.fold_left (fun acc s -> acc + dropped s) 0 sinks

let merge_with_drops sinks = (merge sinks, total_dropped sinks)

(* ------------------------------------------------------------------ *)
(* String-keyed counting histogram with deterministic (sorted) readout;
   the attribution layers above bin events into these. *)

module Histogram = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let add t ?(by = 1) key =
    Hashtbl.replace t key (by + Option.value (Hashtbl.find_opt t key) ~default:0)

  let count t key = Option.value (Hashtbl.find_opt t key) ~default:0

  let total t = Hashtbl.fold (fun _ n acc -> n + acc) t 0

  (* Sorted by key, so readout never depends on hash order. *)
  let to_list t =
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t [])

  let merge_into ~into t = Hashtbl.iter (fun k n -> add into ~by:n k) t
end

(* ------------------------------------------------------------------ *)
(* Wall-clock. The stdlib has no sub-second wall clock, so the source is
   pluggable: executables install [Unix.gettimeofday] at startup and the
   library defaults to [Sys.time] (CPU seconds) — monotonic enough for
   profiling spans, and no dependency from this bottom layer. *)

module Clock = struct
  let source : (unit -> float) Atomic.t = Atomic.make Sys.time

  let set f = Atomic.set source f

  let now_us () = int_of_float ((Atomic.get source) () *. 1e6)
end

(* Start/finish pair for wall-clock spans whose args are only known at the
   end (e.g. a compiler pass reporting the counter delta it produced).
   [span_start] does not even read the clock when the sink is disabled. *)
let span_start t = if t.enabled then Clock.now_us () else 0

let span_finish t ~start ?tid ?cat ?args name =
  if t.enabled then begin
    let now = Clock.now_us () in
    complete t ~ts:start ~dur:(now - start) ?tid ?cat ?args name
  end

let with_span t ?tid ?cat name f =
  if not t.enabled then f ()
  else begin
    let start = Clock.now_us () in
    match f () with
    | v ->
      span_finish t ~start ?tid ?cat name;
      v
    | exception e ->
      span_finish t ~start ?tid ?cat
        ~args:[ ("error", Str (Printexc.to_string e)) ]
        name;
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Export. All numeric formatting is locale-independent and fixed-format
   so that equal event streams serialize to equal bytes. *)

module Export = struct
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let value_to_json = function
    | Int i -> string_of_int i
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.6g" f
    | Str s -> Printf.sprintf "\"%s\"" (escape s)
    | Bool b -> string_of_bool b

  let args_to_json args =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (value_to_json v))
           args)
    ^ "}"

  let phase = function
    | Counter -> "C"
    | Instant -> "i"
    | Begin -> "B"
    | End -> "E"
    | Complete _ -> "X"

  (* One self-describing JSON object per event; [jsonl] is one per line. *)
  let event_to_json (e : event) =
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"task\":%d,\"seq\":%d,\"ts\":%d,\"tid\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\""
         e.task e.seq e.ts e.tid (escape e.cat) (escape e.name)
         (phase e.kind));
    (match e.kind with
    | Complete dur -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" dur)
    | Counter | Instant | Begin | End -> ());
    if e.args <> [] then
      Buffer.add_string b (",\"args\":" ^ args_to_json e.args);
    Buffer.add_char b '}';
    Buffer.contents b

  (* Overflowed sinks are never silent: a positive [dropped] total appends
     a self-describing meta line so consumers can see the stream is
     incomplete. [dropped = 0] leaves output byte-identical to before. *)
  let jsonl ?(dropped = 0) events =
    String.concat "" (List.map (fun e -> event_to_json e ^ "\n") events)
    ^
    if dropped > 0 then
      Printf.sprintf "{\"meta\":\"telemetry\",\"dropped\":%d}\n" dropped
    else ""

  (* Chrome trace-event format (the JSON-object flavour with a
     "traceEvents" array), loadable in Perfetto / chrome://tracing. Each
     task becomes a process (pid = task), so parallel units of work get
     separate swim-lane groups; [tid] separates tracks within a task. *)
  let chrome_event (e : event) =
    let b = Buffer.create 160 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d"
         (escape e.name)
         (escape (if e.cat = "" then "event" else e.cat))
         (phase e.kind) e.ts e.task e.tid);
    (match e.kind with
    | Complete dur -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" dur)
    | Instant -> Buffer.add_string b ",\"s\":\"t\""
    | Counter | Begin | End -> ());
    if e.args <> [] then
      Buffer.add_string b (",\"args\":" ^ args_to_json e.args);
    Buffer.add_char b '}';
    Buffer.contents b

  let metadata ~pid ?tid ~meta_name name =
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
      meta_name pid
      (Option.value tid ~default:0)
      (escape name)

  let chrome ?(process_names = []) ?(thread_names = []) ?(dropped = 0) events =
    let meta =
      List.map
        (fun (pid, name) -> metadata ~pid ~meta_name:"process_name" name)
        process_names
      @ List.map
          (fun ((pid, tid), name) ->
            metadata ~pid ~tid ~meta_name:"thread_name" name)
          thread_names
    in
    let body = meta @ List.map chrome_event events in
    let other =
      if dropped > 0 then
        Printf.sprintf ",\"otherData\":{\"droppedEvents\":%d}" dropped
      else ""
    in
    "{\"traceEvents\":[\n" ^ String.concat ",\n" body ^ "\n]" ^ other ^ "}\n"

  let to_file path contents =
    let oc = open_out path in
    Fun.protect
      (fun () -> output_string oc contents)
      ~finally:(fun () -> close_out oc)
end
