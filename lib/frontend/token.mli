(** Tokens of the [.tk] kernel language.

    Produced by {!Lexer.tokenize}; every token carries the {!Srcloc.t}
    of its lexeme so parser diagnostics can point at it. *)

type kind =
  | INT of int  (** decimal or [0x] hexadecimal literal *)
  | IDENT of string
  | KW_KERNEL
  | KW_CONST
  | KW_VAR
  | KW_ARRAY
  | KW_INPUT
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | SHL  (** [<<] *)
  | SHR  (** [>>] *)
  | EQ  (** [==] *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | ANDAND  (** [&&] *)
  | OROR  (** [||] *)
  | BANG  (** [!] *)
  | EOF

type t = { kind : kind; loc : Srcloc.t }

val kind_to_string : kind -> string
(** Rendering used in parser diagnostics (["`while'"], ["`<<'"], …). *)
