(* High-level .tk frontend entry points. *)

module Suite = Turnpike_workloads.Suite

let is_tk_file path = Filename.check_suffix path ".tk"

let parse_string ?(file = "<string>") src = Parser.parse ~file src

let compile_string ?(file = "<string>") ~scale src =
  match Parser.parse ~file src with
  | Error e -> Error (Srcloc.error_to_string e)
  | Ok ast -> (
    match Lower.lower ~scale ast with
    | Error e -> Error (Srcloc.error_to_string e)
    | Ok prog -> Ok prog)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error msg -> Error (Printf.sprintf "%s: error: %s" path msg)

let compile_file ~scale path =
  match read_file path with
  | Error e -> Error e
  | Ok src -> compile_string ~file:path ~scale src

let entry_of_file path =
  match read_file path with
  | Error e -> Error e
  | Ok src -> (
    match Parser.parse ~file:path src with
    | Error e -> Error (Srcloc.error_to_string e)
    | Ok ast -> (
      (* validate once at scale 1 so obviously-broken kernels are
         rejected here rather than deep inside a campaign *)
      match Lower.lower ~scale:1 ast with
      | Error e -> Error (Srcloc.error_to_string e)
      | Ok _ ->
        Ok
          {
            Suite.name = ast.Ast.kname;
            suite = Suite.User;
            description = Printf.sprintf "user kernel from %s" path;
            build =
              (fun ~scale ->
                match Lower.lower ~scale ast with
                | Ok prog -> prog
                | Error e -> failwith (Srcloc.error_to_string e));
          }))
