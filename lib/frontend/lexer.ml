(* Hand-written lexer for the .tk kernel language. One pass over the
   source string, tracking (line, col) as it goes; every failure is a
   located [Error], never an exception. *)

let keyword = function
  | "kernel" -> Some Token.KW_KERNEL
  | "const" -> Some Token.KW_CONST
  | "var" -> Some Token.KW_VAR
  | "array" -> Some Token.KW_ARRAY
  | "input" -> Some Token.KW_INPUT
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "for" -> Some Token.KW_FOR
  | "while" -> Some Token.KW_WHILE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_char c = is_ident_start c || is_digit c

type cursor = { src : string; mutable i : int; mutable line : int; mutable col : int }

let peek cur = if cur.i < String.length cur.src then Some cur.src.[cur.i] else None

let peek2 cur =
  if cur.i + 1 < String.length cur.src then Some cur.src.[cur.i + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
    cur.line <- cur.line + 1;
    cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.i <- cur.i + 1

let pos cur = { Srcloc.line = cur.line; col = cur.col }

let tokenize ~file src =
  let cur = { src; i = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let err start_p msg =
    Error { Srcloc.loc = Srcloc.make ~file ~start_p ~end_p:(pos cur); msg }
  in
  let emit start_p kind =
    (* end position: the column of the last consumed character *)
    let end_p =
      let p = pos cur in
      if p.Srcloc.col > 1 && p.Srcloc.line = start_p.Srcloc.line then
        { p with Srcloc.col = p.Srcloc.col - 1 }
      else p
    in
    toks := { Token.kind; loc = Srcloc.make ~file ~start_p ~end_p } :: !toks
  in
  let rec skip_block_comment start_p =
    match peek cur with
    | None -> err start_p "unterminated block comment"
    | Some '*' when peek2 cur = Some '/' ->
      advance cur;
      advance cur;
      Ok ()
    | Some _ ->
      advance cur;
      skip_block_comment start_p
  in
  let rec loop () =
    match peek cur with
    | None ->
      emit (pos cur) Token.EOF;
      Ok (List.rev !toks)
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      loop ()
    | Some '/' when peek2 cur = Some '/' ->
      while peek cur <> None && peek cur <> Some '\n' do
        advance cur
      done;
      loop ()
    | Some '/' when peek2 cur = Some '*' ->
      let start_p = pos cur in
      advance cur;
      advance cur;
      (match skip_block_comment start_p with
      | Ok () -> loop ()
      | Error e -> Error e)
    | Some c when is_ident_start c ->
      let start_p = pos cur in
      let b = Buffer.create 8 in
      while match peek cur with Some c -> is_ident_char c | None -> false do
        Buffer.add_char b (Option.get (peek cur));
        advance cur
      done;
      let s = Buffer.contents b in
      emit start_p
        (match keyword s with Some k -> k | None -> Token.IDENT s);
      loop ()
    | Some c when is_digit c ->
      let start_p = pos cur in
      let hex =
        c = '0' && (peek2 cur = Some 'x' || peek2 cur = Some 'X')
      in
      let b = Buffer.create 8 in
      if hex then begin
        advance cur;
        advance cur;
        while match peek cur with Some c -> is_hex_digit c | None -> false do
          Buffer.add_char b (Option.get (peek cur));
          advance cur
        done
      end
      else
        while match peek cur with Some c -> is_digit c | None -> false do
          Buffer.add_char b (Option.get (peek cur));
          advance cur
        done;
      (* A literal immediately followed by an identifier character is a
         malformed token, not two tokens ("123abc"). *)
      (match peek cur with
      | Some c when is_ident_char c -> err start_p "malformed integer literal"
      | _ ->
        let digits = Buffer.contents b in
        if hex && digits = "" then err start_p "malformed hexadecimal literal"
        else
          match
            int_of_string_opt (if hex then "0x" ^ digits else digits)
          with
          | Some n ->
            emit start_p (Token.INT n);
            loop ()
          | None -> err start_p "integer literal out of range")
    | Some c ->
      let start_p = pos cur in
      let two k =
        advance cur;
        advance cur;
        emit start_p k;
        loop ()
      in
      let one k =
        advance cur;
        emit start_p k;
        loop ()
      in
      (match (c, peek2 cur) with
      | '<', Some '<' -> two Token.SHL
      | '>', Some '>' -> two Token.SHR
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | '=', Some '=' -> two Token.EQ
      | '!', Some '=' -> two Token.NE
      | '&', Some '&' -> two Token.ANDAND
      | '|', Some '|' -> two Token.OROR
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '=', _ -> one Token.ASSIGN
      | '!', _ -> one Token.BANG
      | '&', _ -> one Token.AMP
      | '|', _ -> one Token.PIPE
      | '^', _ -> one Token.CARET
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ';', _ -> one Token.SEMI
      | ',', _ -> one Token.COMMA
      | _ ->
        advance cur;
        err start_p (Printf.sprintf "unexpected character %C" c))
  in
  loop ()
