(** Seeded generator of random well-formed [.tk] programs.

    Used by the frontend fuzz tests: every generated program must
    parse, typecheck, lower, and run to completion through the default
    pass pipeline with a clean lint. Generated programs are constructed
    to be safe by design:
    - loops are C-style [for] loops with literal bounds (at most
      {!val:max_trip} iterations, nesting depth at most 2) whose
      counters are never reassigned in the body, so termination is
      structural;
    - array dimensions are powers of two and every dynamically-indexed
      access masks with [& (dim-1)], so addresses stay in bounds;
    - division/remainder/shift are safe for any operand values (the
      language defines [/ 0] and [% 0] as 0 and masks shift counts).

    The same [seed] always yields the same program text. *)

val max_trip : int
(** Upper bound on any generated loop's trip count. *)

val generate : seed:int -> string
(** [generate ~seed] returns the text of one random [.tk] program. *)
