(** Semantic analysis for [.tk] kernels.

    Checks, before lowering:
    - every name is declared before use, and never redeclared in the
      same scope (lexical scoping; inner blocks may shadow);
    - scalars and arrays are used as such ([a[i]] needs an array, a
      bare [a] needs a scalar);
    - [const] and [input] names are never assignment targets;
    - constant contexts ([const] initialisers, array dimensions,
      [input] values, array-initialiser seeds/bounds) really are
      compile-time constants — built from literals, earlier [const]s
      and the builtin [scale];
    - array dimensions are positive, and statically-known indices are
      in bounds;
    - [array] and [input] declarations sit outside [if]/[while]/[for]
      bodies (they are statically allocated and initialised once, so a
      declaration under control flow would misleadingly suggest
      per-iteration re-initialisation).

    [scale] is needed because constant expressions may mention the
    builtin [scale]; the same value must be passed to {!Lower.lower}. *)

val check : scale:int -> Ast.kernel -> (unit, Srcloc.error) result
(** [check ~scale k] returns the first semantic error, if any. *)

val const_binop : Ast.binop -> int -> int -> int
(** Compile-time arithmetic, shared with {!Lower}'s constant folder.
    Matches the interpreter: division/remainder by zero yield 0,
    shift counts are masked to 6 bits, comparisons and the logical
    operators yield 0/1. *)
