(* Lowering from the .tk AST to the shared IR via the Builder DSL. The
   input is typechecked first, so lookups cannot fail; the defensive
   [Lower_error] exception is still caught at the boundary so no
   exception ever escapes. *)

open Turnpike_ir
module Data_gen = Turnpike_workloads.Data_gen

exception Lower_error of Srcloc.error

let fail loc msg = raise (Lower_error { Srcloc.loc; msg })

type binding =
  | Bconst of int
  | Breg of Reg.t  (* [var] or [input] *)
  | Barray of { base : int; len : int }

type env = {
  b : Builder.t;
  frames : (string, binding) Hashtbl.t list;
  scale : int;
  labels : int ref;
}

let push env = { env with frames = Hashtbl.create 16 :: env.frames }

let lookup env loc name =
  let rec go = function
    | [] -> fail loc (Printf.sprintf "`%s' is not declared" name)
    | f :: rest -> (
      match Hashtbl.find_opt f name with Some v -> v | None -> go rest)
  in
  go env.frames

let declare env name v =
  match env.frames with
  | [] -> assert false
  | f :: _ -> Hashtbl.replace f name v

let fresh_label env hint =
  let n = !(env.labels) in
  env.labels := n + 1;
  Printf.sprintf "%s%d" hint n

let ir_binop = function
  | Ast.Add -> Instr.Add
  | Ast.Sub -> Instr.Sub
  | Ast.Mul -> Instr.Mul
  | Ast.Div -> Instr.Div
  | Ast.Rem -> Instr.Rem
  | Ast.And -> Instr.And
  | Ast.Or -> Instr.Or
  | Ast.Xor -> Instr.Xor
  | Ast.Shl -> Instr.Shl
  | Ast.Shr -> Instr.Shr
  | _ -> assert false

let ir_cmp = function
  | Ast.Eq -> Instr.Eq
  | Ast.Ne -> Instr.Ne
  | Ast.Lt -> Instr.Lt
  | Ast.Le -> Instr.Le
  | Ast.Gt -> Instr.Gt
  | Ast.Ge -> Instr.Ge
  | _ -> assert false

(* Fold to a compile-time constant when possible. *)
let rec try_const env (e : Ast.expr) : int option =
  match e.Ast.desc with
  | Ast.Int n -> Some n
  | Ast.Var "scale" -> Some env.scale
  | Ast.Var x -> (
    match lookup env e.Ast.eloc x with Bconst n -> Some n | _ -> None)
  | Ast.Index _ -> None
  | Ast.Neg a -> Option.map (fun n -> -n) (try_const env a)
  | Ast.Not a -> Option.map (fun n -> if n = 0 then 1 else 0) (try_const env a)
  | Ast.Binop (op, a, b) -> (
    match (try_const env a, try_const env b) with
    | Some x, Some y -> Some (Typecheck.const_binop op x y)
    | _ -> None)

let require_const env (e : Ast.expr) =
  match try_const env e with
  | Some n -> n
  | None -> fail e.Ast.eloc "expected a compile-time constant"

(* Evaluate [e] to an operand, emitting code for any runtime part. *)
let rec eval env (e : Ast.expr) : Instr.operand =
  match try_const env e with
  | Some n -> Instr.Imm n
  | None -> (
    match e.Ast.desc with
    | Ast.Var x -> (
      match lookup env e.Ast.eloc x with
      | Breg r -> Instr.Reg r
      | Bconst n -> Instr.Imm n
      | Barray _ -> fail e.Ast.eloc (Printf.sprintf "`%s' is an array" x))
    | _ ->
      let dst = Builder.fresh_reg env.b in
      eval_into env e ~dst;
      Instr.Reg dst)

(* Evaluate [e] into a register (materialising immediates). *)
and to_reg env e =
  match eval env e with
  | Instr.Reg r -> r
  | Instr.Imm 0 -> Reg.zero
  | Instr.Imm n ->
    let r = Builder.fresh_reg env.b in
    Builder.mov env.b ~dst:r (Instr.Imm n);
    r

and operand_to_reg env (o : Instr.operand) =
  match o with
  | Instr.Reg r -> r
  | Instr.Imm 0 -> Reg.zero
  | Instr.Imm n ->
    let r = Builder.fresh_reg env.b in
    Builder.mov env.b ~dst:r (Instr.Imm n);
    r

(* Address of [name[idx]] as a (base register, byte offset) pair.
   Statically-known indices use absolute addressing off [Reg.zero];
   dynamic ones compute [array_base + word*idx] into a temporary. *)
and addr_of env loc name idx =
  let abase, alen =
    match lookup env loc name with
    | Barray { base; len } -> (base, len)
    | _ -> fail loc (Printf.sprintf "`%s' is not an array" name)
  in
  match try_const env idx with
  | Some i ->
    if i < 0 || i >= alen then
      fail idx.Ast.eloc
        (Printf.sprintf "index %d is out of bounds (length %d)" i alen);
    (Reg.zero, abase + (Layout.word * i))
  | None ->
    let ir = to_reg env idx in
    let addr = Builder.fresh_reg env.b in
    Builder.binop env.b Instr.Shl ~dst:addr ~a:ir (Instr.Imm 3);
    Builder.binop env.b Instr.Add ~dst:addr ~a:addr (Instr.Imm abase);
    (addr, 0)

(* Evaluate [e] into [dst]. [dst] is written only by the final emitted
   instruction, so [x = f(x)] reads the old value correctly. *)
and eval_into env (e : Ast.expr) ~dst =
  match try_const env e with
  | Some n -> Builder.mov env.b ~dst (Instr.Imm n)
  | None -> (
    match e.Ast.desc with
    | Ast.Int _ -> assert false (* constant; handled above *)
    | Ast.Var x -> (
      match lookup env e.Ast.eloc x with
      | Breg r -> Builder.mov env.b ~dst (Instr.Reg r)
      | Bconst n -> Builder.mov env.b ~dst (Instr.Imm n)
      | Barray _ -> fail e.Ast.eloc (Printf.sprintf "`%s' is an array" x))
    | Ast.Index (a, idx) ->
      let base, off = addr_of env e.Ast.eloc a idx in
      Builder.load env.b ~dst ~base ~off ()
    | Ast.Neg a ->
      let o = eval env a in
      Builder.binop env.b Instr.Sub ~dst ~a:Reg.zero o
    | Ast.Not a ->
      let r = to_reg env a in
      Builder.cmp env.b Instr.Eq ~dst ~a:r (Instr.Imm 0)
    | Ast.Binop (op, a, b) -> (
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.And | Ast.Or
      | Ast.Xor | Ast.Shl | Ast.Shr ->
        let oa = eval env a in
        let ob = eval env b in
        Builder.binop env.b (ir_binop op) ~dst ~a:(operand_to_reg env oa) ob
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        let oa = eval env a in
        let ob = eval env b in
        Builder.cmp env.b (ir_cmp op) ~dst ~a:(operand_to_reg env oa) ob
      | Ast.Land | Ast.Lor ->
        let na = normalize env a in
        let nb = normalize env b in
        Builder.binop env.b
          (if op = Ast.Land then Instr.And else Instr.Or)
          ~dst ~a:na (Instr.Reg nb)))

(* A register holding the 0/1 truth value of [e]. Comparisons, [!] and
   the logical operators already produce 0/1; anything else gets an
   explicit [!= 0]. *)
and normalize env (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Binop
      ( ( Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land
        | Ast.Lor ),
        _,
        _ )
  | Ast.Not _ ->
    to_reg env e
  | _ ->
    let r = to_reg env e in
    let d = Builder.fresh_reg env.b in
    Builder.cmp env.b Instr.Ne ~dst:d ~a:r (Instr.Imm 0);
    d

let rec stmt env (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl_const (name, e) -> declare env name (Bconst (require_const env e))
  | Ast.Decl_var (name, init) ->
    let r = Builder.fresh_reg env.b in
    (match init with
    | Some e -> eval_into env e ~dst:r
    | None -> Builder.mov env.b ~dst:r (Instr.Imm 0));
    declare env name (Breg r)
  | Ast.Decl_array (name, dim, init) ->
    let n = require_const env dim in
    if n <= 0 then fail dim.Ast.eloc "array dimension must be positive";
    let initf =
      match init with
      | None -> fun _ -> 0
      | Some (Ast.Init_fill e) ->
        let v = require_const env e in
        fun _ -> v
      | Some (Ast.Init_small seed) ->
        let seed = require_const env seed in
        fun i -> Data_gen.small ~seed ~index:i
      | Some (Ast.Init_rand (seed, bound)) ->
        let seed = require_const env seed in
        let bound = require_const env bound in
        fun i -> Data_gen.int ~seed ~index:i ~bound
      | Some (Ast.Init_perm seed) ->
        let seed = require_const env seed in
        let p = Data_gen.permutation ~seed n in
        fun i -> p.(i)
    in
    let base = Builder.alloc_array env.b ~len:n ~init:initf in
    declare env name (Barray { base; len = n })
  | Ast.Decl_input (name, e) ->
    let v = require_const env e in
    declare env name (Breg (Builder.input_reg env.b v))
  | Ast.Assign (Ast.Lv_var x, e) -> (
    match lookup env s.Ast.sloc x with
    | Breg r -> eval_into env e ~dst:r
    | _ -> fail s.Ast.sloc (Printf.sprintf "cannot assign to `%s'" x))
  | Ast.Assign (Ast.Lv_index (a, idx), e) ->
    let src = to_reg env e in
    let base, off = addr_of env s.Ast.sloc a idx in
    Builder.store env.b ~src ~base ~off ()
  | Ast.If (cond, then_b, else_b) ->
    let c = to_reg env cond in
    let l_end = fresh_label env "endif" in
    if else_b = [] then begin
      let l_then = fresh_label env "then" in
      Builder.branch env.b ~cond:c ~if_true:l_then ~if_false:l_end;
      Builder.label env.b l_then;
      block env then_b;
      Builder.jump env.b l_end;
      Builder.label env.b l_end
    end
    else begin
      let l_then = fresh_label env "then" in
      let l_else = fresh_label env "else" in
      Builder.branch env.b ~cond:c ~if_true:l_then ~if_false:l_else;
      Builder.label env.b l_then;
      block env then_b;
      Builder.jump env.b l_end;
      Builder.label env.b l_else;
      block env else_b;
      Builder.jump env.b l_end;
      Builder.label env.b l_end
    end
  | Ast.While (cond, body) ->
    let l_head = fresh_label env "wh_head" in
    let l_body = fresh_label env "wh_body" in
    let l_end = fresh_label env "wh_end" in
    Builder.label env.b l_head;
    let c = to_reg env cond in
    Builder.branch env.b ~cond:c ~if_true:l_body ~if_false:l_end;
    Builder.label env.b l_body;
    block env body;
    Builder.jump env.b l_head;
    Builder.label env.b l_end
  | Ast.For (init, cond, step, body) ->
    let env' = push env in
    stmt env' init;
    let l_head = fresh_label env "for_head" in
    let l_body = fresh_label env "for_body" in
    let l_end = fresh_label env "for_end" in
    Builder.label env.b l_head;
    let c = to_reg env' cond in
    Builder.branch env.b ~cond:c ~if_true:l_body ~if_false:l_end;
    Builder.label env.b l_body;
    block env' body;
    stmt env' step;
    Builder.jump env.b l_head;
    Builder.label env.b l_end
  | Ast.Block body -> block env body

and block env body =
  let env' = push env in
  List.iter (stmt env') body

let lower ~scale (k : Ast.kernel) =
  match Typecheck.check ~scale k with
  | Error e -> Error e
  | Ok () -> (
    try
      let b = Builder.create k.Ast.kname in
      Builder.label b "entry";
      let env = { b; frames = []; scale; labels = ref 0 } in
      block env k.Ast.body;
      Ok (Builder.finish b)
    with Lower_error e -> Error e)
