(* Abstract syntax of the .tk kernel language. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type expr = { desc : expr_desc; eloc : Srcloc.t }

and expr_desc =
  | Int of int
  | Var of string
  | Index of string * expr
  | Neg of expr
  | Not of expr
  | Binop of binop * expr * expr

type array_init =
  | Init_fill of expr
  | Init_small of expr
  | Init_rand of expr * expr
  | Init_perm of expr

type lvalue =
  | Lv_var of string
  | Lv_index of string * expr

type stmt = { sdesc : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | Decl_const of string * expr
  | Decl_var of string * expr option
  | Decl_array of string * expr * array_init option
  | Decl_input of string * expr
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Block of stmt list

type kernel = { kname : string; kname_loc : Srcloc.t; body : stmt list }
