(* Seeded generator of random well-formed .tk programs. Determinism
   comes from Data_gen.mix (a splitmix-style hash of seed and a
   monotonically increasing draw counter), so the same seed always
   produces the same text. *)

module Data_gen = Turnpike_workloads.Data_gen

let max_trip = 16

type gen = {
  seed : int;
  counter : int ref;
  buf : Buffer.t;
  mutable indent : int;
  (* names in scope, by kind *)
  mutable vars : string list;  (* assignable scalars *)
  mutable ro : string list;  (* consts and inputs: read-only scalars *)
  mutable arrays : (string * int) list;  (* name, power-of-two length *)
}

let draw g bound =
  let n = !(g.counter) in
  g.counter := n + 1;
  Data_gen.mix g.seed n mod bound

let choose g l = List.nth l (draw g (List.length l))

let line g fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string g.buf (String.make (2 * g.indent) ' ');
      Buffer.add_string g.buf s;
      Buffer.add_char g.buf '\n')
    fmt

(* --- expressions -------------------------------------------------- *)

let arith_ops = [ "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^" ]
let cmp_ops = [ "=="; "!="; "<"; "<="; ">"; ">=" ]

(* A random integer expression of bounded depth over the scalars in
   scope and masked array reads. *)
let rec expr g depth =
  let leaves = ("lit" :: List.map (fun _ -> "var") g.vars)
    @ List.map (fun _ -> "ro") g.ro
  in
  let kinds =
    if depth <= 0 then leaves
    else leaves @ [ "bin"; "bin"; "bin"; "neg"; "idx"; "shift" ]
  in
  match choose g kinds with
  | "var" -> choose g g.vars
  | "ro" -> choose g g.ro
  | "bin" ->
    Printf.sprintf "(%s %s %s)" (expr g (depth - 1)) (choose g arith_ops)
      (expr g (depth - 1))
  | "shift" ->
    (* keep shift counts small so values stay readable *)
    Printf.sprintf "(%s %s %d)" (expr g (depth - 1))
      (choose g [ "<<"; ">>" ])
      (draw g 8)
  | "neg" -> Printf.sprintf "(-%s)" (expr g (depth - 1))
  | "idx" when g.arrays <> [] ->
    let name, len = choose g g.arrays in
    Printf.sprintf "%s[(%s) & %d]" name (expr g (depth - 1)) (len - 1)
  | _ -> string_of_int (draw g 1024)

let cond g depth =
  Printf.sprintf "%s %s %s" (expr g depth) (choose g cmp_ops) (expr g depth)

(* --- statements --------------------------------------------------- *)

let assign_stmt g =
  if g.arrays <> [] && draw g 3 = 0 then begin
    let name, len = choose g g.arrays in
    line g "%s[(%s) & %d] = %s;" name (expr g 1) (len - 1) (expr g 2)
  end
  else if g.vars <> [] then
    line g "%s = %s;" (choose g g.vars) (expr g 2)
  else
    let name, len = choose g g.arrays in
    line g "%s[(%s) & %d] = %s;" name (expr g 1) (len - 1) (expr g 2)

let rec stmts g ~loop_depth ~budget =
  for _ = 1 to budget do
    match draw g 6 with
    | 0 when loop_depth < 2 -> for_loop g ~loop_depth
    | 1 ->
      line g "if (%s) {" (cond g 1);
      g.indent <- g.indent + 1;
      assign_stmt g;
      g.indent <- g.indent - 1;
      if draw g 2 = 0 then begin
        line g "} else {";
        g.indent <- g.indent + 1;
        assign_stmt g;
        g.indent <- g.indent - 1
      end;
      line g "}"
    | 2 when loop_depth = 0 ->
      (* fresh scratch variable (unique by draw counter) *)
      let name = Printf.sprintf "t%d" !(g.counter) in
      line g "var %s = %s;" name (expr g 2);
      g.vars <- name :: g.vars
    | _ -> assign_stmt g
  done

and for_loop g ~loop_depth =
  let iv = Printf.sprintf "i%d" !(g.counter) in
  let trip = 1 + draw g max_trip in
  line g "for (var %s = 0; %s < %d; %s = %s + 1) {" iv iv trip iv iv;
  g.indent <- g.indent + 1;
  (* The counter is readable in the body but never reassigned: it is
     not added to [vars] (assignment targets), only to [ro]. *)
  g.ro <- iv :: g.ro;
  stmts g ~loop_depth:(loop_depth + 1) ~budget:(1 + draw g 3);
  g.ro <- List.tl g.ro;
  g.indent <- g.indent - 1;
  line g "}"

let generate ~seed =
  let g =
    {
      seed;
      counter = ref 0;
      buf = Buffer.create 512;
      indent = 1;
      vars = [];
      ro = [];
      arrays = [];
    }
  in
  Buffer.add_string g.buf (Printf.sprintf "kernel fuzz%d {\n" (abs seed));
  (* declarations: 1-2 consts, 0-1 inputs, 2-3 vars, 1-3 arrays *)
  for c = 0 to draw g 2 do
    let name = Printf.sprintf "c%d" c in
    line g "const %s = %d;" name (1 + draw g 255);
    g.ro <- name :: g.ro
  done;
  if draw g 2 = 0 then begin
    line g "input src = %d;" (draw g 65536);
    g.ro <- "src" :: g.ro
  end;
  for v = 0 to 1 + draw g 2 do
    let name = Printf.sprintf "v%d" v in
    line g "var %s = %d;" name (draw g 1024);
    g.vars <- name :: g.vars
  done;
  for a = 0 to draw g 3 do
    let name = Printf.sprintf "a%d" a in
    let len = 8 lsl draw g 4 in
    let init =
      match draw g 4 with
      | 0 -> ""
      | 1 -> Printf.sprintf " = %d" (draw g 256)
      | 2 -> Printf.sprintf " = small(%d)" (draw g 1000)
      | _ -> Printf.sprintf " = rand(%d, %d)" (draw g 1000) (1 + draw g 4096)
    in
    line g "array %s[%d]%s;" name len init;
    g.arrays <- (name, len) :: g.arrays
  done;
  (* body: top-level statements, at least one loop and one store *)
  for_loop g ~loop_depth:0;
  stmts g ~loop_depth:0 ~budget:(2 + draw g 4);
  (* guaranteed store: the observable tail every program ends with *)
  let name, len = choose g g.arrays in
  line g "%s[(%s) & %d] = %s;" name (expr g 1) (len - 1) (expr g 2);
  Buffer.add_string g.buf "}\n";
  Buffer.contents g.buf
