(* Semantic analysis for .tk kernels. A single traversal over the AST
   with a scoped symbol table; errors propagate via an internal
   exception caught at the [check] boundary. *)

exception Sem_error of Srcloc.error

let fail loc msg = raise (Sem_error { Srcloc.loc; msg })

(* What a name denotes. Constants carry their value so constant
   expressions can be folded during checking. *)
type info =
  | Kconst of int
  | Kinput
  | Kvar
  | Karray of int  (** element count *)

(* [in_cf] is true inside if/while/for bodies: arrays and inputs are
   statically allocated/initialised, so declaring them under control
   flow would misleadingly suggest per-iteration re-initialisation. *)
type env = { frames : (string, info) Hashtbl.t list; scale : int; in_cf : bool }

let push env = { env with frames = Hashtbl.create 16 :: env.frames }

let lookup env name =
  let rec go = function
    | [] -> None
    | f :: rest -> (
      match Hashtbl.find_opt f name with Some i -> Some i | None -> go rest)
  in
  go env.frames

let declare env loc name info =
  match env.frames with
  | [] -> assert false
  | f :: _ ->
    if Hashtbl.mem f name then
      fail loc (Printf.sprintf "`%s' is already declared in this scope" name)
    else if name = "scale" then
      fail loc "`scale' is a builtin constant and cannot be redeclared"
    else Hashtbl.replace f name info

let kind_name = function
  | Kconst _ -> "a constant"
  | Kinput -> "an input"
  | Kvar -> "a variable"
  | Karray _ -> "an array"

(* Fold a constant expression, or [None] if it mentions anything
   runtime-dependent. Semantics match the interpreter: division and
   remainder by zero yield 0; shifts mask their count to 6 bits. *)
let rec const_eval env (e : Ast.expr) : int option =
  match e.Ast.desc with
  | Ast.Int n -> Some n
  | Ast.Var "scale" -> Some env.scale
  | Ast.Var x -> (
    match lookup env x with Some (Kconst n) -> Some n | _ -> None)
  | Ast.Index _ -> None
  | Ast.Neg a -> Option.map (fun n -> -n) (const_eval env a)
  | Ast.Not a ->
    Option.map (fun n -> if n = 0 then 1 else 0) (const_eval env a)
  | Ast.Binop (op, a, b) -> (
    match (const_eval env a, const_eval env b) with
    | Some x, Some y -> Some (const_binop op x y)
    | _ -> None)

and const_binop op x y =
  match op with
  | Ast.Add -> x + y
  | Ast.Sub -> x - y
  | Ast.Mul -> x * y
  | Ast.Div -> if y = 0 then 0 else x / y
  | Ast.Rem -> if y = 0 then 0 else x mod y
  | Ast.And -> x land y
  | Ast.Or -> x lor y
  | Ast.Xor -> x lxor y
  | Ast.Shl -> x lsl (y land 63)
  | Ast.Shr -> x asr (y land 63)
  | Ast.Eq -> if x = y then 1 else 0
  | Ast.Ne -> if x <> y then 1 else 0
  | Ast.Lt -> if x < y then 1 else 0
  | Ast.Le -> if x <= y then 1 else 0
  | Ast.Gt -> if x > y then 1 else 0
  | Ast.Ge -> if x >= y then 1 else 0
  | Ast.Land -> if x <> 0 && y <> 0 then 1 else 0
  | Ast.Lor -> if x <> 0 || y <> 0 then 1 else 0

let require_const env (e : Ast.expr) what =
  match const_eval env e with
  | Some n -> n
  | None ->
    fail e.Ast.eloc
      (Printf.sprintf
         "%s must be a compile-time constant (literals, `const's and `scale')"
         what)

(* Check an expression in value position. *)
let rec check_expr env (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int _ -> ()
  | Ast.Var "scale" -> ()
  | Ast.Var x -> (
    match lookup env x with
    | None -> fail e.Ast.eloc (Printf.sprintf "`%s' is not declared" x)
    | Some (Karray _) ->
      fail e.Ast.eloc
        (Printf.sprintf "`%s' is an array; index it as `%s[...]'" x x)
    | Some _ -> ())
  | Ast.Index (x, idx) -> (
    check_expr env idx;
    match lookup env x with
    | None -> fail e.Ast.eloc (Printf.sprintf "`%s' is not declared" x)
    | Some (Karray len) -> check_index env x len idx
    | Some k ->
      fail e.Ast.eloc
        (Printf.sprintf "`%s' is %s, not an array" x (kind_name k)))
  | Ast.Neg a | Ast.Not a -> check_expr env a
  | Ast.Binop (_, a, b) ->
    check_expr env a;
    check_expr env b

and check_index env x len idx =
  match const_eval env idx with
  | Some i when i < 0 || i >= len ->
    fail idx.Ast.eloc
      (Printf.sprintf "index %d is out of bounds for `%s' (length %d)" i x len)
  | _ -> ()

let rec check_stmt env (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl_const (name, e) ->
    check_expr env e;
    let v = require_const env e "a `const' initialiser" in
    declare env s.Ast.sloc name (Kconst v)
  | Ast.Decl_var (name, init) ->
    Option.iter (check_expr env) init;
    declare env s.Ast.sloc name Kvar
  | Ast.Decl_array (name, dim, init) ->
    if env.in_cf then
      fail s.Ast.sloc
        "arrays are statically allocated; declare them outside `if'/`while'/`for'";
    check_expr env dim;
    let n = require_const env dim "an array dimension" in
    if n <= 0 then
      fail dim.Ast.eloc
        (Printf.sprintf "array dimension must be positive (got %d)" n);
    (match init with
    | None -> ()
    | Some (Ast.Init_fill e) ->
      check_expr env e;
      ignore (require_const env e "an array fill value")
    | Some (Ast.Init_small seed) ->
      check_expr env seed;
      ignore (require_const env seed "a `small' seed")
    | Some (Ast.Init_rand (seed, bound)) ->
      check_expr env seed;
      check_expr env bound;
      ignore (require_const env seed "a `rand' seed");
      let b = require_const env bound "a `rand' bound" in
      if b <= 0 then
        fail bound.Ast.eloc
          (Printf.sprintf "`rand' bound must be positive (got %d)" b)
    | Some (Ast.Init_perm seed) ->
      check_expr env seed;
      ignore (require_const env seed "a `perm' seed"));
    declare env s.Ast.sloc name (Karray n)
  | Ast.Decl_input (name, e) ->
    if env.in_cf then
      fail s.Ast.sloc
        "inputs are initialised before execution; declare them outside `if'/`while'/`for'";
    check_expr env e;
    ignore (require_const env e "an `input' value");
    declare env s.Ast.sloc name Kinput
  | Ast.Assign (lv, e) ->
    check_expr env e;
    check_lvalue env s.Ast.sloc lv
  | Ast.If (cond, then_b, else_b) ->
    check_expr env cond;
    let env' = { env with in_cf = true } in
    check_block env' then_b;
    check_block env' else_b
  | Ast.While (cond, body) ->
    check_expr env cond;
    check_block { env with in_cf = true } body
  | Ast.For (init, cond, step, body) ->
    (* The for header and body share one scope: a variable declared in
       the init clause is visible in cond, step and body. *)
    let env' = push { env with in_cf = true } in
    check_stmt env' init;
    check_expr env' cond;
    List.iter (check_stmt env') body;
    check_stmt env' step
  | Ast.Block body -> check_block env body

and check_lvalue env loc = function
  | Ast.Lv_var "scale" ->
    fail loc "cannot assign to the builtin constant `scale'"
  | Ast.Lv_var x -> (
    match lookup env x with
    | None -> fail loc (Printf.sprintf "`%s' is not declared" x)
    | Some Kvar -> ()
    | Some (Karray _) ->
      fail loc
        (Printf.sprintf "cannot assign to array `%s' without an index" x)
    | Some k ->
      fail loc (Printf.sprintf "cannot assign to %s (`%s')" (kind_name k) x))
  | Ast.Lv_index (x, idx) -> (
    check_expr env idx;
    match lookup env x with
    | None -> fail loc (Printf.sprintf "`%s' is not declared" x)
    | Some (Karray len) -> check_index env x len idx
    | Some k ->
      fail loc (Printf.sprintf "`%s' is %s, not an array" x (kind_name k)))

and check_block env body =
  let env' = push env in
  List.iter (check_stmt env') body

let check ~scale (k : Ast.kernel) =
  if scale <= 0 then
    Error
      {
        Srcloc.loc = k.Ast.kname_loc;
        msg = Printf.sprintf "scale must be positive (got %d)" scale;
      }
  else
    let env = { frames = []; scale; in_cf = false } in
    try
      check_block env k.Ast.body;
      Ok ()
    with Sem_error e -> Error e
