(* Tokens of the .tk kernel language. *)

type kind =
  | INT of int
  | IDENT of string
  | KW_KERNEL
  | KW_CONST
  | KW_VAR
  | KW_ARRAY
  | KW_INPUT
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

type t = { kind : kind; loc : Srcloc.t }

let kind_to_string = function
  | INT n -> Printf.sprintf "integer literal %d" n
  | IDENT s -> Printf.sprintf "identifier `%s'" s
  | KW_KERNEL -> "`kernel'"
  | KW_CONST -> "`const'"
  | KW_VAR -> "`var'"
  | KW_ARRAY -> "`array'"
  | KW_INPUT -> "`input'"
  | KW_IF -> "`if'"
  | KW_ELSE -> "`else'"
  | KW_FOR -> "`for'"
  | KW_WHILE -> "`while'"
  | LPAREN -> "`('"
  | RPAREN -> "`)'"
  | LBRACE -> "`{'"
  | RBRACE -> "`}'"
  | LBRACKET -> "`['"
  | RBRACKET -> "`]'"
  | SEMI -> "`;'"
  | COMMA -> "`,'"
  | ASSIGN -> "`='"
  | PLUS -> "`+'"
  | MINUS -> "`-'"
  | STAR -> "`*'"
  | SLASH -> "`/'"
  | PERCENT -> "`%'"
  | AMP -> "`&'"
  | PIPE -> "`|'"
  | CARET -> "`^'"
  | SHL -> "`<<'"
  | SHR -> "`>>'"
  | EQ -> "`=='"
  | NE -> "`!='"
  | LT -> "`<'"
  | LE -> "`<='"
  | GT -> "`>'"
  | GE -> "`>='"
  | ANDAND -> "`&&'"
  | OROR -> "`||'"
  | BANG -> "`!'"
  | EOF -> "end of input"
