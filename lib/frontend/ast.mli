(** Abstract syntax of the [.tk] kernel language.

    Every node carries the {!Srcloc.t} of the source text it came from,
    so later phases ({!Typecheck}, {!Lower}) can point diagnostics at
    the offending construct.

    The language is deliberately small: 64-bit integer scalars,
    fixed-size integer arrays, structured control flow ([if]/[else],
    [while], C-style [for]) and C-precedence integer expressions. See
    [docs/LANGUAGE.md] for the full reference. *)

(** Binary operators, in source syntax order. [Land]/[Lor] are the
    logical forms ([&&]/[||]); both operands are evaluated (no
    short-circuiting) and the result is 0 or 1. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

(** Expressions. [Index (a, e)] reads [a[e]]. *)
type expr = { desc : expr_desc; eloc : Srcloc.t }

and expr_desc =
  | Int of int
  | Var of string  (** scalar variable, [const], [input], or [scale] *)
  | Index of string * expr
  | Neg of expr
  | Not of expr  (** [!e]: 1 if [e] is 0, else 0 *)
  | Binop of binop * expr * expr

(** Array initialisers. The data-generating forms mirror the template
    suite's [Data_gen] so ported kernels see identical memory images:
    seeds and bounds must be compile-time constants. *)
type array_init =
  | Init_fill of expr  (** every element = const expr *)
  | Init_small of expr  (** [Data_gen.small] stream from const seed *)
  | Init_rand of expr * expr  (** [Data_gen.int ~bound] from const seed *)
  | Init_perm of expr  (** [Data_gen.permutation] of the array length *)

(** Assignment targets. *)
type lvalue =
  | Lv_var of string
  | Lv_index of string * expr

(** Statements. Declarations are statements so arrays can be declared
    at any point in a block (allocation order = textual order). *)
type stmt = { sdesc : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | Decl_const of string * expr  (** [const N = cexpr;] *)
  | Decl_var of string * expr option  (** [var x;] / [var x = e;] *)
  | Decl_array of string * expr * array_init option
      (** [array A[cexpr];] with optional [= init] *)
  | Decl_input of string * expr
      (** [input x = cexpr;] — a runtime-opaque initial value *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
      (** [for (init; cond; step) { body }] *)
  | Block of stmt list

(** A compilation unit: [kernel name { body }]. *)
type kernel = { kname : string; kname_loc : Srcloc.t; body : stmt list }
