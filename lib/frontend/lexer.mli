(** Hand-written lexer for the [.tk] kernel language.

    Input is a whole source string; output is the complete token list
    (terminated by {!Token.EOF}) or the first lexical error, located.
    The lexer never raises on malformed input — unknown characters,
    overlong integer literals and unterminated block comments all come
    back as [Error].

    Lexical structure: ASCII identifiers ([[A-Za-z_][A-Za-z0-9_]*]),
    decimal and [0x] hexadecimal integer literals, [//] line comments,
    [/* ... */] (non-nesting) block comments, and the operator set of
    {!Token.kind}. *)

val tokenize : file:string -> string -> (Token.t list, Srcloc.error) result
(** [tokenize ~file src] lexes [src]; [file] is used for locations
    only. *)
