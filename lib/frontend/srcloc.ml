(* Source positions for the .tk frontend. Lines/columns are 1-based. *)

type pos = { line : int; col : int }

type t = { file : string; start_p : pos; end_p : pos }

let make ~file ~start_p ~end_p = { file; start_p; end_p }

let point ~file p = { file; start_p = p; end_p = p }

let pos_le a b = a.line < b.line || (a.line = b.line && a.col <= b.col)

let merge a b =
  {
    file = a.file;
    start_p = (if pos_le a.start_p b.start_p then a.start_p else b.start_p);
    end_p = (if pos_le a.end_p b.end_p then b.end_p else a.end_p);
  }

let to_string l =
  if l.start_p.line = l.end_p.line then
    if l.start_p.col = l.end_p.col then
      Printf.sprintf "%s:%d:%d" l.file l.start_p.line l.start_p.col
    else
      Printf.sprintf "%s:%d:%d-%d" l.file l.start_p.line l.start_p.col
        l.end_p.col
  else
    Printf.sprintf "%s:%d.%d-%d.%d" l.file l.start_p.line l.start_p.col
      l.end_p.line l.end_p.col

type error = { loc : t; msg : string }

let error_to_string e = Printf.sprintf "%s: error: %s" (to_string e.loc) e.msg
