(** High-level entry points for the [.tk] frontend: one-call helpers
    that take kernel source text (or a file path) to a parsed AST, a
    lowered IR program, or a {!Turnpike_workloads.Suite.entry} that
    plugs into every existing driver (run/trace/lint/inject/report).

    All functions return [result]; no exception escapes on malformed
    input. Errors are pre-rendered [file:line:col: error: message]
    strings ready for stderr. *)

val is_tk_file : string -> bool
(** [is_tk_file path]: does [path] end in [.tk]? Used by the CLI to
    decide whether a workload argument is a file or a benchmark name. *)

val parse_string :
  ?file:string -> string -> (Ast.kernel, Srcloc.error) result
(** Parse kernel source text. [file] (default ["<string>"]) is used in
    diagnostics only. No semantic checks; see {!compile_string}. *)

val compile_string :
  ?file:string -> scale:int -> string -> (Turnpike_ir.Prog.t, string) result
(** Parse, typecheck and lower source text at the given [scale]
    (the value of the builtin [scale] constant). *)

val compile_file : scale:int -> string -> (Turnpike_ir.Prog.t, string) result
(** [compile_file ~scale path]: {!compile_string} on the contents of
    [path]. I/O failures are reported as [Error] too. *)

val entry_of_file : string -> (Turnpike_workloads.Suite.entry, string) result
(** [entry_of_file path] reads and validates [path] (at scale 1) and
    packages it as a suite entry with the {!Turnpike_workloads.Suite.User}
    tag: [name] is the kernel's declared name (qualified as
    ["<name>@tk"]), [build ~scale] re-lowers at the requested scale.

    [build] raises [Failure] if lowering fails at some scale other
    than the validated one (e.g. a [scale]-dependent array dimension
    turning non-positive) — callers that vary scale should be prepared
    for that; the CLI reports it as a normal diagnostic. *)
