(** Recursive-descent parser for the [.tk] kernel language.

    Consumes the token stream from {!Lexer.tokenize} and produces an
    {!Ast.kernel}, or the first syntax error with the location of the
    offending token. Like the lexer, the parser never lets an exception
    escape: every malformed input is a located [Error].

    Expression precedence is C's, from loosest to tightest:
    [||] < [&&] < [|] < [^] < [&] < [==]/[!=] <
    [<]/[<=]/[>]/[>=] < [<<]/[>>] < [+]/[-] < [*]/[/]/[%] <
    unary [-]/[!]. All binary operators are left-associative. *)

val parse : file:string -> string -> (Ast.kernel, Srcloc.error) result
(** [parse ~file src] lexes and parses [src]. [file] is used in
    diagnostics only. *)
