(** Source positions and located diagnostics for the [.tk] frontend.

    Every token, AST node and frontend error carries a {!t} so that
    diagnostics can point at the offending span
    ([file:line:col-col: message]). Lines and columns are 1-based, the
    way editors count them. *)

type pos = { line : int; col : int }
(** A 1-based (line, column) position. *)

type t = {
  file : string;  (** path as given to the parser, or ["<string>"] *)
  start_p : pos;
  end_p : pos;  (** inclusive end of the span *)
}

val make : file:string -> start_p:pos -> end_p:pos -> t

val point : file:string -> pos -> t
(** A zero-width span at one position. *)

val merge : t -> t -> t
(** Smallest span covering both (same file assumed; keeps the first
    file name). *)

val to_string : t -> string
(** [file:line:col] or [file:line:col-col] (or a two-line span as
    [file:l.c-l.c]) — the prefix every rendered diagnostic uses. *)

type error = { loc : t; msg : string }
(** A located frontend diagnostic. The frontend never lets an exception
    escape on malformed input — every failure is one of these. *)

val error_to_string : error -> string
(** ["file:line:col: error: msg"]. *)
