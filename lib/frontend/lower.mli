(** Lowering from the [.tk] AST to the shared IR.

    [lower] first runs {!Typecheck.check}, then translates the kernel
    through {!Turnpike_ir.Builder} into a {!Turnpike_ir.Prog.t} — the
    same representation the built-in workload templates produce — so
    every downstream layer (pass pipeline, interpreter, fault
    campaigns, analyses) works on user kernels unchanged.

    Translation scheme:
    - scalars ([var], [input]) live in virtual registers;
    - [const]s and [scale] fold to immediates;
    - arrays are allocated in the data segment in textual declaration
      order ({!Turnpike_ir.Builder.alloc_array}), statically-indexed
      accesses use absolute addressing off {!Turnpike_ir.Reg.zero},
      dynamically-indexed ones compute [base + 8*i] into a temporary;
    - structured control flow becomes top-test loop CFGs with
      generated labels ([whN_head]/[whN_body]/[whN_end], …);
    - [&&]/[||] evaluate both operands, normalise each to 0/1 and
      combine with bitwise [And]/[Or] (documented non-short-circuit
      semantics). *)

val lower : scale:int -> Ast.kernel -> (Turnpike_ir.Prog.t, Srcloc.error) result
(** [lower ~scale k] typechecks and lowers [k]. The builtin [scale]
    constant takes the given value (must be positive). *)
