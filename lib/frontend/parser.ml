(* Recursive-descent parser for the .tk kernel language. The token
   stream is materialised into an array; a single exception is used
   internally for error propagation and caught at the [parse] boundary,
   so callers only ever see [result]. *)

exception Parse_error of Srcloc.error

type state = { toks : Token.t array; mutable i : int }

let cur st = st.toks.(st.i)

let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let fail_at loc msg = raise (Parse_error { Srcloc.loc; msg })

let expect st kind what =
  let t = cur st in
  if t.Token.kind = kind then (advance st; t.Token.loc)
  else
    fail_at t.Token.loc
      (Printf.sprintf "expected %s before %s%s"
         (Token.kind_to_string kind)
         (Token.kind_to_string t.Token.kind)
         (if what = "" then "" else " (" ^ what ^ ")"))

let expect_ident st what =
  let t = cur st in
  match t.Token.kind with
  | Token.IDENT s ->
    advance st;
    (s, t.Token.loc)
  | k ->
    fail_at t.Token.loc
      (Printf.sprintf "expected %s before %s" what (Token.kind_to_string k))

(* --- expressions ------------------------------------------------- *)

(* Binary-operator precedence climbing. Levels from loosest (0) to
   tightest; each level lists its operators. *)
let levels : (Token.kind * Ast.binop) list array =
  [|
    [ (Token.OROR, Ast.Lor) ];
    [ (Token.ANDAND, Ast.Land) ];
    [ (Token.PIPE, Ast.Or) ];
    [ (Token.CARET, Ast.Xor) ];
    [ (Token.AMP, Ast.And) ];
    [ (Token.EQ, Ast.Eq); (Token.NE, Ast.Ne) ];
    [
      (Token.LT, Ast.Lt);
      (Token.LE, Ast.Le);
      (Token.GT, Ast.Gt);
      (Token.GE, Ast.Ge);
    ];
    [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ];
    [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ];
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Rem) ];
  |]

let rec parse_expr st = parse_level st 0

and parse_level st lvl =
  if lvl >= Array.length levels then parse_unary st
  else begin
    let lhs = ref (parse_level st (lvl + 1)) in
    let continue = ref true in
    while !continue do
      match List.assoc_opt (cur st).Token.kind levels.(lvl) with
      | Some op ->
        advance st;
        let rhs = parse_level st (lvl + 1) in
        lhs :=
          {
            Ast.desc = Ast.Binop (op, !lhs, rhs);
            eloc = Srcloc.merge !lhs.Ast.eloc rhs.Ast.eloc;
          }
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  let t = cur st in
  match t.Token.kind with
  | Token.MINUS ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Neg e; eloc = Srcloc.merge t.Token.loc e.Ast.eloc }
  | Token.BANG ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Not e; eloc = Srcloc.merge t.Token.loc e.Ast.eloc }
  | _ -> parse_primary st

and parse_primary st =
  let t = cur st in
  match t.Token.kind with
  | Token.INT n ->
    advance st;
    { Ast.desc = Ast.Int n; eloc = t.Token.loc }
  | Token.IDENT s ->
    advance st;
    if (cur st).Token.kind = Token.LBRACKET then begin
      advance st;
      let idx = parse_expr st in
      let close = expect st Token.RBRACKET "array index" in
      {
        Ast.desc = Ast.Index (s, idx);
        eloc = Srcloc.merge t.Token.loc close;
      }
    end
    else { Ast.desc = Ast.Var s; eloc = t.Token.loc }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    let close = expect st Token.RPAREN "parenthesised expression" in
    { e with Ast.eloc = Srcloc.merge t.Token.loc close }
  | k ->
    fail_at t.Token.loc
      (Printf.sprintf "expected an expression before %s"
         (Token.kind_to_string k))

(* --- statements --------------------------------------------------- *)

let parse_array_init st =
  let t = cur st in
  match t.Token.kind with
  | Token.IDENT ("small" | "rand" | "perm")
    when st.i + 1 < Array.length st.toks
         && st.toks.(st.i + 1).Token.kind = Token.LPAREN -> (
    let name = match t.Token.kind with Token.IDENT s -> s | _ -> assert false in
    advance st;
    advance st;
    match name with
    | "small" ->
      let seed = parse_expr st in
      let _ = expect st Token.RPAREN "small(seed)" in
      Ast.Init_small seed
    | "rand" ->
      let seed = parse_expr st in
      let _ = expect st Token.COMMA "rand(seed, bound)" in
      let bound = parse_expr st in
      let _ = expect st Token.RPAREN "rand(seed, bound)" in
      Ast.Init_rand (seed, bound)
    | _ ->
      let seed = parse_expr st in
      let _ = expect st Token.RPAREN "perm(seed)" in
      Ast.Init_perm seed)
  | _ -> Ast.Init_fill (parse_expr st)

let rec parse_stmt st =
  let t = cur st in
  match t.Token.kind with
  | Token.KW_CONST ->
    advance st;
    let name, _ = expect_ident st "a constant name" in
    let _ = expect st Token.ASSIGN "const declaration" in
    let e = parse_expr st in
    let close = expect st Token.SEMI "const declaration" in
    { Ast.sdesc = Ast.Decl_const (name, e); sloc = Srcloc.merge t.Token.loc close }
  | Token.KW_VAR ->
    advance st;
    let name, _ = expect_ident st "a variable name" in
    let init =
      if (cur st).Token.kind = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    let close = expect st Token.SEMI "var declaration" in
    { Ast.sdesc = Ast.Decl_var (name, init); sloc = Srcloc.merge t.Token.loc close }
  | Token.KW_ARRAY ->
    advance st;
    let name, _ = expect_ident st "an array name" in
    let _ = expect st Token.LBRACKET "array declaration" in
    let dim = parse_expr st in
    let _ = expect st Token.RBRACKET "array declaration" in
    let init =
      if (cur st).Token.kind = Token.ASSIGN then begin
        advance st;
        Some (parse_array_init st)
      end
      else None
    in
    let close = expect st Token.SEMI "array declaration" in
    {
      Ast.sdesc = Ast.Decl_array (name, dim, init);
      sloc = Srcloc.merge t.Token.loc close;
    }
  | Token.KW_INPUT ->
    advance st;
    let name, _ = expect_ident st "an input name" in
    let _ = expect st Token.ASSIGN "input declaration" in
    let e = parse_expr st in
    let close = expect st Token.SEMI "input declaration" in
    { Ast.sdesc = Ast.Decl_input (name, e); sloc = Srcloc.merge t.Token.loc close }
  | Token.KW_IF ->
    advance st;
    let _ = expect st Token.LPAREN "if condition" in
    let cond = parse_expr st in
    let _ = expect st Token.RPAREN "if condition" in
    let then_b, then_loc = parse_block st in
    let else_b, close =
      if (cur st).Token.kind = Token.KW_ELSE then begin
        advance st;
        if (cur st).Token.kind = Token.KW_IF then begin
          let s = parse_stmt st in
          ([ s ], s.Ast.sloc)
        end
        else
          let b, l = parse_block st in
          (b, l)
      end
      else ([], then_loc)
    in
    {
      Ast.sdesc = Ast.If (cond, then_b, else_b);
      sloc = Srcloc.merge t.Token.loc close;
    }
  | Token.KW_WHILE ->
    advance st;
    let _ = expect st Token.LPAREN "while condition" in
    let cond = parse_expr st in
    let _ = expect st Token.RPAREN "while condition" in
    let body, close = parse_block st in
    { Ast.sdesc = Ast.While (cond, body); sloc = Srcloc.merge t.Token.loc close }
  | Token.KW_FOR ->
    advance st;
    let _ = expect st Token.LPAREN "for header" in
    let init = parse_for_init st in
    let cond = parse_expr st in
    let _ = expect st Token.SEMI "for header" in
    let step = parse_for_step st in
    let _ = expect st Token.RPAREN "for header" in
    let body, close = parse_block st in
    {
      Ast.sdesc = Ast.For (init, cond, step, body);
      sloc = Srcloc.merge t.Token.loc close;
    }
  | Token.LBRACE ->
    let body, loc = parse_block st in
    { Ast.sdesc = Ast.Block body; sloc = loc }
  | Token.IDENT _ ->
    let lv, lv_loc = parse_lvalue st in
    let _ = expect st Token.ASSIGN "assignment" in
    let e = parse_expr st in
    let close = expect st Token.SEMI "assignment" in
    { Ast.sdesc = Ast.Assign (lv, e); sloc = Srcloc.merge lv_loc close }
  | k ->
    fail_at t.Token.loc
      (Printf.sprintf "expected a statement before %s" (Token.kind_to_string k))

and parse_lvalue st =
  let name, loc = expect_ident st "an assignment target" in
  if (cur st).Token.kind = Token.LBRACKET then begin
    advance st;
    let idx = parse_expr st in
    let close = expect st Token.RBRACKET "array index" in
    (Ast.Lv_index (name, idx), Srcloc.merge loc close)
  end
  else (Ast.Lv_var name, loc)

(* The init clause of a for header: a var declaration or an assignment,
   terminated by the header's `;'. *)
and parse_for_init st =
  let t = cur st in
  match t.Token.kind with
  | Token.KW_VAR ->
    advance st;
    let name, _ = expect_ident st "a variable name" in
    let _ = expect st Token.ASSIGN "for-init declaration" in
    let e = parse_expr st in
    let close = expect st Token.SEMI "for header" in
    {
      Ast.sdesc = Ast.Decl_var (name, Some e);
      sloc = Srcloc.merge t.Token.loc close;
    }
  | _ ->
    let lv, lv_loc = parse_lvalue st in
    let _ = expect st Token.ASSIGN "for-init assignment" in
    let e = parse_expr st in
    let close = expect st Token.SEMI "for header" in
    { Ast.sdesc = Ast.Assign (lv, e); sloc = Srcloc.merge lv_loc close }

(* The step clause: an assignment with no trailing `;'. *)
and parse_for_step st =
  let lv, lv_loc = parse_lvalue st in
  let _ = expect st Token.ASSIGN "for-step assignment" in
  let e = parse_expr st in
  { Ast.sdesc = Ast.Assign (lv, e); sloc = Srcloc.merge lv_loc e.Ast.eloc }

and parse_block st =
  let open_loc = expect st Token.LBRACE "block" in
  let stmts = ref [] in
  while
    (cur st).Token.kind <> Token.RBRACE && (cur st).Token.kind <> Token.EOF
  do
    stmts := parse_stmt st :: !stmts
  done;
  let close = expect st Token.RBRACE "block" in
  (List.rev !stmts, Srcloc.merge open_loc close)

let parse_kernel st =
  let _ = expect st Token.KW_KERNEL "kernel header" in
  let name, name_loc = expect_ident st "a kernel name" in
  let body, _ = parse_block st in
  (match (cur st).Token.kind with
  | Token.EOF -> ()
  | k ->
    fail_at (cur st).Token.loc
      (Printf.sprintf "expected end of input after kernel body, found %s"
         (Token.kind_to_string k)));
  { Ast.kname = name; kname_loc = name_loc; body }

let parse ~file src =
  match Lexer.tokenize ~file src with
  | Error e -> Error e
  | Ok [] ->
    (* tokenize always ends with EOF, so this is unreachable; keep the
       match total without an assert. *)
    Error
      {
        Srcloc.loc = Srcloc.point ~file { Srcloc.line = 1; col = 1 };
        msg = "empty input";
      }
  | Ok toks -> (
    let st = { toks = Array.of_list toks; i = 0 } in
    try Ok (parse_kernel st) with Parse_error e -> Error e)
