(* Capacity checks for the resilient microarchitecture (paper §4.3):

   - a region's worst-case store-buffer demand must fit the SB, or commit
     deadlocks under strict partitioning; the partitioner aims for sb/2 so
     two regions can overlap (gap-free verification), so exceeding the
     target is a warning;
   - checkpoint colors: each register owns a small color pool; duplicate
     checkpoints of one register inside one region waste pool slots;
   - direct-release checkpoint claims (the paper's Fig 16 optimisation
     made safe): only a register whose unique checkpoint site executes at
     most once per region activation may release without verification;
   - CLQ configuration sanity when the machine parameters are known. *)

open Turnpike_ir

let name = "capacity"

(* Longest root-to-leaf store-buffer demand of a region: member blocks of
   a well-formed region form a tree below the head (non-heads are
   single-entry), so a DFS with a visited guard suffices. [stores_of] and
   [region_of] are per-run lookup tables — the naive per-visit
   [Block.num_stores] / assoc-list probes made this quadratic in blocks,
   and the check runs after most passes. *)
let worst_sb_path func ~stores_of ~region_of { Regions_view.id; head; _ } =
  let rec dfs visited label =
    if List.mem label visited then 0
    else
      let b = Func.block func label in
      let here : int = stores_of label in
      let next =
        List.filter
          (fun s ->
            Hashtbl.find_opt region_of s = Some id && not (String.equal s head))
          (Block.successors b)
      in
      here + List.fold_left (fun acc s -> max acc (dfs (label :: visited) s)) 0 next
  in
  dfs [] head

let run (ctx : Context.t) =
  let func = ctx.Context.func in
  let fname = func.Func.name in
  let rv = Context.regions ctx in
  if not rv.Regions_view.has_regions then []
  else begin
    let diags = ref [] in
    let emit ?block ?instr severity msg =
      diags := Diag.make ~check:name ~severity ~func:fname ?block ?instr msg :: !diags
    in
    (* --- store-buffer demand ----------------------------------------- *)
    if ctx.Context.sb_size > 0 then begin
      let target = max 1 (ctx.Context.sb_size / 2) in
      let stores_tbl = Hashtbl.create 32 in
      Func.iter_blocks
        (fun b -> Hashtbl.replace stores_tbl b.Block.label (Block.num_stores b))
        func;
      let stores_of l = Option.value (Hashtbl.find_opt stores_tbl l) ~default:0 in
      let region_of = Hashtbl.create 32 in
      List.iter
        (fun (l, id) -> Hashtbl.replace region_of l id)
        rv.Regions_view.region_of;
      List.iter
        (fun r ->
          let demand = worst_sb_path func ~stores_of ~region_of r in
          if demand > ctx.Context.sb_size then
            emit ~block:r.Regions_view.head Diag.Error
              (Printf.sprintf
                 "region %d needs %d store-buffer entries on its worst path but the SB has %d (commit deadlock)"
                 r.Regions_view.id demand ctx.Context.sb_size)
          else if demand > target then
            emit ~block:r.Regions_view.head Diag.Warn
              (Printf.sprintf
                 "region %d needs %d store-buffer entries, above the sb/2 overlap target of %d"
                 r.Regions_view.id demand target))
        rv.Regions_view.regions
    end;
    (* --- per-region checkpoint multiplicity vs the color pool --------- *)
    List.iter
      (fun { Regions_view.id; blocks; _ } ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun label ->
            let b = Func.block func label in
            Array.iter
              (fun i ->
                match i with
                | Instr.Ckpt r ->
                  Hashtbl.replace counts r (1 + Option.value (Hashtbl.find_opt counts r) ~default:0)
                | _ -> ())
              b.Block.body)
          blocks;
        Hashtbl.fold (fun r n acc -> (r, n) :: acc) counts []
        |> List.sort compare
        |> List.iter (fun (r, n) ->
               if n > ctx.Context.colors then
                 emit Diag.Warn
                   (Printf.sprintf
                      "register %s is checkpointed %d times in region %d, more than the %d-color pool"
                      (Reg.to_string r) n id ctx.Context.colors)))
      rv.Regions_view.regions;
    (* --- direct-release checkpoint claims ----------------------------- *)
    (match ctx.Context.claims with
    | None -> ()
    | Some claims ->
      let cfg = Context.cfg ctx in
      let self_reachable label =
        (* DFS from the successors of [label] back to it. *)
        let rec go visited = function
          | [] -> false
          | l :: rest ->
            if String.equal l label then true
            else if List.mem l visited then go visited rest
            else go (l :: visited) (Cfg.successors cfg l @ rest)
        in
        go [] (Cfg.successors cfg label)
      in
      (* One scan builds both per-register tables the per-claim loop
         consults (claims can be numerous; a scan per claim is not). *)
      let ckpt_site_tbl : (Reg.t, (string * int) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let def_tbl : (Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
      Func.iter_blocks
        (fun b ->
          Array.iteri
            (fun i instr ->
              (match instr with
              | Instr.Ckpt r ->
                Hashtbl.replace ckpt_site_tbl r
                  ((b.Block.label, i)
                  :: Option.value (Hashtbl.find_opt ckpt_site_tbl r)
                       ~default:[])
              | _ -> ());
              Instr.iter_defs
                (fun r ->
                  Hashtbl.replace def_tbl r
                    (1 + Option.value (Hashtbl.find_opt def_tbl r) ~default:0))
                instr)
            b.Block.body)
        func;
      let ckpt_sites r =
        Option.value (Hashtbl.find_opt ckpt_site_tbl r) ~default:[]
      in
      let def_count r =
        Option.value (Hashtbl.find_opt def_tbl r) ~default:0
      in
      let live = Context.liveness ctx in
      let dom = Context.dominance ctx in
      List.iter
        (fun (label, i) ->
          let instr =
            match Func.block_opt func label with
            | Some b when i >= 0 && i < Array.length b.Block.body -> Some b.Block.body.(i)
            | _ -> None
          in
          match instr with
          | Some (Instr.Ckpt r) ->
            let sites = ckpt_sites r in
            if List.length sites > 1 then
              emit ~block:label ~instr:i Diag.Error
                (Printf.sprintf
                   "checkpoint of %s claimed direct-release but the register has %d checkpoint sites"
                   (Reg.to_string r) (List.length sites));
            if self_reachable label then
              emit ~block:label ~instr:i Diag.Error
                (Printf.sprintf
                   "checkpoint of %s claimed direct-release inside a loop: re-execution overwrites the verified slot"
                   (Reg.to_string r));
            if Reg.is_zero r || Reg.is_virtual r then
              emit ~block:label ~instr:i Diag.Error
                "direct-release claim names a non-architectural register";
            (* Every restart that restores r must happen strictly after
               the (early-released) slot was written, or the restored
               value is from the future. A never-defined register is
               exempt: its slot always equals its (initial) value. *)
            if def_count r > 0 then
              List.iter
                (fun { Regions_view.id; head; _ } ->
                  if
                    Reg.Set.mem r (Liveness.live_in live head)
                    && not
                         (Dominance.dominates dom ~dom:label ~sub:head
                         && not (String.equal label head))
                  then
                    emit ~block:label ~instr:i Diag.Error
                      (Printf.sprintf
                         "direct-release checkpoint of %s does not dominate region %d, which restores it on restart"
                         (Reg.to_string r) id))
                rv.Regions_view.regions
          | Some _ ->
            emit ~block:label ~instr:i Diag.Error
              "direct-release claim does not name a checkpoint instruction"
          | None ->
            emit ~block:label ~instr:i Diag.Error
              "direct-release claim names a nonexistent instruction")
        claims.Context.direct_ckpts);
    (* --- CLQ configuration sanity ------------------------------------- *)
    (match ctx.Context.clq_entries with
    | Some n when n <= 0 ->
      emit Diag.Error (Printf.sprintf "compact CLQ configured with %d entries" n)
    | Some n -> (
      match ctx.Context.rbb_size with
      | Some rbb when rbb > n ->
        emit Diag.Info
          (Printf.sprintf
             "CLQ of %d entries tracks a %d-entry RBB window; overflow falls back to quarantined release"
             n rbb)
      | _ -> ())
    | None -> ());
    Diag.sort !diags
  end
