(** Scheduling dependence preservation: pair check comparing the function
    before and after the scheduling pass — same blocks, same instruction
    multisets, every RAW/WAR/WAW/memory dependence kept in order. *)

open Turnpike_ir

val name : string
val run : before:Func.t -> Context.t -> Diag.t list
