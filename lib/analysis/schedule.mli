(** Scheduling dependence preservation: pair check comparing the function
    before and after the scheduling pass — same blocks, same instruction
    multisets, every RAW/WAR/WAW/memory dependence kept in order. *)

open Turnpike_ir

val name : string
(** ["sched-deps"]. *)

val run : before:Func.t -> Context.t -> Diag.t list
(** [run ~before ctx] compares [ctx.func] against the pre-scheduling
    snapshot [before]: identical block structure, each body a permutation
    of the original multiset, and every RAW/WAR/WAW register dependence,
    memory-order and checkpoint-order constraint preserved. Returns
    sorted diagnostics. *)
