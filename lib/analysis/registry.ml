open Turnpike_ir

type whole = {
  name : string;
  doc : string;
  reads : Facet.Set.t;
  applies : Context.t -> bool;
  run : Context.t -> Diag.t list;
}

type pair = {
  p_name : string;
  p_doc : string;
  pass : string;
  p_run : before:Func.t -> Context.t -> Diag.t list;
}

let has_regions ctx = (Context.regions ctx).Regions_view.has_regions
let facets = Facet.Set.of_list

let whole_checks =
  [
    {
      name = Wellformed.name;
      doc = "CFG/label consistency, definite assignment, register classes";
      reads =
        facets
          [
            Facet.Cfg_shape;
            Facet.Instrs;
            Facet.Instr_order;
            Facet.Reg_classes;
          ];
      applies = (fun _ -> true);
      run = Wellformed.run;
    };
    {
      name = Regions_view.check_name;
      doc = "single-entry region structure reconstructed from boundary markers";
      reads = facets [ Facet.Cfg_shape; Facet.Boundaries ];
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = (fun ctx -> (Context.regions ctx).Regions_view.diags);
    };
    {
      name = Recoverability.name;
      doc = "every region live-in is checkpoint-covered or reconstructible";
      reads =
        facets
          [
            Facet.Cfg_shape;
            Facet.Instrs;
            Facet.Instr_order;
            Facet.Boundaries;
            Facet.Recovery_exprs;
          ];
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = Recoverability.run;
    };
    {
      name = War.name;
      doc = "claimed verification-bypassable stores are WAR-free in-region";
      reads =
        facets
          [
            Facet.Cfg_shape;
            Facet.Instrs;
            Facet.Instr_order;
            Facet.Boundaries;
            Facet.Claims;
          ];
      applies = (fun ctx -> ctx.Context.resilient && ctx.Context.claims <> None && has_regions ctx);
      run = War.run;
    };
    {
      name = Capacity.name;
      doc = "store-buffer demand, checkpoint colors, direct-release claims, CLQ";
      reads =
        facets
          [
            Facet.Cfg_shape;
            Facet.Instrs;
            Facet.Instr_order;
            Facet.Boundaries;
            Facet.Claims;
            Facet.Machine_params;
          ];
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = Capacity.run;
    };
    {
      name = Vuln.name;
      doc = "static ACE/AVF vulnerability windows (def-to-last-use exposure)";
      reads =
        facets
          [
            Facet.Cfg_shape;
            Facet.Instrs;
            Facet.Instr_order;
            Facet.Boundaries;
            Facet.Claims;
            Facet.Recovery_exprs;
            Facet.Machine_params;
          ];
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = Vuln.check;
    };
  ]

let pair_checks =
  [
    {
      p_name = Livm_audit.name;
      p_doc = "claimed induction-variable merges re-derived from the snapshot pair";
      pass = "livm";
      p_run = Livm_audit.run;
    };
    {
      p_name = Schedule.name;
      p_doc = "scheduler output preserves def-use/memory dependences";
      pass = "scheduling";
      p_run = Schedule.run;
    };
  ]

let names =
  List.map (fun c -> c.name) whole_checks @ List.map (fun c -> c.p_name) pair_checks

let reads_of name =
  match List.find_opt (fun c -> String.equal c.name name) whole_checks with
  | Some c -> c.reads
  | None -> Facet.Set.empty

let pair_passes = List.sort_uniq compare (List.map (fun c -> c.pass) pair_checks)

(* A check that raises on pathological IR (e.g. a CFG that cannot be
   built over dangling labels) must not take the whole lint down: the
   crash becomes an Error diagnostic against the check itself. *)
let guarded name f ctx =
  try f ctx
  with exn ->
    [
      Diag.make ~check:name ~severity:Diag.Error
        ~func:ctx.Context.func.Func.name
        (Printf.sprintf "check failed to run: %s" (Printexc.to_string exn));
    ]

let run_whole ctx =
  let ds =
    List.concat_map
      (fun c ->
        guarded c.name (fun ctx -> if c.applies ctx then c.run ctx else []) ctx)
      whole_checks
  in
  Diag.sort (List.map (Diag.with_pass ctx.Context.pass) ds)

let run_pair ~pass ~before ctx =
  let ds =
    List.concat_map
      (fun c ->
        if String.equal c.pass pass then
          guarded c.p_name (fun ctx -> c.p_run ~before ctx) ctx
        else [])
      pair_checks
  in
  Diag.sort (List.map (Diag.with_pass ctx.Context.pass) ds)

let pair_names_for pass =
  List.filter_map
    (fun c -> if String.equal c.pass pass then Some c.p_name else None)
    pair_checks

(* ------------------------- incremental engine ------------------------- *)

(* Per-check accumulation of the facets dirtied since the check last ran.
   A check re-runs iff that pending set intersects its read set; skipping
   is output-preserving because an untouched check would reproduce its
   previous diagnostics verbatim and those are already deduplicated by
   [fresh]'s [seen] table (tools/check.sh additionally pins incremental
   output byte-identical to a full re-check). *)
type inc = (string, Facet.Set.t) Hashtbl.t

let inc_create () : inc =
  let t = Hashtbl.create (List.length whole_checks) in
  List.iter (fun c -> Hashtbl.replace t c.name Facet.Set.empty) whole_checks;
  t

let run_whole_inc (inc : inc) ~dirty ctx =
  let ran = ref [] in
  let ds =
    List.concat_map
      (fun c ->
        let pending =
          Facet.Set.union dirty
            (Option.value (Hashtbl.find_opt inc c.name) ~default:Facet.all)
        in
        if Facet.Set.disjoint pending c.reads then begin
          Hashtbl.replace inc c.name pending;
          []
        end
        else begin
          Hashtbl.replace inc c.name Facet.Set.empty;
          ran := c.name :: !ran;
          guarded c.name
            (fun ctx -> if c.applies ctx then c.run ctx else [])
            ctx
        end)
      whole_checks
  in
  (Diag.sort (List.map (Diag.with_pass ctx.Context.pass) ds), List.rev !ran)

let fresh ~seen ds =
  List.filter
    (fun d ->
      let k = Diag.key d in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ds
