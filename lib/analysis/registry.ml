open Turnpike_ir

type whole = {
  name : string;
  doc : string;
  applies : Context.t -> bool;
  run : Context.t -> Diag.t list;
}

type pair = {
  p_name : string;
  p_doc : string;
  pass : string;
  p_run : before:Func.t -> Context.t -> Diag.t list;
}

let has_regions ctx = (Context.regions ctx).Regions_view.has_regions

let whole_checks =
  [
    {
      name = Wellformed.name;
      doc = "CFG/label consistency, definite assignment, register classes";
      applies = (fun _ -> true);
      run = Wellformed.run;
    };
    {
      name = Regions_view.check_name;
      doc = "single-entry region structure reconstructed from boundary markers";
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = (fun ctx -> (Context.regions ctx).Regions_view.diags);
    };
    {
      name = Recoverability.name;
      doc = "every region live-in is checkpoint-covered or reconstructible";
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = Recoverability.run;
    };
    {
      name = War.name;
      doc = "claimed verification-bypassable stores are WAR-free in-region";
      applies = (fun ctx -> ctx.Context.resilient && ctx.Context.claims <> None && has_regions ctx);
      run = War.run;
    };
    {
      name = Capacity.name;
      doc = "store-buffer demand, checkpoint colors, direct-release claims, CLQ";
      applies = (fun ctx -> ctx.Context.resilient && has_regions ctx);
      run = Capacity.run;
    };
  ]

let pair_checks =
  [
    {
      p_name = Schedule.name;
      p_doc = "scheduler output preserves def-use/memory dependences";
      pass = "scheduling";
      p_run = Schedule.run;
    };
  ]

let names =
  List.map (fun c -> c.name) whole_checks @ List.map (fun c -> c.p_name) pair_checks

let pair_passes = List.sort_uniq compare (List.map (fun c -> c.pass) pair_checks)

(* A check that raises on pathological IR (e.g. a CFG that cannot be
   built over dangling labels) must not take the whole lint down: the
   crash becomes an Error diagnostic against the check itself. *)
let guarded name f ctx =
  try f ctx
  with exn ->
    [
      Diag.make ~check:name ~severity:Diag.Error
        ~func:ctx.Context.func.Func.name
        (Printf.sprintf "check failed to run: %s" (Printexc.to_string exn));
    ]

let run_whole ctx =
  let ds =
    List.concat_map
      (fun c ->
        guarded c.name (fun ctx -> if c.applies ctx then c.run ctx else []) ctx)
      whole_checks
  in
  Diag.sort (List.map (Diag.with_pass ctx.Context.pass) ds)

let run_pair ~pass ~before ctx =
  let ds =
    List.concat_map
      (fun c -> if String.equal c.pass pass then c.p_run ~before ctx else [])
      pair_checks
  in
  Diag.sort (List.map (Diag.with_pass ctx.Context.pass) ds)

let fresh ~seen ds =
  List.filter
    (fun d ->
      let k = Diag.key d in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ds
