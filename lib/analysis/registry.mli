(** The check registry.

    Whole-program checks run on any context (a final compile or the state
    between two passes); pair checks compare the function before and after
    one specific pass and only fire in per-pass mode. *)

open Turnpike_ir

type whole = {
  name : string;
  doc : string;
  applies : Context.t -> bool;
  run : Context.t -> Diag.t list;
}

type pair = {
  p_name : string;
  p_doc : string;
  pass : string;  (** declared pass name the check wraps *)
  p_run : before:Func.t -> Context.t -> Diag.t list;
}

val whole_checks : whole list
val pair_checks : pair list

val names : string list
(** All check names, whole and pair, in registration order. *)

val pair_passes : string list
(** Passes some pair check wants a pre-pass snapshot of. *)

val run_whole : Context.t -> Diag.t list
(** Run every applicable whole check, stamp the context's pass provenance,
    and return a deterministically sorted list. *)

val run_pair : pass:string -> before:Func.t -> Context.t -> Diag.t list
(** Run the pair checks registered for [pass] on a (before, after) snapshot
    pair. *)

val fresh : seen:(string, unit) Hashtbl.t -> Diag.t list -> Diag.t list
(** Filter out diagnostics whose {!Diag.key} is already in [seen] and
    record the new ones — the provenance mechanism: a diagnostic is
    attributed to the first pass after which it appears. *)
