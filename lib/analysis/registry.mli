(** The check registry.

    Whole-program checks run on any context (a final compile or the state
    between two passes); pair checks compare the function before and after
    one specific pass and only fire in per-pass mode.

    Each whole check declares the IR {!Facet}s it reads; the incremental
    API ({!inc_create}/{!run_whole_inc}) uses those declarations to re-run,
    between passes, only the checks whose inputs the pass could have
    touched. *)

open Turnpike_ir

(** A whole-program check. *)
type whole = {
  name : string;  (** stable identifier diagnostics carry *)
  doc : string;  (** one-line description (surfaces in docs/ARCHITECTURE.md) *)
  reads : Facet.Set.t;  (** facets the verdict depends on *)
  applies : Context.t -> bool;  (** cheap gate; [run] is skipped when false *)
  run : Context.t -> Diag.t list;  (** the check proper *)
}

(** A before/after pair check, bound to one pass. *)
type pair = {
  p_name : string;  (** stable identifier diagnostics carry *)
  p_doc : string;  (** one-line description *)
  pass : string;  (** declared pass name the check wraps *)
  p_run : before:Func.t -> Context.t -> Diag.t list;  (** the check proper *)
}

val whole_checks : whole list
(** Every registered whole-program check, in registration order. *)

val pair_checks : pair list
(** Every registered pair check, in registration order. *)

val names : string list
(** All check names, whole and pair, in registration order. *)

val reads_of : string -> Facet.Set.t
(** Declared read set of a whole check (empty for unknown or pair
    names) — for the docs table and [lint --explain]. *)

val pair_passes : string list
(** Passes some pair check wants a pre-pass snapshot of. *)

val pair_names_for : string -> string list
(** Names of the pair checks registered for one pass. *)

val run_whole : Context.t -> Diag.t list
(** Run every applicable whole check, stamp the context's pass provenance,
    and return a deterministically sorted list. *)

val run_pair : pass:string -> before:Func.t -> Context.t -> Diag.t list
(** Run the pair checks registered for [pass] on a (before, after) snapshot
    pair. *)

type inc
(** Incremental-run state: per check, the facets dirtied since it last
    ran. Create one per pipeline execution. *)

val inc_create : unit -> inc
(** Fresh state in which every check is due (everything pending). *)

val run_whole_inc : inc -> dirty:Facet.Set.t -> Context.t -> Diag.t list * string list
(** Like {!run_whole}, but after charging [dirty] (the facets the pass
    just executed may have touched; {!Facet.all} for the initial state)
    to every check, runs only those whose pending facets intersect their
    declared reads, and marks them clean. Returns the sorted diagnostics
    plus the names of the checks that ran, in registration order. *)

val fresh : seen:(string, unit) Hashtbl.t -> Diag.t list -> Diag.t list
(** Filter out diagnostics whose {!Diag.key} is already in [seen] and
    record the new ones — the provenance mechanism: a diagnostic is
    attributed to the first pass after which it appears. *)
