(** IR facets — the currency of the incremental registry.

    Each registry check declares the set of facets it {e reads}; each
    pipeline pass declares the set it {e may dirty}. Between passes, the
    registry re-runs exactly the checks whose read set intersects the
    facets dirtied since they last ran. Skipping is output-preserving: a
    check whose inputs are untouched would reproduce its previous
    diagnostics verbatim, and those are already deduplicated by the
    provenance filter ({!Registry.fresh}). *)

(** One aspect of the pipeline state. *)
type t =
  | Cfg_shape  (** block set, terminators, layout order *)
  | Instrs  (** block bodies: which instructions exist, their opcodes and
                operands (subsumes {!Instr_order}: a pass that dirties
                [Instrs] need not also declare [Instr_order]) *)
  | Instr_order
      (** intra-block instruction order only, under the scheduler's
          contract: a dependence-preserving permutation of each block
          body. Block-level dataflow summaries (liveness gen/kill, the
          boundary segment structure, per-block store counts) are
          invariant under such permutations, so {!Context.advance} keeps
          the liveness cache warm — but checks that report instruction
          positions must still re-run, so every [Instrs] reader reads
          this too. The contract itself is audited each compile by the
          [sched-deps] pair check. *)
  | Boundaries  (** region boundary markers (partitioning output) *)
  | Reg_classes  (** virtual/physical status, [nregs], entry-defined set *)
  | Recovery_exprs  (** pruned-checkpoint reconstruction expressions *)
  | Claims  (** WAR-bypass and direct-release claims *)
  | Machine_params  (** SB size, colors, RBB depth, CLQ entries *)

val compare : t -> t -> int
(** Total order following declaration order. *)

val equal : t -> t -> bool
(** Facet equality. *)

(** Facet sets, ordered per {!compare}. *)
module Set : Set.S with type elt = t

val all_list : t list
(** Every facet, in declaration order. *)

val all : Set.t
(** The universe — what a fresh (never-checked) pipeline state dirties. *)

val to_string : t -> string
(** Stable kebab-case name, used by [lint --explain] and the
    architecture docs. *)

val set_to_string : Set.t -> string
(** Comma-joined {!to_string} of the elements in {!Set} order. *)
