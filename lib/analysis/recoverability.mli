(** Recoverability: every register live into a region head is covered by
    a reaching checkpoint on all paths, or reconstructible through a
    validated recovery expression (paper §4.1.3). *)

val name : string
val run : Context.t -> Diag.t list
