(** Recoverability: every register live into a region head is covered by
    a reaching checkpoint on all paths, or reconstructible through a
    validated recovery expression (paper §4.1.3). *)

val name : string
(** ["recoverability"]. *)

val uncovered_live_ins :
  Context.t -> (int * string * Turnpike_ir.Reg.t) list
(** Coverage gaps, as data: [(region id, head label, register)] for
    every register live into a region head whose checkpoint slot is
    stale on some incoming path and that carries no recovery
    expression. Exactly the sites [run] reports as
    ["no checkpoint covers it…"] errors; the static vulnerability
    estimate ({!Vuln}) charges each gap as unbounded exposure.
    Region order, then register order; empty when the function has no
    regions. *)

val run : Context.t -> Diag.t list
(** Prove, per region head, that every live-in register is either covered
    (its checkpoint slot holds the current value on all incoming paths —
    a forward must-dataflow) or carries a recovery expression whose slot
    dependences are themselves covered and stable. Published expressions
    are additionally re-derived independently: each must normalize to the
    same value tree as the register's defining instructions, with
    clobbered and loop-carried operands convicted. Returns sorted
    diagnostics. *)
