(** Static ACE/AVF vulnerability estimate (paper §3, "vulnerability
    windows").

    A struck register matters only while it is ACE — architecturally
    required for correct execution (Mukherjee et al.'s ACE analysis,
    here approximated by liveness): the window opens at a definition and
    closes at the last use, and Turnpike shrinks the *consequence* of a
    hit inside the window by bounding how far a fault can propagate
    before detection (parity / acoustic-sensor WCDL) and rollback
    (region checkpoints). This module computes those windows purely
    statically from the IR — no simulation, no fault campaign — and
    distills them into ranked per-site / per-register / per-region
    tables structurally identical to the dynamic forensics tables
    ([Turnpike_resilience.Forensics]), so the two rankings can be
    compared key-for-key ({!Rank.agreement}).

    The estimate is an execution-frequency model, not a cycle-accurate
    one: each static position is weighted by [loop_weight]{^ depth}
    (loop trip counts are unknowable statically), ACE fractions come
    from {!Context.liveness}, and detection escape falls with region
    mass relative to the configured WCDL ({!Context.t.wcdl}). Coverage
    gaps ({!Recoverability.uncovered_live_ins}) are charged as
    unbounded exposure — which is what convicts the drop-ckpt mutant
    statically. *)

open Turnpike_ir

val name : string
(** ["vuln"] — the registry check name. *)

val loop_weight : float
(** Assumed iterations per loop-nesting level (static stand-in for trip
    count); a block at depth [d] weighs [loop_weight ** d]. *)

(** One ranked table row. [exposure] is the raw weighted ACE mass;
    [score] additionally folds in detection escape, coverage gaps and
    bypass hazards. Tables are sorted by score (descending), then
    exposure, then {!Rank.key_compare} — the same tie-break the dynamic
    forensics tables use. *)
type row = { key : string; exposure : float; score : float }

type table = row list

(** The vulnerability window of one definition: from the def at
    [(block, index)] to the last use of [reg], measured in
    loop-weighted positions. *)
type window = {
  w_block : string;
  w_index : int;  (** body index of the defining instruction *)
  w_reg : Reg.t;
  w_region : int;  (** region of the def site; [-1] outside regions *)
  w_length : float;  (** weighted positions the value stays live *)
  w_bypass : float;
      (** weighted positions at which the live value feeds a claimed
          verification-bypassable store (a wrong value escapes the SB
          quarantine there) *)
}

type t = {
  windows : window list;  (** every def's window, program order *)
  by_site : table;  (** key ["block:index"], terminator at index [n] *)
  by_register : table;  (** key [Reg.to_string] *)
  by_region : table;  (** key [string_of_int region_id] *)
  gaps : (int * string * Reg.t) list;
      (** uncovered region live-ins (region id, head, register) — each
          charged as unbounded exposure of its region and register *)
  total_mass : float;  (** loop-weighted positions in the function *)
  predicted_avf : float;
      (** mass-weighted mean of the region scores: the scalar proxy the
          explorer ranks design points by *)
  wcdl : int;  (** detection latency the estimate was computed under *)
}

val empty : t
(** The all-zero result (returned for functions without regions). *)

val compute : Context.t -> t
(** Run the analysis. Uses the context's memoized {!Context.liveness} /
    {!Context.regions} / {!Context.dominance} (plus a private loop-depth
    pass); detection latency comes from {!Context.t.wcdl} (default 10
    when absent). Deterministic: depends only on the context. *)

val weighted_size : Context.t -> float
(** Loop-weighted position count of the function (the [total_mass] term
    alone). Defined for any function, regions or not — the explorer's
    static overhead proxy divides protected by baseline weighted size. *)

val rank : table -> table
(** Sort rows by (score desc, exposure desc, {!Rank.key_compare}).
    [compute] returns already-ranked tables; exposed for tests and for
    re-ranking merged tables. *)

val check : Context.t -> Diag.t list
(** The registry entry point: one [Warn] per coverage gap (these are
    also [Recoverability] errors, so a clean lint stays clean — the
    warning adds the vulnerability framing). *)

val table_to_json : table -> string
val to_json : t -> string
(** Stable JSON rendering (tables in rank order). *)
