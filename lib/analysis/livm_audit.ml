(* Audit of the claims made by loop induction-variable merging (paper
   §4.1.2). The pass reports each merge it performed; this pair check
   re-derives, from the before/after function pair alone, that every
   claim was sound:

   - in [before], victim and anchor really were basic induction variables
     of the claimed loop (single in-loop self-increment each), the victim's
     step really was [ratio] times the anchor's, its loop-entry value
     matched the claimed base, and it did not escape the loop;
   - in [after], the victim is gone entirely (no definition or use
     survives), the anchor's increment is intact, and every block that
     used the victim now carries the local recompute
     [anchor * ratio + base] (or the shift form for power-of-two ratios).

   Like the scheduling pair check, this only runs in per-pass mode, on a
   snapshot taken just before the pass — register names are the
   pre-regalloc virtual ones the pass itself saw. *)

open Turnpike_ir

let name = "livm-merge"

(* The unique in-[blocks] self-increment step of [r], if it has exactly
   one in-loop definition of that shape; [`Defs n] otherwise. *)
let self_increment func blocks r =
  let defs = ref [] in
  List.iter
    (fun l ->
      match Func.block_opt func l with
      | None -> ()
      | Some b ->
        Array.iter
          (fun i -> if List.mem r (Instr.defs i) then defs := i :: !defs)
          b.Block.body)
    blocks;
  match !defs with
  | [ Instr.Binop (Instr.Add, d, a, Instr.Imm s) ]
    when Reg.equal d r && Reg.equal a r ->
    `Step s
  | ds -> `Defs (List.length ds)

(* Defs/uses of [r] restricted to [blocks] (the loop body), plus uses
   anywhere in the function. The victim's pre-header initialization is
   allowed to survive the merge as dead code — only in-loop traces of it
   (and reads of the now-stale value anywhere) are violations. *)
let counts_in func blocks r =
  let in_loop l = List.exists (String.equal l) blocks in
  let ld = ref 0 and lu = ref 0 and gu = ref 0 in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          let d = List.mem r (Instr.defs i) and u = List.mem r (Instr.uses i) in
          if u then incr gu;
          if in_loop b.Block.label then begin
            if d then incr ld;
            if u then incr lu
          end)
        b.Block.body;
      if List.mem r (Block.term_uses b) then begin
        incr gu;
        if in_loop b.Block.label then incr lu
      end)
    func;
  (!ld, !lu, !gu)

let run ~before (ctx : Context.t) =
  let after = ctx.Context.func in
  let fname = after.Func.name in
  let diags = ref [] in
  let emit ?block severity msg =
    diags := Diag.make ~check:name ~severity ~func:fname ?block msg :: !diags
  in
  (match ctx.Context.iv_merges with
  | [] -> ()
  | merges ->
    let cfg = Cfg.build before in
    let dom = Dominance.compute cfg in
    let loops = Loop_info.compute cfg dom in
    let live = Liveness.compute cfg before in
    List.iter
      (fun (m : Context.iv_merge) ->
        let v = Reg.to_string m.Context.victim in
        match Loop_info.loop_of_header loops m.Context.header with
        | None ->
          emit Diag.Error
            (Printf.sprintf
               "claimed merge of %s in loop %s, but no such loop exists"
               v m.Context.header)
        | Some lp ->
          let blocks = lp.Loop_info.blocks in
          (* -- the before side: both really were basic IVs, steps agree -- *)
          (match
             ( self_increment before blocks m.Context.victim,
               self_increment before blocks m.Context.anchor )
           with
          | `Step sv, `Step sa ->
            if m.Context.ratio < 1 || sv <> m.Context.ratio * sa then
              emit ~block:m.Context.header Diag.Error
                (Printf.sprintf
                   "merge of %s into %s claims ratio %d, but the steps are %d and %d"
                   v
                   (Reg.to_string m.Context.anchor)
                   m.Context.ratio sv sa)
          | `Defs n, _ ->
            emit ~block:m.Context.header Diag.Error
              (Printf.sprintf
                 "merged register %s was not a basic induction variable (%d in-loop definitions)"
                 v n)
          | _, `Defs n ->
            emit ~block:m.Context.header Diag.Error
              (Printf.sprintf
                 "merge anchor %s is not a basic induction variable (%d in-loop definitions)"
                 (Reg.to_string m.Context.anchor)
                 n));
          (* -- the victim must not have been live out of the loop -- *)
          List.iter
            (fun (_, target) ->
              if Reg.Set.mem m.Context.victim (Liveness.live_in live target)
              then
                emit ~block:target Diag.Error
                  (Printf.sprintf
                     "merged register %s escapes the loop (live into exit %s)"
                     v target))
            (Loop_info.exits loops cfg m.Context.header);
          (* -- the after side: victim eliminated from the loop, anchor
                intact. (Its pre-header init may survive as dead code.) -- *)
          let vdefs, vuses, guses = counts_in after blocks m.Context.victim in
          if vdefs > 0 || vuses > 0 || guses > 0 then
            emit Diag.Error
              (Printf.sprintf
                 "merged register %s survives the merge (%d in-loop definitions, %d in-loop uses, %d uses total)"
                 v vdefs vuses guses);
          (match self_increment after blocks m.Context.anchor with
          | `Step _ -> ()
          | `Defs n ->
            emit ~block:m.Context.header Diag.Error
              (Printf.sprintf
                 "anchor %s lost its increment after the merge (%d in-loop definitions)"
                 (Reg.to_string m.Context.anchor)
                 n));
          (* -- every block that read the victim now recomputes it -- *)
          let base_matches = function
            | Instr.Imm c -> m.Context.iv_base = `Const c
            | Instr.Reg b -> m.Context.iv_base = `Reg b
          in
          let scale_matches t = function
            | Instr.Binop (Instr.Shl, d, a, Instr.Imm k) ->
              Reg.equal d t && Reg.equal a m.Context.anchor
              && k >= 0 && k < 62
              && Int.shift_left 1 k = m.Context.ratio
            | Instr.Binop (Instr.Mul, d, a, Instr.Imm q) ->
              Reg.equal d t && Reg.equal a m.Context.anchor
              && q = m.Context.ratio
            | _ -> false
          in
          let recompute_present b =
            let body = Block.body_list b in
            List.exists
              (fun i ->
                match i with
                | Instr.Binop (Instr.Add, _, t1, o) when base_matches o ->
                  List.exists (fun j -> scale_matches t1 j) body
                | _ -> false)
              body
          in
          List.iter
            (fun l ->
              match (Func.block_opt before l, Func.block_opt after l) with
              | Some bb, Some ab ->
                let read_victim =
                  Array.exists
                    (fun i ->
                      List.mem m.Context.victim (Instr.uses i)
                      && not (List.mem m.Context.victim (Instr.defs i)))
                    bb.Block.body
                in
                if read_victim && not (recompute_present ab) then
                  emit ~block:l Diag.Error
                    (Printf.sprintf
                       "block %s used %s but carries no %s*%d+base recompute after the merge"
                       l v
                       (Reg.to_string m.Context.anchor)
                       m.Context.ratio)
              | _ -> ())
            blocks)
      merges);
  Diag.sort !diags
