(* WAR-freedom audit (paper §4.3.1, CLQ). A store may bypass verification
   only if no load earlier in its region can read the address it
   overwrites: a fault-triggered rollback replays the region, and a
   replayed load after an already-released store would observe the new
   value. The checker recomputes the anti-dependence-free store set from
   scratch and diffs it against the set the pipeline claims bypassable.

   Aliasing is resolved conservatively: the address segments (application
   data / spill / checkpoint storage) are disjoint by construction, spill
   traffic uses absolute zero-based addresses which compare exactly, and
   anything else is assumed to alias. *)

open Turnpike_ir

let name = "war-bypass"

type access = { kind : Instr.mem_kind; base : Reg.t; off : int }

let may_alias a b =
  if not (Instr.equal_mem_kind a.kind b.kind) then false
  else if Reg.is_zero a.base && Reg.is_zero b.base then a.off = b.off
  else true

let load_access = function
  | Instr.Load (_, b, off, kind) -> Some { kind; base = b; off }
  | _ -> None

let store_access = function
  | Instr.Store (_, b, off, kind) -> Some { kind; base = b; off }
  | _ -> None

(* The (unique, single-entry) chain of blocks from the region head down to
   [label], head first, [label] excluded. Falls back to every region block
   when the structure is broken (a structural diag is emitted elsewhere). *)
let path_to_head region_of region_id ~head blocks_of_region preds label =
  let rec walk l acc guard =
    if guard = 0 then blocks_of_region
    else if String.equal l head then acc
    else
      match preds l with
      | [ p ] when Hashtbl.find_opt region_of p = Some region_id ->
        walk p (p :: acc) (guard - 1)
      | [] -> acc
      | _ -> acc
  in
  walk label [] 4096

let independent_set (ctx : Context.t) =
  let func = ctx.Context.func in
  let cfg = Context.cfg ctx in
  let rv = Context.regions ctx in
  let preds l = Cfg.predecessors cfg l in
  (* Per-run lookup tables: region membership and each block's load
     accesses in body order, computed once instead of per member block. *)
  let region_of = Hashtbl.create 32 in
  List.iter
    (fun (l, id) -> Hashtbl.replace region_of l id)
    rv.Regions_view.region_of;
  let loads_tbl = Hashtbl.create 32 in
  Func.iter_blocks
    (fun b ->
      let acc = ref [] in
      Array.iter
        (fun i ->
          match load_access i with Some a -> acc := a :: !acc | None -> ())
        b.Block.body;
      Hashtbl.replace loads_tbl b.Block.label (List.rev !acc))
    func;
  let result = ref [] in
  List.iter
    (fun { Regions_view.id; head; blocks } ->
      List.iter
        (fun label ->
          let b = Func.block func label in
          (* Loads on the unique path from the region head to this block. *)
          let prefix_blocks = path_to_head region_of id ~head blocks preds label in
          let loads_before =
            List.concat_map
              (fun l ->
                Option.value (Hashtbl.find_opt loads_tbl l) ~default:[])
              prefix_blocks
          in
          let seen = ref loads_before in
          Array.iteri
            (fun i instr ->
              (match load_access instr with Some a -> seen := a :: !seen | None -> ());
              match store_access instr with
              | Some s ->
                if not (List.exists (fun l -> may_alias l s) !seen) then
                  result := (label, i) :: !result
              | None -> ())
            b.Block.body)
        blocks)
    rv.Regions_view.regions;
  List.sort compare !result

let run (ctx : Context.t) =
  match ctx.Context.claims with
  | None -> []
  | Some claims ->
    let func = ctx.Context.func in
    let fname = func.Func.name in
    let rv = Context.regions ctx in
    if not rv.Regions_view.has_regions then []
    else begin
      let indep = independent_set ctx in
      let diags = ref [] in
      let emit ?block ?instr severity msg =
        diags := Diag.make ~check:name ~severity ~func:fname ?block ?instr msg :: !diags
      in
      List.iter
        (fun (label, i) ->
          let instr =
            match Func.block_opt func label with
            | Some b when i >= 0 && i < Array.length b.Block.body -> Some b.Block.body.(i)
            | _ -> None
          in
          match instr with
          | Some instr when Instr.is_store instr ->
            if not (List.mem (label, i) indep) then
              emit ~block:label ~instr:i Diag.Error
                "store claimed verification-bypassable, but an earlier load in its region may read the same address (WAR hazard on rollback)"
          | Some _ ->
            emit ~block:label ~instr:i Diag.Error
              "verification-bypass claim does not name a store instruction"
          | None ->
            emit ~block:label ~instr:i Diag.Error
              "verification-bypass claim names a nonexistent instruction")
        claims.Context.bypass_stores;
      let claimed = claims.Context.bypass_stores in
      let missed = List.filter (fun s -> not (List.mem s claimed)) indep in
      if missed <> [] then
        emit Diag.Info
          (Printf.sprintf
             "%d store(s) are provably WAR-free within their region but not claimed bypassable"
             (List.length missed));
      Diag.sort !diags
    end
