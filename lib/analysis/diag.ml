(* Diagnostics for the static-analysis registry. Everything here must be
   deterministic: lint output is compared byte-for-byte across job counts,
   so ordering never depends on hash-table iteration. *)

type severity = Info | Warn | Error [@@deriving show { with_path = false }, eq, ord]

type t = {
  check : string;
  severity : severity;
  func : string;
  block : string option;
  instr : int option;
  pass : string option;
  message : string;
}
[@@deriving show { with_path = false }, eq]

let make ~check ~severity ~func ?block ?instr ?pass message =
  { check; severity; func; block; instr; pass; message }

let severity_to_string = function
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let max_severity = function
  | [] -> None
  | ds -> Some (List.fold_left (fun acc d -> max acc d.severity) Info ds)

let error_count ds =
  List.length (List.filter (fun d -> d.severity = Error) ds)

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare_diag a b =
  let c = String.compare a.func b.func in
  if c <> 0 then c
  else
    let c = compare_opt String.compare a.block b.block in
    if c <> 0 then c
    else
      let c = compare_opt Int.compare a.instr b.instr in
      if c <> 0 then c
      else
        let c = String.compare a.check b.check in
        if c <> 0 then c
        else
          let c = compare_severity b.severity a.severity in
          if c <> 0 then c
          else
            let c = String.compare a.message b.message in
            if c <> 0 then c else compare_opt String.compare a.pass b.pass

let sort ds = List.sort_uniq compare_diag ds

let with_pass pass d = { d with pass }

let key d =
  Printf.sprintf "%s|%s|%s|%s|%s|%s" d.check
    (severity_to_string d.severity)
    d.func
    (Option.value d.block ~default:"")
    (match d.instr with Some i -> string_of_int i | None -> "")
    d.message

let to_string d =
  let loc =
    match (d.block, d.instr) with
    | Some b, Some i -> Printf.sprintf "%s:%s:%d" d.func b i
    | Some b, None -> Printf.sprintf "%s:%s" d.func b
    | None, _ -> d.func
  in
  let prov = match d.pass with Some p -> Printf.sprintf " (after %s)" p | None -> "" in
  Printf.sprintf "%-5s %-14s %s%s: %s" (severity_to_string d.severity) d.check loc prov d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let opt_str = function
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s)
    | None -> "null"
  in
  let opt_int = function Some i -> string_of_int i | None -> "null" in
  Printf.sprintf
    "{\"check\":\"%s\",\"severity\":\"%s\",\"func\":\"%s\",\"block\":%s,\"instr\":%s,\"pass\":%s,\"message\":\"%s\"}"
    (json_escape d.check)
    (severity_to_string d.severity)
    (json_escape d.func) (opt_str d.block) (opt_int d.instr) (opt_str d.pass)
    (json_escape d.message)
