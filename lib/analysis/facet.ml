(* IR facets — the currency of the incremental registry.

   A facet names one aspect of the pipeline state a check can read (and a
   pass can dirty). The granularity is deliberately coarse: facets must be
   cheap to reason about at pass-declaration time, and a false "dirty" only
   costs a redundant re-check (the [seen] dedup keeps the output identical),
   while a false "clean" would silently drop diagnostics — so passes declare
   conservatively and tools/check.sh pins incremental output byte-identical
   to a full re-check. *)

type t =
  | Cfg_shape
  | Instrs
  | Instr_order
  | Boundaries
  | Reg_classes
  | Recovery_exprs
  | Claims
  | Machine_params

let compare = Stdlib.compare
let equal = Stdlib.( = )

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let all_list =
  [
    Cfg_shape;
    Instrs;
    Instr_order;
    Boundaries;
    Reg_classes;
    Recovery_exprs;
    Claims;
    Machine_params;
  ]

let all = Set.of_list all_list

let to_string = function
  | Cfg_shape -> "cfg-shape"
  | Instrs -> "instrs"
  | Instr_order -> "instr-order"
  | Boundaries -> "boundaries"
  | Reg_classes -> "reg-classes"
  | Recovery_exprs -> "recovery-exprs"
  | Claims -> "claims"
  | Machine_params -> "machine-params"

let set_to_string s =
  String.concat "," (List.map to_string (Set.elements s))
