(* Recoverability: at every region head, every live-in register must be
   restorable after a rollback — either its checkpoint slot provably holds
   the current value on every path into the head ("covered"), or the
   pipeline supplies a recovery expression that reconstructs it from
   covered slots (paper §4.1.3).

   The proof is a forward must-dataflow per register: a definition makes
   the slot stale, a checkpoint re-covers it, and a register is covered at
   a join only if it is covered on every incoming path. The entry state is
   all-covered: initialised registers have their base slot seeded by
   [Interp.init], and a register that was never defined reads as zero —
   exactly what its unwritten slot restores. *)

open Turnpike_ir

let name = "recoverability"

(* ------------------------------------------------------------------ *)
(* Independent re-derivation of recovery expressions.

   The pruning pass is not trusted for the *content* of the expressions it
   publishes: for every (register, expression) pair the checker re-derives
   the register's unique runtime value from its defining instructions and
   demands that the claimed expression normalize to the same value tree.

   Both sides normalize into [Recovery_expr] over root atoms: [Const c],
   and [Slot x] where [x] has no definition (program input, slot seeded at
   entry) or a single impure definition (a load — opaque but unique).
   [Slot x] of a single pure definition expands through that definition,
   so structurally different but value-equal claims (e.g. reading a slot
   vs. re-deriving its producer) converge to the same tree. Expansion
   fails loudly on a clobbered (multiply-defined) register — its slot has
   no stable value — and on a loop-carried chain (a definition that feeds
   itself): both are exactly the unsound claims this check exists to
   convict. *)
(* ------------------------------------------------------------------ *)

exception Clobbered of Reg.t
exception Cyclic of Reg.t
exception Too_deep

(* Generous: pruning emits depth ≤ 4 expressions; the bound only guards
   adversarial hand-built IR from non-termination. *)
let max_expand_steps = 4096

(* One scan, shared by [validate_exprs] and the coverage walk in [run]:
   every definition site of every register, in program order. *)
let def_sites_of func =
  let def_sites : (Reg.t, (string * Instr.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          Instr.iter_defs
            (fun d ->
              Hashtbl.replace def_sites d
                ((b.Block.label, i)
                :: Option.value (Hashtbl.find_opt def_sites d) ~default:[]))
            i)
        b.Block.body)
    func;
  def_sites

let validate_exprs ~def_sites (ctx : Context.t) =
  if ctx.Context.recovery_exprs = [] then []
  else begin
    let func = ctx.Context.func in
    let fname = func.Func.name in
    let sites r =
      List.rev (Option.value (Hashtbl.find_opt def_sites r) ~default:[])
    in
    let fuel = ref 0 in
    let tick () =
      incr fuel;
      if !fuel > max_expand_steps then raise Too_deep
    in
    (* A register's expansion is independent of the [visiting] path (which
       only detects cycles), so successful expansions are shared across
       every expression being validated; a register that raises is never
       cached. Sharing makes repeated subtrees physically equal, which the
       [eq] shortcut below exploits. *)
    let memo : (Reg.t, Recovery_expr.t) Hashtbl.t = Hashtbl.create 32 in
    let rec value_of_reg visiting r =
      match Hashtbl.find_opt memo r with
      | Some v -> v
      | None ->
        tick ();
        let v =
          if Reg.is_zero r then Recovery_expr.Const 0
          else if List.exists (Reg.equal r) visiting then raise (Cyclic r)
          else
            match sites r with
            | [] -> Recovery_expr.Slot r
            | [ (_, d) ] when Instr.is_pure d ->
              value_of_instr (r :: visiting) d
            | [ _ ] -> Recovery_expr.Slot r (* load-defined: opaque but unique *)
            | _ -> raise (Clobbered r)
        in
        Hashtbl.replace memo r v;
        v
    and value_of_operand visiting = function
      | Instr.Imm c -> Recovery_expr.Const c
      | Instr.Reg r -> value_of_reg visiting r
    and value_of_instr visiting = function
      | Instr.Mov (_, o) -> value_of_operand visiting o
      | Instr.Binop (op, _, a, o) ->
        Recovery_expr.Op (op, value_of_reg visiting a, value_of_operand visiting o)
      | Instr.Cmp (c, _, a, o) ->
        Recovery_expr.Cmp (c, value_of_reg visiting a, value_of_operand visiting o)
      | Instr.Load _ | Instr.Store _ | Instr.Ckpt _ | Instr.Boundary _
      | Instr.Nop ->
        raise Too_deep (* unreachable: callers check purity first *)
    in
    (* Structural equality with a physical shortcut: memoized expansion
       shares subtrees, so deep equal comparisons usually hit [==]. *)
    let rec eq a b =
      a == b
      ||
      match (a, b) with
      | Recovery_expr.Const x, Recovery_expr.Const y -> x = y
      | Recovery_expr.Slot x, Recovery_expr.Slot y -> Reg.equal x y
      | Recovery_expr.Op (o, a1, b1), Recovery_expr.Op (o', a2, b2) ->
        o = o' && eq a1 a2 && eq b1 b2
      | Recovery_expr.Cmp (c, a1, b1), Recovery_expr.Cmp (c', a2, b2) ->
        c = c' && eq a1 a2 && eq b1 b2
      | Recovery_expr.Select (c1, a1, b1), Recovery_expr.Select (c2, a2, b2) ->
        eq c1 c2 && eq a1 a2 && eq b1 b2
      | _ -> false
    in
    let rec norm visiting = function
      | Recovery_expr.Const c -> Recovery_expr.Const c
      | Recovery_expr.Slot r -> value_of_reg visiting r
      | Recovery_expr.Op (op, a, b) ->
        Recovery_expr.Op (op, norm visiting a, norm visiting b)
      | Recovery_expr.Cmp (c, a, b) ->
        Recovery_expr.Cmp (c, norm visiting a, norm visiting b)
      | Recovery_expr.Select (c, a, b) ->
        Recovery_expr.Select (norm visiting c, norm visiting a, norm visiting b)
    in
    let diags = ref [] in
    let emit severity msg =
      diags := Diag.make ~check:name ~severity ~func:fname msg :: !diags
    in
    let reg = Reg.to_string in
    List.iter
      (fun (r, e) ->
        fuel := 0;
        try
          match sites r with
          | [ (la, da); (lb, db) ] -> (
            (* Two-sided definition: only a select replaying the defining
               branch can be sound (paper Fig 9). *)
            match e with
            | Recovery_expr.Select (ec, et, ef) -> (
              if not (Instr.is_pure da && Instr.is_pure db) then
                emit Diag.Error
                  (Printf.sprintf
                     "recovery expression for %s reconstructs an impure two-sided definition"
                     (reg r))
              else
                let cfg = Context.cfg ctx in
                match (Cfg.predecessors cfg la, Cfg.predecessors cfg lb) with
                | [ p ], [ p' ] when String.equal p p' -> (
                  match (Func.block func p).Block.term with
                  | Block.Branch (c, taken, fall)
                    when (String.equal taken la && String.equal fall lb)
                         || (String.equal taken lb && String.equal fall la) ->
                    let td, fd =
                      if String.equal taken la then (da, db) else (db, da)
                    in
                    if
                      not
                        (eq (norm [] ec) (value_of_reg [] c)
                        && eq (norm [] et)
                             (value_of_instr [ r ] td)
                        && eq (norm [] ef)
                             (value_of_instr [ r ] fd))
                    then
                      emit Diag.Error
                        (Printf.sprintf
                           "recovery select for %s does not replay the branch that defines it (predicate or arm mismatch)"
                           (reg r))
                  | Block.Branch _ | Block.Jump _ | Block.Ret ->
                    emit Diag.Error
                      (Printf.sprintf
                         "recovery select for %s: definitions in %s/%s are not the two arms of one branch"
                         (reg r) la lb)
                  )
                | _ ->
                  emit Diag.Error
                    (Printf.sprintf
                       "recovery select for %s: definitions in %s/%s are not the two arms of one branch"
                       (reg r) la lb))
            | _ ->
              emit Diag.Error
                (Printf.sprintf
                   "register %s has two definitions but its recovery expression is not a branch select"
                   (reg r)))
          | [] | [ _ ] ->
            if not (eq (norm [] e) (value_of_reg [] r)) then
              emit Diag.Error
                (Printf.sprintf
                   "recovery expression for %s does not recompute its definition: %s"
                   (reg r) (Recovery_expr.to_string e))
          | ds ->
            emit Diag.Error
              (Printf.sprintf
                 "register %s has %d definitions (clobbered); no recovery expression can denote its value"
                 (reg r) (List.length ds))
        with
        | Cyclic x ->
          emit Diag.Error
            (Printf.sprintf
               "recovery expression for %s depends on the loop-carried value of %s (definition feeds itself)"
               (reg r) (reg x))
        | Clobbered x ->
          emit Diag.Error
            (Printf.sprintf
               "recovery expression for %s reconstructs from %s, which has multiple definitions (slot value is not stable)"
               (reg r) (reg x))
        | Too_deep ->
          emit Diag.Warn
            (Printf.sprintf
               "recovery expression for %s is too deep to validate independently"
               (reg r)))
      ctx.Context.recovery_exprs;
    !diags
  end

(* Not-covered sets per block entry; absent register = covered. Runs on
   {!Bitset}s: the universe is the registers the function defines or
   checkpoints (anything else is untouched, hence covered). *)
let compute_notcov ctx =
  let func = ctx.Context.func in
  let cfg = Context.cfg ctx in
  let rpo = Cfg.reverse_postorder cfg in
  let max_id = ref 0 in
  let bump r = if r > !max_id then max_id := r in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          (match i with Instr.Ckpt r -> bump r | _ -> ());
          Instr.iter_defs bump i)
        b.Block.body)
    func;
  let max_id = !max_id in
  (* The sequential transfer (Ckpt covers, def stales) collapses to a
     last-event-wins summary per register, so each block contributes a
     gen set (last touch was a def) and a kill set (last touch was a
     checkpoint), computed once instead of per fixpoint iteration:
     out = (in \ kill) ∪ gen. *)
  (* Dense reverse-postorder indices, as in [Wellformed]: the fixpoint
     iterations touch only arrays. *)
  let rpo_arr = Array.of_list rpo in
  let n = Array.length rpo_arr in
  let idx : (string, int) Hashtbl.t = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace idx l i) rpo_arr;
  let gen_arr = Array.init n (fun _ -> Bitset.create ~max_id) in
  let kill_arr = Array.init n (fun _ -> Bitset.create ~max_id) in
  Array.iteri
    (fun bi label ->
      let gen = gen_arr.(bi) and kill = kill_arr.(bi) in
      Array.iter
        (fun i ->
          (match i with
          | Instr.Ckpt r ->
            Bitset.add kill r;
            Bitset.remove gen r
          | _ -> ());
          Instr.iter_defs
            (fun r ->
              Bitset.add gen r;
              Bitset.remove kill r)
            i)
        (Func.block func label).Block.body)
    rpo_arr;
  let preds_arr =
    Array.map
      (fun label ->
        List.filter_map
          (fun p -> Hashtbl.find_opt idx p)
          (Cfg.predecessors cfg label))
      rpo_arr
  in
  let entry_i = Option.value (Hashtbl.find_opt idx func.Func.entry) ~default:0 in
  let in_arr = Array.init n (fun _ -> Bitset.create ~max_id) in
  let out_arr = Array.init n (fun _ -> Bitset.create ~max_id) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let input = Bitset.create ~max_id in
      (* The entry starts all-covered regardless of back edges into it. *)
      if i <> entry_i then
        List.iter
          (fun p -> Bitset.union_into ~dst:input out_arr.(p))
          preds_arr.(i);
      in_arr.(i) <- input;
      let o = Bitset.transfer ~gen:gen_arr.(i) ~kill:kill_arr.(i) input in
      if not (Bitset.equal out_arr.(i) o) then begin
        out_arr.(i) <- o;
        changed := true
      end
    done
  done;
  let in_sets : (string, Bitset.t) Hashtbl.t = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace in_sets l in_arr.(i)) rpo_arr;
  (max_id, in_sets)

(* The coverage gaps alone (no expression validation): region live-ins
   that are stale on some incoming path and carry no recovery
   expression. This is the subset of [run]'s errors the static
   vulnerability estimate ({!Vuln}) charges as unbounded exposure. *)
let uncovered_live_ins (ctx : Context.t) =
  let rv = Context.regions ctx in
  if not rv.Regions_view.has_regions then []
  else begin
    let live = Context.liveness ctx in
    let notcov_max, notcov_in = compute_notcov ctx in
    let notcov_empty = Bitset.create ~max_id:notcov_max in
    let expr_of r = List.assoc_opt r ctx.Context.recovery_exprs in
    List.concat_map
      (fun { Regions_view.id; head; _ } ->
        let notcov =
          Option.value (Hashtbl.find_opt notcov_in head) ~default:notcov_empty
        in
        let needed = Reg.Set.remove Reg.zero (Liveness.live_in live head) in
        List.rev
          (Reg.Set.fold
             (fun r acc ->
               if Bitset.mem notcov r && expr_of r = None then
                 (id, head, r) :: acc
               else acc)
             needed []))
      rv.Regions_view.regions
  end

let run (ctx : Context.t) =
  let func = ctx.Context.func in
  let fname = func.Func.name in
  let rv = Context.regions ctx in
  if not rv.Regions_view.has_regions then []
  else begin
    let live = Context.liveness ctx in
    let notcov_max, notcov_in = compute_notcov ctx in
    let notcov_empty = Bitset.create ~max_id:notcov_max in
    (* Only consulted for recovery expressions (validation and dependence
       stability). Rounds before pruning publishes any — notably the
       expensive post-partition one — never pay for the scan. *)
    let def_sites = lazy (def_sites_of func) in
    let diags =
      ref
        (if ctx.Context.recovery_exprs = [] then []
         else validate_exprs ~def_sites:(Lazy.force def_sites) ctx)
    in
    let emit ?block severity msg =
      diags := Diag.make ~check:name ~severity ~func:fname ?block msg :: !diags
    in
    (* Definition multiplicity (for expression dependence stability). *)
    let def_count r =
      List.length
        (Option.value (Hashtbl.find_opt (Lazy.force def_sites) r) ~default:[])
    in
    let expr_of r = List.assoc_opt r ctx.Context.recovery_exprs in
    List.iter
      (fun { Regions_view.id; head; _ } ->
        let notcov =
          Option.value (Hashtbl.find_opt notcov_in head) ~default:notcov_empty
        in
        let needed = Reg.Set.remove Reg.zero (Liveness.live_in live head) in
        Reg.Set.iter
          (fun r ->
            if Bitset.mem notcov r then
              match expr_of r with
              | None ->
                emit ~block:head Diag.Error
                  (Printf.sprintf
                     "register %s is live into region %d but no checkpoint covers it on every path and no recovery expression exists"
                     (Reg.to_string r) id)
              | Some e ->
                List.iter
                  (fun dep ->
                    if Bitset.mem notcov dep then
                      emit ~block:head Diag.Error
                        (Printf.sprintf
                           "recovery expression for %s reads the slot of %s, which is not covered at region %d"
                           (Reg.to_string r) (Reg.to_string dep) id);
                    if def_count dep > 1 then
                      emit ~block:head Diag.Error
                        (Printf.sprintf
                           "recovery expression for %s depends on %s, which has multiple definitions (slot value is not stable)"
                           (Reg.to_string r) (Reg.to_string dep)))
                  (List.sort_uniq Reg.compare (Recovery_expr.slots e)))
          needed)
      rv.Regions_view.regions;
    Diag.sort !diags
  end
