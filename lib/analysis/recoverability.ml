(* Recoverability: at every region head, every live-in register must be
   restorable after a rollback — either its checkpoint slot provably holds
   the current value on every path into the head ("covered"), or the
   pipeline supplies a recovery expression that reconstructs it from
   covered slots (paper §4.1.3).

   The proof is a forward must-dataflow per register: a definition makes
   the slot stale, a checkpoint re-covers it, and a register is covered at
   a join only if it is covered on every incoming path. The entry state is
   all-covered: initialised registers have their base slot seeded by
   [Interp.init], and a register that was never defined reads as zero —
   exactly what its unwritten slot restores. *)

open Turnpike_ir

let name = "recoverability"

(* Not-covered sets per block entry; absent register = covered. *)
let compute_notcov ctx =
  let func = ctx.Context.func in
  let cfg = Context.cfg ctx in
  let rpo = Cfg.reverse_postorder cfg in
  let transfer notcov (b : Block.t) =
    Array.fold_left
      (fun acc i ->
        let acc =
          match i with Instr.Ckpt r -> Reg.Set.remove r acc | _ -> acc
        in
        List.fold_left (fun acc r -> Reg.Set.add r acc) acc (Instr.defs i))
      notcov b.Block.body
  in
  let in_sets : (string, Reg.Set.t) Hashtbl.t = Hashtbl.create 32 in
  let out_sets : (string, Reg.Set.t) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        let b = Func.block func label in
        let input =
          if String.equal label func.Func.entry then Reg.Set.empty
          else
            List.fold_left
              (fun acc p ->
                match Hashtbl.find_opt out_sets p with
                | None -> acc
                | Some s -> Reg.Set.union acc s)
              Reg.Set.empty
              (Cfg.predecessors cfg label)
        in
        Hashtbl.replace in_sets label input;
        let o = transfer input b in
        match Hashtbl.find_opt out_sets label with
        | Some prev when Reg.Set.equal prev o -> ()
        | _ ->
          Hashtbl.replace out_sets label o;
          changed := true)
      rpo
  done;
  in_sets

let run (ctx : Context.t) =
  let func = ctx.Context.func in
  let fname = func.Func.name in
  let rv = Context.regions ctx in
  if not rv.Regions_view.has_regions then []
  else begin
    let live = Context.liveness ctx in
    let notcov_in = compute_notcov ctx in
    let diags = ref [] in
    let emit ?block severity msg =
      diags := Diag.make ~check:name ~severity ~func:fname ?block msg :: !diags
    in
    (* How many sites define / checkpoint each register (for expression
       dependence stability). *)
    let def_count = Hashtbl.create 32 in
    Func.iter_blocks
      (fun b ->
        Array.iter
          (fun i ->
            List.iter
              (fun r ->
                Hashtbl.replace def_count r (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0))
              (Instr.defs i))
          b.Block.body)
      func;
    let expr_of r = List.assoc_opt r ctx.Context.recovery_exprs in
    List.iter
      (fun { Regions_view.id; head; _ } ->
        let notcov =
          Option.value (Hashtbl.find_opt notcov_in head) ~default:Reg.Set.empty
        in
        let needed = Reg.Set.remove Reg.zero (Liveness.live_in live head) in
        Reg.Set.iter
          (fun r ->
            if Reg.Set.mem r notcov then
              match expr_of r with
              | None ->
                emit ~block:head Diag.Error
                  (Printf.sprintf
                     "register %s is live into region %d but no checkpoint covers it on every path and no recovery expression exists"
                     (Reg.to_string r) id)
              | Some e ->
                List.iter
                  (fun dep ->
                    if Reg.Set.mem dep notcov then
                      emit ~block:head Diag.Error
                        (Printf.sprintf
                           "recovery expression for %s reads the slot of %s, which is not covered at region %d"
                           (Reg.to_string r) (Reg.to_string dep) id);
                    if Option.value (Hashtbl.find_opt def_count dep) ~default:0 > 1 then
                      emit ~block:head Diag.Error
                        (Printf.sprintf
                           "recovery expression for %s depends on %s, which has multiple definitions (slot value is not stable)"
                           (Reg.to_string r) (Reg.to_string dep)))
                  (List.sort_uniq Reg.compare (Recovery_expr.slots e)))
          needed)
      rv.Regions_view.regions;
    Diag.sort !diags
  end
