(* IR well-formedness lint: CFG/label consistency, definite assignment
   (every use reached by a definition on all paths, checked against the
   dominator-ordered dataflow), and register-class sanity. *)

open Turnpike_ir

let name = "wellformed"

let run (ctx : Context.t) =
  let func = ctx.Context.func in
  let fname = func.Func.name in
  let diags = ref [] in
  let emit ?block ?instr severity msg =
    diags := Diag.make ~check:name ~severity ~func:fname ?block ?instr msg :: !diags
  in
  (* --- label / layout consistency ------------------------------------ *)
  let structural_ok = ref true in
  (match Func.block_opt func func.Func.entry with
  | Some _ -> ()
  | None ->
    structural_ok := false;
    emit Diag.Error (Printf.sprintf "entry block %s does not exist" func.Func.entry));
  let in_order : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      (match Hashtbl.find_opt in_order l with
      | Some _ -> emit ~block:l Diag.Error "label appears twice in layout order"
      | None -> Hashtbl.replace in_order l 1);
      if Func.block_opt func l = None then
        emit ~block:l Diag.Error "layout order mentions an unknown label")
    func.Func.order;
  Func.iter_blocks
    (fun b ->
      if not (Hashtbl.mem in_order b.Block.label) then
        emit ~block:b.Block.label Diag.Error "block is missing from the layout order";
      List.iter
        (fun s ->
          if Func.block_opt func s = None then begin
            structural_ok := false;
            emit ~block:b.Block.label Diag.Error
              (Printf.sprintf "terminator targets unknown label %s" s)
          end)
        (Block.successors b))
    func;
  (* The CFG (and every analysis built on it) is only constructible once
     every terminator target resolves; with dangling labels the structural
     errors above are the whole story. *)
  if not !structural_ok then Diag.sort !diags
  else begin
  let cfg = Context.cfg ctx in
  Func.iter_blocks
    (fun b ->
      if not (Cfg.is_reachable cfg b.Block.label) then
        emit ~block:b.Block.label Diag.Info "block is unreachable from the entry")
    func;
  (* --- register-class sanity ----------------------------------------- *)
  if not ctx.Context.allow_virtual then
    Func.iter_blocks
      (fun b ->
        let bad ?instr r =
          if Reg.is_virtual r then
            emit ~block:b.Block.label ?instr Diag.Error
              (Printf.sprintf "virtual register %s survives register allocation" (Reg.to_string r))
          else if (not (Reg.is_zero r)) && r >= ctx.Context.nregs then
            emit ~block:b.Block.label ?instr Diag.Error
              (Printf.sprintf "register %s is outside the %d-register machine file"
                 (Reg.to_string r) ctx.Context.nregs)
        in
        Array.iteri
          (fun i instr ->
            List.iter (bad ~instr:i) (Instr.defs instr);
            List.iter (bad ~instr:i) (Instr.uses instr);
            match instr with
            | Instr.Ckpt r when Reg.is_zero r ->
              emit ~block:b.Block.label ~instr:i Diag.Error "checkpoint of the zero register"
            | _ -> ())
          b.Block.body;
        List.iter bad (Block.term_uses b))
      func;
  (* --- definite assignment: defs must reach uses on every path -------- *)
  let rpo = Cfg.reverse_postorder cfg in
  let all_regs = ref ctx.Context.entry_defined in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i -> List.iter (fun r -> all_regs := Reg.Set.add r !all_regs) (Instr.defs i))
        b.Block.body)
    func;
  (* OUT sets, None = not yet computed (top of the must lattice). *)
  let out : (string, Reg.Set.t) Hashtbl.t = Hashtbl.create 32 in
  let block_defs b =
    Array.fold_left
      (fun acc i -> List.fold_left (fun acc r -> Reg.Set.add r acc) acc (Instr.defs i))
      Reg.Set.empty b.Block.body
  in
  let in_of label =
    if String.equal label func.Func.entry then ctx.Context.entry_defined
    else
      let preds = Cfg.predecessors cfg label in
      List.fold_left
        (fun acc p ->
          match Hashtbl.find_opt out p with
          | None -> acc (* unresolved pred: optimistic top *)
          | Some s -> ( match acc with None -> Some s | Some a -> Some (Reg.Set.inter a s)))
        None preds
      |> Option.value ~default:!all_regs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        let b = Func.block func label in
        let o = Reg.Set.union (in_of label) (block_defs b) in
        match Hashtbl.find_opt out label with
        | Some prev when Reg.Set.equal prev o -> ()
        | _ ->
          Hashtbl.replace out label o;
          changed := true)
      rpo
  done;
  List.iter
    (fun label ->
      let b = Func.block func label in
      let defined = ref (in_of label) in
      Array.iteri
        (fun i instr ->
          List.iter
            (fun r ->
              if not (Reg.Set.mem r !defined) then
                emit ~block:label ~instr:i Diag.Warn
                  (Printf.sprintf "register %s may be read before any definition reaches it"
                     (Reg.to_string r)))
            (Instr.uses instr);
          List.iter (fun r -> defined := Reg.Set.add r !defined) (Instr.defs instr))
        b.Block.body;
      List.iter
        (fun r ->
          if not (Reg.Set.mem r !defined) then
            emit ~block:label Diag.Warn
              (Printf.sprintf "branch reads register %s before any definition reaches it"
                 (Reg.to_string r)))
        (Block.term_uses b))
    rpo;
  Diag.sort !diags
  end
