(* IR well-formedness lint: CFG/label consistency, definite assignment
   (every use reached by a definition on all paths, checked against the
   dominator-ordered dataflow), and register-class sanity. *)

open Turnpike_ir

let name = "wellformed"

let run (ctx : Context.t) =
  let func = ctx.Context.func in
  let fname = func.Func.name in
  let diags = ref [] in
  let emit ?block ?instr severity msg =
    diags := Diag.make ~check:name ~severity ~func:fname ?block ?instr msg :: !diags
  in
  (* --- label / layout consistency ------------------------------------ *)
  let structural_ok = ref true in
  (match Func.block_opt func func.Func.entry with
  | Some _ -> ()
  | None ->
    structural_ok := false;
    emit Diag.Error (Printf.sprintf "entry block %s does not exist" func.Func.entry));
  let in_order : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      (match Hashtbl.find_opt in_order l with
      | Some _ -> emit ~block:l Diag.Error "label appears twice in layout order"
      | None -> Hashtbl.replace in_order l 1);
      if Func.block_opt func l = None then
        emit ~block:l Diag.Error "layout order mentions an unknown label")
    func.Func.order;
  Func.iter_blocks
    (fun b ->
      if not (Hashtbl.mem in_order b.Block.label) then
        emit ~block:b.Block.label Diag.Error "block is missing from the layout order";
      List.iter
        (fun s ->
          if Func.block_opt func s = None then begin
            structural_ok := false;
            emit ~block:b.Block.label Diag.Error
              (Printf.sprintf "terminator targets unknown label %s" s)
          end)
        (Block.successors b))
    func;
  (* The CFG (and every analysis built on it) is only constructible once
     every terminator target resolves; with dangling labels the structural
     errors above are the whole story. *)
  if not !structural_ok then Diag.sort !diags
  else begin
  let cfg = Context.cfg ctx in
  (* One fused scan: reachability diags, register-class sanity, and the
     physical/virtual id extents the definite-assignment bitsets are sized
     from. The extents are tracked separately so the dataflow can remap
     the sparse id space (physicals near 0, virtuals from [Reg.virt_base])
     onto a compact universe — pre-regalloc rounds would otherwise drag
     ~[Reg.virt_base] permanently-zero bits through every word loop. *)
  let max_phys = ref 0 in
  let max_virt = ref (-1) in
  let span r =
    if Reg.is_virtual r then (if r > !max_virt then max_virt := r)
    else if r > !max_phys then max_phys := r
  in
  let check_classes = not ctx.Context.allow_virtual in
  Func.iter_blocks
    (fun b ->
      if not (Cfg.is_reachable cfg b.Block.label) then
        emit ~block:b.Block.label Diag.Info "block is unreachable from the entry";
      let bad ?instr r =
        if Reg.is_virtual r then
          emit ~block:b.Block.label ?instr Diag.Error
            (Printf.sprintf "virtual register %s survives register allocation" (Reg.to_string r))
        else if (not (Reg.is_zero r)) && r >= ctx.Context.nregs then
          emit ~block:b.Block.label ?instr Diag.Error
            (Printf.sprintf "register %s is outside the %d-register machine file"
               (Reg.to_string r) ctx.Context.nregs)
      in
      Array.iteri
        (fun i instr ->
          let visit =
            if check_classes then fun r ->
              span r;
              bad ~instr:i r
            else span
          in
          Instr.iter_defs visit instr;
          Instr.iter_uses visit instr;
          match instr with
          | Instr.Ckpt r when check_classes && Reg.is_zero r ->
            emit ~block:b.Block.label ~instr:i Diag.Error "checkpoint of the zero register"
          | _ -> ())
        b.Block.body;
      List.iter
        (fun r ->
          span r;
          if check_classes then bad r)
        (Block.term_uses b))
    func;
  (* --- definite assignment: defs must reach uses on every path -------- *)
  let rpo = Cfg.reverse_postorder cfg in
  Reg.Set.iter span ctx.Context.entry_defined;
  (* Compact universe: physicals keep their ids, virtuals are shifted down
     to sit just above the highest physical actually seen. *)
  let gap = !max_phys + 1 in
  let rid r = if Reg.is_virtual r then r - Reg.virt_base + gap else r in
  let maxid =
    if !max_virt < 0 then !max_phys else gap + (!max_virt - Reg.virt_base)
  in
  let entry_bs = Bitset.create ~max_id:maxid in
  Reg.Set.iter (fun r -> Bitset.add entry_bs (rid r)) ctx.Context.entry_defined;
  (* The fixpoint runs on dense reverse-postorder indices — block labels
     are resolved to indices once, so the iterations touch only arrays.
     Unreachable blocks are absent from [rpo]: their defs still feed
     [all_regs] (the optimistic top of the must lattice), and an edge from
     one stays permanently unresolved, exactly as before. *)
  let rpo_arr = Array.of_list rpo in
  let n = Array.length rpo_arr in
  let idx : (string, int) Hashtbl.t = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace idx l i) rpo_arr;
  let all_regs = Bitset.copy entry_bs in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (Instr.iter_defs (fun r -> Bitset.add all_regs (rid r)))
        b.Block.body)
    func;
  let defs_arr =
    Array.map
      (fun label ->
        let ds = Bitset.create ~max_id:maxid in
        Array.iter
          (Instr.iter_defs (fun r -> Bitset.add ds (rid r)))
          (Func.block func label).Block.body;
        ds)
      rpo_arr
  in
  let preds_arr =
    Array.map
      (fun label ->
        List.filter_map
          (fun p -> Hashtbl.find_opt idx p)
          (Cfg.predecessors cfg label))
      rpo_arr
  in
  let entry_i = Option.value (Hashtbl.find_opt idx func.Func.entry) ~default:0 in
  (* OUT absent = not yet computed (top of the must lattice). *)
  let out : Bitset.t option array = Array.make n None in
  let ins : Bitset.t array = Array.make n entry_bs in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let inn =
        if i = entry_i then entry_bs
        else begin
          let acc = ref None in
          List.iter
            (fun p ->
              match out.(p) with
              | None -> () (* unresolved pred: optimistic top *)
              | Some s -> (
                match !acc with
                | None -> acc := Some (Bitset.copy s)
                | Some a -> Bitset.inter_into ~dst:a s))
            preds_arr.(i);
          Option.value !acc ~default:all_regs
        end
      in
      (* the last (quiescent) iteration leaves the converged IN sets *)
      ins.(i) <- inn;
      let o = Bitset.copy inn in
      Bitset.union_into ~dst:o defs_arr.(i);
      match out.(i) with
      | Some prev when Bitset.equal prev o -> ()
      | _ ->
        out.(i) <- Some o;
        changed := true
    done
  done;
  Array.iteri
    (fun bi label ->
      let b = Func.block func label in
      let defined = Bitset.copy ins.(bi) in
      Array.iteri
        (fun i instr ->
          Instr.iter_uses
            (fun r ->
              if not (Bitset.mem defined (rid r)) then
                emit ~block:label ~instr:i Diag.Warn
                  (Printf.sprintf "register %s may be read before any definition reaches it"
                     (Reg.to_string r)))
            instr;
          Instr.iter_defs (fun r -> Bitset.add defined (rid r)) instr)
        b.Block.body;
      List.iter
        (fun r ->
          if not (Bitset.mem defined (rid r)) then
            emit ~block:label Diag.Warn
              (Printf.sprintf "branch reads register %s before any definition reaches it"
                 (Reg.to_string r)))
        (Block.term_uses b))
    rpo_arr;
  Diag.sort !diags
  end
