open Turnpike_ir

type claims = {
  bypass_stores : (string * int) list;
  direct_ckpts : (string * int) list;
}

let no_claims = { bypass_stores = []; direct_ckpts = [] }

type iv_merge = {
  victim : Reg.t;
  anchor : Reg.t;
  ratio : int;
  iv_base : [ `Const of int | `Reg of Reg.t ];
  header : string;
}

type cache = {
  mutable cfg : Cfg.t option;
  mutable liveness : Liveness.t option;
  mutable dominance : Dominance.t option;
  mutable regions : Regions_view.t option;
}

type t = {
  func : Func.t;
  entry_defined : Reg.Set.t;
  nregs : int;
  allow_virtual : bool;
  resilient : bool;
  sb_size : int;
  colors : int;
  rbb_size : int option;
  clq_entries : int option;
  wcdl : int option;
  recovery_exprs : (Reg.t * Recovery_expr.t) list;
  claims : claims option;
  iv_merges : iv_merge list;
  pass : string option;
  cache : cache;
}

let fresh_cache () = { cfg = None; liveness = None; dominance = None; regions = None }

let make ?(entry_defined = Reg.Set.empty) ?(nregs = 32) ?(allow_virtual = false)
    ?(resilient = false) ?(sb_size = 0) ?(colors = Layout.colors) ?rbb_size
    ?clq_entries ?wcdl ?(recovery_exprs = []) ?claims ?(iv_merges = []) ?pass
    func =
  {
    func;
    entry_defined;
    nregs;
    allow_virtual;
    resilient;
    sb_size;
    colors;
    rbb_size;
    clq_entries;
    wcdl;
    recovery_exprs;
    claims;
    iv_merges;
    pass;
    cache = fresh_cache ();
  }

(* Which derived analyses a dirty-facet set staleness-kills. Liveness also
   depends on intra-block instruction order (upward-exposed uses), so it
   dies with [Instrs]; the region table only reads boundary markers and
   block labels, so plain instruction edits leave it valid. *)
let advance ~dirty ?entry_defined ?allow_virtual ?recovery_exprs ?claims
    ?iv_merges ?pass t func =
  let dirty = if func != t.func then Facet.all else dirty in
  let stale facets = not (Facet.Set.disjoint dirty (Facet.Set.of_list facets)) in
  let keep staleness v = if staleness then None else v in
  let cache =
    {
      cfg = keep (stale [ Facet.Cfg_shape ]) t.cache.cfg;
      dominance = keep (stale [ Facet.Cfg_shape ]) t.cache.dominance;
      liveness = keep (stale [ Facet.Cfg_shape; Facet.Instrs ]) t.cache.liveness;
      regions = keep (stale [ Facet.Cfg_shape; Facet.Boundaries ]) t.cache.regions;
    }
  in
  {
    t with
    func;
    entry_defined = Option.value entry_defined ~default:t.entry_defined;
    allow_virtual = Option.value allow_virtual ~default:t.allow_virtual;
    recovery_exprs = Option.value recovery_exprs ~default:t.recovery_exprs;
    claims = (match claims with Some _ -> claims | None -> t.claims);
    iv_merges = Option.value iv_merges ~default:t.iv_merges;
    pass;
    cache;
  }

let with_pass t pass = { t with pass }

let with_machine ?rbb_size ?clq_entries ?wcdl t =
  {
    t with
    rbb_size = (match rbb_size with Some _ -> rbb_size | None -> t.rbb_size);
    clq_entries = (match clq_entries with Some _ -> clq_entries | None -> t.clq_entries);
    wcdl = (match wcdl with Some _ -> wcdl | None -> t.wcdl);
  }

let cfg t =
  match t.cache.cfg with
  | Some c -> c
  | None ->
    let c = Cfg.build t.func in
    t.cache.cfg <- Some c;
    c

let liveness t =
  match t.cache.liveness with
  | Some l -> l
  | None ->
    let l = Liveness.compute (cfg t) t.func in
    t.cache.liveness <- Some l;
    l

let dominance t =
  match t.cache.dominance with
  | Some d -> d
  | None ->
    let d = Dominance.compute (cfg t) in
    t.cache.dominance <- Some d;
    d

let regions t =
  match t.cache.regions with
  | Some r -> r
  | None ->
    let r = Regions_view.compute (cfg t) (fun () -> dominance t) t.func in
    t.cache.regions <- Some r;
    r
