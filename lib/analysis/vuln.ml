(* Static ACE/AVF estimate. See the .mli for the model; the shape of the
   output deliberately mirrors [Forensics]' dynamic tables so the two
   rankings are comparable key-for-key:

     by_site     "block:index"     <-> strike pc of each injected fault
     by_register "rN"              <-> struck register
     by_region   "id"              <-> region open at the strike

   Everything is derived from the context's memoized analyses plus one
   private loop-nesting pass, so a [compute] costs roughly one liveness
   fixpoint — cheap enough for the explorer to score a whole design grid
   before any simulation. *)

open Turnpike_ir

let name = "vuln"
let loop_weight = 8.0

(* A fault escapes detection when it propagates out of its region before
   the detector fires; longer regions give the (WCDL-delayed) detector
   more slack, so escape falls as mass/WCDL grows (paper Fig. 4). *)
let base_escape = 0.01

(* Weighted mass feeding a claimed verification-bypassable store is a
   direct SDC path when the claim is wrong; keep the charge small but
   visible so bogus claims move their sites up the ranking. *)
let bypass_factor = 0.05

(* An uncovered region live-in makes every rollback of that region
   restore a stale value: charge the full region mass once per gap. *)
let gap_factor = 1.0

type row = { key : string; exposure : float; score : float }
type table = row list

type window = {
  w_block : string;
  w_index : int;
  w_reg : Reg.t;
  w_region : int;
  w_length : float;
  w_bypass : float;
}

type t = {
  windows : window list;
  by_site : table;
  by_register : table;
  by_region : table;
  gaps : (int * string * Reg.t) list;
  total_mass : float;
  predicted_avf : float;
  wcdl : int;
}

let empty =
  {
    windows = [];
    by_site = [];
    by_register = [];
    by_region = [];
    gaps = [];
    total_mass = 0.0;
    predicted_avf = 0.0;
    wcdl = 0;
  }

let rank rows =
  List.sort
    (fun a b ->
      let c = compare b.score a.score in
      if c <> 0 then c
      else
        let c = compare b.exposure a.exposure in
        if c <> 0 then c else Rank.key_compare a.key b.key)
    rows

(* Loop-weighted positions of one block: every body slot plus the
   terminator slot, each weighing loop_weight^depth. *)
let block_mass func depth label =
  let b = Func.block func label in
  (loop_weight ** float_of_int (depth label))
  *. float_of_int (Block.num_instrs b + 1)

let weighted_size (ctx : Context.t) =
  let cfg = Context.cfg ctx in
  let loops = Loop_info.compute cfg (Context.dominance ctx) in
  List.fold_left
    (fun acc l -> acc +. block_mass ctx.Context.func (Loop_info.depth loops) l)
    0.0 (Cfg.reverse_postorder cfg)

let compute (ctx : Context.t) =
  let func = ctx.Context.func in
  let rv = Context.regions ctx in
  if not rv.Regions_view.has_regions then empty
  else begin
    let cfg = Context.cfg ctx in
    let live = Context.liveness ctx in
    let loops = Loop_info.compute cfg (Context.dominance ctx) in
    let wcdl = max 1 (Option.value ctx.Context.wcdl ~default:10) in
    let labels = Cfg.reverse_postorder cfg in
    let depth = Loop_info.depth loops in
    let weight l = loop_weight ** float_of_int (depth l) in
    let nregs = float_of_int (max 1 ctx.Context.nregs) in
    let region_of l = Regions_view.region_of_block rv l in
    (* live-before-each is the per-position ACE set; memoize per block *)
    let slots_tbl : (string, Reg.Set.t array) Hashtbl.t = Hashtbl.create 16 in
    let slots_of l =
      match Hashtbl.find_opt slots_tbl l with
      | Some s -> s
      | None ->
        let s = Liveness.live_before_each live (Func.block func l) in
        Hashtbl.replace slots_tbl l s;
        s
    in
    (* region masses and the function total *)
    let region_mass : (int, float) Hashtbl.t = Hashtbl.create 16 in
    let total_mass = ref 0.0 in
    List.iter
      (fun l ->
        let m = block_mass func depth l in
        total_mass := !total_mass +. m;
        match region_of l with
        | Some id ->
          Hashtbl.replace region_mass id
            (m +. Option.value (Hashtbl.find_opt region_mass id) ~default:0.0)
        | None -> ())
      labels;
    let mass_of rid = Option.value (Hashtbl.find_opt region_mass rid) ~default:0.0 in
    (* coverage gaps: each one leaves its region's rollback unsound *)
    let gaps = Recoverability.uncovered_live_ins ctx in
    let gap_count rid =
      List.length (List.filter (fun (id, _, _) -> id = rid) gaps)
    in
    let escape rid =
      base_escape *. float_of_int wcdl /. (float_of_int wcdl +. mass_of rid)
    in
    let multiplier = function
      | Some rid -> escape rid +. (gap_factor *. float_of_int (gap_count rid))
      | None -> base_escape (* outside every region: no rollback at all *)
    in
    (* ---- per-site table: weighted ACE fraction at each position ---- *)
    let by_site =
      List.concat_map
        (fun l ->
          let slots = slots_of l in
          let w = weight l and m = multiplier (region_of l) in
          List.init (Array.length slots) (fun i ->
              let ace =
                float_of_int
                  (Reg.Set.cardinal (Reg.Set.remove Reg.zero slots.(i)))
                /. nregs
              in
              {
                key = Printf.sprintf "%s:%d" l i;
                exposure = w;
                score = w *. ace *. m;
              }))
        labels
    in
    (* ---- per-def windows: def -> last use, across block boundaries ---- *)
    let bypass_tbl : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
    (match ctx.Context.claims with
    | Some c ->
      List.iter
        (fun site -> Hashtbl.replace bypass_tbl site ())
        c.Context.bypass_stores
    | None -> ());
    let walk_def l0 i0 d =
      let mass = ref 0.0 and bypass = ref 0.0 in
      let visited : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.replace visited l0 ();
      let rec block_from l j =
        let b = Func.block func l in
        let slots = slots_of l in
        let n = Block.num_instrs b in
        let w = weight l in
        let j = ref j and continue = ref true and fell_through = ref false in
        while !continue do
          if !j > n then begin
            continue := false;
            fell_through := true
          end
          else if not (Reg.Set.mem d slots.(!j)) then continue := false
          else begin
            mass := !mass +. w;
            if !j < n then begin
              let ins = b.Block.body.(!j) in
              if
                Hashtbl.mem bypass_tbl (l, !j)
                && List.exists (Reg.equal d) (Instr.uses ins)
              then bypass := !bypass +. w;
              let redefines = ref false in
              Instr.iter_defs (fun r -> if Reg.equal r d then redefines := true) ins;
              if !redefines then continue := false else incr j
            end
            else incr j
          end
        done;
        if !fell_through && Reg.Set.mem d (Liveness.live_out live l) then
          List.iter
            (fun s ->
              if
                (not (Hashtbl.mem visited s))
                && Reg.Set.mem d (Liveness.live_in live s)
              then begin
                Hashtbl.replace visited s ();
                block_from s 0
              end)
            (Cfg.successors cfg l)
      in
      block_from l0 (i0 + 1);
      (!mass, !bypass)
    in
    let windows =
      List.concat_map
        (fun l ->
          let b = Func.block func l in
          let rid = Option.value (region_of l) ~default:(-1) in
          List.concat
            (List.mapi
               (fun i ins ->
                 List.filter_map
                   (fun d ->
                     if Reg.is_zero d then None
                     else
                       let len, byp = walk_def l i d in
                       Some
                         {
                           w_block = l;
                           w_index = i;
                           w_reg = d;
                           w_region = rid;
                           w_length = len;
                           w_bypass = byp;
                         })
                   (List.sort_uniq Reg.compare (Instr.defs ins)))
               (Array.to_list b.Block.body)))
        labels
    in
    (* ---- per-register table: window mass under the region multiplier,
       plus the full region mass for each coverage gap the register
       causes (a stale restore strikes every use in the region) ---- *)
    let reg_rows : (Reg.t, float * float) Hashtbl.t = Hashtbl.create 16 in
    let add_reg r exp sc =
      let e0, s0 = Option.value (Hashtbl.find_opt reg_rows r) ~default:(0.0, 0.0) in
      Hashtbl.replace reg_rows r (e0 +. exp, s0 +. sc)
    in
    List.iter
      (fun w ->
        let m =
          multiplier (if w.w_region < 0 then None else Some w.w_region)
        in
        add_reg w.w_reg w.w_length
          ((w.w_length *. m) +. (w.w_bypass *. bypass_factor)))
      windows;
    List.iter (fun (rid, _, r) -> add_reg r 0.0 (gap_factor *. mass_of rid)) gaps;
    let by_register =
      Hashtbl.fold
        (fun r (exposure, score) acc ->
          { key = Reg.to_string r; exposure; score } :: acc)
        reg_rows []
    in
    (* ---- per-region table ---- *)
    let by_region =
      List.map
        (fun { Regions_view.id; _ } ->
          let m = mass_of id in
          {
            key = string_of_int id;
            exposure = m;
            score = m *. multiplier (Some id);
          })
        rv.Regions_view.regions
    in
    let region_score_sum =
      List.fold_left (fun acc r -> acc +. r.score) 0.0 by_region
    in
    {
      windows;
      by_site = rank by_site;
      by_register = rank by_register;
      by_region = rank by_region;
      gaps;
      total_mass = !total_mass;
      predicted_avf =
        (if !total_mass > 0.0 then region_score_sum /. !total_mass else 0.0);
      wcdl;
    }
  end

(* The registry entry point only needs the gap list — skip the table
   construction so per-pass incremental lint pays one notcov fixpoint,
   not a full window walk, each time a pass dirties the read set. *)
let check (ctx : Context.t) =
  let gaps =
    if (Context.regions ctx).Regions_view.has_regions then
      Recoverability.uncovered_live_ins ctx
    else []
  in
  List.map
    (fun (rid, head, r) ->
      Diag.make ~check:name ~severity:Diag.Warn ~func:ctx.Context.func.Func.name
        ~block:head
        (Printf.sprintf
           "vulnerability window never closes: %s is live into region %d without checkpoint coverage, so every rollback of the region restores a stale value"
           (Reg.to_string r) rid))
    gaps

(* ------------------------------ JSON ------------------------------ *)

let f = Printf.sprintf "%.6f"

let table_to_json rows =
  "["
  ^ String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf "{\"key\":\"%s\",\"exposure\":%s,\"score\":%s}"
             (Diag.json_escape r.key) (f r.exposure) (f r.score))
         rows)
  ^ "]"

let to_json t =
  Printf.sprintf
    "{\"wcdl\":%d,\"total_mass\":%s,\"predicted_avf\":%s,\"gaps\":[%s],\"by_site\":%s,\"by_register\":%s,\"by_region\":%s}"
    t.wcdl (f t.total_mass) (f t.predicted_avf)
    (String.concat ","
       (List.map
          (fun (rid, head, r) ->
            Printf.sprintf "{\"region\":%d,\"head\":\"%s\",\"reg\":\"%s\"}" rid
              (Diag.json_escape head)
              (Diag.json_escape (Reg.to_string r)))
          t.gaps))
    (table_to_json t.by_site)
    (table_to_json t.by_register)
    (table_to_json t.by_region)
