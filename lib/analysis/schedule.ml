(* Scheduling dependence preservation: the checkpoint-aware list scheduler
   may only reorder instructions within a block, and must keep every
   def-use (RAW), anti (WAR), output (WAW) and memory dependence of its
   input in order. Run as a pair check around the scheduling pass. *)

open Turnpike_ir

let name = "sched-deps"

let mem_access = function
  | Instr.Load (_, b, off, kind) -> Some (`Load, kind, b, off)
  | Instr.Store (_, b, off, kind) -> Some (`Store, kind, b, off)
  | _ -> None

let mem_conflict a b =
  match (a, b) with
  | Instr.Ckpt r, Instr.Ckpt r' -> Reg.equal r r'
  | Instr.Ckpt _, other | other, Instr.Ckpt _ -> (
    (* A checkpoint writes a slot in the checkpoint segment; only
       checkpoint-kind memory traffic can touch it. *)
    match mem_access other with
    | Some (_, Instr.Ckpt_mem, _, _) -> true
    | _ -> false)
  | a, b -> (
    match (mem_access a, mem_access b) with
    | Some (`Load, _, _, _), Some (`Load, _, _, _) -> false
    | Some (_, ka, ba, oa), Some (_, kb, bb, ob) ->
      if not (Instr.equal_mem_kind ka kb) then false
      else if Reg.is_zero ba && Reg.is_zero bb then oa = ob
      else true
    | _ -> false)

let inter l1 l2 = List.exists (fun r -> List.mem r l2) l1

let run ~(before : Func.t) (ctx : Context.t) =
  let after = ctx.Context.func in
  let fname = after.Func.name in
  let diags = ref [] in
  let emit ?block ?instr severity msg =
    diags := Diag.make ~check:name ~severity ~func:fname ?block ?instr msg :: !diags
  in
  let before_labels = List.sort compare (Func.labels before) in
  let after_labels = List.sort compare (Func.labels after) in
  if before_labels <> after_labels then
    emit Diag.Error "scheduler changed the set of basic blocks"
  else
    List.iter
      (fun label ->
        let bb = Func.block before label in
        let ab = Func.block after label in
        if not (Block.equal_terminator bb.Block.term ab.Block.term) then
          emit ~block:label Diag.Error "scheduler changed the block terminator";
        let bx = bb.Block.body and ax = ab.Block.body in
        let sorted arr =
          let l = Array.to_list arr in
          List.sort Instr.compare l
        in
        if sorted bx <> sorted ax then
          emit ~block:label Diag.Error "scheduler changed the instruction multiset of the block"
        else begin
          (* Position of before-index k in the after order: the n-th
             occurrence of an instruction maps to the n-th occurrence
             (greedy first-unclaimed matching realizes exactly that). *)
          let n = Array.length bx in
          let pos = Array.make n 0 in
          let claimed = Array.make n false in
          for k = 0 to n - 1 do
            let found = ref (-1) in
            let j = ref 0 in
            while !found < 0 && !j < n do
              if (not claimed.(!j)) && Instr.equal ax.(!j) bx.(k) then begin
                claimed.(!j) <- true;
                found := !j
              end;
              incr j
            done;
            pos.(k) <- !found
          done;
          (* def/use lists allocate; the O(n^2) dependence scan below
             reads each many times. *)
          let defs = Array.map Instr.defs bx in
          let uses = Array.map Instr.uses bx in
          let fence = Array.map Instr.is_boundary bx in
          let dep i j =
            fence.(i) || fence.(j)
            || inter defs.(i) uses.(j)
            || inter uses.(i) defs.(j)
            || inter defs.(i) defs.(j)
            || mem_conflict bx.(i) bx.(j)
          in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if pos.(i) > pos.(j) && dep i j then
                emit ~block:label ~instr:j Diag.Error
                  (Printf.sprintf
                     "scheduler reordered dependent instructions: [%s] now executes after [%s]"
                     (Instr.to_string bx.(i)) (Instr.to_string bx.(j)))
            done
          done
        end)
      (List.sort compare (Func.labels after));
  Diag.sort !diags
