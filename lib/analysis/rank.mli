(** Shared ranking order and rank-correlation statistics.

    The static vulnerability tables ({!Vuln}) and the dynamic forensics
    tables ([Turnpike_resilience.Forensics]) must break score ties the
    same way, or [report --compare-static] diffs would depend on
    incidental sort stability. {!key_compare} is that single shared
    tie-break; the correlation helpers score how well one ranking
    predicts another. *)

val key_compare : string -> string -> int
(** Natural order on table keys: alternating runs of digits and
    non-digits, with digit runs compared numerically (so ["b2:9"] sorts
    before ["b2:10"], ["r2"] before ["r10"], ["3"] before ["21"]) and
    everything else byte-wise. Total order: keys that differ only in
    leading zeros fall back to plain string comparison. This is the one
    tie-break shared by the static and dynamic vulnerability tables
    (site order, then register id). *)

val ranks : float array -> float array
(** Fractional ranks (1-based) of the values, averaging ties: the rank
    of each member of a tied run is the mean of the positions the run
    occupies. [ranks [|10.;20.;20.;30.|] = [|1.;2.5;2.5;4.|]]. *)

val spearman : float array -> float array -> float
(** Spearman's rank-correlation coefficient: the Pearson correlation of
    the tie-averaged {!ranks} of the two vectors. Conventions for
    degenerate inputs: both vectors constant (or empty) → [1.0]; exactly
    one constant → [0.0].
    @raise Invalid_argument when the lengths differ. *)

val top_k_overlap : k:int -> string list -> string list -> int * int
(** [top_k_overlap ~k a b] is [(hits, denom)] where [denom] is [k]
    clamped to the shorter list and [hits] counts keys present in the
    first [denom] elements of both rankings. Empty input (or [k <= 0])
    yields [(0, 0)]. *)

val agreement : k:int -> string list -> string list -> float * (int * int)
(** Score how well one ranked key list predicts another. Both rankings
    are first restricted to their common keys (preserving each list's
    order); the result pairs the {!spearman} correlation of the
    positions with the {!top_k_overlap} of the restricted rankings.
    Keys ranked by only one side (e.g. a region the campaign never
    sampled, or the dynamic out-of-region bin ["-1"]) therefore do not
    count against the correlation. *)
