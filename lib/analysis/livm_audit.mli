(** Audit of the claims made by loop induction-variable merging (paper
    §4.1.2) — a pair check on the [livm] pass.

    For every merge the pass reports ({!Context.iv_merge}), the check
    re-derives from the before/after function pair that the victim and
    anchor really were basic induction variables with the claimed
    step ratio, that the victim did not escape its loop, and that after
    the pass the victim is fully eliminated, the anchor's increment is
    intact, and each block that used the victim carries the local
    [anchor * ratio + base] recompute. *)

open Turnpike_ir

val name : string
(** ["livm-merge"]. *)

val run : before:Func.t -> Context.t -> Diag.t list
(** [run ~before ctx] audits [ctx.iv_merges] against the pre-pass
    snapshot [before] and the post-pass function [ctx.func]; returns
    sorted diagnostics. *)
