(** Independent reconstruction of the region partition from [Boundary]
    markers alone.

    The compiler's own [Regions] module is deliberately not reused: the
    analysis layer re-derives region membership from the instruction stream
    so that a bug in the partitioner cannot hide from the checker. The
    structural invariants verified here are the ones the recovery runtime
    relies on: a region is a single-entry subgraph headed by the block that
    carries its [Boundary] marker, and the head dominates every member. *)

open Turnpike_ir

type region = {
  id : int;  (** static region id from the [Boundary] marker *)
  head : string;
  blocks : string list;  (** members in reverse postorder, head first *)
}

type t = {
  regions : region list;  (** sorted by id *)
  region_of : (string * int) list;  (** reachable block -> region id, sorted *)
  has_regions : bool;  (** false when the function carries no boundaries *)
  diags : Diag.t list;  (** structural violations found during reconstruction *)
}

val check_name : string
(** ["regions"] — the registry name under which [diags] are reported. *)

val compute : Cfg.t -> (unit -> Dominance.t) -> Func.t -> t
(** [compute cfg dom func] reconstructs the partition. [dom] is forced
    only when the function actually carries boundary markers (the
    head-dominates-member proof) — pre-partition pipeline rounds build the
    view on boundary-free code and never pay for dominance. *)

val region_of_block : t -> string -> int option
(** Region id of a reachable member block; [None] for blocks outside
    every region (including unreachable ones). *)
