(** Everything a check may look at, as plain data plus lazily computed
    (and shared) IR analyses.

    The context is deliberately decoupled from the compiler and the
    machine model: the pipeline (or a test) describes its configuration
    with plain integers and claim lists, so the analysis library depends
    only on [turnpike.ir]. *)

open Turnpike_ir

type claims = {
  bypass_stores : (string * int) list;
      (** (block, body index) of stores the pipeline marks
          verification-bypassable (statically proven WAR-free) *)
  direct_ckpts : (string * int) list;
      (** (block, body index) of checkpoint stores claimed releasable
          without waiting for verification (single-site, loop-free) *)
}

val no_claims : claims

type cache
(** Memo table for the derived IR analyses; construct via {!make}. *)

type t = {
  func : Func.t;
  entry_defined : Reg.Set.t;  (** registers with initial values (reg_init) *)
  nregs : int;
  allow_virtual : bool;  (** true before register allocation has run *)
  resilient : bool;
  sb_size : int;  (** 0 = unknown; disables the SB capacity check *)
  colors : int;  (** checkpoint colors per register *)
  rbb_size : int option;  (** machine RBB entries, when known *)
  clq_entries : int option;  (** compact-CLQ entries; [None] = ideal/unknown *)
  recovery_exprs : (Reg.t * Recovery_expr.t) list;
  claims : claims option;  (** [None] until the pipeline has computed them *)
  pass : string option;  (** provenance stamped onto emitted diagnostics *)
  cache : cache;
}

val make :
  ?entry_defined:Reg.Set.t ->
  ?nregs:int ->
  ?allow_virtual:bool ->
  ?resilient:bool ->
  ?sb_size:int ->
  ?colors:int ->
  ?rbb_size:int ->
  ?clq_entries:int ->
  ?recovery_exprs:(Reg.t * Recovery_expr.t) list ->
  ?claims:claims ->
  ?pass:string ->
  Func.t ->
  t

val with_pass : t -> string option -> t

val with_machine : ?rbb_size:int -> ?clq_entries:int -> t -> t
(** Enrich a context with machine parameters (keeps the analysis cache). *)

(** Lazily computed, shared across checks run on the same context. *)

val cfg : t -> Cfg.t
val liveness : t -> Liveness.t
val dominance : t -> Dominance.t
val regions : t -> Regions_view.t
