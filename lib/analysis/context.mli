(** Everything a check may look at, as plain data plus lazily computed
    (and shared) IR analyses.

    The context is deliberately decoupled from the compiler and the
    machine model: the pipeline (or a test) describes its configuration
    with plain integers and claim lists, so the analysis library depends
    only on [turnpike.ir]. *)

open Turnpike_ir

(** Optimization claims the pipeline publishes for independent audit. *)
type claims = {
  bypass_stores : (string * int) list;
      (** (block, body index) of stores the pipeline marks
          verification-bypassable (statically proven WAR-free) *)
  direct_ckpts : (string * int) list;
      (** (block, body index) of checkpoint stores claimed releasable
          without waiting for verification (single-site, loop-free) *)
}

val no_claims : claims
(** The empty claim set. *)

(** One induction-variable merge the [livm] pass claims to have performed
    (pre-regalloc virtual register names); audited by the livm pair
    check. *)
type iv_merge = {
  victim : Reg.t;  (** the merged-away induction variable *)
  anchor : Reg.t;  (** the surviving IV the victim is recomputed from *)
  ratio : int;  (** victim step / anchor step (≥ 1) *)
  iv_base : [ `Const of int | `Reg of Reg.t ];  (** victim's loop-entry value *)
  header : string;  (** header block of the loop the merge happened in *)
}

type cache
(** Memo table for the derived IR analyses; construct via {!make}. *)

(** The checked state: one function plus the pipeline- and
    machine-configuration facts the checks consult. *)
type t = {
  func : Func.t;
  entry_defined : Reg.Set.t;  (** registers with initial values (reg_init) *)
  nregs : int;
  allow_virtual : bool;  (** true before register allocation has run *)
  resilient : bool;
  sb_size : int;  (** 0 = unknown; disables the SB capacity check *)
  colors : int;  (** checkpoint colors per register *)
  rbb_size : int option;  (** machine RBB entries, when known *)
  clq_entries : int option;  (** compact-CLQ entries; [None] = ideal/unknown *)
  wcdl : int option;
      (** worst-case detection latency in cycles (parity ≈ pipeline
          depth, sensors = propagation time); consumed by the static
          vulnerability estimate ({!Vuln}) *)
  recovery_exprs : (Reg.t * Recovery_expr.t) list;
      (** reconstruction expressions for pruned checkpoints, sorted by
          register *)
  claims : claims option;  (** [None] until the pipeline has computed them *)
  iv_merges : iv_merge list;
      (** merges claimed by the last [livm] run (virtual-register names;
          only meaningful to the pair check that runs right after it) *)
  pass : string option;  (** provenance stamped onto emitted diagnostics *)
  cache : cache;
}

val make :
  ?entry_defined:Reg.Set.t ->
  ?nregs:int ->
  ?allow_virtual:bool ->
  ?resilient:bool ->
  ?sb_size:int ->
  ?colors:int ->
  ?rbb_size:int ->
  ?clq_entries:int ->
  ?wcdl:int ->
  ?recovery_exprs:(Reg.t * Recovery_expr.t) list ->
  ?claims:claims ->
  ?iv_merges:iv_merge list ->
  ?pass:string ->
  Func.t ->
  t
(** Build a context with an empty analysis cache. Defaults describe a
    plain non-resilient virtual-register function. *)

val advance :
  dirty:Facet.Set.t ->
  ?entry_defined:Reg.Set.t ->
  ?allow_virtual:bool ->
  ?recovery_exprs:(Reg.t * Recovery_expr.t) list ->
  ?claims:claims ->
  ?iv_merges:iv_merge list ->
  ?pass:string ->
  t ->
  Func.t ->
  t
(** Step a context across one pipeline pass that dirtied [dirty],
    carrying forward every cached analysis the dirty set leaves valid
    (CFG and dominance survive unless [Cfg_shape] is dirty; liveness
    additionally dies with [Instrs]; the region table with
    [Boundaries]). Omitted fields keep their previous values, except
    [pass], which is re-stamped each step. Passing a [func] that is not
    physically the previous context's function invalidates everything. *)

val with_pass : t -> string option -> t
(** Same context (cache shared) with different pass provenance. *)

val with_machine : ?rbb_size:int -> ?clq_entries:int -> ?wcdl:int -> t -> t
(** Enrich a context with machine parameters (keeps the analysis cache). *)

(** {1 Derived analyses}

    Lazily computed, memoized in the context and shared across checks run
    on the same context (and, via {!advance}, across passes that leave the
    relevant facets clean). *)

val cfg : t -> Cfg.t
(** Control-flow graph of the function. *)

val liveness : t -> Liveness.t
(** Per-block live-in/live-out sets (backward dataflow over {!cfg}). *)

val dominance : t -> Dominance.t
(** Dominator tree over {!cfg}. *)

val regions : t -> Regions_view.t
(** Region partition independently reconstructed from boundary markers. *)
