open Turnpike_ir

type region = { id : int; head : string; blocks : string list }

type t = {
  regions : region list;
  region_of : (string * int) list;
  has_regions : bool;
  diags : Diag.t list;
}

let check_name = "regions"

let region_of_block t label = List.assoc_opt label t.region_of

let compute cfg dom (func : Func.t) =
  let dom = lazy (dom ()) in
  let fname = func.Func.name in
  let diags = ref [] in
  let emit ?block ?instr severity msg =
    diags := Diag.make ~check:check_name ~severity ~func:fname ?block ?instr msg :: !diags
  in
  (* Boundary markers must head their block; collect the heads. *)
  let head_id : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let id_head : (int, string) Hashtbl.t = Hashtbl.create 16 in
  Func.iter_blocks
    (fun b ->
      Array.iteri
        (fun i instr ->
          match instr with
          | Instr.Boundary id ->
            if i <> 0 then
              emit ~block:b.Block.label ~instr:i Diag.Error
                (Printf.sprintf "boundary marker of region %d is not the first instruction of its block" id)
            else begin
              (match Hashtbl.find_opt id_head id with
              | Some other ->
                emit ~block:b.Block.label Diag.Error
                  (Printf.sprintf "region id %d already used by block %s" id other)
              | None -> Hashtbl.replace id_head id b.Block.label);
              if not (Hashtbl.mem head_id b.Block.label) then
                Hashtbl.replace head_id b.Block.label id
            end
          | _ -> ())
        b.Block.body)
    func;
  let has_regions = Hashtbl.length head_id > 0 in
  let rpo = Cfg.reverse_postorder cfg in
  let region_tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  if has_regions then begin
    (* Propagate region membership forward in reverse postorder: a head
       starts its own region, every other reachable block inherits the
       region of its (unique) predecessor. *)
    (match Hashtbl.find_opt head_id func.Func.entry with
    | Some _ -> ()
    | None ->
      emit ~block:func.Func.entry Diag.Error
        "entry block is not a region head (no boundary marker opens the function)");
    List.iter
      (fun label ->
        match Hashtbl.find_opt head_id label with
        | Some id -> Hashtbl.replace region_tbl label id
        | None -> (
          let preds = Cfg.predecessors cfg label in
          (match preds with
          | _ :: _ :: _ ->
            emit ~block:label Diag.Error
              (Printf.sprintf
                 "block has %d predecessors but is not a region head; regions must be single-entry"
                 (List.length preds))
          | _ -> ());
          let pred_regions =
            List.sort_uniq Int.compare
              (List.filter_map (fun p -> Hashtbl.find_opt region_tbl p) preds)
          in
          match pred_regions with
          | [] -> ()
          | [ id ] -> Hashtbl.replace region_tbl label id
          | id :: _ :: _ ->
            emit ~block:label Diag.Error
              "block straddles regions: predecessors belong to different regions";
            Hashtbl.replace region_tbl label id))
      rpo;
    (* The head must dominate every member: a path into the middle of a
       region would skip its boundary (and its checkpoint prologue). *)
    List.iter
      (fun label ->
        match Hashtbl.find_opt region_tbl label with
        | None -> ()
        | Some id -> (
          match Hashtbl.find_opt id_head id with
          | None -> ()
          | Some head ->
            if not (Dominance.dominates (Lazy.force dom) ~dom:head ~sub:label) then
              emit ~block:label Diag.Error
                (Printf.sprintf "region %d head %s does not dominate member block %s" id head label)))
      rpo
  end;
  let region_of =
    List.sort compare (List.filter_map (fun l -> Option.map (fun id -> (l, id)) (Hashtbl.find_opt region_tbl l)) rpo)
  in
  let regions =
    Hashtbl.fold (fun id head acc -> (id, head) :: acc) id_head []
    |> List.sort compare
    |> List.map (fun (id, head) ->
           let blocks =
             List.filter (fun l -> Hashtbl.find_opt region_tbl l = Some id) rpo
           in
           let blocks =
             head :: List.filter (fun l -> not (String.equal l head)) blocks
           in
           { id; head; blocks })
  in
  { regions; region_of; has_regions; diags = Diag.sort !diags }
