(** WAR-freedom audit: recompute the anti-dependence-free store set per
    region from scratch and diff it against the pipeline's
    verification-bypass claims (paper §4.3.1). *)

val name : string
(** ["war-bypass"]. *)

val independent_set : Context.t -> (string * int) list
(** Stores ((block, body index), sorted) with no may-aliasing load earlier
    in their region — the set that is provably safe to release before
    verification. *)

val run : Context.t -> Diag.t list
(** Error on every claimed bypass store outside {!independent_set} (a
    rollback could replay an earlier load against the released value),
    plus an informational count of provably WAR-free stores left
    unclaimed. Returns sorted diagnostics. *)
