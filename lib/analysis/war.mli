(** WAR-freedom audit: recompute the anti-dependence-free store set per
    region from scratch and diff it against the pipeline's
    verification-bypass claims (paper §4.3.1). *)

val name : string

val independent_set : Context.t -> (string * int) list
(** Stores ((block, body index), sorted) with no may-aliasing load earlier
    in their region — the set that is provably safe to release before
    verification. *)

val run : Context.t -> Diag.t list
