(** IR well-formedness lint: CFG edge/label consistency, definite
    assignment (every use reached by a definition on all paths), and
    register-class sanity after allocation. *)

val name : string
val run : Context.t -> Diag.t list
