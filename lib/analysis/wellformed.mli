(** IR well-formedness lint: CFG edge/label consistency, definite
    assignment (every use reached by a definition on all paths), and
    register-class sanity after allocation. *)

val name : string
(** ["wellformed"]. *)

val run : Context.t -> Diag.t list
(** Check label/layout consistency (entry exists, no duplicate or dangling
    labels), warn on uses not reached by a definition on every path (a
    forward must-dataflow over the CFG), and — once register allocation
    has run — reject surviving virtual registers, out-of-file register
    numbers and zero-register checkpoints. Returns sorted diagnostics. *)
