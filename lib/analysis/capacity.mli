(** Capacity checks: region store-buffer demand vs SB size, checkpoint
    multiplicity vs the color pool, direct-release checkpoint claims, and
    CLQ configuration sanity (paper §4.3). *)

val name : string
(** ["capacity"]. *)

val run : Context.t -> Diag.t list
(** Check every region's worst-path store-buffer demand against
    [ctx.sb_size] (error above the SB, warning above the sb/2 overlap
    target), per-region checkpoint multiplicity against the color pool,
    each direct-release claim (unique site, loop-free, architectural,
    dominates every region that restores the register), and CLQ/RBB
    configuration sanity; returns sorted diagnostics. *)
