(** Capacity checks: region store-buffer demand vs SB size, checkpoint
    multiplicity vs the color pool, direct-release checkpoint claims, and
    CLQ configuration sanity (paper §4.3). *)

val name : string
val run : Context.t -> Diag.t list
