let is_digit c = c >= '0' && c <= '9'

(* Natural order: compare run-by-run; a digit run against a digit run is
   compared numerically (ignore leading zeros, then longer significant
   run wins, then byte-wise), anything else byte-wise. *)
let key_compare a b =
  let la = String.length a and lb = String.length b in
  let rec skip_zeros s l i = if i < l && s.[i] = '0' then skip_zeros s l (i + 1) else i in
  let rec run_end s l i = if i < l && is_digit s.[i] then run_end s l (i + 1) else i in
  let rec go i j =
    if i >= la && j >= lb then compare a b
    else if i >= la then -1
    else if j >= lb then 1
    else if is_digit a.[i] && is_digit b.[j] then begin
      let ea = run_end a la i and eb = run_end b lb j in
      let sa = skip_zeros a ea i and sb = skip_zeros b eb j in
      let na = ea - sa and nb = eb - sb in
      if na <> nb then compare na nb
      else begin
        let rec digits p q = if p >= ea then go ea eb
          else if a.[p] <> b.[q] then Char.compare a.[p] b.[q]
          else digits (p + 1) (q + 1)
        in
        digits sa sb
      end
    end
    else if a.[i] <> b.[j] then Char.compare a.[i] b.[j]
    else go (i + 1) (j + 1)
  in
  go 0 0

let ranks v =
  let n = Array.length v in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare v.(i) v.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && v.(order.(!j + 1)) = v.(order.(!i)) do incr j done;
    (* positions !i..!j (0-based) share the mean 1-based rank *)
    let mean = (float_of_int (!i + !j)) /. 2.0 +. 1.0 in
    for p = !i to !j do r.(order.(p)) <- mean done;
    i := !j + 1
  done;
  r

let spearman a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Rank.spearman: length mismatch";
  if n = 0 then 1.0
  else begin
    let ra = ranks a and rb = ranks b in
    let mean v = Array.fold_left ( +. ) 0.0 v /. float_of_int n in
    let ma = mean ra and mb = mean rb in
    let cov = ref 0.0 and va = ref 0.0 and vb = ref 0.0 in
    for i = 0 to n - 1 do
      let da = ra.(i) -. ma and db = rb.(i) -. mb in
      cov := !cov +. (da *. db);
      va := !va +. (da *. da);
      vb := !vb +. (db *. db)
    done;
    if !va = 0.0 && !vb = 0.0 then 1.0
    else if !va = 0.0 || !vb = 0.0 then 0.0
    else !cov /. sqrt (!va *. !vb)
  end

let top_k_overlap ~k a b =
  let take n l =
    let rec go n = function
      | x :: tl when n > 0 -> x :: go (n - 1) tl
      | _ -> []
    in
    go n l
  in
  let denom = min k (min (List.length a) (List.length b)) in
  if denom <= 0 then (0, 0)
  else begin
    let ta = take denom a and tb = take denom b in
    let hits = List.length (List.filter (fun x -> List.mem x tb) ta) in
    (hits, denom)
  end

let agreement ~k a b =
  let inter keep other = List.filter (fun x -> List.mem x other) keep in
  let a' = inter a b and b' = inter b a in
  let pos l = Array.of_list (List.mapi (fun i _ -> float_of_int i) l) in
  (* rank vectors aligned on a''s key order: position in a' is the
     identity ramp; position in b' is looked up per key *)
  let pos_b =
    Array.of_list
      (List.map
         (fun x ->
           let rec find i = function
             | y :: tl -> if String.equal x y then i else find (i + 1) tl
             | [] -> 0
           in
           float_of_int (find 0 b'))
         a')
  in
  (spearman (pos a') pos_b, top_k_overlap ~k a' b')
