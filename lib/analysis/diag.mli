(** Diagnostics emitted by the static checks.

    A diagnostic carries the check that produced it, a severity from the
    {!severity} lattice, and its location: function, optional block label,
    optional instruction index, and the compiler pass it is attributed to
    (when the registry runs between passes). *)

type severity = Info | Warn | Error [@@deriving show, eq, ord]
(** Ordered lattice: [Info < Warn < Error]. *)

(** One finding. *)
type t = {
  check : string;  (** registry name of the emitting check *)
  severity : severity;
  func : string;
  block : string option;
  instr : int option;  (** body index within [block] *)
  pass : string option;  (** pass provenance; [None] for final-only runs *)
  message : string;
}
[@@deriving show, eq]

val make :
  check:string ->
  severity:severity ->
  func:string ->
  ?block:string ->
  ?instr:int ->
  ?pass:string ->
  string ->
  t
(** [make ~check ~severity ~func ?block ?instr ?pass message] builds one
    diagnostic. *)

val severity_to_string : severity -> string
(** ["info"], ["warn"] or ["error"]. *)

val max_severity : t list -> severity option
(** Highest severity present, [None] on the empty list. *)

val error_count : t list -> int
(** Number of [Error]-severity diagnostics in the list. *)

val compare_diag : t -> t -> int
(** Deterministic order: function, block, instruction, check, severity
    (most severe first), message, pass. *)

val sort : t list -> t list
(** Sort by {!compare_diag} and drop exact duplicates. *)

val with_pass : string option -> t -> t
(** Replace the pass provenance field. *)

val key : t -> string
(** Identity of the finding ignoring pass provenance — used to attribute a
    diagnostic to the first pass after which it appears. *)

val to_string : t -> string
(** One-line rendering: [severity check func[:block[:i]] (pass): message]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val to_json : t -> string
(** One JSON object, keys in fixed order, deterministic bytes. *)
