(* Machine configurations. The defaults model the paper's gem5 setup
   (§6.1): a 2-issue in-order core in the style of the ARM Cortex-A53 with
   a 4-entry store buffer, 2-entry compact CLQ and 10-cycle default WCDL. *)

type t = {
  name : string;
  issue_width : int;
  sb_size : int;
  rbb_size : int;
  wcdl : int;
  verification : bool;
  clq : Clq.design option;
  coloring : bool;
  colors : int;
  branch_penalty : int;
  mul_latency : int;
  div_latency : int;
  baseline_drain : int;
  nregs : int;
  mem : Mem_hierarchy.config;
  strict_partitioning : bool;
}

let base =
  {
    name = "baseline";
    issue_width = 2;
    sb_size = 4;
    rbb_size = 8;
    wcdl = 10;
    verification = false;
    clq = None;
    coloring = false;
    colors = Turnpike_ir.Layout.colors;
    branch_penalty = 2;
    mul_latency = 3;
    div_latency = 12;
    baseline_drain = 2;
    nregs = 32;
    mem = Mem_hierarchy.default_config;
    strict_partitioning = false;
  }

let baseline = base

let turnstile ?(wcdl = 10) ?(sb_size = 4) () =
  {
    base with
    name = Printf.sprintf "turnstile-dl%d-sb%d" wcdl sb_size;
    wcdl;
    sb_size;
    verification = true;
  }

let turnpike ?(wcdl = 10) ?(sb_size = 4) ?(clq = Clq.Compact 2) ?(coloring = true) () =
  {
    base with
    name = Printf.sprintf "turnpike-dl%d-sb%d" wcdl sb_size;
    wcdl;
    sb_size;
    verification = true;
    clq = Some clq;
    coloring;
  }

let of_sensors t ~num_sensors ~clock_ghz =
  (* Derive the verification window from a physical sensor deployment
     (paper Fig 18) instead of picking a WCDL directly. *)
  let s = Sensor.create ~num_sensors ~clock_ghz () in
  { t with wcdl = Sensor.wcdl s }

let with_wcdl t wcdl = { t with wcdl }
let with_sb t sb_size = { t with sb_size }
let with_clq t clq = { t with clq }
let with_coloring t coloring = { t with coloring }

let with_color_bits t bits =
  if bits < 0 then invalid_arg "Machine.with_color_bits: bits must be >= 0";
  if bits = 0 then { t with coloring = false }
  else { t with coloring = true; colors = 1 lsl bits }
