(* Trace-driven, cycle-level model of a dual-issue in-order core with
   sensor-based soft error verification.

   The model replays a dynamic trace through a scoreboarded in-order
   pipeline. It captures exactly the three mechanisms the paper's overheads
   come from:
   - data hazards: an instruction issues only when its source registers are
     ready (checkpoint stores wait on their register-update producer);
   - structural hazards: a store/checkpoint needs a free store-buffer entry
     at commit, and a region boundary needs a free RBB entry; under
     verification, SB entries release only WCDL cycles after their region
     ends (one per cycle through a shared drain port);
   - fast release: WAR-free regular stores (CLQ) and colored checkpoint
     stores bypass the store buffer entirely. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry

exception Partitioning_violation of string

(* Timeline track (tid) layout, mirrored by [Telemetry.Export.chrome]
   thread-name metadata in the timeline driver:
   0 regions (B/E spans), 1 stalls (sb_full / rbb_full X-spans),
   2 sensor verification windows (X-spans of length WCDL),
   3 store-buffer quarantine / release instants,
   4 CLQ bypass / overflow instants. Counters ride on tid 0. *)
let track_regions = 0
let track_stalls = 1
let track_verify = 2
let track_sb = 3
let track_clq = 4

type t = {
  tel : Telemetry.sink;
  machine : Machine.t;
  mem : Mem_hierarchy.t;
  sb : Store_buffer.t;
  rbb : Rbb.t;
  clq : Clq.t option;
  coloring : Coloring.t option;
  predictor : Branch_predictor.t;
  stats : Sim_stats.t;
  reg_ready : (Reg.t, int) Hashtbl.t;
  mutable cycle : int; (* current issue cycle *)
  mutable slots : int; (* issue slots used in [cycle] *)
  mutable load_port_cycle : int; (* last cycle the load AGU was used *)
  mutable store_port_cycle : int; (* last cycle the store AGU was used *)
  mutable fetch_ready : int; (* earliest issue after a taken branch *)
  mutable drain_free_at : int; (* next free SB->L1 drain cycle *)
}

let create ?(tel = Telemetry.null) (machine : Machine.t) =
  {
    tel;
    machine;
    mem = Mem_hierarchy.create machine.mem;
    sb = Store_buffer.create machine.sb_size;
    rbb = Rbb.create machine.rbb_size;
    clq = Option.map Clq.create machine.clq;
    coloring = (if machine.coloring then Some (Coloring.create ~colors:machine.Machine.colors ~nregs:machine.nregs ()) else None);
    predictor = Branch_predictor.create ();
    stats = Sim_stats.create ();
    reg_ready = Hashtbl.create 64;
    cycle = 0;
    slots = 0;
    load_port_cycle = -1;
    store_port_cycle = -1;
    fetch_ready = 0;
    drain_free_at = 0;
  }

let ready_time t r =
  if Reg.is_zero r then 0 else Option.value (Hashtbl.find_opt t.reg_ready r) ~default:0

let set_ready t r c = if not (Reg.is_zero r) then Hashtbl.replace t.reg_ready r c

(* Cycle-stamped timeline events. Every site guards on the sink's immutable
   [enabled] flag, so a disabled run pays one field load per site and
   allocates nothing. Timestamps are simulated cycles, never wall clock —
   that is what makes the export deterministic across [--jobs]. *)
let ev_enabled t = Telemetry.enabled t.tel

let ev_stall t ~name ~from ~until =
  if ev_enabled t && until > from then
    Telemetry.complete t.tel ~ts:from ~dur:(until - from) ~tid:track_stalls
      ~cat:"stall" name

(* Open/close the region span on track 0, sample the occupancy counters at
   the boundary, and stamp the sensor verification window that closing a
   region schedules: the region verifies error-free only once every strike
   that could corrupt it has had WCDL cycles to reach a sensor. *)
let ev_region_open t ~static_id ~seq =
  if ev_enabled t then begin
    Telemetry.span_begin t.tel ~ts:t.cycle ~tid:track_regions ~cat:"region"
      ~args:[ ("static_id", Telemetry.Int static_id); ("seq", Telemetry.Int seq) ]
      "region";
    Telemetry.counter t.tel ~ts:t.cycle "occupancy"
      [
        ("sb_occupancy", Telemetry.Int (Store_buffer.occupancy t.sb));
        ("rbb_unverified", Telemetry.Int (Rbb.unverified_count t.rbb));
        ( "clq_entries",
          Telemetry.Int
            (match t.clq with Some c -> Clq.entries_in_use c | None -> 0) );
      ]
  end

let ev_region_close t (r : Rbb.region) =
  if ev_enabled t then begin
    Telemetry.span_end t.tel ~ts:t.cycle ~tid:track_regions ~cat:"region"
      ~args:[ ("seq", Telemetry.Int r.seq) ]
      "region";
    if t.machine.verification then
      Telemetry.complete t.tel ~ts:t.cycle ~dur:t.machine.wcdl
        ~tid:track_verify ~cat:"sensor"
        ~args:[ ("seq", Telemetry.Int r.seq) ]
        "verify_window"
  end

(* Process background events (region verifications, SB drains) up to and
   including [cycle]. *)
let settle t ~cycle =
  let verified = Rbb.pop_verified t.rbb ~cycle in
  List.iter
    (fun (r : Rbb.region) ->
      let verify_at = Option.value r.verify_at ~default:cycle in
      let start = max verify_at t.drain_free_at in
      t.drain_free_at <- Store_buffer.assign_releases t.sb ~region:r.seq ~start;
      (match t.coloring with
      | Some col -> Coloring.on_region_verified col ~region:r.seq
      | None -> ());
      match t.clq with
      | Some clq ->
        Clq.on_region_verified clq ~region:r.seq;
        Clq.maybe_enable clq ~unverified_regions:(Rbb.unverified_count t.rbb)
      | None -> ())
    verified;
  List.iter
    (fun (r : Store_buffer.released) ->
      Mem_hierarchy.store_release t.mem r.addr;
      if ev_enabled t then
        Telemetry.instant t.tel ~ts:r.at ~tid:track_sb ~cat:"sb"
          ~args:
            [
              ("addr", Telemetry.Int r.addr);
              ("region", Telemetry.Int r.region);
              ("is_ckpt", Telemetry.Bool r.is_ckpt);
            ]
          "release")
    (Store_buffer.release_up_to t.sb cycle)

(* Move the issue point to [c] (settling background state), resetting the
   per-cycle slot count when the cycle advances. *)
let advance_to t c =
  if c > t.cycle then begin
    settle t ~cycle:c;
    t.cycle <- c;
    t.slots <- 0
  end

type port = No_port | Load_port | Store_port

(* Claim an issue slot at the earliest cycle >= data-ready constraints.
   The core has one load AGU and one store AGU (Cortex-A53 style), so a
   load and a store may issue in the same cycle but two loads (or two
   stores) may not. Returns the issue cycle. *)
let issue t ~srcs ~port =
  let data_ready = List.fold_left (fun acc r -> max acc (ready_time t r)) 0 srcs in
  let earliest = max (max data_ready t.fetch_ready) t.cycle in
  if earliest > t.cycle then
    t.stats.data_stall_cycles <-
      t.stats.data_stall_cycles + (earliest - t.cycle);
  advance_to t earliest;
  let port_busy () =
    match port with
    | No_port -> false
    | Load_port -> t.load_port_cycle = t.cycle
    | Store_port -> t.store_port_cycle = t.cycle
  in
  let rec claim () =
    if t.slots >= t.machine.issue_width || port_busy () then begin
      advance_to t (t.cycle + 1);
      claim ()
    end
    else begin
      t.slots <- t.slots + 1;
      (match port with
      | No_port -> ()
      | Load_port -> t.load_port_cycle <- t.cycle
      | Store_port -> t.store_port_cycle <- t.cycle);
      t.cycle
    end
  in
  claim ()

(* Wait (from the current issue point) until the store buffer has a free
   entry, charging the wait to SB-full stalls. *)
let wait_for_sb_entry t =
  let waited_from = t.cycle in
  let rec go () =
    settle t ~cycle:t.cycle;
    if not (Store_buffer.is_full t.sb) then ()
    else begin
      let current = Rbb.current_seq t.rbb in
      if Store_buffer.all_unreleasable t.sb ~current_region:current then begin
        (* A single region filled the whole SB: the compiler's SB-aware
           partitioning is supposed to prevent this. *)
        if t.machine.strict_partitioning then
          raise
            (Partitioning_violation
               (Printf.sprintf "region %d holds all %d SB entries" current
                  t.machine.sb_size));
        t.stats.partition_violations <- t.stats.partition_violations + 1;
        (match Store_buffer.force_release_oldest t.sb with
        | Some (addr, _) -> Mem_hierarchy.store_release t.mem addr
        | None -> ())
      end
      else begin
        let next =
          match Store_buffer.earliest_release t.sb with
          | Some r -> max r (t.cycle + 1)
          | None -> (
            match Rbb.next_verify_time t.rbb with
            | Some v -> max v (t.cycle + 1)
            | None -> t.cycle + 1)
        in
        advance_to t next;
        go ()
      end
    end
  in
  go ();
  if t.cycle > waited_from then begin
    t.stats.sb_full_stall_cycles <-
      t.stats.sb_full_stall_cycles + (t.cycle - waited_from);
    ev_stall t ~name:"sb_full" ~from:waited_from ~until:t.cycle
  end

let handle_boundary t ~static_id =
  settle t ~cycle:t.cycle;
  (* Close the running region, if any. *)
  (match Rbb.current t.rbb with
  | Some _ ->
    ev_region_close t (Rbb.close_region t.rbb ~end_cycle:t.cycle ~wcdl:t.machine.wcdl)
  | None -> ());
  (* A new region needs an RBB entry: stall while too many regions are
     still unverified. *)
  let waited_from = t.cycle in
  while Rbb.is_full t.rbb do
    let next =
      match Rbb.next_verify_time t.rbb with
      | Some v -> max v (t.cycle + 1)
      | None -> t.cycle + 1
    in
    advance_to t next;
    settle t ~cycle:t.cycle
  done;
  if t.cycle > waited_from then begin
    t.stats.rbb_stall_cycles <- t.stats.rbb_stall_cycles + (t.cycle - waited_from);
    ev_stall t ~name:"rbb_full" ~from:waited_from ~until:t.cycle
  end;
  (match t.clq with
  | Some clq ->
    Clq.maybe_enable clq ~unverified_regions:(Rbb.unverified_count t.rbb);
    Clq.sample clq
  | None -> ());
  let r = Rbb.open_region t.rbb ~static_id in
  ev_region_open t ~static_id ~seq:r.Rbb.seq;
  Store_buffer.sample t.sb;
  t.stats.boundaries <- t.stats.boundaries + 1

let handle_store t ~srcs ~addr ~is_ckpt =
  if not t.machine.verification then begin
    (* Baseline: a store occupies the SB briefly while it drains to L1. *)
    if Store_buffer.is_full t.sb then wait_for_sb_entry t;
    let c = issue t ~srcs ~port:Store_port in
    Store_buffer.alloc t.sb ~addr ~region:0 ~is_ckpt
      ~release_at:(Some (c + t.machine.baseline_drain))
  end
  else begin
    let region = Rbb.current_seq t.rbb in
    let fast =
      (not is_ckpt)
      && (match t.clq with
         | Some clq -> Clq.war_free clq ~region addr
         | None -> false)
      && not (Store_buffer.contains_addr t.sb addr)
    in
    if fast then begin
      let c = issue t ~srcs ~port:Store_port in
      Mem_hierarchy.store_release t.mem addr;
      t.stats.war_free_released <- t.stats.war_free_released + 1;
      if ev_enabled t then
        Telemetry.instant t.tel ~ts:c ~tid:track_clq ~cat:"clq"
          ~args:[ ("addr", Telemetry.Int addr); ("region", Telemetry.Int region) ]
          "bypass"
    end
    else begin
      if Store_buffer.is_full t.sb then wait_for_sb_entry t;
      let c = issue t ~srcs ~port:Store_port in
      Store_buffer.alloc t.sb ~addr ~region ~is_ckpt ~release_at:None;
      t.stats.quarantined <- t.stats.quarantined + 1;
      if is_ckpt then t.stats.ckpt_quarantined <- t.stats.ckpt_quarantined + 1;
      if ev_enabled t then
        Telemetry.instant t.tel ~ts:c ~tid:track_sb ~cat:"sb"
          ~args:
            [
              ("addr", Telemetry.Int addr);
              ("region", Telemetry.Int region);
              ("is_ckpt", Telemetry.Bool is_ckpt);
            ]
          "quarantine"
    end
  end

let handle_ckpt t ~src =
  let region = Rbb.current_seq t.rbb in
  let fast_color =
    if not t.machine.verification then None
    else
      match t.coloring with
      | Some col when Reg.is_physical src -> Coloring.try_assign col ~reg:src ~region
      | Some _ | None -> None
  in
  match fast_color with
  | Some color ->
    let c = issue t ~srcs:[ src ] ~port:Store_port in
    Mem_hierarchy.store_release t.mem (Layout.ckpt_slot ~reg:src ~color);
    t.stats.colored_released <- t.stats.colored_released + 1;
    if ev_enabled t then
      Telemetry.instant t.tel ~ts:c ~tid:track_clq ~cat:"coloring"
        ~args:[ ("reg", Telemetry.Int src); ("color", Telemetry.Int color) ]
        "colored_bypass"
  | None ->
    let addr = Layout.ckpt_slot ~reg:(max src 0) ~color:0 in
    handle_store t ~srcs:[ src ] ~addr ~is_ckpt:true

let run_event t (e : Trace.event) =
  match e with
  | Trace.Boundary { region } -> handle_boundary t ~static_id:region
  | Trace.Alu { dst; srcs } ->
    let c = issue t ~srcs ~port:No_port in
    (match dst with Some d -> set_ready t d (c + 1) | None -> ());
    t.stats.instructions <- t.stats.instructions + 1
  | Trace.Load { dst; srcs; addr; kind = _ } ->
    let c = issue t ~srcs ~port:Load_port in
    (* Store-to-load forwarding: a load that hits a quarantined SB entry
       gets its data from the buffer at L1-hit speed — essential when
       verification holds stores in the SB for WCDL cycles. The cache is
       still probed to keep its state warm for the eventual release. *)
    let lat =
      if Store_buffer.contains_addr t.sb addr then begin
        ignore (Mem_hierarchy.load_latency t.mem addr);
        t.stats.sb_forwards <- t.stats.sb_forwards + 1;
        t.machine.mem.Mem_hierarchy.l1_hit
      end
      else Mem_hierarchy.load_latency t.mem addr
    in
    set_ready t dst (c + lat);
    (match t.clq with
    | Some clq when t.machine.verification ->
      let overflowed = Clq.record_load clq ~region:(Rbb.current_seq t.rbb) addr in
      if overflowed && ev_enabled t then
        Telemetry.instant t.tel ~ts:c ~tid:track_clq ~cat:"clq"
          ~args:[ ("addr", Telemetry.Int addr) ]
          "overflow"
    | Some _ | None -> ());
    t.stats.loads <- t.stats.loads + 1;
    t.stats.instructions <- t.stats.instructions + 1
  | Trace.Store { srcs; addr; cls = _ } ->
    handle_store t ~srcs ~addr ~is_ckpt:false;
    t.stats.stores <- t.stats.stores + 1;
    t.stats.instructions <- t.stats.instructions + 1
  | Trace.Ckpt { src } ->
    handle_ckpt t ~src;
    t.stats.ckpts <- t.stats.ckpts + 1;
    t.stats.instructions <- t.stats.instructions + 1
  | Trace.Branch { srcs; taken; pc } ->
    let c = issue t ~srcs ~port:No_port in
    (* The bimodal predictor absorbs well-behaved branches (loop back
       edges); only mispredictions pay the fetch-redirect bubble. An
       unconditional non-fallthrough jump (srcs = []) is always
       predicted by the BTB once seen, and costs nothing thereafter. *)
    let correct =
      match srcs with
      | [] -> Branch_predictor.update t.predictor ~pc ~taken:true
      | _ :: _ -> Branch_predictor.update t.predictor ~pc ~taken
    in
    if not correct then t.fetch_ready <- c + 1 + t.machine.branch_penalty;
    t.stats.instructions <- t.stats.instructions + 1

let finalize t (trace : Trace.t) =
  (* Balance the timeline: the final region never sees another boundary,
     so close its span at the last simulated cycle. *)
  (match Rbb.current t.rbb with
  | Some r when ev_enabled t -> ev_region_close t r
  | Some _ | None -> ());
  t.stats.cycles <- t.cycle + 1;
  t.stats.complete <- trace.Trace.complete;
  (match t.clq with
  | Some clq ->
    t.stats.clq_overflows <- Clq.overflows clq;
    t.stats.clq_mean_populated <- Clq.mean_populated clq;
    t.stats.clq_max_populated <- Clq.max_populated clq
  | None -> ());
  (match t.coloring with
  | Some col -> t.stats.coloring_fallbacks <- Coloring.fallbacks col
  | None -> ());
  t.stats.sb_mean_occupancy <- Store_buffer.mean_occupancy t.sb;
  t.stats.l1_hit_rate <- Cache.hit_rate (Mem_hierarchy.l1 t.mem);
  t.stats.branch_mispredicts <- Branch_predictor.mispredicts t.predictor;
  t.stats

let simulate ?tel machine trace =
  let t = create ?tel machine in
  (* An implicit region is open from program start even before the first
     boundary marker (the compiler always emits one at the entry, but raw
     un-partitioned programs must still simulate). *)
  let r = Rbb.open_region t.rbb ~static_id:(-1) in
  ev_region_open t ~static_id:(-1) ~seq:r.Rbb.seq;
  Trace.iter (run_event t) trace;
  finalize t trace
