(* Gated store buffer (GSB). Under verification (Turnstile/Turnpike), an
   entry allocated by a committed store is quarantined until the store's
   region is verified error-free; entries then drain to L1 one per cycle.
   In baseline mode entries are given a release time at allocation. *)

type entry = {
  addr : int;
  region : int; (* dynamic region sequence number *)
  is_ckpt : bool;
  mutable release_at : int option;
}

type t = {
  size : int;
  mutable entries : entry list; (* oldest first *)
  mutable occupancy_samples : int;
  mutable occupancy_total : int;
}

let create size =
  if size <= 0 then invalid_arg "Store_buffer.create: size must be positive";
  { size; entries = []; occupancy_samples = 0; occupancy_total = 0 }

let occupancy t = List.length t.entries

let is_full t = occupancy t >= t.size

let sample t =
  t.occupancy_samples <- t.occupancy_samples + 1;
  t.occupancy_total <- t.occupancy_total + occupancy t

let mean_occupancy t =
  if t.occupancy_samples = 0 then 0.0
  else float_of_int t.occupancy_total /. float_of_int t.occupancy_samples

let alloc t ~addr ~region ~is_ckpt ~release_at =
  if is_full t then invalid_arg "Store_buffer.alloc: buffer full";
  t.entries <- t.entries @ [ { addr; region; is_ckpt; release_at } ]

let contains_addr t addr = List.exists (fun e -> e.addr = addr) t.entries

let assign_releases t ~region ~start =
  (* Called when [region] is verified: its quarantined entries drain to L1
     one per cycle starting at [start]. Returns the next free drain slot. *)
  let next = ref start in
  List.iter
    (fun e ->
      if e.region = region && e.release_at = None then begin
        e.release_at <- Some !next;
        incr next
      end)
    t.entries;
  !next

type released = { addr : int; is_ckpt : bool; region : int; at : int }

let release_up_to t cycle =
  let released, kept =
    List.partition
      (fun e -> match e.release_at with Some r -> r <= cycle | None -> false)
      t.entries
  in
  t.entries <- kept;
  List.map
    (fun (e : entry) ->
      {
        addr = e.addr;
        is_ckpt = e.is_ckpt;
        region = e.region;
        at = (match e.release_at with Some r -> r | None -> cycle);
      })
    released

let earliest_release t =
  List.fold_left
    (fun acc e ->
      match (e.release_at, acc) with
      | Some r, Some a -> Some (min r a)
      | Some r, None -> Some r
      | None, a -> a)
    None t.entries

let all_unreleasable t ~current_region =
  t.entries <> []
  && List.for_all
       (fun e -> e.release_at = None && e.region = current_region)
       t.entries

let force_release_oldest t =
  match t.entries with
  | [] -> None
  | e :: rest ->
    t.entries <- rest;
    Some (e.addr, e.is_ckpt)

let unverified_regions t =
  List.sort_uniq compare
    (List.filter_map
       (fun e -> if e.release_at = None then Some e.region else None)
       t.entries)
