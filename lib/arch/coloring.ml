(* Hardware coloring (paper §4.3.2): a pool of [Layout.colors] alternative
   checkpoint storage locations per register, so that checkpoint stores can
   be released to cache without verification while the previously verified
   checkpoint value stays intact. Three logical maps: Available (free
   colors), Used (per un-verified region) and Verified. *)

type cstate = Free | Used of int (* dynamic region *) | Verified

type t = {
  nregs : int;
  states : cstate array array; (* states.(reg).(color) *)
  mutable fast_assigned : int;
  mutable fallbacks : int;
}

let create ?(colors = Turnpike_ir.Layout.colors) ~nregs () =
  if nregs <= 0 then invalid_arg "Coloring.create: nregs must be positive";
  if colors <= 0 then invalid_arg "Coloring.create: colors must be positive";
  {
    nregs;
    states = Array.init nregs (fun _ -> Array.make colors Free);
    fast_assigned = 0;
    fallbacks = 0;
  }

let copy t = { t with states = Array.map Array.copy t.states }

let in_range t reg = reg >= 0 && reg < t.nregs

let try_assign t ~reg ~region =
  if not (in_range t reg) then None
  else begin
    let row = t.states.(reg) in
    let rec find c =
      if c >= Array.length row then None
      else match row.(c) with Free -> Some c | Used _ | Verified -> find (c + 1)
    in
    match find 0 with
    | Some c ->
      row.(c) <- Used region;
      t.fast_assigned <- t.fast_assigned + 1;
      Some c
    | None ->
      t.fallbacks <- t.fallbacks + 1;
      None
  end

let on_region_verified t ~region =
  (* For every register checkpointed by [region] through a color: the old
     verified color returns to the pool and the region's color becomes the
     verified one. *)
  Array.iter
    (fun row ->
      let newly = ref None in
      Array.iteri
        (fun c s -> match s with Used r when r = region -> newly := Some c | _ -> ())
        row;
      match !newly with
      | None -> ()
      | Some c ->
        Array.iteri (fun c' s -> if s = Verified then row.(c') <- Free) row;
        row.(c) <- Verified)
    t.states

let verified_color t ~reg =
  if not (in_range t reg) then None
  else
    let row = t.states.(reg) in
    let rec find c =
      if c >= Array.length row then None
      else match row.(c) with Verified -> Some c | Free | Used _ -> find (c + 1)
    in
    find 0

let used_color t ~reg ~region =
  if not (in_range t reg) then None
  else
    let row = t.states.(reg) in
    let rec find c =
      if c >= Array.length row then None
      else match row.(c) with Used r when r = region -> Some c | _ -> find (c + 1)
    in
    find 0

let free_color t ~reg =
  if not (in_range t reg) then None
  else
    let row = t.states.(reg) in
    let rec find c =
      if c >= Array.length row then None
      else match row.(c) with Free -> Some c | Used _ | Verified -> find (c + 1)
    in
    find 0

let force_verified t ~reg ~color =
  (* A quarantined (fallback) checkpoint drains into [color] at its
     region's verification: that slot becomes the verified storage and any
     other verified color returns to the pool. *)
  if in_range t reg then begin
    let row = t.states.(reg) in
    Array.iteri (fun c s -> if c <> color && s = Verified then row.(c) <- Free) row;
    row.(color) <- Verified
  end

let invalidate_verified t ~reg =
  (* A quarantined (fallback) checkpoint of [reg] just verified: the base
     slot now holds the verified value, so any previously verified color
     returns to the pool. *)
  if in_range t reg then
    Array.iteri
      (fun c s -> if s = Verified then t.states.(reg).(c) <- Free)
      t.states.(reg)

let discard_unverified t ~regions =
  (* Error recovery: colors assigned by regions that will be re-executed
     (or were corrupted) return to the pool. *)
  Array.iter
    (fun row ->
      Array.iteri
        (fun c s ->
          match s with
          | Used r when List.mem r regions -> row.(c) <- Free
          | Used _ | Free | Verified -> ())
        row)
    t.states

let fast_assigned t = t.fast_assigned
let fallbacks t = t.fallbacks
