(** Machine configurations.

    Defaults model the paper's gem5 setup (§6.1): a 2-issue in-order core in
    the style of the ARM Cortex-A53, 4-entry store buffer, 2-entry compact
    CLQ, 10-cycle default WCDL. *)

type t = {
  name : string;
  issue_width : int;
  sb_size : int;
  rbb_size : int;  (** max in-flight (unverified) regions *)
  wcdl : int;  (** worst-case detection latency, cycles *)
  verification : bool;
      (** gated-SB verification on (Turnstile/Turnpike) or off (baseline) *)
  clq : Clq.design option;  (** fast release of WAR-free regular stores *)
  coloring : bool;  (** fast release of checkpoint stores *)
  colors : int;
      (** checkpoint color-pool size per register (default
          {!Turnpike_ir.Layout.colors}); only read when [coloring] is on *)
  branch_penalty : int;  (** taken-branch redirect bubble *)
  mul_latency : int;
  div_latency : int;
  baseline_drain : int;  (** SB residency of a store without verification *)
  nregs : int;  (** architectural registers *)
  mem : Mem_hierarchy.config;
  strict_partitioning : bool;
      (** raise (instead of force-releasing) if a single region overflows
          the whole store buffer *)
}

val baseline : t
(** No resilience support: the normalization denominator of every figure. *)

val turnstile : ?wcdl:int -> ?sb_size:int -> unit -> t
(** The state of the art being improved upon: verification on, no CLQ, no
    coloring. *)

val turnpike : ?wcdl:int -> ?sb_size:int -> ?clq:Clq.design -> ?coloring:bool -> unit -> t
(** Turnpike hardware: verification with CLQ fast release and coloring. *)

val of_sensors : t -> num_sensors:int -> clock_ghz:float -> t
(** Derive the WCDL from a physical sensor deployment (paper Fig 18)
    instead of choosing a cycle count directly. *)

val with_wcdl : t -> int -> t
val with_sb : t -> int -> t
val with_clq : t -> Clq.design option -> t
val with_coloring : t -> bool -> t

val with_color_bits : t -> int -> t
(** Configure coloring from a bit width: [0] disables coloring entirely;
    [b > 0] enables it with a [2^b]-color pool per register — the
    color-bits design axis of the explorer.
    @raise Invalid_argument on a negative width. *)
