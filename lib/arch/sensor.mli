(** Analytic acoustic-sensor model (paper §6.2, Fig 18).

    The worst-case detection latency (WCDL) in core cycles falls with the
    square root of the sensor density and grows linearly with the clock
    frequency. Calibrated on the paper's anchor point: 300 sensors on a
    1mm² die at 2.5GHz give a 10-cycle WCDL. *)

type t

val create : ?die_area_mm2:float -> num_sensors:int -> clock_ghz:float -> unit -> t
(** @raise Invalid_argument on non-positive sensor count or clock. *)

val wcdl : t -> int
(** Worst-case detection latency in cycles (at least 1). *)

val sensors_for : wcdl:int -> clock_ghz:float -> ?die_area_mm2:float -> unit -> int
(** Minimum sensor count achieving a target WCDL. *)

val for_wcdl : ?die_area_mm2:float -> wcdl:int -> clock_ghz:float -> unit -> t
(** The minimal deployment (per {!sensors_for}) achieving a target WCDL —
    what a timeline export uses to describe the sensor configuration behind
    a simulated verification window.
    @raise Invalid_argument on a non-positive target. *)

val area_overhead_percent : t -> float
(** Die-area overhead of the deployed sensors (≈1% for 300 sensors). *)

val to_json : t -> string
(** One-line JSON description of the deployment (sensor count, clock,
    die area, resulting WCDL and area overhead) — embedded as trace
    metadata by the timeline exporter. *)

val sample_detection_latency : t -> seed:int -> int
(** Deterministic sample of an actual detection latency in [1, wcdl];
    used by fault injection. *)
