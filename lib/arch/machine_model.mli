(** One signature over both core models.

    The in-order pipeline ({!Timing}) and the out-of-order core
    ({!Ooo_timing}) grew as separate modules with separate config records;
    the design-space explorer needs to treat "which core" as just another
    axis. {!S} is the common shape — a config replayed over a trace into
    {!Sim_stats.t} — and {!t} packs a configured instance of either
    backend as one value, so a sweep can score heterogeneous points
    through a single [simulate] call. *)

(** Common signature of a trace-driven core model. *)
module type S = sig
  type config

  val name : config -> string
  (** Short human-readable tag used in reports and CSV cells. *)

  val simulate : config -> Turnpike_ir.Trace.t -> Sim_stats.t
end

module In_order_model : S with type config = Machine.t
(** {!Timing.simulate} behind the common signature (no telemetry sink —
    sweeps never record timelines). *)

module Ooo_model : S with type config = Ooo_timing.config
(** {!Ooo_timing.simulate} behind the common signature. *)

type t =
  | In_order of Machine.t
  | Out_of_order of Ooo_timing.config
      (** A configured core of either kind, ready to replay traces. *)

val name : t -> string

val sb_size : t -> int
(** Store-buffer entries of the configured core (the CAM whose cost the
    explorer's area/energy objectives charge). *)

val simulate : t -> Turnpike_ir.Trace.t -> Sim_stats.t
(** Replay a trace on whichever backend the value carries. Deterministic:
    a pure function of (config, trace). *)

val packed : t -> (module S)
(** The backend of [t] as a first-class module, for callers generic over
    {!S} (e.g. a micro-benchmark harness instantiated per backend). *)
