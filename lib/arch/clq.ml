(* Committed load queue (paper §4.3.1): dynamically proves the absence of
   WAR dependence so regular stores can bypass verification. Two designs:
   the ideal CAM design records every committed load address of a region;
   the compact design keeps one [min,max] range per region with a small
   fixed number of entries and the Fig-13 enable/disable automaton. *)

type design = Ideal | Compact of int

module ISet = Set.Make (Int)

type region_entry = {
  region : int;
  mutable addrs : ISet.t; (* ideal *)
  mutable lo : int; (* compact *)
  mutable hi : int;
  mutable any : bool;
}

type t = {
  design : design;
  mutable entries : region_entry list; (* one per un-cleared region *)
  mutable enabled : bool;
  mutable overflows : int;
  mutable inserted_loads : int;
  mutable populated_samples : int list; (* entries-in-use at each sample *)
}

let create design =
  (match design with
  | Compact n when n <= 0 -> invalid_arg "Clq.create: entries must be positive"
  | Compact _ | Ideal -> ());
  {
    design;
    entries = [];
    enabled = true;
    overflows = 0;
    inserted_loads = 0;
    populated_samples = [];
  }

let copy t =
  (* Deep copy for executor snapshotting: entries hold mutable fields, so
     each gets a fresh record (the address sets are immutable and shared). *)
  {
    t with
    entries =
      List.map
        (fun e -> { e with region = e.region })
        t.entries;
  }

let enabled t = t.enabled

let entries_in_use t = List.length t.entries

let capacity t = match t.design with Ideal -> max_int | Compact n -> n

let find_region t region = List.find_opt (fun e -> e.region = region) t.entries

let disable t =
  t.enabled <- false;
  t.entries <- [];
  t.overflows <- t.overflows + 1

let record_load t ~region addr =
  if not t.enabled then false
  else begin
    match find_region t region with
    | Some e ->
      t.inserted_loads <- t.inserted_loads + 1;
      e.addrs <- ISet.add addr e.addrs;
      if addr < e.lo then e.lo <- addr;
      if addr > e.hi then e.hi <- addr;
      e.any <- true;
      false
    | None ->
      if entries_in_use t >= capacity t then begin
        disable t;
        true
      end
      else begin
        t.inserted_loads <- t.inserted_loads + 1;
        t.entries <-
          t.entries
          @ [ { region; addrs = ISet.singleton addr; lo = addr; hi = addr; any = true } ];
        false
      end
  end

let war_free t ~region addr =
  (* A store may bypass verification only when the fast-release logic is
     enabled and no prior load of its own region may alias it. *)
  t.enabled
  &&
  match find_region t region with
  | None -> true
  | Some e -> (
    if not e.any then true
    else
      match t.design with
      | Ideal -> not (ISet.mem addr e.addrs)
      | Compact _ -> addr < e.lo || addr > e.hi)

let on_region_verified t ~region =
  t.entries <- List.filter (fun e -> e.region <> region) t.entries

let maybe_enable t ~unverified_regions =
  (* Fig 13: after an overflow the logic stays off until a region boundary
     at which the prior region has been verified (at most the just-closed
     region is still pending). *)
  if (not t.enabled) && unverified_regions <= 1 then t.enabled <- true

let sample t = t.populated_samples <- entries_in_use t :: t.populated_samples

let overflows t = t.overflows
let inserted_loads t = t.inserted_loads

let max_populated t = List.fold_left max 0 t.populated_samples

let mean_populated t =
  match t.populated_samples with
  | [] -> 0.0
  | l ->
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
