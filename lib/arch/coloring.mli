(** Hardware coloring (paper §4.3.2).

    A pool of {!Turnpike_ir.Layout.colors} alternative checkpoint storage
    locations per architectural register lets checkpoint stores be released
    to cache {e without} verification: the previously verified checkpoint
    value is never overwritten. Three logical maps per register —
    Available colors, Used colors (per un-verified region) and the
    Verified color — implemented as one small state machine per
    (register, color). *)

type t

val create : ?colors:int -> nregs:int -> unit -> t
(** Create a pool of [colors] (default {!Turnpike_ir.Layout.colors})
    alternative storage locations per register. The timing model varies
    [colors] to explore the color-bits design axis; the functional
    recovery executor always uses the default, whose slots exist in the
    checkpoint memory layout.
    @raise Invalid_argument on a non-positive register or color count. *)

val copy : t -> t
(** Deep copy: mutating either the original or the copy afterwards leaves
    the other untouched. Used by executor snapshotting. *)

val try_assign : t -> reg:int -> region:int -> int option
(** Take a free color for a checkpoint of [reg] committed by dynamic
    [region]. [None] (fallback to store-buffer quarantine) when the pool
    for that register is exhausted or [reg] is out of range. *)

val on_region_verified : t -> region:int -> unit
(** Region verified: for each register it checkpointed through a color, the
    old verified color returns to the pool and the region's color becomes
    the verified one. *)

val verified_color : t -> reg:int -> int option
(** Color holding the most recently verified checkpoint of [reg] — where
    recovery reads the register from. *)

val used_color : t -> reg:int -> region:int -> int option

val free_color : t -> reg:int -> int option
(** A currently free color for [reg], if any. *)

val force_verified : t -> reg:int -> color:int -> unit
(** A quarantined (fallback) checkpoint drained into [color] at its
    region's verification: that slot becomes the verified storage; any
    other verified color returns to the pool. *)

val invalidate_verified : t -> reg:int -> unit
(** A quarantined (fallback) checkpoint of [reg] verified: the base slot
    holds the verified value, so any previously verified color returns to
    the pool. *)

val discard_unverified : t -> regions:int list -> unit
(** Error recovery: colors held by discarded (re-executed) regions return
    to the pool. *)

val fast_assigned : t -> int
(** Checkpoints that took the fast path (got a color). *)

val fallbacks : t -> int
(** Checkpoints that fell back to store-buffer quarantine. *)
