(* Trace-driven model of an out-of-order core, for the paper's motivating
   comparison (§1, §3): Turnstile's verification is cheap on OoO machines —
   the 40-entry store buffer absorbs quarantined stores and dynamic
   scheduling hides checkpoint data hazards — while the same scheme
   devastates an in-order core. This model exists to reproduce that claim,
   not to be a detailed OoO simulator.

   The model is dataflow-limited execution under structural bounds:
   an instruction starts when (a) its sources are ready, (b) it is inside
   the reorder window (the instruction ROB-size older must have completed),
   (c) a functional unit is free (2 ALUs, 1 load port, 1 store port), and
   (d) the fetch stream has reached it (branch mispredictions stall fetch
   until the branch resolves). Stores quarantine in the store buffer until
   their region verifies, exactly as in the in-order model — but with a
   40-entry buffer the quarantine almost never backpressures. *)

open Turnpike_ir

type config = {
  rob_size : int;
  alus : int;
  sb_size : int;
  wcdl : int;
  verification : bool;
  branch_penalty : int;
  mem : Mem_hierarchy.config;
}

let default_config =
  {
    rob_size = 64;
    alus = 2;
    sb_size = 40;
    wcdl = 10;
    verification = false;
    branch_penalty = 8;
    mem = Mem_hierarchy.default_config;
  }

let turnstile_config ?(wcdl = 10) () = { default_config with verification = true; wcdl }

type t = {
  cfg : config;
  mem : Mem_hierarchy.t;
  sb : Store_buffer.t;
  rbb : Rbb.t;
  predictor : Branch_predictor.t;
  reg_ready : (Reg.t, int) Hashtbl.t;
  completions : int array; (* ring buffer of the last [rob_size] completions *)
  alu_free : int array;
  mutable load_free : int;
  mutable store_free : int;
  mutable fetch_ready : int;
  mutable issued : int;
  mutable drain_free_at : int;
  mutable last_completion : int;
  stats : Sim_stats.t;
}

let create cfg =
  {
    cfg;
    mem = Mem_hierarchy.create cfg.mem;
    sb = Store_buffer.create cfg.sb_size;
    rbb = Rbb.create 16;
    predictor = Branch_predictor.create ();
    reg_ready = Hashtbl.create 64;
    completions = Array.make cfg.rob_size 0;
    alu_free = Array.make cfg.alus 0;
    load_free = 0;
    store_free = 0;
    fetch_ready = 0;
    issued = 0;
    drain_free_at = 0;
    last_completion = 0;
    stats = Sim_stats.create ();
  }

let ready t r =
  if Reg.is_zero r then 0 else Option.value (Hashtbl.find_opt t.reg_ready r) ~default:0

let settle t ~cycle =
  List.iter
    (fun (r : Rbb.region) ->
      let v = Option.value r.Rbb.verify_at ~default:cycle in
      t.drain_free_at <-
        Store_buffer.assign_releases t.sb ~region:r.Rbb.seq ~start:(max v t.drain_free_at))
    (Rbb.pop_verified t.rbb ~cycle);
  List.iter
    (fun (r : Store_buffer.released) ->
      Mem_hierarchy.store_release t.mem r.Store_buffer.addr)
    (Store_buffer.release_up_to t.sb cycle)

(* Claim one unit of a resource pool no earlier than [at]; the pool grants
   each unit one operation per cycle. *)
let claim_pool pool ~at =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < pool.(!best) then best := i else ignore v) pool;
  let start = max at pool.(!best) in
  pool.(!best) <- start + 1;
  start

let claim_scalar current ~at =
  let start = max at !current in
  current := start + 1;
  start

(* Dispatch an instruction: respect the reorder window and fetch stream,
   wait for sources, claim the unit, record completion. Returns (start,
   completion). *)
let dispatch t ~srcs ~unit_kind ~latency =
  let slot = t.issued mod t.cfg.rob_size in
  let window_ready = t.completions.(slot) in
  let data_ready = List.fold_left (fun acc r -> max acc (ready t r)) 0 srcs in
  let at = max (max window_ready t.fetch_ready) data_ready in
  settle t ~cycle:at;
  let start =
    match unit_kind with
    | `Alu -> claim_pool t.alu_free ~at
    | `Load ->
      let c = ref t.load_free in
      let s = claim_scalar c ~at in
      t.load_free <- !c;
      s
    | `Store ->
      let c = ref t.store_free in
      let s = claim_scalar c ~at in
      t.store_free <- !c;
      s
  in
  let completion = start + latency in
  t.completions.(slot) <- completion;
  t.issued <- t.issued + 1;
  t.last_completion <- max t.last_completion completion;
  t.stats.Sim_stats.instructions <- t.stats.Sim_stats.instructions + 1;
  (start, completion)

(* Wait for a free store-buffer entry no earlier than [at]. *)
let rec sb_entry_at t ~at =
  settle t ~cycle:at;
  if not (Store_buffer.is_full t.sb) then at
  else
    let next =
      match Store_buffer.earliest_release t.sb with
      | Some r -> max r (at + 1)
      | None -> (
        match Rbb.next_verify_time t.rbb with
        | Some v -> max v (at + 1)
        | None -> at + 1)
    in
    t.stats.Sim_stats.sb_full_stall_cycles <-
      t.stats.Sim_stats.sb_full_stall_cycles + (next - at);
    sb_entry_at t ~at:next

let run_event t (e : Trace.event) =
  match e with
  | Trace.Boundary { region } ->
    (match Rbb.current t.rbb with
    | Some _ ->
      ignore (Rbb.close_region t.rbb ~end_cycle:t.last_completion ~wcdl:t.cfg.wcdl)
    | None -> ());
    (* The 16-entry RBB of an OoO core effectively never fills on these
       traces; regions open at the current completion frontier. *)
    ignore (Rbb.open_region t.rbb ~static_id:region);
    t.stats.Sim_stats.boundaries <- t.stats.Sim_stats.boundaries + 1
  | Trace.Alu { dst; srcs } ->
    let _, completion = dispatch t ~srcs ~unit_kind:`Alu ~latency:1 in
    (match dst with
    | Some d when not (Reg.is_zero d) -> Hashtbl.replace t.reg_ready d completion
    | Some _ | None -> ())
  | Trace.Load { dst; srcs; addr; kind = _ } ->
    let lat =
      if Store_buffer.contains_addr t.sb addr then begin
        ignore (Mem_hierarchy.load_latency t.mem addr);
        t.stats.Sim_stats.sb_forwards <- t.stats.Sim_stats.sb_forwards + 1;
        t.cfg.mem.Mem_hierarchy.l1_hit
      end
      else Mem_hierarchy.load_latency t.mem addr
    in
    let _, completion = dispatch t ~srcs ~unit_kind:`Load ~latency:lat in
    Hashtbl.replace t.reg_ready dst completion;
    t.stats.Sim_stats.loads <- t.stats.Sim_stats.loads + 1
  | (Trace.Store _ | Trace.Ckpt _) as ev ->
    let srcs, addr, is_ckpt =
      match ev with
      | Trace.Store { srcs; addr; _ } -> (srcs, addr, false)
      | Trace.Ckpt { src } -> ([ src ], Layout.ckpt_slot ~reg:(max src 0) ~color:0, true)
      | _ -> assert false
    in
    let start, _ = dispatch t ~srcs ~unit_kind:`Store ~latency:1 in
    (* A store only completes (commits) once a store-buffer entry is free:
       the wait flows into its ROB completion slot, so a full SB
       backpressures dispatch through the reorder window — exactly how a
       real OoO core feels quarantine pressure. *)
    let commit_slot = (t.issued - 1) mod t.cfg.rob_size in
    let finish_at at =
      t.completions.(commit_slot) <- max t.completions.(commit_slot) (at + 1);
      t.last_completion <- max t.last_completion (at + 1)
    in
    if t.cfg.verification then begin
      let at = sb_entry_at t ~at:start in
      finish_at at;
      Store_buffer.alloc t.sb ~addr ~region:(Rbb.current_seq t.rbb) ~is_ckpt
        ~release_at:None;
      t.stats.Sim_stats.quarantined <- t.stats.Sim_stats.quarantined + 1
    end
    else begin
      let at = if Store_buffer.is_full t.sb then sb_entry_at t ~at:start else start in
      finish_at at;
      Store_buffer.alloc t.sb ~addr ~region:0 ~is_ckpt ~release_at:(Some (at + 2))
    end;
    if is_ckpt then t.stats.Sim_stats.ckpts <- t.stats.Sim_stats.ckpts + 1
    else t.stats.Sim_stats.stores <- t.stats.Sim_stats.stores + 1
  | Trace.Branch { srcs; taken; pc } ->
    let _, completion = dispatch t ~srcs ~unit_kind:`Alu ~latency:1 in
    let correct =
      match srcs with
      | [] -> Branch_predictor.update t.predictor ~pc ~taken:true
      | _ :: _ -> Branch_predictor.update t.predictor ~pc ~taken
    in
    if not correct then t.fetch_ready <- completion + t.cfg.branch_penalty

let simulate cfg trace =
  let t = create cfg in
  ignore (Rbb.open_region t.rbb ~static_id:(-1));
  Trace.iter (run_event t) trace;
  t.stats.Sim_stats.cycles <- t.last_completion + 1;
  t.stats.Sim_stats.complete <- trace.Trace.complete;
  t.stats.Sim_stats.branch_mispredicts <- Branch_predictor.mispredicts t.predictor;
  t.stats.Sim_stats.l1_hit_rate <- Cache.hit_rate (Mem_hierarchy.l1 t.mem);
  t.stats
