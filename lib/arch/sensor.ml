(* Analytic acoustic-sensor model (paper Fig 18). Sensors perceive the
   sound wave of a particle strike; the worst-case detection latency (WCDL)
   is the time for the wave to reach the nearest sensor, in core clock
   cycles. For [n] sensors uniformly deployed on a die of area [a] mm²,
   the worst-case distance to a sensor scales as sqrt(a / n); dividing by
   the wave propagation speed and multiplying by the clock frequency gives
   the WCDL. The constant is calibrated on the paper's anchor: 300 sensors
   on 1mm² at 2.5GHz give a 10-cycle WCDL (and 30 sensors roughly 30
   cycles). *)

type t = {
  num_sensors : int;
  clock_ghz : float;
  die_area_mm2 : float;
}

let calibration_constant =
  (* wcdl = k * f / sqrt(n/a); anchored at wcdl=10, f=2.5, n=300, a=1. *)
  10.0 *. sqrt 300.0 /. 2.5

let create ?(die_area_mm2 = 1.0) ~num_sensors ~clock_ghz () =
  if num_sensors <= 0 then invalid_arg "Sensor.create: num_sensors must be positive";
  if clock_ghz <= 0.0 then invalid_arg "Sensor.create: clock_ghz must be positive";
  { num_sensors; clock_ghz; die_area_mm2 }

let wcdl t =
  let density = float_of_int t.num_sensors /. t.die_area_mm2 in
  let cycles = calibration_constant *. t.clock_ghz /. sqrt density in
  max 1 (int_of_float (Float.round cycles))

let sensors_for ~wcdl:target ~clock_ghz ?(die_area_mm2 = 1.0) () =
  if target <= 0 then invalid_arg "Sensor.sensors_for: wcdl must be positive";
  let n =
    die_area_mm2 *. ((calibration_constant *. clock_ghz /. float_of_int target) ** 2.0)
  in
  max 1 (int_of_float (ceil n))

let for_wcdl ?(die_area_mm2 = 1.0) ~wcdl:target ~clock_ghz () =
  let num_sensors = sensors_for ~wcdl:target ~clock_ghz ~die_area_mm2 () in
  create ~die_area_mm2 ~num_sensors ~clock_ghz ()

let to_json t =
  Printf.sprintf
    {|{"num_sensors": %d, "clock_ghz": %.6g, "die_area_mm2": %.6g, "wcdl": %d, "area_overhead_percent": %.6g}|}
    t.num_sensors t.clock_ghz t.die_area_mm2 (wcdl t)
    (float_of_int t.num_sensors /. 300.0 *. 1.0)

let area_overhead_percent t =
  (* Paper: ~300 sensors cost about 1% of die area; cost scales linearly
     with the sensor count. *)
  float_of_int t.num_sensors /. 300.0 *. 1.0

(* Deterministic splitmix-style generator for detection-latency sampling:
   an error is detected some number of cycles after occurrence, uniform in
   [1, wcdl] (the WCDL is the worst case). *)
let sample_detection_latency t ~seed =
  let z = ref (seed * 0x2545F4914F6CDD1D) in
  z := !z lxor (!z lsr 30);
  z := !z * 0x27D4EB2F165667C5;
  z := !z lxor (!z lsr 27);
  let r = !z land max_int in
  1 + (r mod wcdl t)
