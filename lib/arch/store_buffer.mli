(** Gated store buffer (GSB), paper §2.1.

    Under verification, an entry allocated by a committed store is
    quarantined until its region is verified error-free; entries then drain
    to L1 one per cycle. In baseline mode entries carry a release time from
    the start. *)

type t

val create : int -> t
(** [create size]. @raise Invalid_argument on non-positive size. *)

val occupancy : t -> int
val is_full : t -> bool

val sample : t -> unit
(** Record the current occupancy for the mean-occupancy statistic. *)

val mean_occupancy : t -> float

val alloc : t -> addr:int -> region:int -> is_ckpt:bool -> release_at:int option -> unit
(** Allocate an entry. [release_at = None] quarantines it until its region
    is verified. @raise Invalid_argument when full (callers must wait). *)

val contains_addr : t -> int -> bool
(** CAM probe used by the in-order fast-release constraint. *)

val assign_releases : t -> region:int -> start:int -> int
(** Give the quarantined entries of a verified region consecutive drain
    cycles from [start]; returns the next free drain cycle. *)

type released = {
  addr : int;
  is_ckpt : bool;
  region : int;  (** dynamic region the entry belonged to *)
  at : int;  (** the drain cycle the entry was assigned *)
}
(** What {!release_up_to} reports per drained entry — enough to stamp a
    timeline release event with its true drain cycle and region. *)

val release_up_to : t -> int -> released list
(** Remove and return the entries whose release time has passed. *)

val earliest_release : t -> int option
(** Earliest assigned release time, if any entry has one. *)

val all_unreleasable : t -> current_region:int -> bool
(** True when the buffer is non-empty and every entry belongs to the
    still-open region — the deadlock the SB-aware partitioner must
    prevent. *)

val force_release_oldest : t -> (int * bool) option
(** Escape hatch for non-strict simulation of mis-partitioned code. *)

val unverified_regions : t -> int list
(** Dynamic region ids with quarantined entries, ascending. *)
