(** Analytic area/energy model reproducing the paper's Table 1 (CACTI at
    22nm). RAM structures cost linearly in bytes; CAM structures linearly
    in entries; both models are fitted on the paper's published anchor
    points, so the table regenerates from first principles. *)

type cost = { area_um2 : float; energy_pj : float }

val cam : entries:int -> cost
(** Content-addressed structure (store buffer).
    @raise Invalid_argument on non-positive entries. *)

val ram : bytes:int -> cost
(** RAM structure (color maps, compact CLQ).
    @raise Invalid_argument on non-positive size. *)

val store_buffer : entries:int -> cost

val color_map_bytes : ?colors:int -> nregs:int -> unit -> int
(** Storage for the AC/UC/VC maps: 3·log2(colors) bits per register
    (24 bytes for 32 registers and the default 4 colors, as in the
    paper). [colors] (default {!Turnpike_ir.Layout.colors}) sizes the
    per-register pool — the explorer's color-bits axis.
    @raise Invalid_argument on a non-positive color count. *)

val color_maps : ?colors:int -> nregs:int -> unit -> cost
val clq_bytes : entries:int -> int
val clq : entries:int -> cost

val add : cost -> cost -> cost
val ratio : cost -> cost -> cost
val turnpike_total : nregs:int -> clq_entries:int -> cost

type table1_row = { label : string; area_um2 : float; energy_pj : float }

val table1 : unit -> table1_row list
(** The seven rows of the paper's Table 1 (ratio rows in percent). *)
