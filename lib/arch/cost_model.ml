(* Analytic area/energy model reproducing the paper's Table 1 (CACTI,
   22nm). The paper's RAM rows are exactly linear in byte count, and its
   two CAM anchor points (4- and 40-entry store buffers) determine a linear
   per-entry CAM model; both are derived here from the published anchors so
   that the table regenerates from first principles. *)

type cost = { area_um2 : float; energy_pj : float }

(* Anchors from Table 1. *)
let sb4 = { area_um2 = 621.28; energy_pj = 0.43099 }
let sb40 = { area_um2 = 3132.50; energy_pj = 2.11525 }
let color_maps_24b = { area_um2 = 36.651; energy_pj = 0.02518 }

(* CAM: cost = slope * entries + intercept, fit on the two SB anchors. *)
let cam_area_slope = (sb40.area_um2 -. sb4.area_um2) /. 36.0
let cam_area_intercept = sb4.area_um2 -. (cam_area_slope *. 4.0)
let cam_energy_slope = (sb40.energy_pj -. sb4.energy_pj) /. 36.0
let cam_energy_intercept = sb4.energy_pj -. (cam_energy_slope *. 4.0)

(* RAM: cost per byte, from the color-map anchor (24 bytes). *)
let ram_area_per_byte = color_maps_24b.area_um2 /. 24.0
let ram_energy_per_byte = color_maps_24b.energy_pj /. 24.0

let cam ~entries =
  if entries <= 0 then invalid_arg "Cost_model.cam: entries must be positive";
  {
    area_um2 = (cam_area_slope *. float_of_int entries) +. cam_area_intercept;
    energy_pj = (cam_energy_slope *. float_of_int entries) +. cam_energy_intercept;
  }

let ram ~bytes =
  if bytes <= 0 then invalid_arg "Cost_model.ram: bytes must be positive";
  {
    area_um2 = ram_area_per_byte *. float_of_int bytes;
    energy_pj = ram_energy_per_byte *. float_of_int bytes;
  }

let store_buffer ~entries = cam ~entries

let color_map_bytes ?(colors = Turnpike_ir.Layout.colors) ~nregs () =
  (* 3 maps (AC, UC, VC), log2(colors) bits each, per register. *)
  if colors <= 0 then invalid_arg "Cost_model.color_map_bytes: colors must be positive";
  let bits_per_color =
    max 1 (int_of_float (ceil (log (float_of_int colors) /. log 2.0)))
  in
  let bits = 3 * bits_per_color * nregs in
  (bits + 7) / 8

let color_maps ?colors ~nregs () = ram ~bytes:(color_map_bytes ?colors ~nregs ())

let clq_bytes ~entries =
  (* One [min,max] 32-bit address pair per compact-CLQ entry. *)
  entries * 8

let clq ~entries = ram ~bytes:(clq_bytes ~entries)

let add a b = { area_um2 = a.area_um2 +. b.area_um2; energy_pj = a.energy_pj +. b.energy_pj }

let turnpike_total ~nregs ~clq_entries = add (color_maps ~nregs ()) (clq ~entries:clq_entries)

let ratio a b =
  { area_um2 = a.area_um2 /. b.area_um2; energy_pj = a.energy_pj /. b.energy_pj }

type table1_row = { label : string; area_um2 : float; energy_pj : float }

let table1 () =
  let sb4 = store_buffer ~entries:4 in
  let cmap = color_maps ~nregs:32 () in
  let clq2 = clq ~entries:2 in
  let total = add cmap clq2 in
  let sb40 = store_buffer ~entries:40 in
  let pct (c : cost) : cost =
    { area_um2 = c.area_um2 *. 100.0; energy_pj = c.energy_pj *. 100.0 }
  in
  let r label (c : cost) = { label; area_um2 = c.area_um2; energy_pj = c.energy_pj } in
  [
    r "4-entry SB (CAM)" sb4;
    r "Color maps in Turnpike (RAM)" cmap;
    r "2-entry CLQ in Turnpike (RAM)" clq2;
    r "Turnpike in total (color maps + 2-entry CLQ)" total;
    r "40-entry SB (CAM)" sb40;
    r "Turnpike in total / 4-entry SB [%]" (pct (ratio total sb4));
    r "40-entry SB / 4-entry SB [%]" (pct (ratio sb40 sb4));
  ]
