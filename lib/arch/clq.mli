(** Committed load queue (CLQ), paper §4.3.1.

    Dynamically proves the absence of write-after-read dependence within a
    region so that regular stores can bypass verification ("fast release").
    Two designs: the {e ideal} CAM design records every committed load
    address of each un-verified region; the {e compact} design keeps one
    [min,max] address range per region within a small fixed number of
    entries, falling back to the Fig-13 enable/disable automaton on
    overflow. *)

type design = Ideal | Compact of int  (** number of range entries *)

type t

val create : design -> t
(** @raise Invalid_argument on a non-positive compact entry count. *)

val copy : t -> t
(** Deep copy: mutating either the original or the copy afterwards leaves
    the other untouched. Used by executor snapshotting. *)

val enabled : t -> bool
(** Fast-release state of the Fig-13 automaton. *)

val entries_in_use : t -> int

val record_load : t -> region:int -> int -> bool
(** Record a committed load address for its dynamic region. If a new region
    needs an entry and none is free, the automaton disables fast release and
    clears the queue; [true] is returned exactly when that overflow
    transition fired (so the timing model can stamp a timeline event at the
    cycle it happened). No-op returning [false] while disabled. *)

val war_free : t -> region:int -> int -> bool
(** [war_free t ~region addr]: may a store to [addr] from [region] bypass
    verification? False whenever fast release is disabled; conservative
    (range-based) for the compact design. *)

val on_region_verified : t -> region:int -> unit
(** Clear the entry populated by a now-verified region. *)

val maybe_enable : t -> unverified_regions:int -> unit
(** Re-enable fast release at a region boundary once at most the
    just-closed region is still unverified. *)

val sample : t -> unit
(** Record current entry usage (drives the paper's Fig 24 statistic). *)

val overflows : t -> int
val inserted_loads : t -> int
val max_populated : t -> int
val mean_populated : t -> float
