(* One signature over both core models, so the design-space explorer can
   treat {in-order, out-of-order} as just another sweep axis. *)

module type S = sig
  type config

  val name : config -> string
  val simulate : config -> Turnpike_ir.Trace.t -> Sim_stats.t
end

module In_order_model = struct
  type config = Machine.t

  let name (m : Machine.t) = m.Machine.name
  let simulate m trace = Timing.simulate m trace
end

module Ooo_model = struct
  type config = Ooo_timing.config

  let name (c : Ooo_timing.config) =
    Printf.sprintf "ooo-rob%d-sb%d%s" c.Ooo_timing.rob_size c.Ooo_timing.sb_size
      (if c.Ooo_timing.verification then Printf.sprintf "-dl%d" c.Ooo_timing.wcdl
       else "")

  let simulate c trace = Ooo_timing.simulate c trace
end

type t = In_order of Machine.t | Out_of_order of Ooo_timing.config

let name = function
  | In_order m -> In_order_model.name m
  | Out_of_order c -> Ooo_model.name c

let sb_size = function
  | In_order m -> m.Machine.sb_size
  | Out_of_order c -> c.Ooo_timing.sb_size

let simulate t trace =
  match t with
  | In_order m -> In_order_model.simulate m trace
  | Out_of_order c -> Ooo_model.simulate c trace

let packed : t -> (module S) = function
  | In_order _ -> (module In_order_model)
  | Out_of_order _ -> (module Ooo_model)
