(** Trace-driven, cycle-level model of a dual-issue in-order core with
    acoustic-sensor-based soft error verification.

    The model replays a {!Turnpike_ir.Trace.t} through a scoreboarded
    in-order pipeline, capturing the three mechanisms behind the paper's
    overheads: checkpoint data hazards, store-buffer/RBB structural hazards
    under WCDL-delayed release, and Turnpike's fast-release paths (CLQ for
    WAR-free regular stores, hardware coloring for checkpoint stores). *)

exception Partitioning_violation of string
(** Raised in [strict_partitioning] mode when a single region fills the
    whole store buffer — a bug in SB-aware region partitioning. *)

val simulate :
  ?tel:Turnpike_telemetry.sink -> Machine.t -> Turnpike_ir.Trace.t -> Sim_stats.t
(** Replay a trace on a machine configuration and return its counters.

    [tel] (default {!Turnpike_telemetry.null}) receives a cycle-stamped
    timeline of the run: region begin/end spans and occupancy counters
    (SB, RBB, CLQ) on track 0, [sb_full]/[rbb_full] stall spans on
    track 1, WCDL-long sensor verification windows on track 2,
    store-buffer quarantine/release instants on track 3 and CLQ
    bypass/overflow (plus colored checkpoint bypass) instants on track 4.
    Timestamps are simulated cycles, so the event stream is a pure
    function of (machine, trace) — identical at any pool width. *)
