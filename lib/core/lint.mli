(** The resilience soundness lint: run the static-analysis registry over
    compiled benchmarks and report every diagnostic.

    Each (benchmark, scheme) cell is compiled fresh with checking enabled
    — the {!Run} compile cache is bypassed on purpose, since cached
    binaries carry no diagnostics — then the final context is enriched
    with the scheme's machine parameters (RBB depth, CLQ entries) and the
    whole-program registry runs once more to pick up the capacity checks
    that need them.

    Reports are deterministic: entries follow the input order (the pool
    delivers results in task order at any job count) and diagnostics are
    sorted, so {!to_json} output is byte-identical at [--jobs 1] and
    [--jobs N]. *)

module Suite = Turnpike_workloads.Suite
module Diag = Turnpike_analysis.Diag

type entry = {
  benchmark : string;  (** suite-qualified name, e.g. ["mcf@2006"] *)
  scheme : string;
  diags : Diag.t list;  (** sorted per {!Diag.sort} *)
  check_log : (string * string list) list;
      (** per-pass check schedule (which checks ran after which pass) —
          rendered by [to_text ~explain:true]; deliberately absent from
          {!to_json} so incremental and full-recheck reports stay
          byte-identical *)
}

type report = {
  per_pass : bool;
  entries : entry list;
  errors : int;
  warnings : int;
  infos : int;
}

val lint_one :
  ?per_pass:bool ->
  ?full_recheck:bool ->
  ?sb_size:int ->
  ?scale:int ->
  Scheme.t ->
  Suite.entry ->
  Diag.t list
(** Compile one benchmark under one scheme with checking on ([Final], or
    incremental [PerPass] when [per_pass] — diagnostics then carry pass
    provenance; [full_recheck] forces the non-incremental [PerPassFull]
    oracle) and return the sorted diagnostics, machine-parameter checks
    included. *)

val run :
  ?per_pass:bool ->
  ?full_recheck:bool ->
  ?sb_size:int ->
  ?scale:int ->
  ?jobs:int ->
  schemes:Scheme.t list ->
  Suite.entry list ->
  report
(** Lint the full (benchmark × scheme) grid over the {!Parallel} pool.
    [full_recheck] (with [per_pass]) re-runs every check after every pass
    instead of only the invalidated ones — the report must come out
    byte-identical; [tools/check.sh] diffs the two. *)

val max_severity : report -> Diag.severity option
(** Highest severity across the whole report, if any diagnostics. *)

val to_text : ?explain:bool -> report -> string
(** Human rendering: one line per diagnostic plus a summary line.
    [explain] prefixes each cell with its per-pass check schedule — which
    checks the incremental registry actually re-ran after each pass. *)

val to_json : report -> string
(** Machine rendering, deterministic bytes (keys in fixed order, entries
    in input order). *)

(** {1 Static vulnerability report ([lint --vuln])}

    The same grid fan-out, but instead of diagnostics each cell carries
    the full static ACE/AVF estimate ({!Turnpike_analysis.Vuln}) — no
    faults are injected; the ranked tables predict what a campaign would
    find. *)

type vuln_entry = {
  v_benchmark : string;
  v_scheme : string;
  vuln : Turnpike_analysis.Vuln.t;
}

type vuln_report = { ventries : vuln_entry list }

val vuln_cell :
  ?sb_size:int ->
  ?scale:int ->
  ?wcdl:int ->
  Scheme.t ->
  Suite.entry ->
  Turnpike_analysis.Vuln.t
(** Compile one cell fresh (checking off) and run the static estimate
    under the scheme's machine parameters; [wcdl] defaults to 10, the
    value {!run} feeds the capacity checks. *)

val run_vuln :
  ?sb_size:int ->
  ?scale:int ->
  ?wcdl:int ->
  ?jobs:int ->
  schemes:Scheme.t list ->
  Suite.entry list ->
  vuln_report
(** Fan {!vuln_cell} over the grid; deterministic at any job count. *)

val vuln_to_text : ?top:int -> vuln_report -> string
(** Ranked region/register/site tables per cell ([top] rows each,
    default 8) plus the predicted AVF headline. *)

val vuln_to_json : vuln_report -> string
(** Deterministic JSON (tables in rank order). *)

(** One CSV row: a table key of one benchmark with its static score
    under every scheme that ranks it (schemes region programs
    differently, so absent cells are expected). *)
type vuln_csv_row = {
  vr_benchmark : string;
  vr_key : string;
  vr_by_scheme : (string * float) list;
}

val vuln_csv_rows :
  axis:[ `Site | `Register | `Region ] -> vuln_report -> vuln_csv_row list
(** Flatten one table axis of the report for {!Csv_export.vuln}. *)
