(** The resilience soundness lint: run the static-analysis registry over
    compiled benchmarks and report every diagnostic.

    Each (benchmark, scheme) cell is compiled fresh with checking enabled
    — the {!Run} compile cache is bypassed on purpose, since cached
    binaries carry no diagnostics — then the final context is enriched
    with the scheme's machine parameters (RBB depth, CLQ entries) and the
    whole-program registry runs once more to pick up the capacity checks
    that need them.

    Reports are deterministic: entries follow the input order (the pool
    delivers results in task order at any job count) and diagnostics are
    sorted, so {!to_json} output is byte-identical at [--jobs 1] and
    [--jobs N]. *)

module Suite = Turnpike_workloads.Suite
module Diag = Turnpike_analysis.Diag

type entry = {
  benchmark : string;  (** suite-qualified name, e.g. ["mcf@2006"] *)
  scheme : string;
  diags : Diag.t list;  (** sorted per {!Diag.sort} *)
}

type report = {
  per_pass : bool;
  entries : entry list;
  errors : int;
  warnings : int;
  infos : int;
}

val lint_one :
  ?per_pass:bool -> ?sb_size:int -> ?scale:int -> Scheme.t -> Suite.entry ->
  Diag.t list
(** Compile one benchmark under one scheme with checking on ([Final], or
    [PerPass] when [per_pass] — diagnostics then carry pass provenance)
    and return the sorted diagnostics, machine-parameter checks
    included. *)

val run :
  ?per_pass:bool ->
  ?sb_size:int ->
  ?scale:int ->
  ?jobs:int ->
  schemes:Scheme.t list ->
  Suite.entry list ->
  report
(** Lint the full (benchmark × scheme) grid over the {!Parallel} pool. *)

val max_severity : report -> Diag.severity option
val to_text : report -> string
(** Human rendering: one line per diagnostic plus a summary line. *)

val to_json : report -> string
(** Machine rendering, deterministic bytes (keys in fixed order, entries
    in input order). *)
