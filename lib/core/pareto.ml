(* Pareto dominance (minimization) and non-dominated sorting. Quadratic in
   the point count, which is fine at design-grid sizes (tens to a few
   hundred points); input order is preserved everywhere so frontier output
   is deterministic. *)

let dominates a b =
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg "Pareto.dominates: objective vectors differ in length";
  let no_worse = ref true and better = ref false in
  for i = 0 to n - 1 do
    (* NaN comparisons are all false: a NaN axis blocks [no_worse], so a
       point with an unmeasured objective is never claimed dominated. *)
    if not (a.(i) <= b.(i)) then no_worse := false;
    if a.(i) < b.(i) then better := true
  done;
  !no_worse && !better

let frontier ~objectives points =
  let objs = Array.of_list (List.map objectives points) in
  List.filteri
    (fun i _ -> not (Array.exists (fun oj -> dominates oj objs.(i)) objs))
    points

let rank ~objectives points =
  let pts = Array.of_list points in
  let objs = Array.map objectives pts in
  let n = Array.length pts in
  let layer = Array.make n (-1) in
  let remaining = ref n in
  let current = ref 0 in
  while !remaining > 0 do
    (* Frontier of the not-yet-ranked points becomes layer [!current]. *)
    let in_layer = Array.make n false in
    for i = 0 to n - 1 do
      if layer.(i) < 0 then begin
        let dominated = ref false in
        for j = 0 to n - 1 do
          if layer.(j) < 0 && dominates objs.(j) objs.(i) then dominated := true
        done;
        if not !dominated then in_layer.(i) <- true
      end
    done;
    for i = 0 to n - 1 do
      if in_layer.(i) then begin
        layer.(i) <- !current;
        decr remaining
      end
    done;
    incr current
  done;
  List.mapi (fun i p -> (p, layer.(i))) points
