(** Compatibility alias for {!Turnpike_parallel}, the domain work pool.

    The implementation moved into its own dune library
    ([turnpike.parallel]) so that it can sit below [turnpike.resilience]
    (the fault-campaign fan-out) as well as below the experiment grid.
    [Turnpike.Parallel] and [Turnpike_parallel] are the same module: the
    pool width set through either (or through [--jobs N]) governs both
    the experiment grid and {!Turnpike_resilience.Verifier.run_campaign}. *)

include module type of Turnpike_parallel
