(** First-class sweep axes and grid evaluation.

    Every figure driver in {!Experiments} and the design-space explorer
    ({!Explore}) walk some (benchmark × configuration) grid. This module
    makes the configuration dimension a value: an {!axis} names the knob,
    carries its candidate values and knows how to render one — so drivers
    become one {!grid} call instead of a bespoke loop, and the explorer
    composes six axes into a {!Design_point} grid declaratively.

    Evaluation delegates to {!Parallel.grid}: the full cartesian product
    is submitted to the domain pool as one flat task list and results are
    regrouped in input order, so rows are identical at any [--jobs]. *)

type 'a axis = private { name : string; show : 'a -> string; values : 'a list }
(** A named sweep dimension. [show] renders a value for reports and CSV
    cells; [values] are swept in list order (which fixes row order and
    grid enumeration order everywhere downstream). *)

val axis : name:string -> show:('a -> string) -> 'a list -> 'a axis
(** @raise Invalid_argument on an empty value list. *)

val ints : name:string -> int list -> int axis
(** An integer axis rendered with [string_of_int]. *)

val names : 'a axis -> string list
(** [show] applied to every value, in sweep order. *)

val cross : 'a axis -> 'b axis -> ('a * 'b) axis
(** Cartesian product axis, [a]-major; named ["a×b"] and rendered
    ["va,vb"]. *)

val grid :
  ?jobs:int ->
  items:'i list ->
  axis:'c axis ->
  ('i -> 'c -> 'r) ->
  ('i * ('c * 'r) list) list
(** [grid ~items ~axis f] evaluates [f item value] over the full
    (item × axis value) product on the domain pool and regroups results
    per item, both in input order — the shared engine under every figure
    sweep. *)

val rows :
  items:'i list ->
  axis:'c axis ->
  row:('i -> ('c * 'r) list -> 'row) ->
  ('i -> 'c -> 'r) ->
  'row list
(** {!grid} followed by a per-item row constructor: the usual shape of a
    figure driver ([row] receives the item and its results along the
    axis, in axis order). *)
