(* Deterministic cycle-level timeline capture: run one benchmark under
   every scheme of the ablation ladder, each scheme as one pool task with
   its own telemetry sink (task = ladder index), then merge by (task, seq).

   Only the simulation feeds the sinks, and simulation events are stamped
   with simulated cycles, so each task's event list is a pure function of
   (scheme, benchmark, params). Merge order depends only on the task index,
   never on domain interleaving — the export is byte-identical at any
   [--jobs] count. Wall-clock producers (compile passes, the pool itself)
   are deliberately NOT routed into these sinks. *)

module Telemetry = Turnpike_telemetry
module Suite = Turnpike_workloads.Suite
module Sensor = Turnpike_arch.Sensor

type t = {
  benchmark : string;
  params : Run.params;
  schemes : string list;
  events : Telemetry.event list;
  per_task : int list; (* events per ladder rung, ladder order *)
  dropped : int; (* capacity-overflow events across all rungs *)
}

(* Track names mirror the tid layout of [Turnpike_arch.Timing]. *)
let track_names = [ "regions"; "stalls"; "verify"; "store-buffer"; "clq" ]

let capture ?jobs ?(params = Run.default_params) (bench : Suite.entry) =
  let schemes = Scheme.ladder in
  let sinks =
    Parallel.map ?jobs
      (fun (i, scheme) ->
        let tel = Telemetry.create ~task:i () in
        ignore (Run.run_with ~tel params scheme bench);
        tel)
      (Array.of_list (List.mapi (fun i s -> (i, s)) schemes))
  in
  let sinks = Array.to_list sinks in
  {
    benchmark = Suite.qualified_name bench;
    params;
    schemes = List.map (fun (s : Scheme.t) -> s.Scheme.name) schemes;
    events = Telemetry.merge sinks;
    per_task = List.map Telemetry.length sinks;
    dropped = Telemetry.total_dropped sinks;
  }

let process_names t =
  List.mapi (fun i name -> (i, Printf.sprintf "%s/%s" name t.benchmark)) t.schemes

let thread_names t =
  List.concat_map
    (fun (task, _) ->
      List.mapi (fun tid name -> ((task, tid), name)) track_names)
    (process_names t)

let chrome t =
  Telemetry.Export.chrome ~process_names:(process_names t)
    ~thread_names:(thread_names t) ~dropped:t.dropped t.events

let jsonl t = Telemetry.Export.jsonl ~dropped:t.dropped t.events

let sensor_metadata t =
  Sensor.to_json (Sensor.for_wcdl ~wcdl:t.params.Run.wcdl ~clock_ghz:2.5 ())
