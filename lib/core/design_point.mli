(** One point of the cross-layer design space.

    A design point fixes every knob the explorer sweeps: the core model
    (in-order or out-of-order), the store-buffer depth, the compact-CLQ
    entry count, the checkpoint color-pool width, the acoustic-sensor
    deployment and the compiler rung. {!machine_model} lowers a point to
    a configured {!Turnpike_arch.Machine_model.t}, so scoring treats both
    core backends uniformly; {!recovery_config} lowers it to the
    functional executor configuration a fault campaign runs under. *)

module Machine_model = Turnpike_arch.Machine_model
module Recovery = Turnpike_resilience.Recovery

type core = In_order | Out_of_order

val core_name : core -> string
(** ["inorder"] / ["ooo"]. *)

type t = {
  core : core;
  sb_entries : int;
  clq_entries : int;  (** compact-CLQ range entries; [0] = no CLQ *)
  color_bits : int;  (** [2^bits] colors per register; [0] = no coloring *)
  sensors : int;  (** deployed acoustic sensors (sets the WCDL) *)
  rung : Scheme.t;  (** compiler rung (which optimizations are compiled in) *)
}

val id : t -> string
(** Stable slug, e.g. ["ooo/sb8/clq2/cb2/s300/turnpike"] — the point's
    identity in CSV rows, dedup keys and deterministic tie-breaks. *)

val compare : t -> t -> int
(** Total order consistent with grid enumeration order ({!grid}). *)

val clock_ghz : float
(** The paper's 2.5GHz operating point — the clock every sensor-derived
    WCDL is expressed against. *)

val wcdl : t -> int
(** Worst-case detection latency the sensor deployment achieves at the
    paper's 2.5GHz operating point. *)

val clq_design : t -> Turnpike_arch.Clq.design option

val machine_model : t -> Machine_model.t
(** The configured core this point runs on: verification on, with the
    point's SB/CLQ/coloring/WCDL. The out-of-order backend models
    verification through its reorder window and has no fast-release
    hardware, so CLQ and color knobs only affect its cost objectives. *)

val baseline_model : t -> Machine_model.t
(** The unprotected core of the same kind and SB depth — the
    normalization denominator for this point's runtime overhead. *)

val recovery_config : t -> fuel:int -> Recovery.config
(** Functional-executor configuration for this point's fault campaigns:
    the WCDL stands in for [verify_delay], CLQ and coloring mirror the
    hardware knobs. *)

(** {1 Grid construction} *)

type spec = {
  cores : core Sweep.axis;
  sb_entries : int Sweep.axis;
  clq_entries : int Sweep.axis;
  color_bits : int Sweep.axis;
  sensors : int Sweep.axis;
  rungs : Scheme.t Sweep.axis;
}
(** Declarative description of a design grid: one {!Sweep.axis} per
    dimension. *)

val default_spec : spec
(** The default 64-point exploration grid: {in-order, OoO} × SB {4, 8} ×
    CLQ {0, 2} × color bits {0, 2} × sensors {100, 300} × rung
    {turnstile, turnpike}. *)

val tiny_spec : spec
(** A 4-point smoke grid (both cores, both rungs, everything else
    pinned) for CI determinism checks. *)

val wide_spec : spec
(** A 486-point grid sweeping every axis harder (three SB depths, CLQ
    {0, 2, 4}, color bits {0, 1, 2}, three sensor deployments, three
    rungs). *)

val spec_of_string : string -> (spec, string) result
(** ["tiny"], ["default"] or ["wide"]. *)

val grid : spec -> t list
(** Cartesian product in axis order (cores-major, rungs-minor) — the
    canonical enumeration order every explorer artifact reports points
    in. *)

val csv_header : string list
(** The axis columns of a design-point CSV row: core, sb, clq,
    color_bits, sensors, wcdl, rung. *)

val csv_cells : t -> string list
