(** One argument spec for every campaign-driving entry point.

    [turnpike-cli inject], [bench resilience] and [bench explore] /
    [turnpike-cli explore] all take the same five knobs — seed, CI
    half-width, confidence, batch size and job count — and used to each
    re-declare flag names, defaults and docs. This module is the single
    source of truth: the {!t} record carries the values, {!consume} is
    the hand-rolled-parser building block the bench harness uses, and the
    {!doc_seed}-style strings plus {!default} feed the Cmdliner term
    definitions in the CLI, so help text and defaults cannot drift. *)

type t = {
  seed : int;  (** campaign seed (fault draws and batch order) *)
  faults : int option;
      (** campaign size / maximum fault supply; [None] = caller default *)
  ci : float option;
      (** target CI half-width on the SDC rate; [None] = fixed count *)
  confidence : float;  (** confidence level of the stopping interval *)
  batch : int;  (** faults per sequential batch of the stopping loop *)
  jobs : int option;  (** worker domains; [None] = leave pool untouched *)
  forensics : bool;  (** record per-fault lifecycles and attribution *)
}

val default : t
(** Seed 7, confidence 0.95, batch 32 — the defaults every entry point
    shares ([faults], [ci] and [jobs] unset). *)

val consume : t -> string list -> (t * string list) option
(** [consume t args] recognizes one leading
    [--seed N | --faults N | --ci W | --confidence C | --batch B |
    --jobs N] pair (or the bare [--forensics] flag) and returns the
    updated record plus the remaining arguments; [None] when the head is
    not one of these flags (the caller's own parser proceeds). Malformed
    values raise [Failure] with the flag name. *)

val usage : string
(** One-line usage fragment listing the shared flags. *)

val apply_jobs : t -> unit
(** Install [t.jobs] as the pool width via
    {!Parallel.set_default_jobs}; no-op when unset. *)

val stopping : ?default:Turnpike_resilience.Verifier.stopping -> t -> Turnpike_resilience.Verifier.stopping option
(** The sequential-stopping rule these arguments select: [Some] exactly
    when [--ci] was given, with confidence and batch applied over
    [default] ({!Turnpike_resilience.Verifier.default_stopping} if
    omitted). *)

(** {1 Doc strings shared with the Cmdliner front end} *)

val doc_seed : string
val doc_faults : string
val doc_ci : string
val doc_confidence : string
val doc_batch : string
val doc_jobs : string
val doc_forensics : string
