(* One driver per table/figure of the paper's evaluation (§6). Each driver
   returns structured rows; the bench harness renders them. Benchmarks and
   schemes come from the shared suite, so a single compile+trace per
   (benchmark, compile-config) is reused across machines and WCDLs.

   Every driver submits its full (benchmark × config) grid to the
   Parallel work pool; Run's domain-safe cache deduplicates compiles
   across workers, and the pool's index-ordered results keep rows
   byte-identical at any --jobs count. *)

module Suite = Turnpike_workloads.Suite
module Sim_stats = Turnpike_arch.Sim_stats
module Static_stats = Turnpike_compiler.Static_stats
module Sensor = Turnpike_arch.Sensor
module Cost_model = Turnpike_arch.Cost_model
module Clq = Turnpike_arch.Clq

(* The run configuration is Run.params itself (re-exported so the record
   fields are in scope here and for the harness): drivers pin the knobs a
   figure mandates with [{ params with ... }] and inherit the rest. *)
type params = Run.params = {
  scale : int;
  fuel : int;
  wcdl : int;
  sb_size : int;
  baseline_sb : int;
}

let default_params = Run.default_params

let benchmarks () = Suite.all ()

let spec_benchmarks () =
  List.filter
    (fun b -> b.Suite.suite = Suite.Cpu2006 || b.Suite.suite = Suite.Cpu2017)
    (Suite.all ())

(* ------------------------------------------------------------------ *)
(* Fig 4: checkpoint ratio (dynamic checkpoints / dynamic instructions)
   when the partitioner targets a 40-entry versus a 4-entry SB. *)

type fig4_row = { bench : string; ratio_sb40 : float; ratio_sb4 : float }

let fig4 ?(params = default_params) () =
  Parallel.grid ~items:(spec_benchmarks ()) ~configs:[ 40; 4 ]
    (fun b sb_size ->
      let c = Run.compile_with { params with sb_size } Scheme.turnstile b in
      let t = c.Run.trace in
      let n = Turnpike_ir.Trace.num_instructions t in
      if n = 0 then 0.0
      else float_of_int (Turnpike_ir.Trace.num_ckpts t) /. float_of_int n)
  |> List.map (fun (b, ratios) ->
         {
           bench = Suite.qualified_name b;
           ratio_sb40 = List.assoc 40 ratios;
           ratio_sb4 = List.assoc 4 ratios;
         })

(* ------------------------------------------------------------------ *)
(* Figs 14/15: ideal (infinite CAM) vs compact (2-entry range) CLQ, with
   only WAR-free checking + hardware coloring enabled (no compiler
   optimizations), 10-cycle WCDL. *)

type clq_design_row = {
  bench : string;
  overhead_ideal : float;
  overhead_compact : float;
  war_free_ideal : float; (* ratio of WAR-free released stores, Fig 15 *)
  war_free_compact : float;
}

let clq_axis =
  Sweep.axis ~name:"clq"
    ~show:(function
      | Clq.Ideal -> "ideal"
      | Clq.Compact n -> Printf.sprintf "compact%d" n)
    [ Clq.Ideal; Clq.Compact 2 ]

let fig14_15 ?(params = default_params) () =
  Sweep.grid ~items:(benchmarks ()) ~axis:clq_axis
    (fun b clq ->
      let scheme = Scheme.with_clq Scheme.fast_release (Some clq) in
      Run.normalized_with { params with wcdl = 10 } scheme b)
  |> List.map (fun (b, results) ->
         match results with
         | [ (_, (ov_i, r_i)); (_, (ov_c, r_c)) ] ->
           {
             bench = Suite.qualified_name b;
             overhead_ideal = ov_i;
             overhead_compact = ov_c;
             war_free_ideal = Sim_stats.war_free_ratio r_i.Run.stats;
             war_free_compact = Sim_stats.war_free_ratio r_c.Run.stats;
           }
         | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Fig 18: sensor count vs detection latency for three clock rates. *)

type fig18_row = { sensors : int; dl_2_0ghz : int; dl_2_5ghz : int; dl_3_0ghz : int }

let fig18 () =
  let counts = [ 10; 20; 30; 50; 75; 100; 150; 200; 300 ] in
  List.map
    (fun n ->
      let dl f = Sensor.wcdl (Sensor.create ~num_sensors:n ~clock_ghz:f ()) in
      { sensors = n; dl_2_0ghz = dl 2.0; dl_2_5ghz = dl 2.5; dl_3_0ghz = dl 3.0 })
    counts

(* ------------------------------------------------------------------ *)
(* Figs 19/20: overhead across WCDL 10..50 for Turnpike / Turnstile. *)

type wcdl_sweep_row = { bench : string; overheads : (int * float) list }

let wcdls = [ 10; 20; 30; 40; 50 ]
let wcdl_axis = Sweep.ints ~name:"wcdl" wcdls

let wcdl_sweep ?(params = default_params) scheme =
  Sweep.grid ~items:(benchmarks ()) ~axis:wcdl_axis
    (fun b wcdl -> fst (Run.normalized_with { params with wcdl } scheme b))
  |> List.map (fun (b, overheads) ->
         { bench = Suite.qualified_name b; overheads })

let fig19 ?params () = wcdl_sweep ?params Scheme.turnpike
let fig20 ?params () = wcdl_sweep ?params Scheme.turnstile

(* ------------------------------------------------------------------ *)
(* Fig 21: the ablation ladder at 10-cycle WCDL. *)

type fig21_row = { bench : string; by_scheme : (string * float) list }

let ladder_at ~params ~wcdl () =
  Parallel.grid ~items:(benchmarks ()) ~configs:Scheme.ladder
    (fun b s -> fst (Run.normalized_with { params with wcdl } s b))
  |> List.map (fun (b, by) ->
         {
           bench = Suite.qualified_name b;
           by_scheme = List.map (fun (s, ov) -> (s.Scheme.name, ov)) by;
         })

let fig21 ?(params = default_params) () = ladder_at ~params ~wcdl:10 ()

(* Extension: the ablation ladder at 50-cycle WCDL. The paper only shows
   the ladder at WCDL=10, where hardware fast release dominates; at longer
   detection latencies the compiler rungs (fewer stores to verify) carry
   more of the win, which this sweep exposes. *)
let fig21_wcdl ?(params = default_params) ~wcdl () = ladder_at ~params ~wcdl ()

(* ------------------------------------------------------------------ *)
(* Fig 22: SB-size sensitivity at 10-cycle WCDL. Note the overhead is
   always normalized against the baseline machine with the SAME SB size,
   as in the paper. *)

type fig22_row = { bench : string; by_config : (string * float) list }

let fig22_configs =
  List.map (fun sb -> (Printf.sprintf "turnpike-sb%d" sb, Scheme.turnpike, sb)) [ 4; 8; 10 ]
  @ List.map
      (fun sb -> (Printf.sprintf "turnstile-sb%d" sb, Scheme.turnstile, sb))
      [ 8; 10; 20; 30; 40 ]

let fig22 ?(params = default_params) () =
  Parallel.grid ~items:(benchmarks ()) ~configs:fig22_configs
    (fun b (_, scheme, sb) ->
      fst
        (Run.normalized_with
           { params with wcdl = 10; sb_size = sb; baseline_sb = sb }
           scheme b))
  |> List.map (fun (b, by) ->
         {
           bench = Suite.qualified_name b;
           by_config = List.map (fun ((name, _, _), ov) -> (name, ov)) by;
         })

(* ------------------------------------------------------------------ *)
(* Fig 23: breakdown of all stores (of the unoptimized Turnstile binary)
   into the paper's categories. Eliminated categories are measured as
   dynamic-count differences down the optimization ladder; Colored /
   WAR-free / Others are measured on the full-Turnpike run. *)

type fig23_row = {
  bench : string;
  pruned : float;
  licm_eliminated : float;
  colored : float;
  war_free : float;
  ra_eliminated : float;
  ivm_eliminated : float;
  others : float;
}

let fig23 ?(params = default_params) () =
  (* One task per benchmark: the ladder walk inside is a data-dependent
     sequence, but distinct benchmarks are independent. *)
  Parallel.map_list
    (fun b ->
      let trace_of scheme =
        (Run.compile_with { params with sb_size = 4 } scheme b).Run.trace
      in
      let sbw t = float_of_int (Turnpike_ir.Trace.num_sb_writes t) in
      let ck t = float_of_int (Turnpike_ir.Trace.num_ckpts t) in
      let t_turnstile = trace_of Scheme.turnstile in
      let total = sbw t_turnstile in
      if total = 0.0 then
        {
          bench = Suite.qualified_name b;
          pruned = 0.0;
          licm_eliminated = 0.0;
          colored = 0.0;
          war_free = 0.0;
          ra_eliminated = 0.0;
          ivm_eliminated = 0.0;
          others = 0.0;
        }
      else begin
        (* Walk the ladder accumulating dynamic eliminations. *)
        let t_pruning = trace_of Scheme.fast_release_pruning in
        let t_licm = trace_of Scheme.plus_licm in
        let t_sched = trace_of Scheme.plus_sched in
        let t_ra = trace_of Scheme.plus_ra in
        let t_turnpike = trace_of Scheme.turnpike in
        let pruned = max 0.0 (ck t_turnstile -. ck t_pruning) in
        let licm_elim = max 0.0 (ck t_pruning -. ck t_licm) in
        let ra_elim = max 0.0 (sbw t_sched -. sbw t_ra) in
        let ivm_elim = max 0.0 (sbw t_ra -. sbw t_turnpike) in
        (* Final Turnpike machine run for the dynamic release classes. *)
        let r = Run.run_with { params with wcdl = 10 } Scheme.turnpike b in
        let colored = float_of_int r.Run.stats.Sim_stats.colored_released in
        let war_free = float_of_int r.Run.stats.Sim_stats.war_free_released in
        let others = float_of_int r.Run.stats.Sim_stats.quarantined in
        let pct x = 100.0 *. x /. total in
        (* The paper's figure is a stacked-to-100% breakdown of the
           original store population. The release classes are measured on
           the Turnpike binary, whose store count can drift slightly from
           (original - eliminated) — e.g. store-aware allocation reshuffles
           spill code — so they are normalized onto the remaining share. *)
        let eliminated = pct pruned +. pct licm_elim +. pct ra_elim +. pct ivm_elim in
        let remaining = max 0.0 (100.0 -. eliminated) in
        let class_sum = colored +. war_free +. others in
        let scale_class x =
          if class_sum <= 0.0 then 0.0 else remaining *. x /. class_sum
        in
        {
          bench = Suite.qualified_name b;
          pruned = pct pruned;
          licm_eliminated = pct licm_elim;
          colored = scale_class colored;
          war_free = scale_class war_free;
          ra_eliminated = pct ra_elim;
          ivm_eliminated = pct ivm_elim;
          others = scale_class others;
        }
      end)
    (benchmarks ())

(* ------------------------------------------------------------------ *)
(* Figs 24/25: dynamic CLQ occupancy, and 2- vs 4-entry CLQ overhead. *)

type fig24_row = { bench : string; mean_entries : float; max_entries : int }

let fig24 ?(params = default_params) () =
  Parallel.map_list
    (fun b ->
      let r = Run.run_with { params with wcdl = 10 } Scheme.turnpike b in
      {
        bench = Suite.qualified_name b;
        mean_entries = r.Run.stats.Sim_stats.clq_mean_populated;
        max_entries = r.Run.stats.Sim_stats.clq_max_populated;
      })
    (benchmarks ())

type fig25_row = { bench : string; overhead_clq2 : float; overhead_clq4 : float }

let fig25 ?(params = default_params) () =
  Parallel.grid ~items:(benchmarks ()) ~configs:[ 2; 4 ]
    (fun b n ->
      let scheme = Scheme.with_clq Scheme.turnpike (Some (Clq.Compact n)) in
      fst (Run.normalized_with { params with wcdl = 10 } scheme b))
  |> List.map (fun (b, by) ->
         {
           bench = Suite.qualified_name b;
           overhead_clq2 = List.assoc 2 by;
           overhead_clq4 = List.assoc 4 by;
         })

(* ------------------------------------------------------------------ *)
(* Fig 26: dynamic region size and static code-size increase. *)

type fig26_row = { bench : string; region_size : float; code_increase_pct : float }

let fig26 ?(params = default_params) () =
  Parallel.map_list
    (fun b ->
      let c = Run.compile_with { params with sb_size = 4 } Scheme.turnpike b in
      let t = c.Run.trace in
      let regions = max 1 (Turnpike_ir.Trace.num_boundaries t) in
      {
        bench = Suite.qualified_name b;
        region_size =
          float_of_int (Turnpike_ir.Trace.num_instructions t) /. float_of_int regions;
        code_increase_pct =
          Static_stats.code_size_increase c.Run.compiled.Run.Pass_pipeline.stats;
      })
    (benchmarks ())

(* ------------------------------------------------------------------ *)
(* Table 1: hardware cost. *)

let table1 () = Cost_model.table1 ()

(* ------------------------------------------------------------------ *)
(* The paper's motivating comparison (§1, §3): Turnstile is lightweight on
   an out-of-order core (the paper quotes ~8% on SPEC/MediaBench/SPLASH2)
   because its 40-entry store buffer absorbs the quarantine and dynamic
   scheduling hides checkpoint hazards, yet the same scheme costs 29-84%
   in order. Run the same Turnstile binary on both core models. *)

module Ooo = Turnpike_arch.Ooo_timing

type motivation_row = {
  bench : string;
  ooo_overhead : float; (* Turnstile on the OoO core *)
  inorder_overhead : float; (* Turnstile on the in-order core *)
}

let motivation ?(params = default_params) ?(wcdl = 10) () =
  let params = { params with wcdl; sb_size = 4 } in
  Parallel.map_list
    (fun b ->
      let c = Run.compile_with params Scheme.turnstile b in
      let base = Run.compile_with params Scheme.baseline b in
      let ooo cfg trace = (Ooo.simulate cfg trace).Sim_stats.cycles in
      let ooo_overhead =
        float_of_int (ooo (Ooo.turnstile_config ~wcdl ()) c.Run.trace)
        /. float_of_int (max 1 (ooo Ooo.default_config base.Run.trace))
      in
      let inorder_overhead, _ = Run.normalized_with params Scheme.turnstile b in
      { bench = Suite.qualified_name b; ooo_overhead; inorder_overhead })
    (benchmarks ())

(* ------------------------------------------------------------------ *)
(* Extension ablation: loop unrolling as a region-size knob. SPEC loop
   bodies are large (often unrolled by -O3), so loop-carried registers are
   checkpointed once per *long* iteration; this repo's kernels are small,
   which amplifies checkpoint ratios and color-pool pressure. Sweeping the
   unroll factor on both schemes quantifies exactly that effect — the root
   cause of the documented deviations from the paper's absolute numbers. *)

type unroll_row = {
  bench : string;
  by_factor : (int * float * float) list; (* factor, turnstile, turnpike *)
}

let unroll_factors = [ 1; 2; 4 ]

let unroll_ablation ?(params = default_params) ?(wcdl = 50) () =
  Parallel.grid ~items:(benchmarks ()) ~configs:unroll_factors
    (fun b factor ->
      let overhead scheme factor =
        let opts =
          { (Scheme.compile_opts scheme ~sb_size:4) with Run.Pass_pipeline.unroll = factor }
        in
        let prog = b.Suite.build ~scale:params.scale in
        let compiled = Run.Pass_pipeline.compile ~opts prog in
        let trace, _ =
          Turnpike_ir.Interp.trace_run ~fuel:params.fuel compiled.Run.Pass_pipeline.prog
        in
        let machine = Scheme.machine scheme ~wcdl ~sb_size:4 in
        let cycles =
          (Turnpike_arch.Timing.simulate machine trace).Sim_stats.cycles
        in
        let base_opts =
          { (Scheme.compile_opts Scheme.baseline ~sb_size:4) with
            Run.Pass_pipeline.unroll = factor }
        in
        let base_compiled = Run.Pass_pipeline.compile ~opts:base_opts prog in
        let base_trace, _ =
          Turnpike_ir.Interp.trace_run ~fuel:params.fuel
            base_compiled.Run.Pass_pipeline.prog
        in
        let base_machine = Scheme.machine Scheme.baseline ~wcdl ~sb_size:4 in
        let base_cycles =
          (Turnpike_arch.Timing.simulate base_machine base_trace).Sim_stats.cycles
        in
        float_of_int cycles /. float_of_int (max 1 base_cycles)
      in
      (overhead Scheme.turnstile factor, overhead Scheme.turnpike factor))
  |> List.map (fun (b, by) ->
         {
           bench = Suite.qualified_name b;
           by_factor = List.map (fun (f, (ts, tp)) -> (f, ts, tp)) by;
         })

(* ------------------------------------------------------------------ *)
(* Beyond the paper's figures: per-benchmark energy of the resilience
   hardware. Each quarantined store costs two store-buffer CAM accesses
   (allocate + release), each colored checkpoint a color-map access, and
   each CLQ insertion/check a CLQ RAM access; per-access energies come from
   the Table 1 cost model. Turnpike trades expensive CAM activity for
   cheap RAM lookups — quantifying the paper's power-efficiency claim. *)

type energy_row = {
  bench : string;
  turnstile_pj_per_kinstr : float;
  turnpike_pj_per_kinstr : float;
}

let resilience_energy stats ~sb_size =
  let sb = (Cost_model.store_buffer ~entries:sb_size).Cost_model.energy_pj in
  let cmap = (Cost_model.color_maps ~nregs:32 ()).Cost_model.energy_pj in
  let clq = (Cost_model.clq ~entries:2).Cost_model.energy_pj in
  (2.0 *. float_of_int stats.Sim_stats.quarantined *. sb)
  +. (float_of_int stats.Sim_stats.colored_released *. cmap)
  +. (float_of_int (stats.Sim_stats.loads + Sim_stats.sb_writes stats) *. clq)

let energy ?(params = default_params) () =
  Parallel.grid ~items:(benchmarks ())
    ~configs:[ Scheme.turnstile; Scheme.turnpike ]
    (fun b scheme ->
      let r = Run.run_with { params with wcdl = 10 } scheme b in
      let e =
        match scheme.Scheme.clq with
        | None ->
          (* Turnstile has no CLQ and no color maps: only CAM traffic. *)
          2.0 *. float_of_int r.Run.stats.Sim_stats.quarantined
          *. (Cost_model.store_buffer ~entries:4).Cost_model.energy_pj
        | Some _ -> resilience_energy r.Run.stats ~sb_size:4
      in
      1000.0 *. e /. float_of_int (max 1 r.Run.stats.Sim_stats.instructions))
  |> List.map (fun (b, by) ->
         match by with
         | [ (_, ts); (_, tp) ] ->
           {
             bench = Suite.qualified_name b;
             turnstile_pj_per_kinstr = ts;
             turnpike_pj_per_kinstr = tp;
           }
         | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Beyond the paper's figures: an SDC-freedom fault-injection campaign,
   exercising the full recovery machinery (the property the whole design
   exists to provide). *)

module Recovery = Turnpike_resilience.Recovery
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier

type resilience_row = {
  bench : string;
  report : Verifier.campaign_report;
}

module Snapshot = Turnpike_resilience.Snapshot

(* Benchmarks are walked sequentially (compiles are cached and cheap next
   to a campaign); the fan-out happens per FAULT inside the verifier,
   where each task replays the interpreter under the recovery executor —
   the heaviest simulation work the pool carries. One fault-free pilot per
   benchmark records the snapshots every fault then forks from. *)
let campaign_over ?(params = default_params) ~f () =
  let params = { params with scale = max 1 (params.scale / 4); sb_size = 4 } in
  List.filter_map
    (fun b ->
      let c = Run.compile_with params Scheme.turnpike b in
      if not c.Run.trace.Turnpike_ir.Trace.complete then None
      else begin
        let plan = Snapshot.record c.Run.compiled in
        Some (Suite.qualified_name b, f c plan)
      end)
    (benchmarks ())

let resilience_campaign ?params ?(faults = 24) ?(seed = 7) () =
  campaign_over ?params () ~f:(fun c plan ->
      let campaign = Injector.campaign ~seed ~count:faults c.Run.trace in
      Verifier.run_campaign ~plan ~golden:c.Run.final ~compiled:c.Run.compiled
        campaign)
  |> List.map (fun (bench, report) -> { bench; report })

type resilience_ci_row = { ci_bench : string; ci : Verifier.ci_report }

let resilience_campaign_ci ?params ?(max_faults = 4096) ?(seed = 7)
    ?(stopping = Verifier.default_stopping) () =
  campaign_over ?params () ~f:(fun c plan ->
      let campaign = Injector.campaign ~seed ~count:max_faults c.Run.trace in
      Verifier.run_campaign_ci ~plan ~stopping ~golden:c.Run.final
        ~compiled:c.Run.compiled campaign)
  |> List.map (fun (ci_bench, ci) -> { ci_bench; ci })
