(** One driver per table/figure of the paper's evaluation (§6), plus a
    fault-injection SDC-freedom campaign that exercises the recovery
    machinery end to end. Each driver returns structured rows; the bench
    harness renders them. *)

module Suite = Turnpike_workloads.Suite
module Sensor = Turnpike_arch.Sensor
module Cost_model = Turnpike_arch.Cost_model
module Verifier = Turnpike_resilience.Verifier
module Clq = Turnpike_arch.Clq

type params = Run.params = {
  scale : int;
  fuel : int;
  wcdl : int;
  sb_size : int;
  baseline_sb : int;
}
(** Run configuration shared by every driver — {!Run.params} re-exported.
    Figure drivers pin the knobs their figure mandates (e.g. the paper's
    10-cycle WCDL) with [{ params with ... }] and inherit the rest. *)

val default_params : params

val benchmarks : unit -> Suite.entry list
val spec_benchmarks : unit -> Suite.entry list

(** {1 Fig 4 — checkpoint ratio vs store-buffer size} *)

type fig4_row = { bench : string; ratio_sb40 : float; ratio_sb4 : float }

val fig4 : ?params:params -> unit -> fig4_row list

(** {1 Figs 14/15 — ideal vs compact CLQ design} *)

type clq_design_row = {
  bench : string;
  overhead_ideal : float;
  overhead_compact : float;
  war_free_ideal : float;
  war_free_compact : float;
}

val clq_axis : Clq.design Sweep.axis
(** The ideal-vs-compact CLQ grid dimension ([ideal], [compact2]). *)

val fig14_15 : ?params:params -> unit -> clq_design_row list

(** {1 Fig 18 — detection latency vs sensor count} *)

type fig18_row = { sensors : int; dl_2_0ghz : int; dl_2_5ghz : int; dl_3_0ghz : int }

val fig18 : unit -> fig18_row list

(** {1 Figs 19/20 — overhead across WCDL 10..50} *)

type wcdl_sweep_row = { bench : string; overheads : (int * float) list }

val wcdls : int list

val wcdl_axis : int Sweep.axis
(** {!wcdls} as a declarative {!Sweep} dimension — the grid both WCDL
    figures sweep over. *)

val wcdl_sweep : ?params:params -> Scheme.t -> wcdl_sweep_row list
val fig19 : ?params:params -> unit -> wcdl_sweep_row list
val fig20 : ?params:params -> unit -> wcdl_sweep_row list

(** {1 Fig 21 — the optimization-ablation ladder} *)

type fig21_row = { bench : string; by_scheme : (string * float) list }

val fig21 : ?params:params -> unit -> fig21_row list

val fig21_wcdl : ?params:params -> wcdl:int -> unit -> fig21_row list
(** Extension of Fig 21: the ablation ladder at an arbitrary WCDL. At
    long detection latencies the compiler rungs (fewer stores to verify)
    carry more of the win than at the paper's 10-cycle point. *)

(** {1 Fig 22 — store-buffer size sensitivity} *)

type fig22_row = { bench : string; by_config : (string * float) list }

val fig22_configs : (string * Scheme.t * int) list
val fig22 : ?params:params -> unit -> fig22_row list

(** {1 Fig 23 — store breakdown} *)

type fig23_row = {
  bench : string;
  pruned : float;
  licm_eliminated : float;
  colored : float;
  war_free : float;
  ra_eliminated : float;
  ivm_eliminated : float;
  others : float;
}

val fig23 : ?params:params -> unit -> fig23_row list

(** {1 Figs 24/25 — CLQ occupancy and size sensitivity} *)

type fig24_row = { bench : string; mean_entries : float; max_entries : int }

val fig24 : ?params:params -> unit -> fig24_row list

type fig25_row = { bench : string; overhead_clq2 : float; overhead_clq4 : float }

val fig25 : ?params:params -> unit -> fig25_row list

(** {1 Fig 26 — region size and code-size increase} *)

type fig26_row = { bench : string; region_size : float; code_increase_pct : float }

val fig26 : ?params:params -> unit -> fig26_row list

(** {1 Table 1 — hardware cost} *)

val table1 : unit -> Cost_model.table1_row list

(** {1 The motivating OoO/in-order comparison (paper §1, §3)} *)

type motivation_row = {
  bench : string;
  ooo_overhead : float;  (** Turnstile on the out-of-order core *)
  inorder_overhead : float;  (** Turnstile on the in-order core *)
}

val motivation : ?params:params -> ?wcdl:int -> unit -> motivation_row list
(** The same Turnstile binary on both core models: the 40-entry SB and
    dynamic scheduling make verification cheap out of order (paper quotes
    ~8%), while the 4-entry in-order SB makes it expensive — the gap the
    whole paper exists to close. *)

(** {1 Unrolling ablation (beyond the paper's figures)} *)

type unroll_row = {
  bench : string;
  by_factor : (int * float * float) list;
      (** (factor, turnstile overhead, turnpike overhead) *)
}

val unroll_factors : int list

val unroll_ablation : ?params:params -> ?wcdl:int -> unit -> unroll_row list
(** Sweep the -O3-style unroll factor on both schemes (baseline re-unrolled
    identically): larger loop bodies lower checkpoint density and color-pool
    pressure — the region-size effect behind this repo's deviations from
    the paper's absolute numbers. Default WCDL 50, where the effect is
    largest. *)

(** {1 Resilience-hardware energy (beyond the paper's figures)} *)

type energy_row = {
  bench : string;
  turnstile_pj_per_kinstr : float;
  turnpike_pj_per_kinstr : float;
}

val energy : ?params:params -> unit -> energy_row list
(** Dynamic energy spent in the resilience structures (SB CAM quarantine
    traffic vs CLQ/color-map RAM lookups) per thousand instructions, using
    the Table 1 per-access model — quantifying the paper's
    power-efficiency motivation. *)

(** {1 Fault-injection campaign (beyond the paper's figures)} *)

type resilience_row = { bench : string; report : Verifier.campaign_report }

val resilience_campaign :
  ?params:params -> ?faults:int -> ?seed:int -> unit -> resilience_row list
(** Inject single-bit faults across each (completed) benchmark trace and
    verify every run recovers to the golden output — SDC-freedom. Each
    benchmark runs one fault-free pilot recording executor snapshots; every
    fault forks from the snapshot nearest its strike site (byte-identical
    to a from-scratch replay, at O(suffix) cost). *)

type resilience_ci_row = { ci_bench : string; ci : Verifier.ci_report }

val resilience_campaign_ci :
  ?params:params ->
  ?max_faults:int ->
  ?seed:int ->
  ?stopping:Verifier.stopping ->
  unit ->
  resilience_ci_row list
(** Like {!resilience_campaign}, but with sequential stopping: per
    benchmark, seeded faults (at most [max_faults] distinct ones) are
    consumed in batches until the Wilson confidence interval on the SDC
    rate reaches [stopping.half_width]. Deterministic at any job count. *)
