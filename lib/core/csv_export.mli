(** CSV rendering of experiment rows for downstream plotting
    (`bench --csv DIR` writes one file per experiment). *)

val write : path:string -> header:string list -> string list list -> unit

val fig4 : path:string -> Experiments.fig4_row list -> unit
val fig14_15 : path:string -> Experiments.clq_design_row list -> unit
val fig18 : path:string -> Experiments.fig18_row list -> unit

val wcdl_sweep : path:string -> Experiments.wcdl_sweep_row list -> unit
(** Figs 19/20: one column per WCDL. *)

val ladder : path:string -> Experiments.fig21_row list -> unit
(** Fig 21 (and its WCDL-50 extension): one column per scheme. *)

val fig23 : path:string -> Experiments.fig23_row list -> unit
val fig26 : path:string -> Experiments.fig26_row list -> unit

val explore_grid : path:string -> Explore.report -> unit
(** Every grid point of an exploration, in grid enumeration order: axis
    columns ({!Design_point.csv_header}), survival depth, and the
    objectives from the deepest budget the point reached. *)

val explore_pareto : path:string -> Explore.report -> unit
(** The Pareto-optimal subset only, same columns and order. *)

val forensics_records :
  path:string -> Turnpike_resilience.Forensics.record list -> unit
(** One row per injected fault, in fault order: the draw, the outcome
    class and the lifecycle landmarks (site, region, detection kind and
    latency, rewind, sink drops). *)

val forensics_table :
  path:string -> Turnpike_resilience.Forensics.table -> unit
(** One ranked attribution table (by_site / by_register / by_region):
    class counts and the derated vulnerability per key, most dangerous
    first. *)

val forensics :
  dir:string ->
  Turnpike_resilience.Forensics.record list ->
  Turnpike_resilience.Forensics.summary ->
  unit
(** The full forensic artifact set under [dir]: [forensics_faults.csv]
    plus the three attribution tables. Byte-identical at any [--jobs]
    count and across fork vs scratch replay. *)

val vuln_table : path:string -> Lint.vuln_csv_row list -> unit
(** One static vulnerability table axis: a [benchmark,key] row per
    ranked key with one score column per scheme. Reuses the sweep
    writers' missing-column tolerance ([columns_of]): a key a scheme
    never ranks (regions differ across rungs) renders as "nan" rather
    than losing the file. No-op on empty input. *)

val vuln : dir:string -> Lint.vuln_report -> unit
(** The full static artifact set under [dir]: [vuln_by_site.csv],
    [vuln_by_register.csv], [vuln_by_region.csv]. Deterministic at any
    [--jobs] count. *)
