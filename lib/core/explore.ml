(* Successive-halving design-space exploration. Scoring is split in two
   deterministic passes per budget rung: timing simulation fans out over
   (point x benchmark) on the domain pool, while fault campaigns are
   walked sequentially per campaign key (the verifier fans out per fault
   internally — same structure as Experiments.campaign_over, which avoids
   nesting domain pools) and shared across points a campaign cannot
   distinguish (the core model, the color-pool width). *)

module Suite = Turnpike_workloads.Suite
module Sim_stats = Turnpike_arch.Sim_stats
module Machine_model = Turnpike_arch.Machine_model
module Cost_model = Turnpike_arch.Cost_model
module Sensor = Turnpike_arch.Sensor
module Clq = Turnpike_arch.Clq
module Recovery = Turnpike_resilience.Recovery
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier
module Snapshot = Turnpike_resilience.Snapshot
module Forensics = Turnpike_resilience.Forensics
module Trace = Turnpike_ir.Trace
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Analysis = Turnpike_analysis

type objectives = {
  overhead : float;
  area_um2 : float;
  energy_pj_per_kinstr : float;
  sdc_rate : float;
  faults : int;
}

let objective_vector o =
  [| o.overhead; o.area_um2; o.energy_pj_per_kinstr; o.sdc_rate |]

type budget = {
  label : string;
  scale : int;
  fuel : int;
  max_faults : int;
  ci_half_width : float;
}

let budgets_for (params : Run.params) =
  [
    {
      label = "proxy";
      scale = max 1 (params.Run.scale / 4);
      fuel = max 20_000 (params.Run.fuel / 8);
      max_faults = 8;
      ci_half_width = 0.25;
    };
    {
      label = "mid";
      scale = max 1 (params.Run.scale / 2);
      fuel = max 40_000 (params.Run.fuel / 4);
      max_faults = 32;
      ci_half_width = 0.10;
    };
    {
      label = "full";
      scale = params.Run.scale;
      fuel = params.Run.fuel;
      max_faults = 64;
      ci_half_width = 0.05;
    };
  ]

let default_benches () =
  List.filter_map
    (fun (suite, name) -> Suite.find ~suite ~name)
    [
      (Suite.Cpu2006, "libquan");
      (Suite.Cpu2006, "mcf");
      (Suite.Splash3, "radix");
    ]

(* ------------------------------------------------------------------ *)
(* Static area and per-run dynamic energy of a point's hardware. *)

let nregs = 32

let area_um2 (p : Design_point.t) =
  let sb = (Cost_model.store_buffer ~entries:p.Design_point.sb_entries).Cost_model.area_um2 in
  let clq =
    match Design_point.clq_design p with
    | Some (Clq.Compact n) -> (Cost_model.clq ~entries:n).Cost_model.area_um2
    | Some Clq.Ideal | None -> 0.0
  in
  let cmap =
    if p.Design_point.color_bits > 0 then
      (Cost_model.color_maps ~colors:(1 lsl p.Design_point.color_bits) ~nregs ())
        .Cost_model.area_um2
    else 0.0
  in
  let sensor = Sensor.create ~num_sensors:p.Design_point.sensors ~clock_ghz:Design_point.clock_ghz () in
  let sensors =
    Sensor.area_overhead_percent sensor /. 100.0 *. 1.0e6 (* of the 1mm^2 die *)
  in
  sb +. clq +. cmap +. sensors

let dynamic_energy_pj (p : Design_point.t) (stats : Sim_stats.t) =
  let sb = (Cost_model.store_buffer ~entries:p.Design_point.sb_entries).Cost_model.energy_pj in
  let cam = 2.0 *. float_of_int stats.Sim_stats.quarantined *. sb in
  let cmap =
    if p.Design_point.color_bits > 0 then
      float_of_int stats.Sim_stats.colored_released
      *. (Cost_model.color_maps ~colors:(1 lsl p.Design_point.color_bits) ~nregs ())
           .Cost_model.energy_pj
    else 0.0
  in
  let clq =
    match Design_point.clq_design p with
    | Some (Clq.Compact n) ->
      float_of_int (stats.Sim_stats.loads + Sim_stats.sb_writes stats)
      *. (Cost_model.clq ~entries:n).Cost_model.energy_pj
    | Some Clq.Ideal | None -> 0.0
  in
  cam +. cmap +. clq

(* ------------------------------------------------------------------ *)
(* Per-budget evaluation. *)

let run_params (_params : Run.params) budget (p : Design_point.t) =
  {
    Run.scale = budget.scale;
    fuel = budget.fuel;
    wcdl = Design_point.wcdl p;
    sb_size = p.Design_point.sb_entries;
    baseline_sb = p.Design_point.sb_entries;
  }

(* Timing + energy of one (point, benchmark) pair: overhead against the
   unprotected baseline of the same core at the same SB depth. [None]
   when the baseline trace is degenerate (zero simulated cycles). *)
let timing_of ~params ~budget (p : Design_point.t) b =
  let bp = run_params params budget p in
  let c = Run.compile_with bp p.Design_point.rung b in
  let base = Run.compile_with bp Scheme.baseline b in
  let stats = Machine_model.simulate (Design_point.machine_model p) c.Run.trace in
  let bstats =
    Machine_model.simulate (Design_point.baseline_model p) base.Run.trace
  in
  if bstats.Sim_stats.cycles <= 0 then None
  else
    Some
      ( float_of_int stats.Sim_stats.cycles /. float_of_int bstats.Sim_stats.cycles,
        1000.0 *. dynamic_energy_pj p stats
        /. float_of_int (max 1 stats.Sim_stats.instructions) )

(* A fault campaign only observes the binary (rung, SB depth), the
   functional recovery configuration (CLQ, coloring on/off, WCDL) and the
   trace window — not the core's timing model or the color-pool width.
   Points that agree on this key share one campaign. *)
type campaign_key = {
  rung : Scheme.t;
  sb : int;
  clq_entries : int;
  colored : bool;
  sensors : int;
}

let campaign_key (p : Design_point.t) =
  {
    rung = p.Design_point.rung;
    sb = p.Design_point.sb_entries;
    clq_entries = p.Design_point.clq_entries;
    colored = p.Design_point.color_bits > 0;
    sensors = p.Design_point.sensors;
  }

(* A representative point of the key, for the config lowerings. *)
let key_point k : Design_point.t =
  {
    Design_point.core = Design_point.In_order;
    sb_entries = k.sb;
    clq_entries = k.clq_entries;
    color_bits = (if k.colored then 2 else 0);
    sensors = k.sensors;
    rung = k.rung;
  }

(* Campaigns run on shortened traces (quarter scale of the budget, as the
   resilience experiments do): each fault forks the recovery executor
   from the nearest snapshot, and the verifier's sequential stopping rule
   keeps the consumed fault count deterministic at any job count. *)
let run_campaign ~params ~budget ~seed ~forensics key b =
  let p = key_point key in
  let bp = run_params params budget p in
  let bp = { bp with Run.scale = max 1 (bp.Run.scale / 4) } in
  let c = Run.compile_with bp key.rung b in
  if not c.Run.trace.Trace.complete then (0, 0, [])
  else begin
    let config = Design_point.recovery_config p ~fuel:Recovery.default_config.Recovery.fuel in
    let plan = Snapshot.record ~config c.Run.compiled in
    let faults = Injector.campaign ~seed ~count:budget.max_faults c.Run.trace in
    let stopping =
      {
        Verifier.half_width = budget.ci_half_width;
        confidence = 0.95;
        batch = max 1 (min 8 budget.max_faults);
        min_faults = min budget.max_faults 16;
      }
    in
    (* With forensics, the same CI loop runs with one lifecycle sink per
       fault: sinks never influence outcomes, so the (sdc, total) pair —
       and therefore promotion and validation — is identical either way. *)
    let ci, records =
      if forensics then
        let records, ci =
          Forensics.campaign_ci ~config ~plan ~stopping ~golden:c.Run.final
            ~compiled:c.Run.compiled faults
        in
        (ci, records)
      else
        ( Verifier.run_campaign_ci ~config ~plan ~stopping ~golden:c.Run.final
            ~compiled:c.Run.compiled faults,
          [] )
    in
    (ci.Verifier.report.Verifier.sdc, ci.Verifier.report.Verifier.total, records)
  end

(* Score every live point under one budget. Two passes: timing on the
   domain pool, then one campaign per distinct key (first-appearance
   order). Returns (point, objectives) in the input (grid) order. *)
let score_batch ?(forensics = false) ~benches ~params ~budget ~seed points =
  let timing =
    Parallel.grid ~items:points ~configs:benches (fun p b ->
        timing_of ~params ~budget p b)
  in
  let keys =
    List.fold_left
      (fun acc p ->
        let k = campaign_key p in
        if List.mem k acc then acc else k :: acc)
      [] points
    |> List.rev
  in
  let campaigns =
    if budget.max_faults <= 0 then []
    else
      List.map
        (fun k ->
          let by =
            if not k.rung.Scheme.resilient then (0, 0, [])
            else
              List.fold_left
                (fun (sdc, total, records) b ->
                  let s, t, r = run_campaign ~params ~budget ~seed ~forensics k b in
                  (sdc + s, total + t, records @ r))
                (0, 0, []) benches
          in
          (k, by))
        keys
  in
  (* One attribution rollup per campaign key (shared, like the campaign
     itself, by every point the campaign cannot distinguish). *)
  let rollups =
    List.map
      (fun (k, (_, _, records)) ->
        ( k,
          if forensics && records <> [] then
            Some (Forensics.summarize ~rung:k.rung.Scheme.name records)
          else None ))
      campaigns
  in
  List.map
    (fun (p, by_bench) ->
      let measured = List.filter_map snd by_bench in
      let overhead = Report.geomean (List.map fst measured) in
      let energy = Report.arith_mean (List.map snd measured) in
      let sdc, faults =
        match List.assoc_opt (campaign_key p) campaigns with
        | Some (s, t, _) -> (s, t)
        | None -> (0, 0)
      in
      let sdc_rate =
        if faults > 0 then float_of_int sdc /. float_of_int faults else 0.0
      in
      ( p,
        {
          overhead;
          area_um2 = area_um2 p;
          energy_pj_per_kinstr = energy;
          sdc_rate;
          faults;
        },
        Option.join (List.assoc_opt (campaign_key p) rollups) ))
    timing

let score ~benches ~params ~budget ~seed p =
  match score_batch ~benches ~params ~budget ~seed [ p ] with
  | [ (_, o, _) ] -> o
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Static rung 0: the zero-campaign proxy. Points are scored by the
   static ACE/AVF analysis alone — compile the rung, no trace, no
   machine simulation, no fault — so a grid can be halved before the
   first simulated cycle. The static analysis observes only the binary
   and the detection latency, so points sharing (rung, SB depth, WCDL)
   share one evaluation, exactly as campaigns share keys. Like the
   campaign, the proxy is blind to the core's timing model; the
   simulated rungs that follow re-separate those points. *)

type static_key = { sk_rung : Scheme.t; sk_sb : int; sk_wcdl : int }

let static_key (p : Design_point.t) =
  {
    sk_rung = p.Design_point.rung;
    sk_sb = p.Design_point.sb_entries;
    sk_wcdl = Design_point.wcdl p;
  }

(* (static overhead proxy, predicted AVF) of one key: loop-weighted code
   growth against the unprotected baseline (geomean over benches) and
   the mean predicted AVF of the static vulnerability tables. *)
let static_score_key ~benches ~scale k =
  let per_bench =
    List.map
      (fun (b : Suite.entry) ->
        let compiled =
          Pass_pipeline.compile
            ~opts:(Scheme.compile_opts k.sk_rung ~sb_size:k.sk_sb)
            (b.Suite.build ~scale)
        in
        let base =
          Pass_pipeline.compile
            ~opts:(Scheme.compile_opts Scheme.baseline ~sb_size:k.sk_sb)
            (b.Suite.build ~scale)
        in
        let ctx =
          Analysis.Context.with_machine ~wcdl:k.sk_wcdl
            (Pass_pipeline.analysis_context compiled)
        in
        let v = Analysis.Vuln.compute ctx in
        let ws = Analysis.Vuln.weighted_size ctx in
        let wsb =
          Analysis.Vuln.weighted_size (Pass_pipeline.analysis_context base)
        in
        ( (if wsb > 0.0 then ws /. wsb else 1.0),
          v.Analysis.Vuln.predicted_avf ))
      benches
  in
  ( Report.geomean (List.map fst per_bench),
    Report.arith_mean (List.map snd per_bench) )

(* Score every point statically (one evaluation per distinct key, fanned
   over the pool in key order). Objectives mirror the simulated ones
   axis-for-axis so [promote] applies unchanged: overhead <- weighted
   code growth, sdc_rate <- predicted AVF, area is exact (it never
   needed simulation), energy is unknowable statically and scored 0 for
   every point (a tie contributes nothing to dominance). *)
let static_score_batch ~benches ~scale points =
  let keys =
    List.fold_left
      (fun acc p ->
        let k = static_key p in
        if List.mem k acc then acc else k :: acc)
      [] points
    |> List.rev
  in
  let scores =
    Parallel.map_list (fun k -> (k, static_score_key ~benches ~scale k)) keys
  in
  List.map
    (fun p ->
      let overhead, avf = List.assoc (static_key p) scores in
      ( p,
        {
          overhead;
          area_um2 = area_um2 p;
          energy_pj_per_kinstr = 0.0;
          sdc_rate = avf;
          faults = 0;
        },
        None ))
    points

(* ------------------------------------------------------------------ *)
(* Successive halving. *)

(* Keep the Pareto-best ceil(n/2) of the scored points: whole
   non-dominated layers first, grid order inside a layer — a total,
   deterministic preference that never depends on evaluation order. *)
let promote scored =
  let k = (List.length scored + 1) / 2 in
  let ranked =
    Pareto.rank ~objectives:(fun (_, o, _) -> objective_vector o) scored
  in
  let indexed = List.mapi (fun i ((p, _, _), layer) -> (i, layer, p)) ranked in
  let by_preference =
    List.stable_sort
      (fun (i, la, _) (j, lb, _) -> if la <> lb then compare la lb else compare i j)
      indexed
  in
  let chosen =
    List.filteri (fun rank _ -> rank < k) by_preference
    |> List.map (fun (i, _, _) -> i)
  in
  List.filteri (fun i _ -> List.mem i chosen) scored
  |> List.map (fun (p, _, _) -> p)

type point_result = {
  point : Design_point.t;
  objectives : objectives;
  budgets_survived : int;
  budget : string;
  full_scale : bool;
  on_frontier : bool;
  forensics : Forensics.summary option;
      (* attribution rollup of the point's (shared) campaign at the last
         budget it was scored under; deliberately OUTSIDE [objectives] so
         frontier re-validation still compares scalar objectives exactly *)
}

type report = {
  grid_size : int;
  results : point_result list;
  frontier : point_result list;
  evals_per_budget : (string * int) list;
  full_scale_evals : int;
  validated : bool;
  benches : string list;
  seed : int;
}

let run ?benches ?budgets ?(seed = 7) ?(params = Run.default_params)
    ?(forensics = false) ?(static_proxy = false) ~(spec : Design_point.spec)
    () =
  let benches = match benches with Some bs -> bs | None -> default_benches () in
  let budgets = match budgets with Some bs -> bs | None -> budgets_for params in
  if budgets = [] then invalid_arg "Explore.run: empty budget ladder";
  let points = Design_point.grid spec in
  let nb = List.length budgets in
  (* Latest evaluation of each point, keyed by its id. *)
  let state = Hashtbl.create (List.length points) in
  let evals = ref [] in
  let alive = ref points in
  (* Rung 0: halve the grid on the static estimate alone, before any
     simulation. Survivors enter the simulated ladder; pruned points
     keep their static objectives (budgets_survived = 0). *)
  if static_proxy && List.length points > 1 then begin
    let scale = (List.hd budgets).scale in
    let scored = static_score_batch ~benches ~scale points in
    evals := ("static", List.length scored) :: !evals;
    List.iter
      (fun (p, o, f) ->
        Hashtbl.replace state (Design_point.id p) (o, 0, "static", f))
      scored;
    alive := promote scored
  end;
  List.iteri
    (fun bi budget ->
      let scored = score_batch ~forensics ~benches ~params ~budget ~seed !alive in
      evals := (budget.label, List.length scored) :: !evals;
      List.iter
        (fun (p, o, f) ->
          Hashtbl.replace state (Design_point.id p) (o, bi + 1, budget.label, f))
        scored;
      alive :=
        if bi < nb - 1 && List.length scored > 1 then promote scored
        else List.map (fun (p, _, _) -> p) scored)
    budgets;
  let last_budget = List.nth budgets (nb - 1) in
  let survivors =
    List.map
      (fun p ->
        let o, _, _, _ = Hashtbl.find state (Design_point.id p) in
        (p, o))
      !alive
  in
  let frontier_pts =
    Pareto.frontier ~objectives:(fun (_, o) -> objective_vector o) survivors
    |> List.map fst
  in
  let on_frontier p =
    List.exists (fun q -> Design_point.id q = Design_point.id p) frontier_pts
  in
  let result_of p =
    let o, survived, label, forens = Hashtbl.find state (Design_point.id p) in
    {
      point = p;
      objectives = o;
      budgets_survived = survived;
      budget = label;
      full_scale = survived = nb;
      on_frontier = on_frontier p;
      forensics = forens;
    }
  in
  let results = List.map result_of points in
  let frontier = List.filter (fun r -> r.on_frontier) results in
  (* Re-validate the frontier: re-running the full-scale evaluation of a
     frontier point must reproduce its recorded objectives exactly. *)
  let validated =
    List.for_all
      (fun r ->
        score ~benches ~params ~budget:last_budget ~seed r.point = r.objectives)
      frontier
  in
  {
    grid_size = List.length points;
    results;
    frontier;
    evals_per_budget = List.rev !evals;
    full_scale_evals = List.length !alive;
    validated;
    benches = List.map Suite.qualified_name benches;
    seed;
  }
