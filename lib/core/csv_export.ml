(* CSV rendering of experiment rows for downstream plotting. One file per
   experiment; cells are numbers or plain identifiers, so no quoting is
   needed beyond comma-freedom (benchmark names contain none). *)

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows)

let f = Printf.sprintf "%.6f"

let fig4 ~path rows =
  write ~path ~header:[ "benchmark"; "ratio_sb40"; "ratio_sb4" ]
    (List.map
       (fun (r : Experiments.fig4_row) ->
         [ r.Experiments.bench; f r.Experiments.ratio_sb40; f r.Experiments.ratio_sb4 ])
       rows)

let fig14_15 ~path rows =
  write ~path
    ~header:
      [ "benchmark"; "overhead_ideal"; "overhead_compact"; "war_free_ideal";
        "war_free_compact" ]
    (List.map
       (fun (r : Experiments.clq_design_row) ->
         [ r.Experiments.bench; f r.Experiments.overhead_ideal;
           f r.Experiments.overhead_compact; f r.Experiments.war_free_ideal;
           f r.Experiments.war_free_compact ])
       rows)

let fig18 ~path rows =
  write ~path ~header:[ "sensors"; "dl_2_0ghz"; "dl_2_5ghz"; "dl_3_0ghz" ]
    (List.map
       (fun (r : Experiments.fig18_row) ->
         [ string_of_int r.Experiments.sensors; string_of_int r.Experiments.dl_2_0ghz;
           string_of_int r.Experiments.dl_2_5ghz; string_of_int r.Experiments.dl_3_0ghz ])
       rows)

(* Column keys for the sweep exports are collected across ALL rows (in
   first-appearance order), and a row missing a column emits "nan" instead
   of raising — a later row lacking a scheme/WCDL must not lose the file. *)
let columns_of rows keys_of =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
        acc (keys_of r))
    [] rows

let wcdl_sweep ~path rows =
  if rows = [] then ()
  else
  let wcdls =
    columns_of rows (fun r -> List.map fst r.Experiments.overheads)
  in
  write ~path
    ~header:("benchmark" :: List.map (Printf.sprintf "wcdl%d") wcdls)
    (List.map
       (fun (r : Experiments.wcdl_sweep_row) ->
         r.Experiments.bench
         :: List.map
              (fun w ->
                match List.assoc_opt w r.Experiments.overheads with
                | Some ov -> f ov
                | None -> "nan")
              wcdls)
       rows)

let ladder ~path rows =
  if rows = [] then ()
  else
  let names =
    columns_of rows (fun r -> List.map fst r.Experiments.by_scheme)
  in
  write ~path ~header:("benchmark" :: names)
    (List.map
       (fun (r : Experiments.fig21_row) ->
         r.Experiments.bench
         :: List.map
              (fun n ->
                match List.assoc_opt n r.Experiments.by_scheme with
                | Some ov -> f ov
                | None -> "nan")
              names)
       rows)

let fig23 ~path rows =
  write ~path
    ~header:
      [ "benchmark"; "pruned"; "licm"; "colored"; "war_free"; "ra"; "ivm"; "others" ]
    (List.map
       (fun (r : Experiments.fig23_row) ->
         [ r.Experiments.bench; f r.Experiments.pruned;
           f r.Experiments.licm_eliminated; f r.Experiments.colored;
           f r.Experiments.war_free; f r.Experiments.ra_eliminated;
           f r.Experiments.ivm_eliminated; f r.Experiments.others ])
       rows)

let fig26 ~path rows =
  write ~path ~header:[ "benchmark"; "region_size"; "code_increase_pct" ]
    (List.map
       (fun (r : Experiments.fig26_row) ->
         [ r.Experiments.bench; f r.Experiments.region_size;
           f r.Experiments.code_increase_pct ])
       rows)

(* ------------------------------------------------------------------ *)
(* Design-space explorer artifacts: the full grid with per-point scores
   and survival depth, and the Pareto-optimal subset. Both are emitted in
   grid enumeration order, so files are byte-identical at any job count. *)

let explore_header =
  Design_point.csv_header
  @ [
      "budgets_survived"; "budget"; "full_scale"; "overhead"; "area_um2";
      "energy_pj_per_kinstr"; "sdc_rate"; "faults"; "pareto";
    ]

let explore_row (r : Explore.point_result) =
  let o = r.Explore.objectives in
  Design_point.csv_cells r.Explore.point
  @ [
      string_of_int r.Explore.budgets_survived; r.Explore.budget;
      string_of_bool r.Explore.full_scale; f o.Explore.overhead;
      f o.Explore.area_um2; f o.Explore.energy_pj_per_kinstr;
      f o.Explore.sdc_rate; string_of_int o.Explore.faults;
      string_of_bool r.Explore.on_frontier;
    ]

let explore_grid ~path (report : Explore.report) =
  write ~path ~header:explore_header (List.map explore_row report.Explore.results)

let explore_pareto ~path (report : Explore.report) =
  write ~path ~header:explore_header (List.map explore_row report.Explore.frontier)

(* ------------------------------------------------------------------ *)
(* Forensic campaign artifacts: the per-fault record log and one ranked
   attribution table per key (site / register / region). Records are in
   fault order and tables in rank order — both total orders, so files are
   byte-identical at any job count and across fork vs scratch replay. *)

module Forensics = Turnpike_resilience.Forensics

let opt_str = function Some s -> s | None -> ""
let opt_int = function Some n -> string_of_int n | None -> ""

let forensics_records ~path records =
  write ~path
    ~header:
      [ "fault"; "reg"; "xor_mask"; "at_step"; "class"; "site"; "region";
        "detect_kind"; "detect_latency"; "rewind"; "dropped_events";
      ]
    (List.map
       (fun (r : Forensics.record) ->
         [ string_of_int r.Forensics.index;
           Turnpike_ir.Reg.to_string r.Forensics.fault.Turnpike_resilience.Fault.reg;
           string_of_int r.Forensics.fault.Turnpike_resilience.Fault.xor_mask;
           string_of_int r.Forensics.fault.Turnpike_resilience.Fault.at_step;
           Forensics.clazz_name r.Forensics.clazz; opt_str r.Forensics.site;
           opt_int r.Forensics.region; opt_str r.Forensics.detect_kind;
           opt_int r.Forensics.detect_latency; opt_int r.Forensics.rewind;
           string_of_int r.Forensics.dropped;
         ])
       records)

let forensics_table ~path table =
  write ~path
    ~header:
      [ "key"; "total"; "masked"; "detected"; "sdc"; "crashed";
        "vulnerability";
      ]
    (List.map
       (fun (r : Forensics.row) ->
         let c = r.Forensics.counts in
         [ r.Forensics.key; string_of_int (Forensics.counts_total c);
           string_of_int c.Forensics.masked; string_of_int c.Forensics.detected;
           string_of_int c.Forensics.sdc; string_of_int c.Forensics.crashed;
           f (Forensics.vulnerability c);
         ])
       table)

(* ------------------------------------------------------------------ *)
(* Static vulnerability tables (lint --vuln --csv): one file per axis,
   one column per scheme. Schemes region programs differently, so a key
   present under one scheme may be absent under another; [columns_of]'s
   missing-cell tolerance renders those "nan" exactly as in the
   ladder/wcdl sweeps. *)

let vuln_table ~path (rows : Lint.vuln_csv_row list) =
  if rows = [] then ()
  else
    let schemes = columns_of rows (fun r -> List.map fst r.Lint.vr_by_scheme) in
    write ~path
      ~header:([ "benchmark"; "key" ] @ schemes)
      (List.map
         (fun (r : Lint.vuln_csv_row) ->
           r.Lint.vr_benchmark :: r.Lint.vr_key
           :: List.map
                (fun s ->
                  match List.assoc_opt s r.Lint.vr_by_scheme with
                  | Some score -> f score
                  | None -> "nan")
                schemes)
         rows)

let vuln ~dir (report : Lint.vuln_report) =
  vuln_table
    ~path:(Filename.concat dir "vuln_by_site.csv")
    (Lint.vuln_csv_rows ~axis:`Site report);
  vuln_table
    ~path:(Filename.concat dir "vuln_by_register.csv")
    (Lint.vuln_csv_rows ~axis:`Register report);
  vuln_table
    ~path:(Filename.concat dir "vuln_by_region.csv")
    (Lint.vuln_csv_rows ~axis:`Region report)

let forensics ~dir records (s : Forensics.summary) =
  forensics_records ~path:(Filename.concat dir "forensics_faults.csv") records;
  forensics_table ~path:(Filename.concat dir "forensics_by_site.csv")
    s.Forensics.by_site;
  forensics_table
    ~path:(Filename.concat dir "forensics_by_register.csv")
    s.Forensics.by_register;
  forensics_table ~path:(Filename.concat dir "forensics_by_region.csv")
    s.Forensics.by_region
