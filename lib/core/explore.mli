(** Cross-layer design-space exploration with Pareto frontiers.

    The explorer walks a {!Design_point.spec} grid — core model,
    store-buffer depth, CLQ size, color-pool width, sensor deployment and
    compiler rung — and scores every point on four objectives (runtime
    overhead, area, dynamic resilience energy, campaign SDC rate), all to
    be minimized. Full-scale timing simulation and CI-stopped fault
    campaigns are expensive, so evaluation runs as successive halving:
    every point is scored under a cheap proxy budget (short traces, few
    faults, wide confidence target), then only the Pareto-best half is
    promoted to the next, costlier budget, until the survivors are scored
    at full scale. The final frontier is the Pareto-optimal set of the
    full-scale survivors, and each frontier point is re-validated by
    re-running its full-scale evaluation and comparing objectives.

    Everything is deterministic at any [--jobs] setting: grid enumeration
    order is fixed ({!Design_point.grid}), parallel fan-out is
    index-ordered ({!Parallel}), campaigns use seeded fault lists with
    sequential stopping ({!Turnpike_resilience.Verifier.run_campaign_ci}),
    and halving promotion breaks ties by grid position. *)

module Suite = Turnpike_workloads.Suite

(** {1 Objectives} *)

type objectives = {
  overhead : float;
      (** geomean over the benchmark set of cycles / unprotected-baseline
          cycles on the same core at the same SB depth *)
  area_um2 : float;
      (** resilience hardware area: SB CAM + CLQ RAM + color maps +
          sensor network share of the paper's 1mm{^ 2} die *)
  energy_pj_per_kinstr : float;
      (** mean dynamic energy of the resilience hardware per 1000
          instructions (CAM quarantine traffic vs. RAM fast-release
          lookups) *)
  sdc_rate : float;
      (** pooled silent-data-corruption rate over this point's fault
          campaigns ([0.0] when the budget runs no campaign) *)
  faults : int;  (** faults consumed by the campaigns behind [sdc_rate] *)
}

val objective_vector : objectives -> float array
(** The minimization vector [\[overhead; area; energy; sdc_rate\]] that
    {!Pareto} ranks on ([faults] is bookkeeping, not an objective). *)

(** {1 Evaluation budgets} *)

type budget = {
  label : string;
  scale : int;  (** workload scale of this rung's traces *)
  fuel : int;  (** interpreter step budget of this rung's traces *)
  max_faults : int;
      (** fault supply per campaign; [0] skips campaigns entirely *)
  ci_half_width : float;  (** Wilson-interval stopping target *)
}

val budgets_for : Run.params -> budget list
(** The default three-rung ladder derived from a full-scale operating
    point: a proxy rung at quarter scale with an eighth of the fuel and a
    token 8-fault campaign at ±0.25, a mid rung at half scale, and the
    full-scale rung with CI-stopped campaigns at ±0.05. *)

(** {1 Scoring} *)

val default_benches : unit -> Suite.entry list
(** The explorer's benchmark subset: libquan\@2006 (streaming stores),
    mcf\@2006 (pointer chasing) and radix (LIVM/LICM target) — one
    representative per behaviour class, so a grid sweep stays tractable. *)

val score :
  benches:Suite.entry list ->
  params:Run.params ->
  budget:budget ->
  seed:int ->
  Design_point.t ->
  objectives
(** Evaluate one design point under one budget: compile each benchmark
    under the point's rung (cached), simulate on the point's
    {!Design_point.machine_model} and its unprotected baseline, and run a
    CI-stopped fault campaign per benchmark under the point's
    {!Design_point.recovery_config}. Identical to the batched evaluation
    {!run} performs — re-scoring a point reproduces its objectives
    bit-for-bit. *)

(** {1 The explorer} *)

type point_result = {
  point : Design_point.t;
  objectives : objectives;  (** from the last budget this point reached *)
  budgets_survived : int;  (** how many budget rungs evaluated this point *)
  budget : string;  (** label of the last budget this point reached *)
  full_scale : bool;  (** reached the final budget rung *)
  on_frontier : bool;  (** member of the full-scale Pareto frontier *)
  forensics : Turnpike_resilience.Forensics.summary option;
      (** attribution rollup of the point's (shared) campaign at the last
          budget it was scored under — populated only when {!run} was
          given [~forensics:true]; kept outside {!objectives} so frontier
          re-validation still compares scalar objectives exactly *)
}

type report = {
  grid_size : int;
  results : point_result list;  (** every grid point, in grid order *)
  frontier : point_result list;  (** Pareto-optimal set, in grid order *)
  evals_per_budget : (string * int) list;
      (** points evaluated at each budget rung, in rung order *)
  full_scale_evals : int;  (** points that reached the final rung *)
  validated : bool;
      (** every frontier point's full-scale re-evaluation reproduced its
          recorded objectives exactly *)
  benches : string list;  (** qualified benchmark names scored over *)
  seed : int;
}

val run :
  ?benches:Suite.entry list ->
  ?budgets:budget list ->
  ?seed:int ->
  ?params:Run.params ->
  ?forensics:bool ->
  ?static_proxy:bool ->
  spec:Design_point.spec ->
  unit ->
  report
(** Explore [spec]'s grid by successive halving over [budgets] (default
    {!budgets_for}[ params]): score every live point at each rung, keep
    the Pareto-best ceil(n/2) — non-dominated layers first, grid order
    within a layer — and promote them to the next rung. Campaign work is
    shared across points that differ only in axes a campaign cannot
    observe (the core model), and the whole run is deterministic at any
    job count. With [forensics] (default false) every campaign records
    per-fault lifecycles and each {!point_result} carries the attribution
    rollup; sinks never influence outcomes, so scores, promotion and
    validation are unchanged.

    With [static_proxy] (default false) a zero-cost rung labelled
    ["static"] runs first: every point is scored by the static ACE/AVF
    analysis ({!Turnpike_analysis.Vuln}) — compile only, no trace,
    simulation or fault — with predicted AVF standing in for the SDC
    rate and loop-weighted code growth for the overhead, and the grid is
    halved before the first simulated cycle. One evaluation is shared
    per (rung, SB depth, WCDL), mirroring campaign-key sharing; pruned
    points report [budgets_survived = 0] and budget ["static"].
    Frontier re-validation is unchanged — it re-runs the full-scale
    simulated evaluation, so the proxy can only affect which points
    reach it, never the recorded objectives.
    @raise Invalid_argument when [budgets] is empty. *)
