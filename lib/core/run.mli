(** End-to-end driver: build a workload, compile it under a scheme, trace
    it, replay the trace on the scheme's machine, and report counters.
    Compilation and tracing are cached per (benchmark, scale, compile key):
    traces depend only on the binary, so one trace serves every WCDL /
    machine variation of a scheme.

    The cache is domain-safe and in-flight-latched: concurrent
    {!Parallel} workers asking for the same key block until the first
    worker publishes, so a binary is never compiled twice. *)

open Turnpike_ir
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Static_stats = Turnpike_compiler.Static_stats
module Sim_stats = Turnpike_arch.Sim_stats
module Suite = Turnpike_workloads.Suite

type compiled_run = {
  compiled : Pass_pipeline.t;
  trace : Trace.t;
  final : Interp.state;  (** architectural state at end of trace window *)
}

type result = {
  scheme : string;
  benchmark : string;
  stats : Sim_stats.t;
  static_stats : Static_stats.t;
  trace : Trace.t;
}

val default_scale : int
val default_fuel : int

type params = {
  scale : int;  (** workload scale factor (iteration multiplier) *)
  fuel : int;  (** interpreter step budget *)
  wcdl : int;  (** worst-case detection latency in cycles *)
  sb_size : int;  (** store-buffer entries (compile target and machine) *)
  baseline_sb : int;  (** store-buffer entries of the normalization baseline *)
}
(** The complete run configuration as one record. Drivers derive
    variations with [{ params with ... }] instead of threading five
    optional arguments through every call. *)

val default_params : params
(** [scale 8, fuel 400_000, wcdl 10, sb_size 4, baseline_sb 4] — the
    paper's default operating point. *)

val compile_with : params -> Scheme.t -> Suite.entry -> compiled_run

val run_with :
  ?tel:Turnpike_telemetry.sink -> params -> Scheme.t -> Suite.entry -> result
(** Compile (cached), trace (cached) and simulate. [tel] (default
    {!Turnpike_telemetry.null}) receives the simulation's cycle-stamped
    timeline (see {!Turnpike_arch.Timing.simulate}); compile spans are
    not routed here because a cache hit would skip them — profile
    compiles with {!Pass_pipeline.compile} directly. *)

val normalized_with : params -> Scheme.t -> Suite.entry -> float * result
(** Run baseline (at [baseline_sb]) and scheme, returning
    (overhead, result).
    @raise Degenerate_baseline if the baseline simulated 0 cycles. *)

val clear_cache : unit -> unit
(** Drop every cached compile/trace (forcing recompilation on the next
    {!compile_with}) and invalidate in-flight compilations: a worker
    that started compiling before the clear will complete but not publish
    its result. *)

exception Degenerate_baseline of string
(** Raised by {!overhead} when the baseline simulated zero cycles — an
    empty or truncated trace that would otherwise masquerade as "no
    overhead". The message names both runs. *)

val overhead : baseline:result -> result -> float
(** Normalized execution time (the paper's y-axis): cycles divided by the
    baseline run's cycles.
    @raise Degenerate_baseline if the baseline simulated 0 cycles. *)
