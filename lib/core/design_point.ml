(* One point of the cross-layer design space: every knob the explorer
   sweeps, with lowerings to the timing machine model (either core) and to
   the functional recovery executor (for fault campaigns). *)

module Machine = Turnpike_arch.Machine
module Machine_model = Turnpike_arch.Machine_model
module Ooo = Turnpike_arch.Ooo_timing
module Clq = Turnpike_arch.Clq
module Sensor = Turnpike_arch.Sensor
module Recovery = Turnpike_resilience.Recovery

type core = In_order | Out_of_order

let core_name = function In_order -> "inorder" | Out_of_order -> "ooo"

type t = {
  core : core;
  sb_entries : int;
  clq_entries : int;
  color_bits : int;
  sensors : int;
  rung : Scheme.t;
}

let id p =
  Printf.sprintf "%s/sb%d/clq%d/cb%d/s%d/%s" (core_name p.core) p.sb_entries
    p.clq_entries p.color_bits p.sensors p.rung.Scheme.name

let compare a b = Stdlib.compare (id a) (id b)

(* The paper's operating point: 2.5GHz clock, 1mm^2 die. *)
let clock_ghz = 2.5

let wcdl p = Sensor.wcdl (Sensor.create ~num_sensors:p.sensors ~clock_ghz ())

let clq_design p = if p.clq_entries <= 0 then None else Some (Clq.Compact p.clq_entries)

let machine_model p =
  let wcdl = wcdl p in
  match p.core with
  | In_order ->
    let m =
      {
        Machine.baseline with
        Machine.name = id p;
        sb_size = p.sb_entries;
        wcdl;
        verification = p.rung.Scheme.resilient;
        clq = clq_design p;
      }
    in
    Machine_model.In_order (Machine.with_color_bits m p.color_bits)
  | Out_of_order ->
    Machine_model.Out_of_order
      {
        Ooo.default_config with
        Ooo.sb_size = p.sb_entries;
        wcdl;
        verification = p.rung.Scheme.resilient;
      }

let baseline_model p =
  match p.core with
  | In_order ->
    Machine_model.In_order { Machine.baseline with Machine.sb_size = p.sb_entries }
  | Out_of_order ->
    Machine_model.Out_of_order
      { Ooo.default_config with Ooo.sb_size = p.sb_entries; verification = false }

let recovery_config p ~fuel =
  {
    Recovery.default_config with
    Recovery.verify_delay = wcdl p;
    coloring = p.color_bits > 0;
    clq = clq_design p;
    fuel;
  }

(* ------------------------------------------------------------------ *)

type spec = {
  cores : core Sweep.axis;
  sb_entries : int Sweep.axis;
  clq_entries : int Sweep.axis;
  color_bits : int Sweep.axis;
  sensors : int Sweep.axis;
  rungs : Scheme.t Sweep.axis;
}

let core_axis values = Sweep.axis ~name:"core" ~show:core_name values
let rung_axis values = Sweep.axis ~name:"rung" ~show:(fun (s : Scheme.t) -> s.Scheme.name) values

let default_spec =
  {
    cores = core_axis [ In_order; Out_of_order ];
    sb_entries = Sweep.ints ~name:"sb" [ 4; 8 ];
    clq_entries = Sweep.ints ~name:"clq" [ 0; 2 ];
    color_bits = Sweep.ints ~name:"color_bits" [ 0; 2 ];
    sensors = Sweep.ints ~name:"sensors" [ 100; 300 ];
    rungs = rung_axis [ Scheme.turnstile; Scheme.turnpike ];
  }

let tiny_spec =
  {
    cores = core_axis [ In_order; Out_of_order ];
    sb_entries = Sweep.ints ~name:"sb" [ 4 ];
    clq_entries = Sweep.ints ~name:"clq" [ 2 ];
    color_bits = Sweep.ints ~name:"color_bits" [ 2 ];
    sensors = Sweep.ints ~name:"sensors" [ 300 ];
    rungs = rung_axis [ Scheme.turnstile; Scheme.turnpike ];
  }

let wide_spec =
  {
    cores = core_axis [ In_order; Out_of_order ];
    sb_entries = Sweep.ints ~name:"sb" [ 4; 8; 16 ];
    clq_entries = Sweep.ints ~name:"clq" [ 0; 2; 4 ];
    color_bits = Sweep.ints ~name:"color_bits" [ 0; 1; 2 ];
    sensors = Sweep.ints ~name:"sensors" [ 100; 200; 300 ];
    rungs = rung_axis [ Scheme.turnstile; Scheme.fast_release; Scheme.turnpike ];
  }

let spec_of_string = function
  | "tiny" -> Ok tiny_spec
  | "default" -> Ok default_spec
  | "wide" -> Ok wide_spec
  | s -> Error (Printf.sprintf "unknown grid %s (tiny, default or wide)" s)

let grid spec =
  (* Cartesian product in axis order, cores-major and rungs-minor: the
     canonical enumeration order of every explorer artifact. *)
  List.concat_map
    (fun core ->
      List.concat_map
        (fun sb_entries ->
          List.concat_map
            (fun clq_entries ->
              List.concat_map
                (fun color_bits ->
                  List.concat_map
                    (fun sensors ->
                      List.map
                        (fun rung ->
                          { core; sb_entries; clq_entries; color_bits; sensors; rung })
                        spec.rungs.Sweep.values)
                    spec.sensors.Sweep.values)
                spec.color_bits.Sweep.values)
            spec.clq_entries.Sweep.values)
        spec.sb_entries.Sweep.values)
    spec.cores.Sweep.values

let csv_header = [ "core"; "sb"; "clq"; "color_bits"; "sensors"; "wcdl"; "rung" ]

let csv_cells p =
  [
    core_name p.core;
    string_of_int p.sb_entries;
    string_of_int p.clq_entries;
    string_of_int p.color_bits;
    string_of_int p.sensors;
    string_of_int (wcdl p);
    p.rung.Scheme.name;
  ]
