(* The resilience soundness lint over the (benchmark × scheme) grid.

   Compiles are issued fresh (never through the Run cache: cached binaries
   were compiled with checking off and carry no diagnostics) and fan out
   over the Parallel pool; results come back in task order, so the report
   is identical at any job count. *)

module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Machine = Turnpike_arch.Machine
module Clq = Turnpike_arch.Clq
module Analysis = Turnpike_analysis
module Suite = Turnpike_workloads.Suite
module Diag = Turnpike_analysis.Diag

type entry = {
  benchmark : string;
  scheme : string;
  diags : Diag.t list;
  check_log : (string * string list) list;
}

type report = {
  per_pass : bool;
  entries : entry list;
  errors : int;
  warnings : int;
  infos : int;
}

let lint_cell ?(per_pass = false) ?(full_recheck = false) ?(sb_size = 4)
    ?(scale = Run.default_scale) (scheme : Scheme.t) (bench : Suite.entry) =
  let prog = bench.Suite.build ~scale in
  let opts = Scheme.compile_opts scheme ~sb_size in
  let check =
    if not per_pass then Pass_pipeline.Final
    else if full_recheck then Pass_pipeline.PerPassFull
    else Pass_pipeline.PerPass
  in
  let compiled = Pass_pipeline.compile ~opts ~check prog in
  (* The pipeline knows nothing of the machine; graft the scheme's RBB
     depth and CLQ size on and rerun the registry for the capacity checks
     that want them. Findings already attributed to a pass keep their
     provenance — the machine pass only contributes what is new. *)
  let machine = Scheme.machine scheme ~wcdl:10 ~sb_size in
  let ctx =
    Analysis.Context.with_machine ~rbb_size:machine.Machine.rbb_size
      ?clq_entries:
        (match machine.Machine.clq with
        | Some (Clq.Compact n) -> Some n
        | Some Clq.Ideal | None -> None)
      ~wcdl:machine.Machine.wcdl
      (Pass_pipeline.analysis_context compiled)
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace seen (Diag.key d) ())
    compiled.Pass_pipeline.diags;
  let extra =
    Analysis.Registry.fresh ~seen (Analysis.Registry.run_whole ctx)
  in
  ( Diag.sort (compiled.Pass_pipeline.diags @ extra),
    compiled.Pass_pipeline.check_log )

let lint_one ?per_pass ?full_recheck ?sb_size ?scale scheme bench =
  fst (lint_cell ?per_pass ?full_recheck ?sb_size ?scale scheme bench)

let run ?(per_pass = false) ?full_recheck ?sb_size ?scale ?jobs ~schemes
    benches =
  let cells =
    List.concat_map
      (fun b -> List.map (fun s -> (b, s)) schemes)
      benches
  in
  let entries =
    Parallel.map_list ?jobs
      (fun ((b : Suite.entry), (s : Scheme.t)) ->
        let diags, check_log =
          lint_cell ~per_pass ?full_recheck ?sb_size ?scale s b
        in
        {
          benchmark = Suite.qualified_name b;
          scheme = s.Scheme.name;
          diags;
          check_log;
        })
      cells
  in
  let count sev =
    List.fold_left
      (fun acc e ->
        acc
        + List.length
            (List.filter (fun (d : Diag.t) -> d.Diag.severity = sev) e.diags))
      0 entries
  in
  {
    per_pass;
    entries;
    errors = count Diag.Error;
    warnings = count Diag.Warn;
    infos = count Diag.Info;
  }

let max_severity r =
  Diag.max_severity (List.concat_map (fun e -> e.diags) r.entries)

let to_text ?(explain = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      if explain && e.check_log <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "%s / %s: per-pass check schedule\n" e.benchmark
             e.scheme);
        List.iter
          (fun (pass, ran) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-26s %s\n" pass
                 (if ran = [] then "(all clean; every check skipped)"
                  else String.concat " " ran)))
          e.check_log
      end;
      if e.diags <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "%s / %s:\n" e.benchmark e.scheme);
        List.iter
          (fun d ->
            Buffer.add_string buf "  ";
            Buffer.add_string buf (Diag.to_string d);
            Buffer.add_char buf '\n')
          e.diags
      end)
    r.entries;
  Buffer.add_string buf
    (Printf.sprintf "lint: %d cells checked%s: %d error(s), %d warning(s), %d info\n"
       (List.length r.entries)
       (if r.per_pass then " (per-pass)" else "")
       r.errors r.warnings r.infos);
  Buffer.contents buf

(* ------------- static vulnerability report (lint --vuln) ------------- *)

type vuln_entry = {
  v_benchmark : string;
  v_scheme : string;
  vuln : Analysis.Vuln.t;
}

type vuln_report = { ventries : vuln_entry list }

let vuln_cell ?(sb_size = 4) ?(scale = Run.default_scale) ?(wcdl = 10)
    (scheme : Scheme.t) (bench : Suite.entry) =
  let prog = bench.Suite.build ~scale in
  let opts = Scheme.compile_opts scheme ~sb_size in
  let compiled = Pass_pipeline.compile ~opts prog in
  let machine = Scheme.machine scheme ~wcdl ~sb_size in
  let ctx =
    Analysis.Context.with_machine ~rbb_size:machine.Machine.rbb_size
      ?clq_entries:
        (match machine.Machine.clq with
        | Some (Clq.Compact n) -> Some n
        | Some Clq.Ideal | None -> None)
      ~wcdl:machine.Machine.wcdl
      (Pass_pipeline.analysis_context compiled)
  in
  Analysis.Vuln.compute ctx

let run_vuln ?sb_size ?scale ?wcdl ?jobs ~schemes benches =
  let cells =
    List.concat_map (fun b -> List.map (fun s -> (b, s)) schemes) benches
  in
  let ventries =
    Parallel.map_list ?jobs
      (fun ((b : Suite.entry), (s : Scheme.t)) ->
        {
          v_benchmark = Suite.qualified_name b;
          v_scheme = s.Scheme.name;
          vuln = vuln_cell ?sb_size ?scale ?wcdl s b;
        })
      cells
  in
  { ventries }

let vuln_to_text ?(top = 8) r =
  let buf = Buffer.create 1024 in
  let table title rows =
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "  %s\n" title);
      Buffer.add_string buf
        (Printf.sprintf "    %-24s %10s %10s\n" "key" "exposure" "score");
      List.iteri
        (fun i (row : Analysis.Vuln.row) ->
          if i < top then
            Buffer.add_string buf
              (Printf.sprintf "    %-24s %10.2f %10.4f\n" row.Analysis.Vuln.key
                 row.Analysis.Vuln.exposure row.Analysis.Vuln.score))
        rows
    end
  in
  List.iter
    (fun e ->
      let v = e.vuln in
      Buffer.add_string buf
        (Printf.sprintf
           "%s / %s: predicted AVF %.6f (mass %.0f, wcdl %d, %d coverage gap(s))\n"
           e.v_benchmark e.v_scheme v.Analysis.Vuln.predicted_avf
           v.Analysis.Vuln.total_mass v.Analysis.Vuln.wcdl
           (List.length v.Analysis.Vuln.gaps));
      table "most vulnerable regions (static)" v.Analysis.Vuln.by_region;
      table "most vulnerable registers (static)" v.Analysis.Vuln.by_register;
      table "most vulnerable sites (static)" v.Analysis.Vuln.by_site)
    r.ventries;
  Buffer.add_string buf
    (Printf.sprintf "vuln: %d cells analyzed statically (no faults injected)\n"
       (List.length r.ventries));
  Buffer.contents buf

let vuln_to_json r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"entries\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"benchmark\":\"%s\",\"scheme\":\"%s\",\"vuln\":%s}"
           (Diag.json_escape e.v_benchmark)
           (Diag.json_escape e.v_scheme)
           (Analysis.Vuln.to_json e.vuln)))
    r.ventries;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Rows for Csv_export: per (benchmark, key), the score under every
   scheme that ranks the key at all — schemes partition programs into
   different regions, so missing cells are expected and the writer's
   missing-column tolerance renders them "nan". *)
type vuln_csv_row = {
  vr_benchmark : string;
  vr_key : string;
  vr_by_scheme : (string * float) list;
}

let vuln_csv_rows ~axis r =
  let table_of (e : vuln_entry) =
    match axis with
    | `Site -> e.vuln.Analysis.Vuln.by_site
    | `Register -> e.vuln.Analysis.Vuln.by_register
    | `Region -> e.vuln.Analysis.Vuln.by_region
  in
  let benches =
    List.fold_left
      (fun acc e ->
        if List.mem e.v_benchmark acc then acc else acc @ [ e.v_benchmark ])
      [] r.ventries
  in
  List.concat_map
    (fun bench ->
      let es = List.filter (fun e -> e.v_benchmark = bench) r.ventries in
      let keys =
        List.fold_left
          (fun acc e ->
            List.fold_left
              (fun acc (row : Analysis.Vuln.row) ->
                if List.mem row.Analysis.Vuln.key acc then acc
                else acc @ [ row.Analysis.Vuln.key ])
              acc (table_of e))
          [] es
      in
      List.map
        (fun key ->
          {
            vr_benchmark = bench;
            vr_key = key;
            vr_by_scheme =
              List.filter_map
                (fun e ->
                  Option.map
                    (fun (row : Analysis.Vuln.row) ->
                      (e.v_scheme, row.Analysis.Vuln.score))
                    (List.find_opt
                       (fun (row : Analysis.Vuln.row) ->
                         String.equal row.Analysis.Vuln.key key)
                       (table_of e)))
                es;
          })
        keys)
    benches

let to_json r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"per_pass\":%b,\"checks\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"entries\":["
       r.per_pass
       (String.concat ","
          (List.map
             (fun n -> Printf.sprintf "\"%s\"" (Diag.json_escape n))
             Analysis.Registry.names))
       r.errors r.warnings r.infos);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"benchmark\":\"%s\",\"scheme\":\"%s\",\"diags\":[%s]}"
           (Diag.json_escape e.benchmark)
           (Diag.json_escape e.scheme)
           (String.concat "," (List.map Diag.to_json e.diags))))
    r.entries;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
