(* End-to-end driver: build a workload, compile it under a scheme, produce
   its dynamic trace, replay the trace on the scheme's machine, and report
   counters. Compilation and tracing are cached per (benchmark, scale,
   compile key): traces depend only on the binary, so a single trace serves
   every WCDL / machine variation of the same scheme.

   The cache is domain-safe: entries are published under a mutex, and a
   key being compiled by one worker is marked in-flight so other workers
   block on it instead of compiling the same binary twice. A generation
   counter makes [clear_cache] sound against in-flight compilations: a
   worker that started before the clear refuses to publish its result. *)

open Turnpike_ir
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Static_stats = Turnpike_compiler.Static_stats
module Timing = Turnpike_arch.Timing
module Sim_stats = Turnpike_arch.Sim_stats
module Suite = Turnpike_workloads.Suite

type compiled_run = {
  compiled : Pass_pipeline.t;
  trace : Trace.t;
  final : Interp.state;
}

type result = {
  scheme : string;
  benchmark : string;
  stats : Sim_stats.t;
  static_stats : Static_stats.t;
  trace : Trace.t;
}

let default_scale = 8
let default_fuel = 400_000

(* One record instead of the ?scale ?fuel ?wcdl ?sb_size ?baseline_sb
   sprawl: drivers build variations with [{ params with ... }] and thread
   a single value through compile, simulate and normalize. *)
type params = {
  scale : int;  (* workload scale factor *)
  fuel : int;  (* interpreter step budget *)
  wcdl : int;  (* worst-case detection latency, cycles *)
  sb_size : int;  (* store-buffer entries (compile AND machine) *)
  baseline_sb : int;  (* store-buffer entries of the normalization baseline *)
}

let default_params =
  { scale = default_scale; fuel = default_fuel; wcdl = 10; sb_size = 4; baseline_sb = 4 }

type slot = Ready of compiled_run | In_flight

let cache : (string, slot) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()
let cache_cond = Condition.create ()
let cache_generation = ref 0 (* guarded by cache_mutex *)

let clear_cache () =
  Mutex.lock cache_mutex;
  incr cache_generation;
  Hashtbl.reset cache;
  (* Wake any worker waiting on an in-flight entry; the key is gone, so it
     will recompile under the new generation. *)
  Condition.broadcast cache_cond;
  Mutex.unlock cache_mutex

let compile_with (p : params) (scheme : Scheme.t) (bench : Suite.entry) =
  let key =
    Printf.sprintf "%s/%d/%d/%s" (Suite.qualified_name bench) p.scale p.fuel
      (Scheme.compile_key scheme ~sb_size:p.sb_size)
  in
  Mutex.lock cache_mutex;
  let rec acquire () =
    match Hashtbl.find_opt cache key with
    | Some (Ready c) -> `Hit c
    | Some In_flight ->
      Condition.wait cache_cond cache_mutex;
      acquire ()
    | None ->
      Hashtbl.replace cache key In_flight;
      `Compute !cache_generation
  in
  let claim = acquire () in
  Mutex.unlock cache_mutex;
  match claim with
  | `Hit c -> c
  | `Compute generation -> (
    let publish outcome =
      Mutex.lock cache_mutex;
      if !cache_generation = generation then begin
        match outcome with
        | Ok c -> Hashtbl.replace cache key (Ready c)
        | Error _ -> Hashtbl.remove cache key
      end;
      Condition.broadcast cache_cond;
      Mutex.unlock cache_mutex
    in
    match
      let prog = bench.Suite.build ~scale:p.scale in
      let opts = Scheme.compile_opts scheme ~sb_size:p.sb_size in
      let compiled = Pass_pipeline.compile ~opts prog in
      let trace, final = Interp.trace_run ~fuel:p.fuel compiled.Pass_pipeline.prog in
      { compiled; trace; final }
    with
    | c ->
      publish (Ok c);
      c
    | exception e ->
      publish (Error e);
      raise e)

let run_with ?tel (p : params) (scheme : Scheme.t) (bench : Suite.entry) =
  let c = compile_with p scheme bench in
  let machine = Scheme.machine scheme ~wcdl:p.wcdl ~sb_size:p.sb_size in
  let stats = Timing.simulate ?tel machine c.trace in
  {
    scheme = scheme.Scheme.name;
    benchmark = Suite.qualified_name bench;
    stats;
    static_stats = c.compiled.Pass_pipeline.stats;
    trace = c.trace;
  }

exception Degenerate_baseline of string

let overhead ~baseline result =
  if baseline.stats.Sim_stats.cycles = 0 then
    raise
      (Degenerate_baseline
         (Printf.sprintf
            "Run.overhead: baseline %s/%s simulated 0 cycles (empty or \
             truncated trace) while normalizing %s/%s"
            baseline.benchmark baseline.scheme result.benchmark result.scheme))
  else
    float_of_int result.stats.Sim_stats.cycles
    /. float_of_int baseline.stats.Sim_stats.cycles

let normalized_with (p : params) (scheme : Scheme.t) (bench : Suite.entry) =
  let base = run_with { p with sb_size = p.baseline_sb } Scheme.baseline bench in
  let r = run_with p scheme bench in
  (overhead ~baseline:base r, r)

