(* First-class sweep axes over the Parallel grid engine. An axis names a
   configuration knob and carries its candidate values in sweep order;
   grid evaluation submits the whole (item × value) product to the domain
   pool as one flat task list, so rows are identical at any --jobs. *)

type 'a axis = { name : string; show : 'a -> string; values : 'a list }

let axis ~name ~show values =
  if values = [] then
    invalid_arg (Printf.sprintf "Sweep.axis %s: empty value list" name);
  { name; show; values }

let ints ~name values = axis ~name ~show:string_of_int values

let names a = List.map a.show a.values

let cross a b =
  axis
    ~name:(a.name ^ "×" ^ b.name)
    ~show:(fun (x, y) -> a.show x ^ "," ^ b.show y)
    (List.concat_map (fun x -> List.map (fun y -> (x, y)) b.values) a.values)

let grid ?jobs ~items ~axis f =
  Parallel.grid ?jobs ~items ~configs:axis.values f

let rows ~items ~axis ~row f =
  List.map (fun (item, results) -> row item results) (grid ~items ~axis f)
