(* Compatibility re-export: the pool now lives in its own bottom-layer
   library (turnpike.parallel) so that lib/resilience can fan out fault
   campaigns without depending on lib/core. Existing callers keep using
   [Turnpike.Parallel]; both names share the one pool configuration. *)

include Turnpike_parallel
