(** Pareto dominance and non-dominated sorting over minimization
    objectives.

    All objectives minimize (the explorer's runtime overhead, area,
    energy and SDC rate all do); a point dominates another when it is no
    worse everywhere and strictly better somewhere. Equal objective
    vectors never dominate each other, so duplicated points all survive
    to the frontier — and every function preserves input order, keeping
    frontier output deterministic at any pool width. *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a.(i) <= b.(i)] for every objective and
    [a.(i) < b.(i)] for at least one. Comparisons involving NaN are
    false, so a NaN objective can neither dominate nor be dominated on
    that axis.
    @raise Invalid_argument when the vectors differ in length. *)

val frontier : objectives:('a -> float array) -> 'a list -> 'a list
(** The non-dominated subset, in input order. *)

val rank : objectives:('a -> float array) -> 'a list -> ('a * int) list
(** Non-dominated sorting: layer 0 is the frontier, layer 1 the frontier
    of the rest, and so on. Input order is preserved; each element is
    paired with its layer. The successive-halving promoter keeps the
    best layers (ties broken by input position). *)
