(* The shared argument spec of every campaign-driving entry point:
   turnpike-cli inject, bench resilience and the explorer front ends all
   parse these five knobs through this module, so flag names, defaults and
   doc strings exist exactly once. *)

module Verifier = Turnpike_resilience.Verifier

type t = {
  seed : int;
  faults : int option;
  ci : float option;
  confidence : float;
  batch : int;
  jobs : int option;
  forensics : bool;
}

let default =
  {
    seed = 7;
    faults = None;
    ci = None;
    confidence = 0.95;
    batch = 32;
    jobs = None;
    forensics = false;
  }

let doc_seed = "Campaign seed (fault draws and batch order)."

let doc_faults =
  "Campaign size: number of injected faults (with --ci, the maximum fault \
   supply)."

let doc_ci =
  "Stop when the confidence interval's half-width on the SDC rate reaches \
   WIDTH (e.g. 0.01 for +/- 1%)."

let doc_confidence = "Confidence level of the stopping interval."
let doc_batch = "Faults per sequential batch of the --ci stopping loop."

let doc_jobs =
  "Worker domains (0, the default, means one per CPU; 1 is strictly \
   sequential). Results are identical at any job count."

let doc_forensics =
  "Record the per-fault forensic lifecycle (strike, taint use, detection, \
   rollback, re-execution, reconvergence) and attribute vulnerability to \
   static sites, registers and regions. Output is byte-identical at any \
   --jobs count and across snapshot-forked vs --scratch replay."

let usage =
  "--seed S --faults N --ci W --confidence C --batch B --jobs N --forensics"

let value_of flag convert = function
  | [] -> failwith (Printf.sprintf "%s expects a value" flag)
  | v :: rest -> (
    match convert v with
    | Some x -> (x, rest)
    | None -> failwith (Printf.sprintf "%s expects a number, got %s" flag v))

let consume t = function
  | "--seed" :: rest ->
    let seed, rest = value_of "--seed" int_of_string_opt rest in
    Some ({ t with seed }, rest)
  | "--faults" :: rest ->
    let n, rest = value_of "--faults" int_of_string_opt rest in
    Some ({ t with faults = Some n }, rest)
  | "--ci" :: rest ->
    let w, rest = value_of "--ci" float_of_string_opt rest in
    Some ({ t with ci = Some w }, rest)
  | "--confidence" :: rest ->
    let confidence, rest = value_of "--confidence" float_of_string_opt rest in
    Some ({ t with confidence }, rest)
  | "--batch" :: rest ->
    let batch, rest = value_of "--batch" int_of_string_opt rest in
    Some ({ t with batch }, rest)
  | "--jobs" :: rest ->
    let n, rest = value_of "--jobs" int_of_string_opt rest in
    Some ({ t with jobs = Some n }, rest)
  | "--forensics" :: rest -> Some ({ t with forensics = true }, rest)
  | _ -> None

let apply_jobs t =
  match t.jobs with None -> () | Some n -> Parallel.set_default_jobs n

let stopping ?(default = Verifier.default_stopping) t =
  match t.ci with
  | None -> None
  | Some half_width ->
    Some
      {
        default with
        Verifier.half_width;
        confidence = t.confidence;
        batch = t.batch;
      }
