(** Deterministic cycle-level timeline capture (the [turnpike-cli trace]
    engine, shared with the test suite).

    {!capture} runs one benchmark under every rung of the ablation ladder
    ({!Scheme.ladder}), each rung as one pool task with its own telemetry
    sink keyed by the ladder index, and merges the sinks by (task, seq).
    Events are stamped with simulated cycles and wall-clock producers are
    never routed into these sinks, so the export is a pure function of
    (benchmark, params): byte-identical at any [--jobs] count. *)

module Suite = Turnpike_workloads.Suite

type t = {
  benchmark : string;
  params : Run.params;
  schemes : string list;  (** ladder rung names, in order *)
  events : Turnpike_telemetry.event list;  (** merged, (task, seq) order *)
  per_task : int list;  (** events captured per rung *)
  dropped : int;  (** capacity-overflow events across all rungs *)
}

val track_names : string list
(** Names of the timing model's tracks (tid 0..4), used as Chrome thread
    names. *)

val capture : ?jobs:int -> ?params:Run.params -> Suite.entry -> t
(** Simulate the ladder (fanning rungs over the pool) and collect the
    merged timeline. *)

val chrome : t -> string
(** Chrome trace-event JSON: one process per ladder rung (named
    ["scheme/benchmark"]), tracks named per {!track_names}. Loadable in
    Perfetto. *)

val jsonl : t -> string
(** Self-describing JSONL export of the merged events. *)

val sensor_metadata : t -> string
(** JSON description of the sensor deployment implied by [params.wcdl]
    (via {!Turnpike_arch.Sensor.for_wcdl} at the paper's 2.5GHz clock). *)
