(** The 36-benchmark suite: one deterministic synthetic proxy per benchmark
    name of the paper's evaluation (16 SPEC CPU2006, 13 SPEC CPU2017, 7
    SPLASH3). Each proxy instantiates the template whose behaviour class
    matches the real program's documented character; DESIGN.md records the
    substitution. *)

open Turnpike_ir

type suite_tag =
  | Cpu2006
  | Cpu2017
  | Splash3
  | User  (** bring-your-own-workload kernels, e.g. loaded from [.tk] files *)

type entry = {
  name : string;  (** the paper's benchmark name *)
  suite : suite_tag;
  description : string;
  build : scale:int -> Prog.t;
      (** [scale] multiplies iteration counts to tune simulation windows *)
}

val suite_name : suite_tag -> string

val all : unit -> entry list
(** All 36 entries, in the paper's figure order. *)

val of_suite : suite_tag -> entry list

val find : suite:suite_tag -> name:string -> entry option

val find_by_name : string -> entry list
(** All entries with a name (bwaves/mcf/xalan appear in two suites). *)

val qualified_name : entry -> string
(** Unique name, e.g. ["mcf@2006"]. *)
