(* The 36-benchmark suite: one deterministic synthetic proxy per benchmark
   name of the paper's evaluation (16 SPEC CPU2006, 13 SPEC CPU2017 and 7
   SPLASH3 programs). Each proxy instantiates the template whose behaviour
   class best matches the real program's documented character (store
   density, miss rate, branchiness, register pressure); DESIGN.md records
   this substitution. [scale] multiplies iteration counts so simulation
   windows can be tuned from the command line. *)

open Turnpike_ir

type suite_tag = Cpu2006 | Cpu2017 | Splash3 | User

type entry = {
  name : string;
  suite : suite_tag;
  description : string;
  build : scale:int -> Prog.t;
}

let suite_name = function
  | Cpu2006 -> "SPEC CPU2006"
  | Cpu2017 -> "SPEC CPU2017"
  | Splash3 -> "SPLASH3"
  | User -> "user"

let e name suite description build = { name; suite; description; build }

let s06 = 100 (* seed spaces per suite keep data streams disjoint *)
let s17 = 200
let s3 = 300

let benchmarks =
  [
    (* ---------------- SPEC CPU2006 ---------------- *)
    e "astar" Cpu2006 "path search: indirect gathers over a graph" (fun ~scale ->
        Templates.gather ~seed:(s06 + 1) ~iters:(208 * scale) ~span:4096 ());
    e "bwaves" Cpu2006 "wave PDE: long stencil sweeps" (fun ~scale ->
        Templates.stencil ~seed:(s06 + 2) ~iters:(273 * scale) ());
    e "bzip2" Cpu2006 "compression: in-place byte shuffling" (fun ~scale ->
        Templates.inplace_shift ~seed:(s06 + 3) ~iters:(247 * scale) ());
    e "gcc" Cpu2006 "compiler: branchy, register pressure" (fun ~scale ->
        Templates.spill_heavy ~seed:(s06 + 4) ~iters:(195 * scale) ~live:34 ());
    e "gemsfdtd" Cpu2006 "FDTD solver: stencil + heavy writes" (fun ~scale ->
        Templates.stream_store ~seed:(s06 + 5) ~iters:(195 * scale) ~ways:2 ());
    e "gobmk" Cpu2006 "game tree: branch dominated" (fun ~scale ->
        Templates.branchy ~seed:(s06 + 6) ~iters:(221 * scale) ());
    e "hmmer" Cpu2006 "profile HMM: reduction over tables" (fun ~scale ->
        Templates.reduction ~seed:(s06 + 7) ~iters:(208 * scale) ~accs:6 ());
    e "leslie3d" Cpu2006 "CFD: stencil" (fun ~scale ->
        Templates.stencil ~seed:(s06 + 8) ~iters:(260 * scale) ());
    e "libquan" Cpu2006 "quantum sim: streaming stores" (fun ~scale ->
        Templates.stream_store ~seed:(s06 + 9) ~iters:(260 * scale) ~ways:1 ());
    e "mcf" Cpu2006 "network simplex: pointer chasing" (fun ~scale ->
        Templates.pointer_chase ~seed:(s06 + 10) ~nodes:4096 ~iters:(169 * scale) ());
    e "milc" Cpu2006 "lattice QCD: triad-like arithmetic" (fun ~scale ->
        Templates.triad ~seed:(s06 + 11) ~iters:(234 * scale) ());
    e "omnetpp" Cpu2006 "event simulation: pointer chasing" (fun ~scale ->
        Templates.pointer_chase ~seed:(s06 + 12) ~nodes:2048 ~iters:(182 * scale) ());
    e "perlbench" Cpu2006 "interpreter: data-dependent output stream" (fun ~scale ->
        Templates.compress ~seed:(s06 + 13) ~iters:(208 * scale) ());
    e "soplex" Cpu2006 "LP solver: mixed compute/memory" (fun ~scale ->
        Templates.mixed ~seed:(s06 + 14) ~iters:(221 * scale) ());
    e "xalan" Cpu2006 "XSLT: histogram-like table updates" (fun ~scale ->
        Templates.histogram ~seed:(s06 + 15) ~iters:(195 * scale) ~buckets:512 ());
    e "zeusmp" Cpu2006 "astro CFD: stencil" (fun ~scale ->
        Templates.stencil ~seed:(s06 + 16) ~iters:(247 * scale) ());
    (* ---------------- SPEC CPU2017 ---------------- *)
    e "bwaves" Cpu2017 "wave PDE (2017 inputs): stencil" (fun ~scale ->
        Templates.stencil ~seed:(s17 + 1) ~iters:(273 * scale) ());
    e "cactubssn" Cpu2017 "numerical relativity: flags + stencil (LICM target)"
      (fun ~scale -> Templates.flag_loop ~seed:(s17 + 2) ~iters:(247 * scale) ());
    e "deepsjeng" Cpu2017 "chess: branch dominated" (fun ~scale ->
        Templates.branchy ~seed:(s17 + 3) ~iters:(221 * scale) ());
    e "exchange2" Cpu2017 "puzzle: nested counted loops (LIVM target)" (fun ~scale ->
        Templates.stream_store ~seed:(s17 + 4) ~iters:(208 * scale) ~ways:3 ());
    e "fotonik3d" Cpu2017 "EM solver: stencil" (fun ~scale ->
        Templates.stencil ~seed:(s17 + 5) ~iters:(260 * scale) ());
    e "lbm" Cpu2017 "lattice Boltzmann: store-dominated streaming" (fun ~scale ->
        Templates.stream_store ~seed:(s17 + 6) ~iters:(221 * scale) ~ways:3 ());
    e "leela" Cpu2017 "go engine: branchy + streaming (LIVM target)" (fun ~scale ->
        Templates.stream_store ~seed:(s17 + 7) ~iters:(208 * scale) ~ways:2 ());
    e "mcf" Cpu2017 "network simplex (2017): pointer chasing" (fun ~scale ->
        Templates.pointer_chase ~seed:(s17 + 8) ~nodes:8192 ~iters:(156 * scale) ());
    e "nab" Cpu2017 "molecular dynamics: flag summaries (LICM target)" (fun ~scale ->
        Templates.flag_loop ~seed:(s17 + 9) ~iters:(234 * scale) ());
    e "roms" Cpu2017 "ocean model: triad arithmetic" (fun ~scale ->
        Templates.triad ~seed:(s17 + 10) ~iters:(247 * scale) ());
    e "x264" Cpu2017 "video encode: in-place pixel updates" (fun ~scale ->
        Templates.inplace_shift ~seed:(s17 + 11) ~iters:(234 * scale) ());
    e "xalan" Cpu2017 "XSLT (2017): table updates" (fun ~scale ->
        Templates.histogram ~seed:(s17 + 12) ~iters:(195 * scale) ~buckets:1024 ());
    e "xz" Cpu2017 "compression: predicate-gated output stream" (fun ~scale ->
        Templates.compress ~seed:(s17 + 13) ~iters:(221 * scale) ());
    (* ---------------- SPLASH3 ---------------- *)
    e "cholesky" Splash3 "factorization: nested loops + flags (LICM target)"
      (fun ~scale -> Templates.matmul ~seed:(s3 + 1) ~n:(8 + scale) ());
    e "fft" Splash3 "FFT: strided triad passes" (fun ~scale ->
        Templates.triad ~seed:(s3 + 2) ~iters:(234 * scale) ());
    e "lu-cg" Splash3 "LU (contiguous): dense kernel (LIVM target)" (fun ~scale ->
        Templates.matmul ~seed:(s3 + 3) ~n:(8 + scale) ());
    e "ocean-ng" Splash3 "ocean (non-contiguous): stencil sweeps" (fun ~scale ->
        Templates.stencil ~seed:(s3 + 4) ~iters:(260 * scale) ());
    e "radiosity" Splash3 "hierarchical radiosity: pointer chasing" (fun ~scale ->
        Templates.pointer_chase ~seed:(s3 + 5) ~nodes:4096 ~iters:(156 * scale) ());
    e "radix" Splash3 "radix sort: histogram + streaming (LIVM/LICM target)"
      (fun ~scale -> Templates.histogram ~seed:(s3 + 6) ~iters:(208 * scale) ~buckets:256 ());
    e "water-sp" Splash3 "n-body water: reduction with pressure" (fun ~scale ->
        Templates.reduction ~seed:(s3 + 7) ~iters:(208 * scale) ~accs:10 ());
  ]

let all () = benchmarks

let of_suite tag = List.filter (fun b -> b.suite = tag) benchmarks

let find ~suite ~name =
  List.find_opt (fun b -> b.suite = suite && String.equal b.name name) benchmarks

let find_by_name name =
  List.filter (fun b -> String.equal b.name name) benchmarks

let qualified_name b =
  match b.suite with
  | Cpu2006 -> b.name ^ "@2006"
  | Cpu2017 -> b.name ^ "@2017"
  | Splash3 -> b.name ^ "@splash3"
  | User -> b.name ^ "@tk"
