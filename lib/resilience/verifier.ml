(* SDC-freedom verification: compare the observable output of a resilient
   run (with faults injected) against a golden baseline run of the same
   source program. The observable output is the application data segment —
   spill slots and checkpoint storage are implementation details that
   legitimately differ between compilation schemes.

   The campaign is structured as a pure per-fault function [run_one]
   fanned out on the Turnpike_parallel domain pool, followed by a
   deterministic index-ordered reduction [reduce]. Each fault replays the
   whole interpreter under the recovery executor, so this is where the
   pool parallelizes real simulation work; the reduction folds outcomes
   in fault order, so the report (floating-point sums included) is
   bit-identical at any job count. *)

open Turnpike_ir
module Parallel = Turnpike_parallel
module Telemetry = Turnpike_telemetry

type verdict = Match | Mismatch of { addr : int; golden : int; actual : int }

let data_segment_only k = k >= Layout.data_base && k < Layout.spill_base

(* The reported mismatch is the LOWEST-ADDRESS one, not the first found:
   Hashtbl iteration order depends on insertion history and hash seeding,
   so "first found" would make reports unstable across runs and OCaml
   versions. *)
let compare_states ~(golden : Interp.state) ~(actual : Interp.state) =
  let bad = ref None in
  let note addr m =
    match !bad with
    | Some (a, _) when a <= addr -> ()
    | Some _ | None -> bad := Some (addr, m)
  in
  let check a b flip =
    Hashtbl.iter
      (fun k v ->
        if data_segment_only k && v <> 0 then begin
          let v' = Option.value (Hashtbl.find_opt b.Interp.mem k) ~default:0 in
          if v <> v' then
            note k
              (if flip then Mismatch { addr = k; golden = v'; actual = v }
               else Mismatch { addr = k; golden = v; actual = v' })
        end)
      a.Interp.mem
  in
  check golden actual false;
  check actual golden true;
  match !bad with Some (_, m) -> m | None -> Match

type outcome =
  | Recovered of { detections : Recovery.detection list; reexec_overhead : float }
  | Sdc of { detections : Recovery.detection list; mismatch : verdict }
  | Crashed of { reason : string }

type campaign_report = {
  total : int;
  recovered : int;
  sdc : int;
  crashed : int;
  parity_detections : int;
  sensor_detections : int;
  mean_reexec_overhead : float;
      (* mean of (faulted steps / golden steps) - 1 over recovered runs:
         the execution-time cost of rollback and re-execution *)
}

let detection_name = function
  | Recovery.Sensor -> "sensor"
  | Recovery.Parity -> "parity"

(* The campaign-visible classification of one outcome. A [Recovered] run
   with no detection at all means the strike never landed (the fault was
   scheduled past program exit): architecturally masked. Every landed
   strike is detected — by the sensors at the latest — so masked-by-
   derating cannot occur inside the trace. *)
let class_name = function
  | Recovered { detections = []; _ } -> "masked"
  | Recovered _ -> "detected"
  | Sdc _ -> "sdc"
  | Crashed _ -> "crashed"

let run_one ?(config = Recovery.default_config) ?plan ?(tel = Telemetry.null)
    ~golden ~compiled fault =
  let replay () =
    match plan with
    | Some p -> Snapshot.fork ~tel p fault
    | None -> Recovery.run ~fault ~config ~tel compiled
  in
  let classified =
    match replay () with
    | outcome -> (
      let detections = outcome.Recovery.detections in
      match compare_states ~golden ~actual:outcome.Recovery.state with
      | Match ->
        let golden_steps = max 1 golden.Interp.steps in
        Recovered
          {
            detections;
            reexec_overhead =
              (float_of_int outcome.Recovery.state.Interp.steps
              /. float_of_int golden_steps)
              -. 1.0;
          }
      | Mismatch _ as mismatch -> Sdc { detections; mismatch })
    | exception Recovery.Recovery_failed reason ->
      Crashed { reason = "recovery failed: " ^ reason }
    | exception Recovery.Out_of_fuel { recoveries; steps } ->
      (* Keep the recovery count and exhaustion step: a campaign triaging
         crashes needs to tell recovery livelock (many recoveries, steps
         barely past the strike) from a genuinely wedged program. *)
      Crashed
        {
          reason =
            Printf.sprintf "out of fuel at step %d after %d recoveries" steps
              recoveries;
        }
  in
  (* Close the fault's forensic lifecycle with its verdict; [ts] is the
     golden step count, a pure function of the benchmark, so the stream
     stays deterministic. *)
  if Telemetry.enabled tel then
    Telemetry.instant tel ~ts:golden.Interp.steps ~cat:"forensics" "outcome"
      ~args:
        (("class", Telemetry.Str (class_name classified))
        ::
        (match classified with
        | Recovered { detections; reexec_overhead } ->
          [
            ("detections", Telemetry.Int (List.length detections));
            ("reexec_overhead", Telemetry.Float reexec_overhead);
          ]
        | Sdc { detections; mismatch } ->
          ("detections", Telemetry.Int (List.length detections))
          ::
          (match mismatch with
          | Mismatch { addr; golden; actual } ->
            [
              ("addr", Telemetry.Int addr);
              ("golden", Telemetry.Int golden);
              ("actual", Telemetry.Int actual);
            ]
          | Match -> [])
        | Crashed { reason } -> [ ("reason", Telemetry.Str reason) ]));
  classified

(* ------------------------------------------------------------------ *)
(* Machine-readable per-fault outcomes (satellite of [inject --json]). *)

let verdict_to_json = function
  | Match -> "null"
  | Mismatch { addr; golden; actual } ->
    Printf.sprintf "{\"addr\":%d,\"golden\":%d,\"actual\":%d}" addr golden actual

let outcome_to_json o =
  let detections_json ds =
    "[" ^ String.concat "," (List.map (fun d -> "\"" ^ detection_name d ^ "\"") ds)
    ^ "]"
  in
  match o with
  | Recovered { detections; reexec_overhead } ->
    Printf.sprintf
      "{\"class\":\"%s\",\"detections\":%s,\"reexec_overhead\":%.6f}"
      (class_name o) (detections_json detections) reexec_overhead
  | Sdc { detections; mismatch } ->
    Printf.sprintf "{\"class\":\"sdc\",\"detections\":%s,\"mismatch\":%s}"
      (detections_json detections) (verdict_to_json mismatch)
  | Crashed { reason } ->
    Printf.sprintf "{\"class\":\"crashed\",\"reason\":\"%s\"}"
      (Telemetry.Export.escape reason)

let reduce outcomes =
  let recovered = ref 0
  and sdc = ref 0
  and crashed = ref 0
  and parity = ref 0
  and sensor = ref 0
  and reexec_sum = ref 0.0 in
  let count_detections =
    List.iter (function
      | Recovery.Parity -> incr parity
      | Recovery.Sensor -> incr sensor)
  in
  List.iter
    (function
      | Recovered { detections; reexec_overhead } ->
        count_detections detections;
        incr recovered;
        reexec_sum := !reexec_sum +. reexec_overhead
      | Sdc { detections; _ } ->
        count_detections detections;
        incr sdc
      | Crashed _ -> incr crashed)
    outcomes;
  {
    total = List.length outcomes;
    recovered = !recovered;
    sdc = !sdc;
    crashed = !crashed;
    parity_detections = !parity;
    sensor_detections = !sensor;
    mean_reexec_overhead =
      (* Guard against a campaign with no recovered runs: report 0.0, not
         a NaN that would poison every downstream mean. *)
      (if !recovered = 0 then 0.0 else !reexec_sum /. float_of_int !recovered);
  }

let run_campaign ?jobs ?config ?plan ~golden ~compiled faults =
  Parallel.map_list ?jobs (run_one ?config ?plan ~golden ~compiled) faults |> reduce

(* ------------------------------------------------------------------ *)
(* Sequential stopping: stream the seeded fault list in fixed-size batches
   and stop once a Wilson score interval on the SDC rate is narrow enough.
   Everything the stopping decision depends on — batch boundaries, fault
   order, outcome folds — derives from the seeded list, never from
   wall-clock or completion order, so the stopping point and the report
   are identical at any job count. *)

type stopping = {
  half_width : float;
  confidence : float;
  batch : int;
  min_faults : int;
}

let default_stopping =
  { half_width = 0.05; confidence = 0.95; batch = 32; min_faults = 64 }

(* Inverse of the standard normal CDF (Acklam's rational approximation,
   |relative error| < 1.15e-9): deterministic, dependency-free source for
   the z quantile of the requested confidence level. *)
let probit p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Verifier.probit: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let poly coeffs x =
    Array.fold_left (fun acc k -> (acc *. x) +. k) 0.0 coeffs
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    poly c q /. ((poly d q *. q) +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    poly a r *. q /. ((poly b r *. r) +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.(poly c q) /. ((poly d q *. q) +. 1.0)
  end

let z_of_confidence confidence =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Verifier: confidence must be inside (0,1)";
  probit (1.0 -. ((1.0 -. confidence) /. 2.0))

(* Wilson score interval for a binomial proportion: behaves sensibly at
   p-hat = 0 (the common case: zero SDCs observed), where the Wald
   interval would collapse to width zero and stop immediately. *)
let wilson_interval ~confidence ~positives ~total =
  if total <= 0 then (0.0, 1.0)
  else begin
    let z = z_of_confidence confidence in
    let n = float_of_int total in
    let p = float_of_int positives /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z *. sqrt (((p *. (1.0 -. p)) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

type ci_report = {
  report : campaign_report;
  sdc_rate : float;
  ci_low : float;
  ci_high : float;
  achieved_half_width : float;
  confidence : float;
  batches : int;
  exhausted : bool;
  outcomes : outcome list;
}

let run_campaign_ci ?jobs ?config ?plan ?(stopping = default_stopping)
    ?(tel = Telemetry.null) ?sink_for ~golden ~compiled faults =
  if stopping.batch <= 0 then invalid_arg "Verifier: batch must be positive";
  if not (stopping.half_width > 0.0) then
    invalid_arg "Verifier: half_width must be positive";
  let take n l =
    let rec go n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: tl -> go (n - 1) (x :: acc) tl
    in
    go n [] l
  in
  let run_indexed (i, fault) =
    let tel = match sink_for with Some f -> f i | None -> Telemetry.null in
    run_one ?config ?plan ~tel ~golden ~compiled fault
  in
  let interval outcomes_rev =
    let total = List.length outcomes_rev in
    let positives =
      List.fold_left
        (fun acc o -> match o with Sdc _ -> acc + 1 | _ -> acc)
        0 outcomes_rev
    in
    let low, high =
      wilson_interval ~confidence:stopping.confidence ~positives ~total
    in
    (total, positives, low, high, (high -. low) /. 2.0)
  in
  (* Wilson-CI trajectory: one counter sample per consumed batch, emitted
     by this (sequential) driver after the deterministic fold — observable
     in flight, byte-identical at any job count. *)
  let emit_trajectory ~batches outcomes_rev =
    if Telemetry.enabled tel then begin
      let total, positives, low, high, half = interval outcomes_rev in
      let recovered =
        List.fold_left
          (fun acc o -> match o with Recovered _ -> acc + 1 | _ -> acc)
          0 outcomes_rev
      in
      Telemetry.counter tel ~ts:batches "wilson_trajectory"
        [
          ("batch", Telemetry.Int batches);
          ("consumed", Telemetry.Int total);
          ("sdc", Telemetry.Int positives);
          ("recovered", Telemetry.Int recovered);
          ("ci_low", Telemetry.Float low);
          ("ci_high", Telemetry.Float high);
          ("half_width", Telemetry.Float half);
        ]
    end
  in
  let rec go outcomes_rev consumed batches remaining =
    match remaining with
    | [] -> (outcomes_rev, batches, true)
    | _ ->
      let batch, rest = take stopping.batch remaining in
      let indexed = List.mapi (fun i f -> (consumed + i, f)) batch in
      let results = Parallel.map_list ?jobs run_indexed indexed in
      let outcomes_rev = List.rev_append results outcomes_rev in
      let total, _, _, _, half = interval outcomes_rev in
      emit_trajectory ~batches:(batches + 1) outcomes_rev;
      if total >= stopping.min_faults && half <= stopping.half_width then
        (outcomes_rev, batches + 1, false)
      else go outcomes_rev total (batches + 1) rest
  in
  let outcomes_rev, batches, exhausted = go [] 0 0 faults in
  let total, positives, low, high, half = interval outcomes_rev in
  let outcomes = List.rev outcomes_rev in
  let report = reduce outcomes in
  {
    report;
    sdc_rate =
      (if total = 0 then 0.0 else float_of_int positives /. float_of_int total);
    ci_low = low;
    ci_high = high;
    achieved_half_width = half;
    confidence = stopping.confidence;
    batches;
    exhausted;
    outcomes;
  }
