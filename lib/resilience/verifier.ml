(* SDC-freedom verification: compare the observable output of a resilient
   run (with faults injected) against a golden baseline run of the same
   source program. The observable output is the application data segment —
   spill slots and checkpoint storage are implementation details that
   legitimately differ between compilation schemes.

   The campaign is structured as a pure per-fault function [run_one]
   fanned out on the Turnpike_parallel domain pool, followed by a
   deterministic index-ordered reduction [reduce]. Each fault replays the
   whole interpreter under the recovery executor, so this is where the
   pool parallelizes real simulation work; the reduction folds outcomes
   in fault order, so the report (floating-point sums included) is
   bit-identical at any job count. *)

open Turnpike_ir
module Parallel = Turnpike_parallel

type verdict = Match | Mismatch of { addr : int; golden : int; actual : int }

let data_segment_only k = k >= Layout.data_base && k < Layout.spill_base

(* The reported mismatch is the LOWEST-ADDRESS one, not the first found:
   Hashtbl iteration order depends on insertion history and hash seeding,
   so "first found" would make reports unstable across runs and OCaml
   versions. *)
let compare_states ~(golden : Interp.state) ~(actual : Interp.state) =
  let bad = ref None in
  let note addr m =
    match !bad with
    | Some (a, _) when a <= addr -> ()
    | Some _ | None -> bad := Some (addr, m)
  in
  let check a b flip =
    Hashtbl.iter
      (fun k v ->
        if data_segment_only k && v <> 0 then begin
          let v' = Option.value (Hashtbl.find_opt b.Interp.mem k) ~default:0 in
          if v <> v' then
            note k
              (if flip then Mismatch { addr = k; golden = v'; actual = v }
               else Mismatch { addr = k; golden = v; actual = v' })
        end)
      a.Interp.mem
  in
  check golden actual false;
  check actual golden true;
  match !bad with Some (_, m) -> m | None -> Match

type outcome =
  | Recovered of { detections : Recovery.detection list; reexec_overhead : float }
  | Sdc of { detections : Recovery.detection list; mismatch : verdict }
  | Crashed of { reason : string }

type campaign_report = {
  total : int;
  recovered : int;
  sdc : int;
  crashed : int;
  parity_detections : int;
  sensor_detections : int;
  mean_reexec_overhead : float;
      (* mean of (faulted steps / golden steps) - 1 over recovered runs:
         the execution-time cost of rollback and re-execution *)
}

let run_one ?(config = Recovery.default_config) ~golden ~compiled fault =
  match Recovery.run ~fault ~config compiled with
  | outcome -> (
    let detections = outcome.Recovery.detections in
    match compare_states ~golden ~actual:outcome.Recovery.state with
    | Match ->
      let golden_steps = max 1 golden.Interp.steps in
      Recovered
        {
          detections;
          reexec_overhead =
            (float_of_int outcome.Recovery.state.Interp.steps
            /. float_of_int golden_steps)
            -. 1.0;
        }
    | Mismatch _ as mismatch -> Sdc { detections; mismatch })
  | exception Recovery.Recovery_failed reason ->
    Crashed { reason = "recovery failed: " ^ reason }
  | exception Interp.Out_of_fuel -> Crashed { reason = "out of fuel" }

let reduce outcomes =
  let recovered = ref 0
  and sdc = ref 0
  and crashed = ref 0
  and parity = ref 0
  and sensor = ref 0
  and reexec_sum = ref 0.0 in
  let count_detections =
    List.iter (function
      | Recovery.Parity -> incr parity
      | Recovery.Sensor -> incr sensor)
  in
  List.iter
    (function
      | Recovered { detections; reexec_overhead } ->
        count_detections detections;
        incr recovered;
        reexec_sum := !reexec_sum +. reexec_overhead
      | Sdc { detections; _ } ->
        count_detections detections;
        incr sdc
      | Crashed _ -> incr crashed)
    outcomes;
  {
    total = List.length outcomes;
    recovered = !recovered;
    sdc = !sdc;
    crashed = !crashed;
    parity_detections = !parity;
    sensor_detections = !sensor;
    mean_reexec_overhead =
      (* Guard against a campaign with no recovered runs: report 0.0, not
         a NaN that would poison every downstream mean. *)
      (if !recovered = 0 then 0.0 else !reexec_sum /. float_of_int !recovered);
  }

let run_campaign ?jobs ?config ~golden ~compiled faults =
  Parallel.map_list ?jobs (run_one ?config ~golden ~compiled) faults |> reduce
