(* AVF-style vulnerability attribution over fault campaigns (Mukherjee et
   al., MICRO 2003 methodology, adapted to the register/step fault model):
   every fault of a campaign carries its forensic lifecycle trace (one
   telemetry sink per fault, task = fault index), and the per-fault
   outcomes are folded into vulnerability histograms keyed by static
   instruction site, struck register and static region, derated by class —
   masked and detected-recovered faults contribute nothing to
   vulnerability; SDCs and crashes are the architecture-visible failures.

   Everything here is deterministic: records are built in fault order,
   tables sort by (failures, vulnerability, total, key), and the merged
   event stream concatenates per-fault sinks in task order — byte-identical
   at any --jobs count and across snapshot-forked vs --scratch replays. *)

open Turnpike_ir
module Parallel = Turnpike_parallel
module Telemetry = Turnpike_telemetry
module Histogram = Turnpike_telemetry.Histogram
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Claims = Turnpike_compiler.Claims

type clazz = Masked | Detected | Sdc | Crashed

let classify = function
  | Verifier.Recovered { detections = []; _ } -> Masked
  | Verifier.Recovered _ -> Detected
  | Verifier.Sdc _ -> Sdc
  | Verifier.Crashed _ -> Crashed

let clazz_name = function
  | Masked -> "masked"
  | Detected -> "detected"
  | Sdc -> "sdc"
  | Crashed -> "crashed"

(* One distilled per-fault record: the verdict plus the landmarks of the
   lifecycle trace (absent when the strike never landed). *)
type record = {
  index : int;
  fault : Fault.t;
  clazz : clazz;
  outcome : Verifier.outcome;
  site : string option; (* "block:index" of the strike *)
  region : int option; (* open static region id at the strike *)
  detect_kind : string option;
  detect_latency : int option; (* fault-free positions from strike *)
  rewind : int option; (* positions discarded by the first rollback *)
  events : Telemetry.event list;
  dropped : int; (* sink overflow — surfaced, never silent *)
}

let find_event name events =
  List.find_opt (fun (e : Telemetry.event) -> e.Telemetry.name = name) events

let str_arg key (e : Telemetry.event) =
  match List.assoc_opt key e.Telemetry.args with
  | Some (Telemetry.Str s) -> Some s
  | _ -> None

let int_arg key (e : Telemetry.event) =
  match List.assoc_opt key e.Telemetry.args with
  | Some (Telemetry.Int i) -> Some i
  | _ -> None

let record_of ~index ~fault ~outcome sink =
  let events = Telemetry.events sink in
  let strike = find_event "strike" events in
  let detect = find_event "detect" events in
  let rollback = find_event "rollback" events in
  let site =
    Option.bind strike (fun e ->
        match (str_arg "block" e, int_arg "index" e) with
        | Some b, Some i -> Some (Printf.sprintf "%s:%d" b i)
        | _ -> None)
  in
  {
    index;
    fault;
    clazz = classify outcome;
    outcome;
    site;
    region = Option.bind strike (int_arg "region");
    detect_kind = Option.bind detect (str_arg "kind");
    detect_latency = Option.bind detect (int_arg "latency");
    rewind = Option.bind rollback (int_arg "rewind");
    events;
    dropped = Telemetry.dropped sink;
  }

(* ------------------------------------------------------------------ *)
(* Attribution. *)

type counts = { masked : int; detected : int; sdc : int; crashed : int }

let zero_counts = { masked = 0; detected = 0; sdc = 0; crashed = 0 }

let counts_total c = c.masked + c.detected + c.sdc + c.crashed

let failures c = c.sdc + c.crashed

(* AVF derating: the fraction of this bin's faults that became
   architecture-visible failures. *)
let vulnerability c =
  let t = counts_total c in
  if t = 0 then 0.0 else float_of_int (failures c) /. float_of_int t

type row = { key : string; counts : counts }

type table = row list

(* Per-class histograms over one attribution axis; the readout pivots the
   four histograms into ranked rows. *)
type bins = {
  h_masked : Histogram.t;
  h_detected : Histogram.t;
  h_sdc : Histogram.t;
  h_crashed : Histogram.t;
}

let bins_create () =
  {
    h_masked = Histogram.create ();
    h_detected = Histogram.create ();
    h_sdc = Histogram.create ();
    h_crashed = Histogram.create ();
  }

let bins_add b clazz key =
  Histogram.add
    (match clazz with
    | Masked -> b.h_masked
    | Detected -> b.h_detected
    | Sdc -> b.h_sdc
    | Crashed -> b.h_crashed)
    key

(* Most dangerous first: failure count, then vulnerability, then sheer
   exposure, then the key under the natural order the static tables use
   too (site order, then register id) — a total, deterministic order
   shared with [Turnpike_analysis.Vuln] so report --compare-static
   diffs cannot depend on sort incidentals. *)
let rank rows =
  List.sort
    (fun a b ->
      let va = vulnerability a.counts and vb = vulnerability b.counts in
      let c =
        compare
          (-failures a.counts, -.va, -counts_total a.counts)
          (-failures b.counts, -.vb, -counts_total b.counts)
      in
      if c <> 0 then c else Turnpike_analysis.Rank.key_compare a.key b.key)
    rows

let bins_table b =
  let keys =
    List.sort_uniq compare
      (List.concat_map
         (fun h -> List.map fst (Histogram.to_list h))
         [ b.h_masked; b.h_detected; b.h_sdc; b.h_crashed ])
  in
  rank
    (List.map
       (fun key ->
         {
           key;
           counts =
             {
               masked = Histogram.count b.h_masked key;
               detected = Histogram.count b.h_detected key;
               sdc = Histogram.count b.h_sdc key;
               crashed = Histogram.count b.h_crashed key;
             };
         })
       keys)

type summary = {
  rung : string; (* compiler rung / scheme label the campaign ran under *)
  total : int;
  landed : int; (* strikes that actually hit before program exit *)
  by_class : counts;
  by_site : table;
  by_register : table;
  by_region : table;
  mean_detect_latency : float;
  mean_rewind : float;
  dropped_events : int;
}

let summarize ?(rung = "") records =
  let site_bins = bins_create () in
  let reg_bins = bins_create () in
  let region_bins = bins_create () in
  let by_class = ref zero_counts in
  let landed = ref 0 in
  let lat_sum = ref 0 and lat_n = ref 0 in
  let rew_sum = ref 0 and rew_n = ref 0 in
  let dropped = ref 0 in
  List.iter
    (fun r ->
      by_class :=
        (match r.clazz with
        | Masked -> { !by_class with masked = !by_class.masked + 1 }
        | Detected -> { !by_class with detected = !by_class.detected + 1 }
        | Sdc -> { !by_class with sdc = !by_class.sdc + 1 }
        | Crashed -> { !by_class with crashed = !by_class.crashed + 1 });
      (* The struck register is known whether or not the strike landed. *)
      bins_add reg_bins r.clazz (Reg.to_string r.fault.Fault.reg);
      (match r.site with
      | Some s ->
        incr landed;
        bins_add site_bins r.clazz s
      | None -> ());
      (match r.region with
      | Some id -> bins_add region_bins r.clazz (string_of_int id)
      | None -> ());
      (match r.detect_latency with
      | Some l when l >= 0 ->
        lat_sum := !lat_sum + l;
        incr lat_n
      | Some _ | None -> ());
      (match r.rewind with
      | Some w ->
        rew_sum := !rew_sum + w;
        incr rew_n
      | None -> ());
      dropped := !dropped + r.dropped)
    records;
  let mean sum n = if n = 0 then 0.0 else float_of_int sum /. float_of_int n in
  {
    rung;
    total = List.length records;
    landed = !landed;
    by_class = !by_class;
    by_site = bins_table site_bins;
    by_register = bins_table reg_bins;
    by_region = bins_table region_bins;
    mean_detect_latency = mean !lat_sum !lat_n;
    mean_rewind = mean !rew_sum !rew_n;
    dropped_events = !dropped;
  }

(* ------------------------------------------------------------------ *)
(* Campaign glue: one sink per fault (task = fault index), records built
   in fault order after the parallel fan-out. *)

let merged_events records =
  List.concat_map (fun r -> r.events) records

let total_dropped records =
  List.fold_left (fun acc r -> acc + r.dropped) 0 records

let campaign ?jobs ?config ?plan ~golden ~compiled faults =
  let arr = Array.of_list faults in
  let sinks = Array.init (Array.length arr) (fun i -> Telemetry.create ~task:i ()) in
  let outcomes =
    Parallel.map ?jobs
      (fun (i, fault) ->
        Verifier.run_one ?config ?plan ~tel:sinks.(i) ~golden ~compiled fault)
      (Array.mapi (fun i f -> (i, f)) arr)
  in
  let records =
    List.mapi
      (fun i fault -> record_of ~index:i ~fault ~outcome:outcomes.(i) sinks.(i))
      faults
  in
  (records, Verifier.reduce (Array.to_list outcomes))

let campaign_ci ?jobs ?config ?plan ?stopping ?tel ~golden ~compiled faults =
  let sinks =
    Array.init (List.length faults) (fun i -> Telemetry.create ~task:i ())
  in
  let ci =
    Verifier.run_campaign_ci ?jobs ?config ?plan ?stopping ?tel
      ~sink_for:(fun i -> sinks.(i))
      ~golden ~compiled faults
  in
  (* Only the consumed prefix has outcomes; the unconsumed tail's sinks
     are empty and are not turned into records. *)
  let consumed = List.length ci.Verifier.outcomes in
  let records =
    List.mapi
      (fun i (fault, outcome) -> record_of ~index:i ~fault ~outcome sinks.(i))
      (List.combine
         (List.filteri (fun i _ -> i < consumed) faults)
         ci.Verifier.outcomes)
  in
  (records, ci)

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let record_to_json r =
  Printf.sprintf
    "{\"index\":%d,\"fault\":%s,\"class\":\"%s\",\"site\":%s,\"region\":%s,\"outcome\":%s}"
    r.index (Fault.to_json r.fault) (clazz_name r.clazz)
    (match r.site with
    | Some s -> Printf.sprintf "\"%s\"" (Telemetry.Export.escape s)
    | None -> "null")
    (match r.region with Some i -> string_of_int i | None -> "null")
    (Verifier.outcome_to_json r.outcome)

let counts_to_json c =
  Printf.sprintf "{\"masked\":%d,\"detected\":%d,\"sdc\":%d,\"crashed\":%d}"
    c.masked c.detected c.sdc c.crashed

let table_to_json t =
  "["
  ^ String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf
             "{\"key\":\"%s\",\"counts\":%s,\"vulnerability\":%.6f}"
             (Telemetry.Export.escape r.key)
             (counts_to_json r.counts) (vulnerability r.counts))
         t)
  ^ "]"

let summary_to_json s =
  Printf.sprintf
    "{\"rung\":\"%s\",\"total\":%d,\"landed\":%d,\"by_class\":%s,\"mean_detect_latency\":%.6f,\"mean_rewind\":%.6f,\"dropped_events\":%d,\"by_site\":%s,\"by_register\":%s,\"by_region\":%s}"
    (Telemetry.Export.escape s.rung)
    s.total s.landed (counts_to_json s.by_class) s.mean_detect_latency
    s.mean_rewind s.dropped_events (table_to_json s.by_site)
    (table_to_json s.by_register)
    (table_to_json s.by_region)

(* ------------------------------------------------------------------ *)
(* The dropped-checkpoint compiler mutant (shared with the differential
   tests): deletes every checkpoint of one recoverable live-in register
   and wipes the pipeline's claims, modelling a pruning bug. Restarts into
   a region that carried the victim live-in then restore a stale value, so
   the campaign's region attribution convicts exactly those regions — the
   [report] CLI uses it to demonstrate localization against ground truth. *)

let drop_checkpoint_mutant (c : Pass_pipeline.t) =
  let f = c.Pass_pipeline.prog.Prog.func in
  let def_count r =
    Func.fold_instrs
      (fun acc i -> if List.mem r (Instr.defs i) then acc + 1 else acc)
      0 f
  in
  let victim =
    Array.to_list c.Pass_pipeline.regions
    |> List.concat_map (fun (ri : Pass_pipeline.region_info) ->
           if ri.Pass_pipeline.id > 0 then ri.Pass_pipeline.live_in else [])
    |> List.find_opt (fun r ->
           def_count r > 0
           && Func.fold_instrs
                (fun acc i ->
                  if Instr.equal i (Instr.Ckpt r) then acc + 1 else acc)
                0 f
              > 0)
  in
  match victim with
  | None -> None
  | Some victim ->
    Func.iter_blocks
      (fun b ->
        b.Block.body <-
          Array.of_list
            (List.filter
               (fun i -> not (Instr.equal i (Instr.Ckpt victim)))
               (Array.to_list b.Block.body)))
      f;
    let affected =
      Array.to_list c.Pass_pipeline.regions
      |> List.filter_map (fun (ri : Pass_pipeline.region_info) ->
             if ri.Pass_pipeline.id > 0 && List.mem victim ri.Pass_pipeline.live_in
             then Some ri.Pass_pipeline.id
             else None)
      |> List.sort_uniq compare
    in
    Some ({ c with Pass_pipeline.claims = Claims.empty }, victim, affected)
