(** AVF-style vulnerability attribution over fault campaigns.

    Every fault of a campaign gets its own telemetry sink (task = fault
    index) receiving the {!Recovery} forensic lifecycle, and the verifier
    outcomes are folded into vulnerability histograms keyed by static
    instruction site, struck register and static region, derated by
    class: masked and detected-recovered faults contribute nothing,
    SDCs and crashes are the architecture-visible failures.

    Determinism: records are built in fault order, tables rank by a total
    order, and {!merged_events} concatenates per-fault streams in task
    order — byte-identical at any [--jobs] count and across
    snapshot-forked vs from-scratch replays. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry
module Pass_pipeline = Turnpike_compiler.Pass_pipeline

type clazz = Masked | Detected | Sdc | Crashed

val classify : Verifier.outcome -> clazz
(** [Recovered] with no detection is [Masked] (the strike was scheduled
    past program exit and never landed — every landed strike is detected,
    by the sensors at the latest); [Recovered] after detections is
    [Detected]. *)

val clazz_name : clazz -> string

(** One distilled per-fault record: the verdict plus the landmarks of the
    lifecycle trace (absent when the strike never landed). *)
type record = {
  index : int;  (** absolute fault index in the campaign *)
  fault : Fault.t;
  clazz : clazz;
  outcome : Verifier.outcome;
  site : string option;  (** ["block:index"] of the strike *)
  region : int option;  (** open static region id at the strike *)
  detect_kind : string option;  (** ["sensor"] / ["parity"] *)
  detect_latency : int option;  (** fault-free positions, strike → detect *)
  rewind : int option;  (** positions discarded by the first rollback *)
  events : Telemetry.event list;  (** the full lifecycle stream *)
  dropped : int;  (** sink overflow count — surfaced, never silent *)
}

val record_of :
  index:int -> fault:Fault.t -> outcome:Verifier.outcome -> Telemetry.sink ->
  record
(** Distill the sink a {!Verifier.run_one} call filled for [fault]. *)

(** {2 Attribution} *)

type counts = { masked : int; detected : int; sdc : int; crashed : int }

val zero_counts : counts
val counts_total : counts -> int

val failures : counts -> int
(** [sdc + crashed]: the architecture-visible failures. *)

val vulnerability : counts -> float
(** AVF derating: [failures / total] for the bin ([0.0] when empty). *)

type row = { key : string; counts : counts }

type table = row list
(** Ranked most-dangerous-first: failure count, then vulnerability, then
    total exposure, then key — a total, deterministic order. *)

val rank : row list -> table
(** The table sorter. Ties break on {!Turnpike_analysis.Rank.key_compare}
    — the same natural key order {!Turnpike_analysis.Vuln.rank} uses, so
    the dynamic and static tables are comparable row-for-row. *)

type summary = {
  rung : string;  (** compiler rung / scheme label the campaign ran under *)
  total : int;
  landed : int;  (** strikes that hit before program exit *)
  by_class : counts;
  by_site : table;  (** keyed ["block:index"] (strike site) *)
  by_register : table;  (** keyed by struck register (landed or not) *)
  by_region : table;  (** keyed by static region id at the strike *)
  mean_detect_latency : float;  (** fault-free positions, over detections *)
  mean_rewind : float;  (** positions discarded, over rollbacks *)
  dropped_events : int;  (** total sink overflow across the campaign *)
}

val summarize : ?rung:string -> record list -> summary

(** {2 Campaign glue} *)

val merged_events : record list -> Telemetry.event list
(** All lifecycle events in fault (task) order — the deterministic export
    stream. *)

val total_dropped : record list -> int

val campaign :
  ?jobs:int ->
  ?config:Recovery.config ->
  ?plan:Snapshot.plan ->
  golden:Interp.state ->
  compiled:Pass_pipeline.t ->
  Fault.t list ->
  record list * Verifier.campaign_report
(** {!Verifier.run_one} per fault on the domain pool, one sink per fault,
    folded into records (fault order) plus the usual campaign report. *)

val campaign_ci :
  ?jobs:int ->
  ?config:Recovery.config ->
  ?plan:Snapshot.plan ->
  ?stopping:Verifier.stopping ->
  ?tel:Telemetry.sink ->
  golden:Interp.state ->
  compiled:Pass_pipeline.t ->
  Fault.t list ->
  record list * Verifier.ci_report
(** CI-stopped variant: records cover exactly the consumed prefix; [tel]
    receives the Wilson trajectory (see {!Verifier.run_campaign_ci}). *)

(** {2 Serialization} *)

val record_to_json : record -> string
val counts_to_json : counts -> string
val table_to_json : table -> string
val summary_to_json : summary -> string

(** {2 Compiler mutant} *)

val drop_checkpoint_mutant :
  Pass_pipeline.t -> (Pass_pipeline.t * Reg.t * int list) option
(** Mutate the compiled program in place (shared with the differential
    tests): delete every checkpoint of one recoverable live-in register
    and wipe the claims, modelling a pruning bug; returns the mutated
    pipeline, the victim register and the sorted ids of the regions that
    carried it live-in (the ground-truth faulty sites), or [None] when no
    region has a checkpointed live-in. Restarts into an affected region
    then restore a stale value, so a forensic campaign's region table
    ranks an affected region first — the [report] CLI's conviction
    demo. *)
