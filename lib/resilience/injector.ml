(* Fault-campaign construction: deterministic sets of faults spread across
   a program's dynamic execution, targeting registers that actually carry
   values at the injection point (so the campaign stresses recovery rather
   than flipping dead bits). *)

open Turnpike_ir

let mix a b =
  let z = ref ((a * 0x9E3779B9) + (b * 0x85EBCA6B) + 0x165667B1) in
  z := !z lxor (!z lsr 15);
  z := !z * 0x2C1B3C6D;
  z := !z lxor (!z lsr 13);
  !z land max_int

(* Registers written during a window of the trace, as (step, reg) pairs. *)
let written_regs_by_step (trace : Trace.t) =
  let acc = ref [] in
  Array.iteri
    (fun step e ->
      match e with
      | Trace.Alu { dst = Some d; _ } -> acc := (step, d) :: !acc
      | Trace.Load { dst; _ } -> acc := (step, dst) :: !acc
      | Trace.Alu _ | Trace.Store _ | Trace.Ckpt _ | Trace.Branch _
      | Trace.Boundary _ ->
        ())
    trace.Trace.events;
  Array.of_list (List.rev !acc)

(* Register values are 63-bit OCaml ints and Fault.single_bit accepts bits
   0..62; draw over the full width so high bits are struck too. *)
let value_bits = 63

let campaign ?(seed = 42) ~count (trace : Trace.t) =
  let sites = written_regs_by_step trace in
  let n = Array.length sites in
  let last_step = Array.length trace.Trace.events - 1 in
  if n = 0 || count <= 0 then []
  else begin
    (* The site and bit draws both come from the [mix seed _] stream, so
       distinct k can repeat a (step, reg, bit) triple; repeated trials
       waste campaign budget and bias the i.i.d. assumption behind the
       sequential stopping rules. Deduplicate in seeded draw order,
       topping up with extra draws (then a systematic sweep) until [count]
       distinct faults exist or the site/bit space is exhausted. *)
    let distinct_sites =
      let t = Hashtbl.create n in
      Array.iter (fun (s, r) -> Hashtbl.replace t (min (s + 1) last_step, r) ()) sites;
      Hashtbl.length t
    in
    let target = min count (distinct_sites * value_bits) in
    let seen = Hashtbl.create (2 * target) in
    let acc = ref [] in
    let added = ref 0 in
    let add step reg bit =
      (* Strike one step after the write so the fault lands on a live,
         freshly produced value — clamped into the trace when the
         sampled write is its final event. *)
      let at_step = min (step + 1) last_step in
      if not (Hashtbl.mem seen (at_step, reg, bit)) then begin
        Hashtbl.replace seen (at_step, reg, bit) ();
        acc := Fault.single_bit ~at_step ~reg ~bit :: !acc;
        incr added
      end
    in
    let k = ref 0 in
    let max_draws = (64 * target) + 256 in
    while !added < target && !k < max_draws do
      let step, reg = sites.(mix seed !k mod n) in
      let bit = mix seed ((!k * 7) + 1) mod value_bits in
      add step reg bit;
      incr k
    done;
    (* Hashed draws starved (tiny site space): sweep site-major so the
       remaining distinct faults are reached deterministically. *)
    let i = ref 0 in
    while !added < target && !i < n * value_bits do
      let step, reg = sites.(!i mod n) in
      add step reg (!i / n);
      incr i
    done;
    List.rev !acc
  end
