(* Architectural fault model. A soft error strikes one register at a given
   dynamic step and flips some of its bits; acoustic sensors detect the
   strike within the worst-case detection latency. Per the paper's fault
   model (§5), SB/RBB/CLQ/color maps, caches and the address generation
   unit are hardened, and a per-register parity bit turns any access to a
   struck register used for addressing into an immediate detection. *)

open Turnpike_ir

type t = {
  at_step : int; (* dynamic step at which the strike lands *)
  reg : Reg.t; (* struck register *)
  xor_mask : int; (* bit flips applied to its value *)
}
[@@deriving show { with_path = false }, eq]

let create ~at_step ~reg ~xor_mask =
  if at_step < 0 then invalid_arg "Fault.create: negative step";
  if xor_mask = 0 then invalid_arg "Fault.create: empty mask";
  if Reg.is_zero reg then invalid_arg "Fault.create: the zero register is immune";
  { at_step; reg; xor_mask }

let single_bit ~at_step ~reg ~bit =
  if bit < 0 || bit > 62 then invalid_arg "Fault.single_bit: bit out of range";
  create ~at_step ~reg ~xor_mask:(1 lsl bit)

(* Register names are identifier-like and masks are ints: no escaping
   needed for a fixed-shape, machine-readable record. *)
let to_json t =
  Printf.sprintf "{\"at_step\":%d,\"reg\":\"%s\",\"xor_mask\":%d}" t.at_step
    (Reg.to_string t.reg) t.xor_mask
