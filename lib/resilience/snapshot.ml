(* Snapshot plans: one fault-free pilot run per (compiled program, config)
   recording periodic deep copies of the recovery executor, from which
   every fault of a campaign forks at the snapshot nearest its strike
   site. Forked outcomes are byte-identical to from-scratch replays (the
   differential tests pin this), so campaigns pay O(suffix) per fault
   instead of O(trace). *)

module Pass_pipeline = Turnpike_compiler.Pass_pipeline

type plan = {
  config : Recovery.config;
  compiled : Pass_pipeline.t;
  every : int;
  snaps : Recovery.snapshot array; (* ascending step order; [0] is step 0 *)
  pilot : Recovery.outcome;
}

let default_every = 512

let record ?(config = Recovery.default_config) ?(every = default_every) compiled =
  let pilot, snaps = Recovery.capture_pilot ~config ~every compiled in
  { config; compiled; every; snaps; pilot }

let pilot_outcome plan = plan.pilot

let snapshot_count plan = Array.length plan.snaps

(* Latest snapshot at or before [step]. The array always holds a step-0
   snapshot, so the search cannot come up empty for step >= 0. *)
let nearest plan ~step =
  let snaps = plan.snaps in
  let lo = ref 0 and hi = ref (Array.length snaps - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Recovery.snapshot_step snaps.(mid) <= step then lo := mid else hi := mid - 1
  done;
  snaps.(!lo)

let fork ?tel plan (fault : Fault.t) =
  Recovery.resume ~config:plan.config ?tel ~snapshots:plan.snaps
    ~pilot_outcome:plan.pilot
    ~from:(nearest plan ~step:fault.Fault.at_step)
    ~fault plan.compiled
