(** Fault-campaign construction: deterministic fault sets spread across a
    program's dynamic execution, targeting freshly written registers so the
    campaign stresses recovery rather than flipping dead bits. *)

open Turnpike_ir

val campaign : ?seed:int -> count:int -> Trace.t -> Fault.t list
(** Build up to [count] {e distinct} single-bit faults from a reference
    trace of the program (empty when the trace writes no registers). Bits
    are drawn over the full 63-bit register value width, and strike sites
    are clamped inside the trace. Faults are deduplicated by
    (step, register, bit) in seeded draw order, topping up until [count]
    distinct faults exist or the site/bit space of the trace is exhausted
    — so the list is shorter than [count] only for very small programs.
    Deterministic in [seed]. *)
