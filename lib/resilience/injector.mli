(** Fault-campaign construction: deterministic fault sets spread across a
    program's dynamic execution, targeting freshly written registers so the
    campaign stresses recovery rather than flipping dead bits. *)

open Turnpike_ir

val campaign : ?seed:int -> count:int -> Trace.t -> Fault.t list
(** Build [count] single-bit faults from a reference trace of the program
    (empty when the trace writes no registers). Bits are drawn over the
    full 63-bit register value width, and strike sites are clamped inside
    the trace. Deterministic in [seed]. *)
