(* Region-transactional executor: the functional (architectural) model of
   Turnstile/Turnpike error containment and recovery.

   Execution proceeds on the interpreter with these semantics layered on:
   - quarantined stores (and fallback checkpoints) apply to memory but are
     undo-logged per dynamic region; a region's log is dropped (committed)
     when the region verifies, [verify_delay] steps after it ends;
   - WAR-free regular stores (decided by the same CLQ logic the hardware
     uses) and colored checkpoint stores are released immediately with no
     undo entry;
   - a fault flips bits of a register mid-run; the strike is detected
     within [verify_delay] steps (acoustic sensors), or immediately when a
     tainted register is about to be used for addressing (register parity
     + hardened AGU, paper §5);
   - on detection, every unverified region's writes are rolled back in
     reverse order, the restart region's live-in registers are restored
     from verified checkpoint storage (running the pruning pass's
     reconstruction expressions where checkpoints were removed), and
     execution resumes at the region head.

   The executor is intentionally independent of the cycle-level timing
   model: recovery correctness is an architectural property and is tested
   here end to end against a golden run. *)

open Turnpike_ir
module Clq = Turnpike_arch.Clq
module Coloring = Turnpike_arch.Coloring
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Recovery_expr = Turnpike_compiler.Recovery_expr
module Telemetry = Turnpike_telemetry

type config = {
  verify_delay : int; (* steps from region end to verification *)
  coloring : bool;
  clq : Clq.design option;
  nregs : int;
  unsafe_ckpt_release : bool;
      (* Fig 16: release checkpoints without coloring — intentionally
         unsound, used to demonstrate why coloring exists. *)
  honor_static_claims : bool;
      (* Trust the pipeline's static release claims ([Claims.t]): claimed
         WAR-free stores and direct-release checkpoints skip the
         quarantine entirely. Sound exactly when the claims are — the
         differential oracle feeds it deliberately wrong claims to show
         the static checker's verdicts have dynamic teeth. *)
  fuel : int;
  max_recoveries : int;
}

let default_config =
  {
    verify_delay = 40;
    coloring = true;
    clq = Some (Clq.Compact 2);
    nregs = 32;
    unsafe_ckpt_release = false;
    honor_static_claims = false;
    fuel = 4_000_000;
    max_recoveries = 8;
  }

let turnstile_config =
  { default_config with coloring = false; clq = None }

type detection = Sensor | Parity

type outcome = {
  state : Interp.state;
  recoveries : int;
  detections : detection list;
  fast_released_stores : int;
  colored_ckpts : int;
  quarantined_writes : int;
}

exception Recovery_failed of string

exception Out_of_fuel of { recoveries : int; steps : int }

(* Where the latest verified checkpoint of a register lives. *)
type slot_loc = Base | Color of int

(* Per-region checkpoint records. Colored checkpoints were fast-released
   (their slot already holds the value); fallback checkpoints are
   quarantined: like the hardware store-buffer entry, the value stays
   buffered here and only reaches checkpoint storage when the region
   verifies — the target slot is chosen at drain time. *)
type ckpt_record = Colored of Reg.t * int | Fallback of Reg.t * int (* value *)

type dynamic_region = {
  seq : int;
  static_id : int;
  start_pos : int;
      (* fault-free position (see [exec.delta]) at which the region's head
         re-executes after a recovery restart: the boundary marker is the
         head block's first instruction, so a restart at [(head, 0)]
         replays it at exactly this position *)
  mutable end_step : int option;
  mutable undo : (int * int) list; (* (addr, previous value), newest first *)
  mutable ckpts : ckpt_record list; (* newest first *)
}

type exec = {
  cfg : config;
  compiled : Pass_pipeline.t;
  st : Interp.state;
  clq : Clq.t option;
  col : Coloring.t option;
  verified_loc : (Reg.t, slot_loc) Hashtbl.t;
  claim_bypass : (string * int, unit) Hashtbl.t;
  claim_direct : (string * int, unit) Hashtbl.t;
  mutable open_region : dynamic_region option;
  mutable pending : dynamic_region list; (* closed, unverified; oldest first *)
  mutable next_seq : int;
  mutable tainted : Reg.Set.t;
  mutable remaining : Fault.t list; (* strike order *)
  mutable detection_step : int; (* earliest pending sensor detection *)
  mutable budget : int;
  mutable delta : int;
      (* [st.steps - delta] is the run's {e position}: the step index the
         same pc would have in a fault-free run. 0 until the first
         recovery; each restart re-executes the restart region's head at
         its recorded [start_pos], so the position rewinds with the pc
         while [st.steps] keeps counting re-executed work. *)
  mutable recoveries : int;
  mutable detections : detection list;
  mutable fast_released : int;
  mutable colored : int;
  mutable quarantined : int;
  tel : Telemetry.sink;
      (* forensic lifecycle sink (default [Telemetry.null]); every
         timestamp below is a deterministic function of executor state,
         so the stream is byte-identical across --jobs counts and across
         snapshot-forked vs from-scratch replays *)
  mutable f_strike_pos : int; (* position of the latest strike, -1 if none *)
  mutable f_taint_use_done : bool; (* first tainted use already emitted *)
  mutable f_reconverged : bool; (* reconverge already emitted *)
}

let position ex = ex.st.Interp.steps - ex.delta

(* ------------------------------------------------------------------ *)
(* Forensic lifecycle events (category "forensics"). Each fault's life is
   strike → (taint_use) → detect → rollback/reexec → reconverge, every
   event stamped with the dynamic step ([ts]), the fault-free position
   and the static (func, block, index) site the pc points at. Reading
   the open region's static id must not materialize the implicit
   pre-boundary region, hence the side-effect-free probe. *)

let forensic_region ex =
  match ex.open_region with Some r -> r.static_id | None -> -1

let forensic_site ex =
  let pc = ex.st.Interp.pc in
  [
    ("func", Telemetry.Str ex.compiled.Pass_pipeline.prog.Prog.func.Func.name);
    ("block", Telemetry.Str pc.Interp.block);
    ("index", Telemetry.Int pc.Interp.index);
  ]

let forensic_instant ex name args =
  Telemetry.instant ex.tel ~ts:ex.st.Interp.steps ~cat:"forensics" name
    ~args:
      (args
      @ (("pos", Telemetry.Int (position ex))
         :: ("region", Telemetry.Int (forensic_region ex))
         :: forensic_site ex))

let slot_addr reg = function
  | Base -> Layout.ckpt_slot ~reg ~color:0
  | Color c -> Layout.ckpt_slot ~reg ~color:c

let current_region ex =
  match ex.open_region with
  | Some r -> r
  | None ->
    (* Implicit region before the first boundary marker. *)
    let r =
      {
        seq = ex.next_seq;
        static_id = -1;
        start_pos = position ex;
        end_step = None;
        undo = [];
        ckpts = [];
      }
    in
    ex.next_seq <- ex.next_seq + 1;
    ex.open_region <- Some r;
    r

let quarantined_write ex st addr value =
  let r = current_region ex in
  r.undo <- (addr, Interp.get_mem st addr) :: r.undo;
  ex.quarantined <- ex.quarantined + 1;
  Interp.set_mem st addr value

let verify_region ex (r : dynamic_region) =
  (* Commit: drop the undo log, promote the region's colors, publish
     checkpoint locations, and drain quarantined (fallback) checkpoint
     values into storage. Records are replayed oldest-first so the last
     checkpoint of a register in the region wins. *)
  (match ex.col with
  | Some col -> Coloring.on_region_verified col ~region:r.seq
  | None -> ());
  List.iter
    (fun record ->
      match record with
      | Colored (reg, c) -> Hashtbl.replace ex.verified_loc reg (Color c)
      | Fallback (reg, value) -> (
        match ex.col with
        | Some col ->
          (* Drain-time slot choice: a free color if one exists, else
             overwrite the currently verified color (the value being
             replaced is superseded by this newer verified one). *)
          let c =
            match Coloring.free_color col ~reg with
            | Some c -> c
            | None -> Option.value (Coloring.verified_color col ~reg) ~default:0
          in
          Interp.set_mem ex.st (slot_addr reg (Color c)) value;
          Coloring.force_verified col ~reg ~color:c;
          Hashtbl.replace ex.verified_loc reg (Color c)
        | None ->
          (* Turnstile: a single architected slot per register. *)
          Interp.set_mem ex.st (slot_addr reg Base) value;
          Hashtbl.replace ex.verified_loc reg Base))
    (List.rev r.ckpts);
  (match ex.clq with
  | Some clq ->
    Clq.on_region_verified clq ~region:r.seq;
    Clq.maybe_enable clq
      ~unverified_regions:
        (List.length ex.pending + match ex.open_region with Some _ -> 1 | None -> 0)
  | None -> ())

let process_verifications ex ~now =
  let rec go () =
    match ex.pending with
    | r :: rest
      when (match r.end_step with Some e -> e + ex.cfg.verify_delay <= now | None -> false)
      ->
      ex.pending <- rest;
      verify_region ex r;
      go ()
    | _ -> ()
  in
  go ()

let close_open_region ex ~now =
  match ex.open_region with
  | None -> ()
  | Some r ->
    r.end_step <- Some now;
    ex.pending <- ex.pending @ [ r ];
    ex.open_region <- None

let on_boundary ex static_id =
  let now = ex.st.Interp.steps in
  close_open_region ex ~now;
  process_verifications ex ~now;
  (match ex.clq with
  | Some clq ->
    Clq.maybe_enable clq ~unverified_regions:(List.length ex.pending)
  | None -> ());
  let r =
    {
      seq = ex.next_seq;
      static_id;
      start_pos = position ex;
      end_step = None;
      undo = [];
      ckpts = [];
    }
  in
  ex.next_seq <- ex.next_seq + 1;
  ex.open_region <- Some r

(* The hooks fire while [st.pc] still points at the executing instruction,
   so the current (block, body index) identifies the static claim site. *)
let at_claimed_site ex tbl =
  Hashtbl.mem tbl (ex.st.Interp.pc.Interp.block, ex.st.Interp.pc.Interp.index)

let on_store ex st addr value =
  if ex.cfg.honor_static_claims && at_claimed_site ex ex.claim_bypass then begin
    (* Statically proven WAR-free: release without an undo entry. *)
    ex.fast_released <- ex.fast_released + 1;
    Interp.set_mem st addr value
  end
  else
  let r = current_region ex in
  (* CLQ fast release: WAR-free regular stores skip the quarantine. The
     in-order constraint (no pending quarantined write to the same
     address) mirrors the hardware check. *)
  let pending_same_addr =
    List.exists (fun (a, _) -> a = addr) r.undo
    || List.exists (fun p -> List.exists (fun (a, _) -> a = addr) p.undo) ex.pending
  in
  let fast =
    (match ex.clq with
    | Some clq -> Clq.war_free clq ~region:r.seq addr
    | None -> false)
    && not pending_same_addr
  in
  if fast then begin
    ex.fast_released <- ex.fast_released + 1;
    Interp.set_mem st addr value
  end
  else quarantined_write ex st addr value

let on_load ex addr =
  match ex.clq with
  | Some clq -> ignore (Clq.record_load clq ~region:(current_region ex).seq addr)
  | None -> ()

let on_ckpt ex st reg =
  let r = current_region ex in
  let value = Interp.get_reg st reg in
  if ex.cfg.honor_static_claims && at_claimed_site ex ex.claim_direct then begin
    (* Statically claimed direct release: the slot is written and counted
       verified immediately, with no per-region record to drain or roll
       back — sound only under the claim's single-site/dominance proof. *)
    Hashtbl.replace ex.verified_loc reg Base;
    Interp.set_mem st (slot_addr reg Base) value
  end
  else if ex.cfg.unsafe_ckpt_release then begin
    (* Fig 16: direct release without coloring — unsound by design. *)
    r.ckpts <- Fallback (reg, value) :: r.ckpts;
    Hashtbl.replace ex.verified_loc reg Base;
    Interp.set_mem st (slot_addr reg Base) value
  end
  else
    match ex.col with
    | Some col when Reg.is_physical reg -> (
      match Coloring.try_assign col ~reg ~region:r.seq with
      | Some c ->
        ex.colored <- ex.colored + 1;
        r.ckpts <- Colored (reg, c) :: r.ckpts;
        Interp.set_mem st (slot_addr reg (Color c)) value
      | None ->
        ex.quarantined <- ex.quarantined + 1;
        r.ckpts <- Fallback (reg, value) :: r.ckpts)
    | Some _ | None ->
      ex.quarantined <- ex.quarantined + 1;
      r.ckpts <- Fallback (reg, value) :: r.ckpts

let read_verified_slot ex reg =
  let loc = Option.value (Hashtbl.find_opt ex.verified_loc reg) ~default:Base in
  Interp.get_mem ex.st (slot_addr reg loc)

let restore_register ex reg =
  match Hashtbl.find_opt ex.compiled.Pass_pipeline.recovery_exprs reg with
  | Some expr ->
    Recovery_expr.eval ~read_slot:(read_verified_slot ex) expr
  | None -> read_verified_slot ex reg

let recover ex ~kind =
  if ex.recoveries >= ex.cfg.max_recoveries then
    raise (Recovery_failed "recovery limit exceeded");
  if Telemetry.enabled ex.tel then
    forensic_instant ex "detect"
      [
        ("kind", Telemetry.Str (match kind with Sensor -> "sensor" | Parity -> "parity"));
        ( "latency",
          Telemetry.Int
            (if ex.f_strike_pos >= 0 then position ex - ex.f_strike_pos else -1) );
      ];
  ex.recoveries <- ex.recoveries + 1;
  ex.detections <- kind :: ex.detections;
  let now = ex.st.Interp.steps in
  close_open_region ex ~now;
  (* Oldest unverified region restarts (the paper's "region starting after
     the most recently verified boundary"). *)
  let restart =
    match ex.pending with
    | r :: _ -> r
    | [] -> raise (Recovery_failed "no unverified region to restart")
  in
  let discarded = ex.pending in
  (* Discard: undo every unverified region's quarantined writes, newest
     region first, newest write first. *)
  List.iter
    (fun r -> List.iter (fun (a, v) -> Interp.set_mem ex.st a v) r.undo)
    (List.rev ex.pending);
  (match ex.col with
  | Some col ->
    Coloring.discard_unverified col ~regions:(List.map (fun r -> r.seq) ex.pending)
  | None -> ());
  (match ex.clq with
  | Some clq ->
    List.iter (fun r -> Clq.on_region_verified clq ~region:r.seq) ex.pending
  | None -> ());
  ex.pending <- [];
  ex.tainted <- Reg.Set.empty;
  (* Restore the restart region's live-in registers from verified
     checkpoint storage (reconstructing pruned ones). *)
  (match Pass_pipeline.region_info ex.compiled restart.static_id with
  | Some info ->
    if Sys.getenv_opt "TURNPIKE_DEBUG_RECOVERY" <> None then
      Printf.eprintf
        "[recover] step=%d restart seq=%d static=%d head=%s live_in=[%s] discarded=[%s]\n%!"
        now restart.seq restart.static_id info.Pass_pipeline.head
        (String.concat ","
           (List.map
              (fun r ->
                Printf.sprintf "%s<-%d" (Reg.to_string r) (restore_register ex r))
              info.Pass_pipeline.live_in))
        (String.concat ","
           (List.map
              (fun (r : dynamic_region) ->
                Printf.sprintf "%d:s%d@%s" r.seq r.static_id
                  (match r.end_step with Some e -> string_of_int e | None -> "?"))
              discarded));
    if Telemetry.enabled ex.tel then begin
      (* [delta] is still the pre-recovery rebase here, so [now - delta]
         is the position the fault-free run had reached; the reexec span
         covers the positions about to be replayed. *)
      let pos = now - ex.delta in
      let undone =
        List.fold_left (fun acc r -> acc + List.length r.undo) 0 discarded
      in
      forensic_instant ex "rollback"
        [
          ("restart_region", Telemetry.Int restart.static_id);
          ("restart_block", Telemetry.Str info.Pass_pipeline.head);
          ("discarded_regions", Telemetry.Int (List.length discarded));
          ("undone_writes", Telemetry.Int undone);
          ("rewind", Telemetry.Int (pos - restart.start_pos));
        ];
      Telemetry.complete ex.tel ~ts:restart.start_pos
        ~dur:(pos - restart.start_pos) ~cat:"forensics" "reexec"
        ~args:[ ("restart_region", Telemetry.Int restart.static_id) ]
    end;
    List.iter
      (fun reg -> Interp.set_reg ex.st reg (restore_register ex reg))
      info.Pass_pipeline.live_in;
    ex.st.Interp.pc <- { Interp.block = info.Pass_pipeline.head; index = 0 };
    ex.st.Interp.halted <- false;
    (* The restart region's boundary marker is its head block's first
       instruction, so the next step re-executes it at the position it
       first ran at: rebase [delta] so [position ex] rewinds with the pc. *)
    ex.delta <- now - restart.start_pos
  | None ->
    raise
      (Recovery_failed
         (Printf.sprintf "no region info for static region %d" restart.static_id)))

(* Taint tracking models the paper's hardened-AGU + register-parity fault
   model: the struck register poisons derived values; using any tainted
   register for addressing triggers immediate (parity) detection before
   the access executes. *)
let instr_at (ex : exec) =
  let func = ex.compiled.Pass_pipeline.prog.Prog.func in
  let b = Func.block func ex.st.Interp.pc.Interp.block in
  let n = Array.length b.Block.body in
  if ex.st.Interp.pc.Interp.index < n then Some b.Block.body.(ex.st.Interp.pc.Interp.index)
  else None

let address_uses_taint ex =
  match instr_at ex with
  | Some (Instr.Load (_, base, _, _)) -> Reg.Set.mem base ex.tainted
  | Some (Instr.Store (_, base, _, _)) -> Reg.Set.mem base ex.tainted
  | Some _ | None -> false

let propagate_taint ex =
  match instr_at ex with
  | Some i ->
    let input_tainted =
      List.exists (fun r -> Reg.Set.mem r ex.tainted) (Instr.uses i)
    in
    if input_tainted && Telemetry.enabled ex.tel && not ex.f_taint_use_done then begin
      ex.f_taint_use_done <- true;
      forensic_instant ex "taint_use"
        [
          ( "tainted_inputs",
            Telemetry.Str
              (String.concat ","
                 (List.filter_map
                    (fun r ->
                      if Reg.Set.mem r ex.tainted then Some (Reg.to_string r)
                      else None)
                    (Instr.uses i))) );
        ]
    end;
    let defs = Instr.defs i in
    if input_tainted then
      ex.tainted <- List.fold_left (fun s d -> Reg.Set.add d s) ex.tainted defs
    else
      (* A clean redefinition cleanses the register. Loads always cleanse:
         memory contents are either verified or will be rolled back. *)
      ex.tainted <- List.fold_left (fun s d -> Reg.Set.remove d s) ex.tainted defs
  | None -> ()

(* Deterministic mixer for sampling the sensor detection latency. *)
let hash_mix a b =
  let z = ref ((a * 0x9E3779B9) + (b * 0x85EBCA6B) + 0x165667B1) in
  z := !z lxor (!z lsr 15);
  z := !z * 0x2C1B3C6D;
  z := !z lxor (!z lsr 13);
  !z land max_int

let claim_table enabled sites =
  let tbl = Hashtbl.create 16 in
  if enabled then List.iter (fun site -> Hashtbl.replace tbl site ()) sites;
  tbl

let make_exec ?(config = default_config) ?(faults = []) ?(tel = Telemetry.null)
    (compiled : Pass_pipeline.t) =
  {
    cfg = config;
    compiled;
    st = Interp.init compiled.Pass_pipeline.prog;
    clq = Option.map Clq.create config.clq;
    col = (if config.coloring then Some (Coloring.create ~nregs:config.nregs ()) else None);
    verified_loc = Hashtbl.create 32;
    claim_bypass =
      claim_table config.honor_static_claims
        compiled.Pass_pipeline.claims.Turnpike_compiler.Claims.bypass_stores;
    claim_direct =
      claim_table config.honor_static_claims
        compiled.Pass_pipeline.claims.Turnpike_compiler.Claims.direct_ckpts;
    open_region = None;
    pending = [];
    next_seq = 0;
    tainted = Reg.Set.empty;
    remaining = faults;
    detection_step = max_int;
    budget = config.fuel;
    delta = 0;
    recoveries = 0;
    detections = [];
    fast_released = 0;
    colored = 0;
    quarantined = 0;
    tel;
    f_strike_pos = -1;
    f_taint_use_done = false;
    f_reconverged = false;
  }

(* ------------------------------------------------------------------ *)
(* Snapshots: a deep copy of the whole executor (interpreter state plus
   region/quarantine/CLQ/coloring bookkeeping) taken at the top of the
   step loop, from which faulted runs can be forked byte-identically. *)

type snapshot = {
  snap_step : int; (* pilot [st.steps] = fault-free position at capture *)
  s_regs : (Reg.t, int) Hashtbl.t;
  s_mem : (int, int) Hashtbl.t;
  s_pc : Interp.pc;
  s_clq : Clq.t option;
  s_col : Coloring.t option;
  s_verified_loc : (Reg.t, slot_loc) Hashtbl.t;
  s_open_region : dynamic_region option;
  s_pending : dynamic_region list;
  s_next_seq : int;
  s_fast_released : int;
  s_colored : int;
  s_quarantined : int;
}

let snapshot_step s = s.snap_step

(* The undo/ckpt lists are immutable and safely shared; the record's
   mutable cells must be fresh. *)
let copy_region (r : dynamic_region) = { r with end_step = r.end_step }

let capture ex =
  {
    snap_step = ex.st.Interp.steps;
    s_regs = Hashtbl.copy ex.st.Interp.regs;
    s_mem = Hashtbl.copy ex.st.Interp.mem;
    s_pc = ex.st.Interp.pc;
    s_clq = Option.map Clq.copy ex.clq;
    s_col = Option.map Coloring.copy ex.col;
    s_verified_loc = Hashtbl.copy ex.verified_loc;
    s_open_region = Option.map copy_region ex.open_region;
    s_pending = List.map copy_region ex.pending;
    s_next_seq = ex.next_seq;
    s_fast_released = ex.fast_released;
    s_colored = ex.colored;
    s_quarantined = ex.quarantined;
  }

let of_snapshot ?(config = default_config) ?(tel = Telemetry.null)
    (compiled : Pass_pipeline.t) (s : snapshot) ~fault =
  {
    cfg = config;
    compiled;
    st =
      {
        Interp.regs = Hashtbl.copy s.s_regs;
        mem = Hashtbl.copy s.s_mem;
        pc = s.s_pc;
        steps = s.snap_step;
        halted = false;
      };
    clq = Option.map Clq.copy s.s_clq;
    col = Option.map Coloring.copy s.s_col;
    verified_loc = Hashtbl.copy s.s_verified_loc;
    claim_bypass =
      claim_table config.honor_static_claims
        compiled.Pass_pipeline.claims.Turnpike_compiler.Claims.bypass_stores;
    claim_direct =
      claim_table config.honor_static_claims
        compiled.Pass_pipeline.claims.Turnpike_compiler.Claims.direct_ckpts;
    open_region = Option.map copy_region s.s_open_region;
    pending = List.map copy_region s.s_pending;
    next_seq = s.s_next_seq;
    tainted = Reg.Set.empty;
    remaining = [ fault ];
    detection_step = max_int;
    (* [budget = fuel - steps] is a loop invariant (the budget is decremented
       exactly when [Interp.step] increments [steps]), so a fork inherits
       exactly the budget the from-scratch run would have here. *)
    budget = config.fuel - s.snap_step;
    delta = 0;
    recoveries = 0;
    detections = [];
    fast_released = s.s_fast_released;
    colored = s.s_colored;
    quarantined = s.s_quarantined;
    tel;
    f_strike_pos = -1;
    f_taint_use_done = false;
    f_reconverged = false;
  }

(* The pilot run a fork measures convergence against: its snapshots (in
   ascending [snap_step] order) and its final, drained state. *)
type oracle = { snaps : snapshot array; final_steps : int; final_state : Interp.state }

(* Equality treating absent bindings as zero, as the interpreter does. *)
let tables_agree ?(skip = fun _ -> false) a b =
  let covered a b =
    Hashtbl.fold
      (fun k v ok ->
        ok && (skip k || Option.value (Hashtbl.find_opt b k) ~default:0 = v))
      a true
  in
  covered a b && covered b a

let converged ex (s : snapshot) =
  ex.st.Interp.pc = s.s_pc
  && (not ex.st.Interp.halted)
  && tables_agree ex.st.Interp.regs s.s_regs
  && tables_agree ~skip:Layout.is_ckpt_addr ex.st.Interp.mem s.s_mem

let drain_at_exit ex =
  (* Every region is error-free once the program has halted cleanly (no
     detection outlived the loop), so close the still-open region and
     verify everything pending: quarantined writes commit and buffered
     fallback checkpoints reach checkpoint storage. *)
  close_open_region ex ~now:ex.st.Interp.steps;
  let rec go () =
    match ex.pending with
    | [] -> ()
    | r :: rest ->
      ex.pending <- rest;
      verify_region ex r;
      go ()
  in
  go ()

let finish ex =
  {
    state = ex.st;
    recoveries = ex.recoveries;
    detections = List.rev ex.detections;
    fast_released_stores = ex.fast_released;
    colored_ckpts = ex.colored;
    quarantined_writes = ex.quarantined;
  }

let drive ?observer ?oracle ex =
  let st = ex.st in
  let func = ex.compiled.Pass_pipeline.prog.Prog.func in
  let fallthrough = Func.fallthrough_table func in
  let hooks =
    {
      Interp.on_ckpt = (fun st reg -> on_ckpt ex st reg);
      on_boundary = (fun _ id -> on_boundary ex id);
      on_event =
        (fun e ->
          match e with
          | Trace.Load { addr; _ } -> on_load ex addr
          | Trace.Alu _ | Trace.Store _ | Trace.Ckpt _ | Trace.Branch _
          | Trace.Boundary _ ->
            ());
      write_mem = (fun st addr v -> on_store ex st addr v);
    }
  in
  let detection_pending () = ex.detection_step < max_int in
  (* Convergence cursor: only pilot snapshots strictly ahead of the fork
     position are candidates. The cursor never moves backwards — after a
     recovery the position rewinds and simply catches up to it again. *)
  let oidx = ref 0 in
  (match oracle with
  | Some o ->
    let pos0 = position ex in
    while !oidx < Array.length o.snaps && o.snaps.(!oidx).snap_step <= pos0 do
      incr oidx
    done
  | None -> ());
  let early = ref None in
  (* The loop continues past program exit while a detection is still
     pending: the sensors keep watching through the final WCDL windows, so
     an error near the end is detected (and recovered) after the last
     instruction retires. *)
  while
    !early = None
    && ((not st.Interp.halted) || detection_pending ())
    && ex.budget > 0
  do
    (match observer with Some f -> f ex | None -> ());
    (* Reconvergence instant: the first loop top after a recovery at which
       no fault remains in flight, no detection is pending and no taint is
       live — from here the remaining run is fully determined, i.e. it
       deterministically rejoins the fault-free pilot. This is a pure
       state predicate (never a comparison against an oracle snapshot), so
       forked and from-scratch replays emit it at the same step; it is
       evaluated BEFORE the oracle early-exit below so a fork that adopts
       the pilot suffix in this very iteration still emits it. *)
    if
      Telemetry.enabled ex.tel
      && (not ex.f_reconverged)
      && ex.detections <> []
      && ex.remaining = []
      && (not (detection_pending ()))
      && Reg.Set.is_empty ex.tainted
    then begin
      ex.f_reconverged <- true;
      forensic_instant ex "reconverge"
        [ ("recoveries", Telemetry.Int ex.recoveries) ]
    end;
    (* Convergence early exit: once the fault has struck, its detection has
       been handled and no taint is live, a fork whose architectural state
       (pc, registers, non-checkpoint memory) matches the pilot's snapshot
       at the same fault-free position has a fully determined future — the
       rest of the run is the pilot's suffix. Checkpoint storage is
       excluded from the comparison: slot contents and coloring history
       legitimately differ after a recovery, and the program only reads
       them during recovery itself, which can no longer occur. *)
    (match oracle with
    | Some o
      when ex.remaining = []
           && (not (detection_pending ()))
           && Reg.Set.is_empty ex.tainted ->
      let pos = position ex in
      let n = Array.length o.snaps in
      while !oidx < n && o.snaps.(!oidx).snap_step < pos do
        incr oidx
      done;
      if !oidx < n && o.snaps.(!oidx).snap_step = pos then begin
        if converged ex o.snaps.(!oidx) then begin
          let left = o.final_steps - pos in
          if ex.budget >= left then early := Some left
          else
            (* The determined suffix is longer than the remaining fuel:
               report exhaustion exactly where the full replay would. *)
            raise
              (Out_of_fuel
                 { recoveries = ex.recoveries; steps = st.Interp.steps + ex.budget })
        end
        else oidx := !oidx + 1
      end
    | Some _ | None -> ());
    if !early = None then begin
      let now = st.Interp.steps in
      (* Detection strictly precedes any verification at the same timestamp:
         a region is verified only when NO error was detected during its
         window. A halted program jumps straight to the detection time. *)
      if detection_pending () && (now >= ex.detection_step || st.Interp.halted) then begin
        ex.detection_step <- max_int;
        recover ex ~kind:Sensor
      end
      else begin
        process_verifications ex ~now;
        (* Strikes land at their absolute step; several faults can be in
           flight, each scheduling its own detection — the earliest pending
           one triggers recovery. Steps are monotonically increasing, so
           faults scheduled inside a re-executed window simply fire once. *)
        (match ex.remaining with
        | (f : Fault.t) :: rest when now >= f.Fault.at_step ->
          ex.remaining <- rest;
          Interp.set_reg st f.Fault.reg
            (Interp.get_reg st f.Fault.reg lxor f.Fault.xor_mask);
          ex.tainted <- Reg.Set.add f.Fault.reg ex.tainted;
          if Telemetry.enabled ex.tel then begin
            ex.f_strike_pos <- position ex;
            ex.f_taint_use_done <- false;
            ex.f_reconverged <- false;
            forensic_instant ex "strike"
              [
                ("reg", Telemetry.Str (Reg.to_string f.Fault.reg));
                ("xor_mask", Telemetry.Int f.Fault.xor_mask);
                ("at_step", Telemetry.Int f.Fault.at_step);
              ]
          end;
          (* Detected within the worst-case latency; deterministic sample. *)
          let d =
            1
            + (hash_mix f.Fault.at_step f.Fault.xor_mask
              mod max 1 ex.cfg.verify_delay)
          in
          ex.detection_step <- min ex.detection_step (now + d)
        | _ :: _ | [] -> ());
        (* Parity/AGU path: a tainted register about to be used for
           addressing is caught before the access. *)
        if detection_pending () && address_uses_taint ex then begin
          ex.detection_step <- max_int;
          recover ex ~kind:Parity
        end
        else begin
          propagate_taint ex;
          Interp.step ~hooks ~fallthrough func st;
          ex.budget <- ex.budget - 1
        end
      end
    end
  done;
  match !early with
  | Some left ->
    let o = Option.get oracle in
    (* Adopt the pilot's final (drained) architectural state; [steps] keeps
       counting this fork's own re-executed work plus the skipped suffix,
       exactly as the full replay would have. *)
    {
      (finish ex) with
      state = { o.final_state with Interp.steps = st.Interp.steps + left };
    }
  | None ->
    if not st.Interp.halted then
      raise (Out_of_fuel { recoveries = ex.recoveries; steps = st.Interp.steps });
    (* Drain remaining verifications so the final memory is fully committed
       state plus quarantine-applied writes (all correct by now). *)
    drain_at_exit ex;
    finish ex

let run ?fault ?(faults = []) ?(config = default_config) ?tel
    (compiled : Pass_pipeline.t) =
  let faults =
    List.sort
      (fun (a : Fault.t) b -> compare a.Fault.at_step b.Fault.at_step)
      (match fault with Some f -> f :: faults | None -> faults)
  in
  drive (make_exec ~config ~faults ?tel compiled)

let capture_pilot ?(config = default_config) ~every (compiled : Pass_pipeline.t) =
  if every <= 0 then invalid_arg "Recovery.capture_pilot: every must be positive";
  let snaps = ref [] in
  (* A fault-free run never recovers, so [steps] strictly increases across
     loop iterations and each multiple of [every] is captured once. *)
  let observer ex =
    if ex.st.Interp.steps mod every = 0 then snaps := capture ex :: !snaps
  in
  let outcome = drive ~observer (make_exec ~config compiled) in
  (outcome, Array.of_list (List.rev !snaps))

let resume ?(config = default_config) ?tel ~snapshots ~pilot_outcome ~from ~fault
    compiled =
  let oracle =
    {
      snaps = snapshots;
      final_steps = pilot_outcome.state.Interp.steps;
      final_state = pilot_outcome.state;
    }
  in
  drive ~oracle (of_snapshot ~config ?tel compiled from ~fault)
