(** Architectural fault model (paper §5).

    A soft error strikes one register at a given dynamic step and flips
    some of its bits; acoustic sensors detect the strike within the
    worst-case detection latency. SB/RBB/CLQ/color maps, caches and the
    address generation unit are hardened; a per-register parity bit turns
    any addressing use of a struck register into immediate detection. *)

open Turnpike_ir

type t = {
  at_step : int;  (** dynamic step at which the strike lands *)
  reg : Reg.t;  (** struck register *)
  xor_mask : int;  (** bit flips applied to its value *)
}
[@@deriving show, eq]

val create : at_step:int -> reg:Reg.t -> xor_mask:int -> t
(** @raise Invalid_argument on a negative step, empty mask or the zero
    register. *)

val single_bit : at_step:int -> reg:Reg.t -> bit:int -> t

val to_json : t -> string
(** One fixed-shape JSON object:
    [{"at_step":N,"reg":"rK","xor_mask":M}]. *)
