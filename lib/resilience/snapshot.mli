(** Snapshot plans for fault campaigns.

    A plan is the result of one fault-free {e pilot} run of a compiled
    program under a recovery configuration, capturing a deep copy of the
    whole executor every [every] steps. Each fault of a campaign then
    {!fork}s from the snapshot nearest its strike site, producing an
    outcome byte-identical to a from-scratch {!Recovery.run} at O(suffix)
    cost.

    A plan is immutable once recorded: forks only read it, so one plan is
    safely shared by every domain of a parallel campaign. *)

module Pass_pipeline = Turnpike_compiler.Pass_pipeline

type plan = private {
  config : Recovery.config;
  compiled : Pass_pipeline.t;
  every : int;
  snaps : Recovery.snapshot array;
  pilot : Recovery.outcome;
}

val default_every : int
(** Snapshot cadence in steps (512). *)

val record : ?config:Recovery.config -> ?every:int -> Pass_pipeline.t -> plan
(** Run the fault-free pilot and capture its snapshots.
    @raise Invalid_argument when [every <= 0].
    @raise Recovery.Out_of_fuel when the pilot itself exhausts its fuel —
    no plan exists for a program the configuration cannot run. *)

val pilot_outcome : plan -> Recovery.outcome
(** The fault-free run's outcome (also the campaign's golden-comparable
    reference for steps). *)

val snapshot_count : plan -> int

val nearest : plan -> step:int -> Recovery.snapshot
(** Latest snapshot at or before [step] (the step-0 snapshot exists for
    every plan, so this is total for [step >= 0]). *)

val fork : ?tel:Turnpike_telemetry.sink -> plan -> Fault.t -> Recovery.outcome
(** Replay one fault from the nearest snapshot. Byte-identical to
    [Recovery.run ~fault ~config:plan.config plan.compiled] in [state],
    [recoveries] and [detections] — and in the forensic events [tel]
    receives (see {!Recovery.run}); raises the same exceptions. *)
