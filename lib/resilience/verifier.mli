(** SDC-freedom verification: compares the observable output (application
    data segment) of a resilient, fault-injected run against a golden
    baseline run. Spill slots and checkpoint storage are implementation
    details and are excluded from the comparison.

    A campaign is [run_one] per fault — a pure function replaying the
    recovery executor — fanned out on the {!Turnpike_parallel} domain
    pool, then folded by the deterministic, fault-ordered {!reduce}. The
    resulting {!campaign_report} is identical at any job count. *)

open Turnpike_ir

type verdict = Match | Mismatch of { addr : int; golden : int; actual : int }

val compare_states : golden:Interp.state -> actual:Interp.state -> verdict
(** When several data words differ, the lowest-address mismatch is
    reported (stable across hash-table iteration orders and OCaml
    versions). *)

type outcome =
  | Recovered of { detections : Recovery.detection list; reexec_overhead : float }
      (** Output identical to the golden run; [reexec_overhead] is
          (faulted-run steps / golden steps) − 1, the execution cost of
          rollback and re-execution. *)
  | Sdc of { detections : Recovery.detection list; mismatch : verdict }
      (** Silent data corruption: the run completed but its output
          diverges — [mismatch] is the lowest-address difference. *)
  | Crashed of { reason : string }
      (** Recovery failure or fuel exhaustion. *)

val run_one :
  ?config:Recovery.config ->
  golden:Interp.state ->
  compiled:Turnpike_compiler.Pass_pipeline.t ->
  Fault.t ->
  outcome
(** Inject one fault, replay the program under the recovery executor and
    classify the result. Pure (fresh executor state per call): safe to
    fan out across domains. *)

type campaign_report = {
  total : int;
  recovered : int;  (** outputs identical to the golden run *)
  sdc : int;  (** silent data corruptions — must be zero for sound schemes *)
  crashed : int;  (** recovery failures / fuel exhaustion *)
  parity_detections : int;
  sensor_detections : int;
  mean_reexec_overhead : float;
      (** mean of (faulted-run steps / golden steps) − 1 over recovered
          runs ([0.0] when none recovered): the execution cost of rollback
          and re-execution *)
}

val reduce : outcome list -> campaign_report
(** Fold outcomes (in fault order) into a report. Sequential and
    deterministic: the floating-point overhead sum is accumulated in list
    order, so equal outcome lists give bit-equal reports. *)

val run_campaign :
  ?jobs:int ->
  ?config:Recovery.config ->
  golden:Interp.state ->
  compiled:Turnpike_compiler.Pass_pipeline.t ->
  Fault.t list ->
  campaign_report
(** [Parallel.map_list run_one faults |> reduce]: every fault replays the
    interpreter independently on the domain pool ([?jobs] overrides the
    pool width, default the global [--jobs] setting), and the report is
    identical at any job count. *)
