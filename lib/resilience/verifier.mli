(** SDC-freedom verification: compares the observable output (application
    data segment) of a resilient, fault-injected run against a golden
    baseline run. Spill slots and checkpoint storage are implementation
    details and are excluded from the comparison.

    A campaign is [run_one] per fault — a pure function replaying the
    recovery executor — fanned out on the {!Turnpike_parallel} domain
    pool, then folded by the deterministic, fault-ordered {!reduce}. The
    resulting {!campaign_report} is identical at any job count. *)

open Turnpike_ir

type verdict = Match | Mismatch of { addr : int; golden : int; actual : int }

val compare_states : golden:Interp.state -> actual:Interp.state -> verdict
(** When several data words differ, the lowest-address mismatch is
    reported (stable across hash-table iteration orders and OCaml
    versions). *)

type outcome =
  | Recovered of { detections : Recovery.detection list; reexec_overhead : float }
      (** Output identical to the golden run; [reexec_overhead] is
          (faulted-run steps / golden steps) − 1, the execution cost of
          rollback and re-execution. *)
  | Sdc of { detections : Recovery.detection list; mismatch : verdict }
      (** Silent data corruption: the run completed but its output
          diverges — [mismatch] is the lowest-address difference. *)
  | Crashed of { reason : string }
      (** Recovery failure or fuel exhaustion. *)

val detection_name : Recovery.detection -> string
(** ["sensor"] / ["parity"]. *)

val class_name : outcome -> string
(** The forensic class of an outcome: ["masked"] (recovered with no
    detection — the strike was scheduled past program exit and never
    landed), ["detected"] (recovered after at least one detection),
    ["sdc"], or ["crashed"]. *)

val run_one :
  ?config:Recovery.config ->
  ?plan:Snapshot.plan ->
  ?tel:Turnpike_telemetry.sink ->
  golden:Interp.state ->
  compiled:Turnpike_compiler.Pass_pipeline.t ->
  Fault.t ->
  outcome
(** Inject one fault, replay the program under the recovery executor and
    classify the result. Pure (fresh executor state per call): safe to
    fan out across domains. With [plan] (recorded from the same compiled
    program and config) the fault forks from the snapshot nearest its
    strike site instead of replaying from step 0 — same outcome, O(suffix)
    cost. Fuel exhaustion reports the recovery count and exhaustion step in
    the [Crashed] reason, distinguishing recovery livelock from a wedged
    program.

    [tel] receives the fault's forensic lifecycle (see {!Recovery.run})
    closed by one ["outcome"] instant carrying the {!class_name} and the
    classification detail; forked and from-scratch replays emit
    byte-identical streams. *)

val verdict_to_json : verdict -> string
(** [Match] is ["null"]; a mismatch is
    [{"addr":A,"golden":G,"actual":V}]. *)

val outcome_to_json : outcome -> string
(** One machine-readable JSON object per outcome, keyed by
    [{"class":...}] with per-class detail (detections, reexec overhead,
    lowest-address mismatch, crash reason). *)

type campaign_report = {
  total : int;
  recovered : int;  (** outputs identical to the golden run *)
  sdc : int;  (** silent data corruptions — must be zero for sound schemes *)
  crashed : int;  (** recovery failures / fuel exhaustion *)
  parity_detections : int;
  sensor_detections : int;
  mean_reexec_overhead : float;
      (** mean of (faulted-run steps / golden steps) − 1 over recovered
          runs ([0.0] when none recovered): the execution cost of rollback
          and re-execution *)
}

val reduce : outcome list -> campaign_report
(** Fold outcomes (in fault order) into a report. Sequential and
    deterministic: the floating-point overhead sum is accumulated in list
    order, so equal outcome lists give bit-equal reports. *)

val run_campaign :
  ?jobs:int ->
  ?config:Recovery.config ->
  ?plan:Snapshot.plan ->
  golden:Interp.state ->
  compiled:Turnpike_compiler.Pass_pipeline.t ->
  Fault.t list ->
  campaign_report
(** [Parallel.map_list run_one faults |> reduce]: every fault replays the
    interpreter independently on the domain pool ([?jobs] overrides the
    pool width, default the global [--jobs] setting), and the report is
    identical at any job count. [plan] forwards to {!run_one}. *)

(** {2 Sequential stopping}

    Instead of a fixed fault count, stream the seeded fault list in
    fixed-size batches and stop as soon as a Wilson score confidence
    interval on the SDC rate is narrow enough ("SDC rate ± 1% at 95%").
    Batch boundaries and fault order derive from the seeded list — never
    from wall-clock or completion order — so the stopping point and the
    final report are identical at any job count. *)

type stopping = {
  half_width : float;  (** target CI half-width on the SDC rate *)
  confidence : float;  (** e.g. [0.95] *)
  batch : int;  (** faults per sequential batch (also the parallel grain) *)
  min_faults : int;  (** never stop before this many faults *)
}

val default_stopping : stopping
(** ± 0.05 at 95% confidence, 32-fault batches, at least 64 faults. *)

val wilson_interval :
  confidence:float -> positives:int -> total:int -> float * float
(** Wilson score interval [(low, high)] for a binomial proportion; well
    behaved at zero observed positives (the Wald interval would collapse
    to zero width there and stop immediately). [(0, 1)] when [total <= 0].
    @raise Invalid_argument when [confidence] is outside (0,1). *)

type ci_report = {
  report : campaign_report;  (** over exactly the faults consumed *)
  sdc_rate : float;
  ci_low : float;
  ci_high : float;
  achieved_half_width : float;
  confidence : float;
  batches : int;  (** batches consumed before stopping *)
  exhausted : bool;
      (** the fault list ran dry before the target width was reached *)
  outcomes : outcome list;
      (** per-fault outcomes for exactly the consumed prefix, in fault
          order — the forensics layer attributes from these *)
}

val run_campaign_ci :
  ?jobs:int ->
  ?config:Recovery.config ->
  ?plan:Snapshot.plan ->
  ?stopping:stopping ->
  ?tel:Turnpike_telemetry.sink ->
  ?sink_for:(int -> Turnpike_telemetry.sink) ->
  golden:Interp.state ->
  compiled:Turnpike_compiler.Pass_pipeline.t ->
  Fault.t list ->
  ci_report
(** Run batches of [stopping.batch] faults (each fanned out on the domain
    pool) until the Wilson interval's half-width reaches
    [stopping.half_width] with at least [stopping.min_faults] consumed, or
    the list is exhausted. Deterministic at any [?jobs].

    [tel] receives one ["wilson_trajectory"] counter per consumed batch
    (args: batch index, consumed faults, running SDC / recovered counts,
    CI bounds and half-width), emitted by the sequential driver after the
    deterministic fold — so long campaigns are observable in flight and
    the trajectory is byte-identical at any job count. [sink_for i]
    supplies the forensic sink for the fault at absolute index [i] in
    [faults] (see {!run_one}).
    @raise Invalid_argument on non-positive [batch] or [half_width]. *)
