(** Region-transactional executor: the functional (architectural) model of
    Turnstile/Turnpike error containment and recovery.

    Quarantined stores are undo-logged per dynamic region and commit when
    the region verifies; WAR-free regular stores (CLQ decision) and colored
    checkpoint stores release immediately; a fault flips register bits
    mid-run and is detected by the sensors within the verification window —
    or immediately by register parity when a tainted register is about to
    address memory (paper §5). Detection rolls back every unverified
    region, restores the restart region's live-in registers from verified
    checkpoint storage (running pruning's reconstruction expressions) and
    resumes at the region head.

    Recovery correctness is an architectural property; the module is
    deliberately independent of the cycle-level timing model. *)

open Turnpike_ir
module Clq = Turnpike_arch.Clq
module Pass_pipeline = Turnpike_compiler.Pass_pipeline

type config = {
  verify_delay : int;  (** steps from region end to verification (WCDL stand-in) *)
  coloring : bool;
  clq : Clq.design option;
  nregs : int;
  unsafe_ckpt_release : bool;
      (** paper Fig 16: release checkpoints without coloring — intentionally
          unsound; exists to demonstrate why coloring is necessary *)
  honor_static_claims : bool;
      (** trust the pipeline's static release claims
          ({!Turnpike_compiler.Claims.t}): claimed WAR-free stores and
          direct-release checkpoints skip the quarantine — sound exactly
          when the claims are; the differential oracle feeds it wrong
          claims to cross-check the static checker dynamically *)
  fuel : int;
  max_recoveries : int;
}

val default_config : config
(** Turnpike hardware: coloring on, 2-entry compact CLQ. *)

val turnstile_config : config
(** No fast release at all: everything quarantines. *)

type detection = Sensor | Parity

type outcome = {
  state : Interp.state;
  recoveries : int;
  detections : detection list;
  fast_released_stores : int;
  colored_ckpts : int;
  quarantined_writes : int;
}

exception Recovery_failed of string

exception Out_of_fuel of { recoveries : int; steps : int }
(** The fuel budget ran out: [recoveries] recoveries had been performed and
    the interpreter had executed [steps] steps — enough for campaign triage
    to tell recovery livelock from a genuinely wedged program. *)

val run :
  ?fault:Fault.t ->
  ?faults:Fault.t list ->
  ?config:config ->
  ?tel:Turnpike_telemetry.sink ->
  Pass_pipeline.t ->
  outcome
(** Execute a compiled program, optionally injecting faults ([fault] and
    [faults] are merged and sorted by strike step; several faults may be
    in flight, each detected within the verification window). At exit all
    remaining verifications are drained: quarantined regions commit and
    buffered fallback checkpoints reach checkpoint storage, so the final
    memory is fully committed state.

    [tel] (default {!Turnpike_telemetry.null}) receives the forensic
    lifecycle of every injected fault, category ["forensics"]: a
    [strike] instant when the flip lands (args: [reg], [xor_mask],
    [at_step]), a [taint_use] instant at the first instruction consuming
    a tainted register, a [detect] instant when the sensor or parity path
    fires (args: [kind], [latency] in fault-free positions), a [rollback]
    instant plus a [reexec] complete-span when recovery restarts a region
    (args: [restart_region], [restart_block], [discarded_regions],
    [undone_writes], [rewind]), and a [reconverge] instant at the first
    step after recovery with no fault in flight, no pending detection and
    no live taint — from which the run's remainder is fully determined.
    Every event carries [ts] = dynamic step plus [pos] (fault-free
    position), [region] (open static region id, -1 when none) and the
    static ([func], [block], [index]) site. All stamps are deterministic
    functions of executor state: the stream is byte-identical across
    [--jobs] counts and across snapshot-forked vs from-scratch replays.
    @raise Recovery_failed when recovery cannot proceed (by design only
    reachable through [unsafe_ckpt_release] or broken compilation).
    @raise Out_of_fuel when the fuel budget is exhausted. *)

(** {2 Snapshot / fork support}

    A {e pilot} is a fault-free run that deep-copies the whole executor —
    interpreter registers/memory/pc plus region, quarantine, CLQ and
    coloring bookkeeping — every [every] steps. A faulted run forked from
    the snapshot nearest (at or before) its strike site produces exactly
    the outcome of a from-scratch {!run} with the same fault: the
    pre-strike prefix of the faulted run is identical to the pilot, and
    once the fault's effects have fully healed the fork recognises that its
    state has re-converged with a later pilot snapshot and adopts the
    pilot's suffix instead of re-executing it. *)

type snapshot

val snapshot_step : snapshot -> int
(** The fault-free step index (position) the snapshot was captured at. *)

val capture_pilot :
  ?config:config -> every:int -> Pass_pipeline.t -> outcome * snapshot array
(** Fault-free run capturing a snapshot every [every] steps, starting at
    step 0; snapshots are returned in ascending step order.
    @raise Invalid_argument when [every <= 0]. *)

val resume :
  ?config:config ->
  ?tel:Turnpike_telemetry.sink ->
  snapshots:snapshot array ->
  pilot_outcome:outcome ->
  from:snapshot ->
  fault:Fault.t ->
  Pass_pipeline.t ->
  outcome
(** Fork a single-fault run from [from] (which must satisfy
    [snapshot_step from <= fault.at_step]) recorded by a {!capture_pilot}
    of the same [config] and compiled program. The outcome's [state],
    [recoveries] and [detections] are byte-identical to
    [run ~fault ~config]; on a convergence early exit the release/ckpt
    counters reflect only the work the fork actually executed. [tel]
    receives the same forensic lifecycle events, byte-identical to the
    from-scratch run's (see {!run}): no event precedes the strike, and
    the reconvergence instant is a pure state predicate, so adopting the
    pilot suffix early loses nothing. *)
