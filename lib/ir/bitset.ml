(* Flat int-array bitsets, 62 usable bits per word (shifts stay clear of
   the OCaml int sign bit on every platform). *)

type t = int array

let bits_per_word = 62

let create ~max_id = Array.make ((max_id + bits_per_word + 1) / bits_per_word) 0

(* Out-of-universe ids read as absent: checks probe sets with ids taken
   from claims and recovery expressions, which hand-built (adversarial)
   IR can point anywhere. *)
let mem bs r =
  let w = r / bits_per_word in
  w < Array.length bs && bs.(w) land (1 lsl (r mod bits_per_word)) <> 0

let add bs r =
  bs.(r / bits_per_word) <- bs.(r / bits_per_word) lor (1 lsl (r mod bits_per_word))

let remove bs r =
  bs.(r / bits_per_word) <-
    bs.(r / bits_per_word) land lnot (1 lsl (r mod bits_per_word))

let copy = Array.copy

let equal (a : t) (b : t) = a = b

let union_into ~dst src =
  for w = 0 to Array.length dst - 1 do
    dst.(w) <- dst.(w) lor src.(w)
  done

let inter_into ~dst src =
  for w = 0 to Array.length dst - 1 do
    dst.(w) <- dst.(w) land src.(w)
  done

let transfer ~gen ~kill src =
  let out = Array.make (Array.length src) 0 in
  for w = 0 to Array.length src - 1 do
    out.(w) <- src.(w) land lnot kill.(w) lor gen.(w)
  done;
  out

let iter f bs =
  for w = 0 to Array.length bs - 1 do
    let word = bs.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let of_reg_set ~max_id s =
  let bs = create ~max_id in
  Reg.Set.iter (fun r -> add bs r) s;
  bs
