(** RISC-like three-address instructions.

    The instruction set is deliberately small: just enough to express the
    workloads, register-allocator spill code, Turnstile/Turnpike checkpoint
    stores ({!constructor:Ckpt}) and region boundaries
    ({!constructor:Boundary}). *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
[@@deriving show, eq, ord]

type cmp = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show, eq, ord]

type operand = Reg of Reg.t | Imm of int [@@deriving show, eq, ord]

(** Memory-operation provenance, used by the paper's store-breakdown
    accounting (Fig 23). *)
type mem_kind =
  | App_mem  (** application loads/stores *)
  | Spill_mem  (** register-allocator spill traffic *)
  | Ckpt_mem  (** checkpoint storage (recovery code reads it) *)
[@@deriving show, eq, ord]

type t =
  | Binop of binop * Reg.t * Reg.t * operand  (** [rd = ra op o] *)
  | Cmp of cmp * Reg.t * Reg.t * operand  (** [rd = (ra cmp o) ? 1 : 0] *)
  | Mov of Reg.t * operand  (** [rd = o] *)
  | Load of Reg.t * Reg.t * int * mem_kind  (** [rd = mem\[rb + off\]] *)
  | Store of Reg.t * Reg.t * int * mem_kind  (** [mem\[rb + off\] = rs] *)
  | Ckpt of Reg.t
      (** Checkpoint store of a live-out register to its checkpoint slot;
          the slot's color is resolved by the microarchitecture. *)
  | Boundary of int  (** Region boundary marker (static region id). *)
  | Nop
[@@deriving show, eq, ord]

val defs : t -> Reg.t list
(** Registers written. Writes to {!Reg.zero} are discarded. *)

val uses : t -> Reg.t list
(** Registers read. {!Reg.zero} never appears (it is the constant 0). *)

val iter_defs : (Reg.t -> unit) -> t -> unit
(** Allocation-free {!defs}: applies the callback to each written register
    in the same order [defs] lists them. *)

val iter_uses : (Reg.t -> unit) -> t -> unit
(** Allocation-free {!uses}, in the same order [uses] lists them. *)

val is_store : t -> bool
val is_ckpt : t -> bool
val is_load : t -> bool
val is_boundary : t -> bool

val is_sb_write : t -> bool
(** Instructions that occupy a store-buffer entry at commit: regular stores
    and checkpoint stores alike (paper §4.3). *)

val is_pure : t -> bool
(** No memory or region side effect; safe to reorder and rematerialize. *)

val eval_binop : binop -> int -> int -> int
(** Arithmetic semantics. Division/remainder by zero yield 0 so that fault
    injection can never crash the interpreter. *)

val eval_cmp : cmp -> int -> int -> int

val to_string : t -> string
val binop_to_string : binop -> string
val cmp_to_string : cmp -> string
val operand_to_string : operand -> string

val rename : (Reg.t -> Reg.t) -> t -> t
(** [rename f i] applies [f] to every register of [i] (defs and uses). *)
