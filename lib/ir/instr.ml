(* RISC-like three-address instructions. The set is deliberately small:
   just enough to express the workloads, register allocation (spills),
   Turnstile/Turnpike checkpointing, and region boundaries. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
[@@deriving show { with_path = false }, eq, ord]

type cmp = Eq | Ne | Lt | Le | Gt | Ge
[@@deriving show { with_path = false }, eq, ord]

type operand = Reg of Reg.t | Imm of int
[@@deriving show { with_path = false }, eq, ord]

(* Memory-operation provenance, used by the paper's store-breakdown
   accounting (Fig 23): application memory, register-allocator spill
   traffic, or checkpoint storage (only recovery code loads it). *)
type mem_kind = App_mem | Spill_mem | Ckpt_mem
[@@deriving show { with_path = false }, eq, ord]

type t =
  | Binop of binop * Reg.t * Reg.t * operand
  | Cmp of cmp * Reg.t * Reg.t * operand
  | Mov of Reg.t * operand
  | Load of Reg.t * Reg.t * int * mem_kind
  | Store of Reg.t * Reg.t * int * mem_kind
  | Ckpt of Reg.t
  | Boundary of int
  | Nop
[@@deriving show { with_path = false }, eq, ord]

let defs = function
  | Binop (_, d, _, _) | Cmp (_, d, _, _) | Mov (d, _) | Load (d, _, _, _) ->
    if Reg.is_zero d then [] else [ d ]
  | Store _ | Ckpt _ | Boundary _ | Nop -> []

let operand_uses = function Reg r when not (Reg.is_zero r) -> [ r ] | Reg _ | Imm _ -> []

let uses = function
  | Binop (_, _, a, o) | Cmp (_, _, a, o) ->
    (if Reg.is_zero a then [] else [ a ]) @ operand_uses o
  | Mov (_, o) -> operand_uses o
  | Load (_, b, _, _) -> if Reg.is_zero b then [] else [ b ]
  | Store (s, b, _, _) ->
    (if Reg.is_zero s then [] else [ s ])
    @ (if Reg.is_zero b then [] else [ b ])
  | Ckpt r -> [ r ]
  | Boundary _ | Nop -> []

(* Allocation-free variants of [defs]/[uses] for the per-pass checks,
   whose traversals visit every instruction several times per compile;
   visit order matches the list versions. *)
let iter_defs f = function
  | Binop (_, d, _, _) | Cmp (_, d, _, _) | Mov (d, _) | Load (d, _, _, _) ->
    if not (Reg.is_zero d) then f d
  | Store _ | Ckpt _ | Boundary _ | Nop -> ()

let iter_operand_use f = function
  | Reg r when not (Reg.is_zero r) -> f r
  | Reg _ | Imm _ -> ()

let iter_uses f = function
  | Binop (_, _, a, o) | Cmp (_, _, a, o) ->
    if not (Reg.is_zero a) then f a;
    iter_operand_use f o
  | Mov (_, o) -> iter_operand_use f o
  | Load (_, b, _, _) -> if not (Reg.is_zero b) then f b
  | Store (s, b, _, _) ->
    if not (Reg.is_zero s) then f s;
    if not (Reg.is_zero b) then f b
  | Ckpt r -> f r
  | Boundary _ | Nop -> ()

let is_store = function Store _ -> true | _ -> false

let is_ckpt = function Ckpt _ -> true | _ -> false

let is_load = function Load _ -> true | _ -> false

let is_boundary = function Boundary _ -> true | _ -> false

(* Stores that occupy a store-buffer entry at commit: regular stores and
   checkpoint stores alike (paper §4.3 classification). *)
let is_sb_write i = is_store i || is_ckpt i

let is_pure = function
  | Binop _ | Cmp _ | Mov _ | Nop -> true
  | Load _ | Store _ | Ckpt _ | Boundary _ -> false

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)

let eval_cmp c a b =
  let r =
    match c with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let operand_to_string = function
  | Reg r -> Reg.to_string r
  | Imm i -> string_of_int i

let mem_suffix = function App_mem -> "" | Spill_mem -> ".spill" | Ckpt_mem -> ".ckpt"

let to_string = function
  | Binop (op, d, a, o) ->
    Printf.sprintf "%s %s, %s, %s" (binop_to_string op) (Reg.to_string d)
      (Reg.to_string a) (operand_to_string o)
  | Cmp (c, d, a, o) ->
    Printf.sprintf "cmp%s %s, %s, %s" (cmp_to_string c) (Reg.to_string d)
      (Reg.to_string a) (operand_to_string o)
  | Mov (d, o) ->
    Printf.sprintf "mov %s, %s" (Reg.to_string d) (operand_to_string o)
  | Load (d, b, off, k) ->
    Printf.sprintf "ld%s %s, [%s, #%d]" (mem_suffix k) (Reg.to_string d)
      (Reg.to_string b) off
  | Store (s, b, off, k) ->
    Printf.sprintf "st%s %s, [%s, #%d]" (mem_suffix k) (Reg.to_string s)
      (Reg.to_string b) off
  | Ckpt r -> Printf.sprintf "ckpt %s" (Reg.to_string r)
  | Boundary id -> Printf.sprintf "--- region %d ---" id
  | Nop -> "nop"

let rename f = function
  | Binop (op, d, a, o) ->
    let o = match o with Reg r -> Reg (f r) | Imm _ as i -> i in
    Binop (op, f d, f a, o)
  | Cmp (c, d, a, o) ->
    let o = match o with Reg r -> Reg (f r) | Imm _ as i -> i in
    Cmp (c, f d, f a, o)
  | Mov (d, o) ->
    let o = match o with Reg r -> Reg (f r) | Imm _ as i -> i in
    Mov (f d, o)
  | Load (d, b, off, k) -> Load (f d, f b, off, k)
  | Store (s, b, off, k) -> Store (f s, f b, off, k)
  | Ckpt r -> Ckpt (f r)
  | (Boundary _ | Nop) as i -> i
