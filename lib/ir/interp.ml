(* Functional (architectural) interpreter. It defines the reference
   semantics used for correctness checks, produces dynamic traces for the
   timing model, and exposes a single-step API that the resilience engine
   drives for fault injection and region-restart recovery. *)

type pc = { block : string; index : int }

type state = {
  regs : (Reg.t, int) Hashtbl.t;
  mem : (int, int) Hashtbl.t;
  mutable pc : pc;
  mutable steps : int;
  mutable halted : bool;
}

exception Out_of_fuel

let get_reg st r = if Reg.is_zero r then 0 else Option.value (Hashtbl.find_opt st.regs r) ~default:0

let set_reg st r v = if not (Reg.is_zero r) then Hashtbl.replace st.regs r v

let get_mem st a = Option.value (Hashtbl.find_opt st.mem a) ~default:0

let set_mem st a v = Hashtbl.replace st.mem a v

let operand_value st = function
  | Instr.Reg r -> get_reg st r
  | Instr.Imm i -> i

let init (prog : Prog.t) =
  let st =
    {
      regs = Hashtbl.create 64;
      mem = Hashtbl.create 4096;
      pc = { block = prog.func.Func.entry; index = 0 };
      steps = 0;
      halted = false;
    }
  in
  List.iter (fun (a, v) -> set_mem st a v) prog.mem_init;
  (* Seed the base-color checkpoint slot of every initialised register: the
     initial architectural state counts as verified, so a rollback that
     restarts the entry region restores inputs instead of zeros. *)
  List.iter
    (fun (r, v) ->
      set_reg st r v;
      if not (Reg.is_zero r) then set_mem st (Layout.ckpt_slot ~reg:r ~color:0) v)
    prog.reg_init;
  st

let default_ckpt st r =
  set_mem st (Layout.ckpt_slot ~reg:r ~color:0) (get_reg st r)

type hooks = {
  on_ckpt : state -> Reg.t -> unit;
  on_boundary : state -> int -> unit;
  on_event : Trace.event -> unit;
  write_mem : state -> int -> int -> unit;
}

let no_hooks =
  {
    on_ckpt = default_ckpt;
    on_boundary = (fun _ _ -> ());
    on_event = (fun _ -> ());
    write_mem = set_mem;
  }

let exec_instr hooks st (i : Instr.t) =
  match i with
  | Binop (op, d, a, o) ->
    set_reg st d (Instr.eval_binop op (get_reg st a) (operand_value st o));
    hooks.on_event (Trace.Alu { dst = Some d; srcs = Instr.uses i })
  | Cmp (c, d, a, o) ->
    set_reg st d (Instr.eval_cmp c (get_reg st a) (operand_value st o));
    hooks.on_event (Trace.Alu { dst = Some d; srcs = Instr.uses i })
  | Mov (d, o) ->
    set_reg st d (operand_value st o);
    hooks.on_event (Trace.Alu { dst = Some d; srcs = Instr.uses i })
  | Load (d, b, off, kind) ->
    let addr = get_reg st b + off in
    set_reg st d (get_mem st addr);
    hooks.on_event (Trace.Load { dst = d; srcs = Instr.uses i; addr; kind })
  | Store (s, b, off, kind) ->
    let addr = get_reg st b + off in
    hooks.write_mem st addr (get_reg st s);
    let cls =
      match kind with
      | Instr.Spill_mem -> Trace.Regular_spill
      | Instr.App_mem | Instr.Ckpt_mem -> Trace.Regular_app
    in
    hooks.on_event (Trace.Store { srcs = Instr.uses i; addr; cls })
  | Ckpt r ->
    hooks.on_ckpt st r;
    hooks.on_event (Trace.Ckpt { src = r })
  | Boundary id ->
    hooks.on_boundary st id;
    hooks.on_event (Trace.Boundary { region = id })
  | Nop -> hooks.on_event (Trace.Alu { dst = None; srcs = [] })

let step ?(hooks = no_hooks) ?fallthrough func st =
  if st.halted then ()
  else begin
    let b = Func.block func st.pc.block in
    let n = Array.length b.Block.body in
    if st.pc.index < n then begin
      exec_instr hooks st b.Block.body.(st.pc.index);
      st.pc <- { st.pc with index = st.pc.index + 1 };
      st.steps <- st.steps + 1
    end
    else begin
      (* A control transfer to the layout successor is a fall-through: no
         fetch redirect, and for an unconditional jump not even an
         instruction (region-boundary block splits are PC markers, not
         code). *)
      let falls_to l =
        match fallthrough with
        | Some tbl -> (
          match Hashtbl.find_opt tbl st.pc.block with
          | Some next -> String.equal next l
          | None -> false)
        | None -> (
          match Func.fallthrough_of func st.pc.block with
          | Some next -> String.equal next l
          | None -> false)
      in
      let site = Hashtbl.hash st.pc.block in
      (match b.Block.term with
      | Block.Jump l ->
        if not (falls_to l) then
          hooks.on_event (Trace.Branch { srcs = []; taken = true; pc = site });
        st.pc <- { block = l; index = 0 }
      | Block.Branch (r, l1, l2) ->
        let target = if get_reg st r <> 0 then l1 else l2 in
        hooks.on_event
          (Trace.Branch { srcs = [ r ]; taken = not (falls_to target); pc = site });
        st.pc <- { block = target; index = 0 }
      | Block.Ret -> st.halted <- true);
      st.steps <- st.steps + 1
    end
  end

let run ?(fuel = 10_000_000) ?hooks (prog : Prog.t) =
  let st = init prog in
  let fallthrough = Func.fallthrough_table prog.func in
  let budget = ref fuel in
  while (not st.halted) && !budget > 0 do
    step ?hooks ~fallthrough prog.func st;
    decr budget
  done;
  if not st.halted then raise Out_of_fuel;
  st

let trace_run ?(fuel = 1_000_000) (prog : Prog.t) =
  let events = ref [] and n = ref 0 in
  let hooks =
    {
      no_hooks with
      on_event =
        (fun e ->
          events := e :: !events;
          incr n);
    }
  in
  let st = init prog in
  let fallthrough = Func.fallthrough_table prog.func in
  let budget = ref fuel in
  while (not st.halted) && !budget > 0 do
    step ~hooks ~fallthrough prog.func st;
    decr budget
  done;
  let trace =
    { Trace.events = Array.of_list (List.rev !events); complete = st.halted }
  in
  (trace, st)

let mem_equal a b =
  (* Treat absent bindings as zero on both sides. *)
  let ok = ref true in
  let check m m' = Hashtbl.iter (fun k v -> if v <> 0 && Option.value (Hashtbl.find_opt m' k) ~default:0 <> v then ok := false) m in
  check a.mem b.mem;
  check b.mem a.mem;
  !ok

let app_mem_equal a b =
  (* Like [mem_equal] but restricted to the application data segment:
     checkpoint slots legitimately differ across resilience schemes. *)
  let ok = ref true in
  let relevant k = not (Layout.is_ckpt_addr k) in
  let check m m' =
    Hashtbl.iter
      (fun k v ->
        if relevant k && v <> 0
           && Option.value (Hashtbl.find_opt m' k) ~default:0 <> v
        then ok := false)
      m
  in
  check a.mem b.mem;
  check b.mem a.mem;
  !ok
