(* Reconstruction expressions for pruned checkpoints. At recovery time a
   pruned register is recomputed from constants and the checkpoint slots of
   other registers instead of being loaded from its own slot. *)

type t =
  | Const of int
  | Slot of Reg.t (* verified checkpoint slot of a register *)
  | Op of Instr.binop * t * t
  | Cmp of Instr.cmp * t * t
  | Select of t * t * t
      (* Select (c, a, b): the value is [a] when [c] is nonzero, else [b] —
         the branch of the recovery block in the paper's Fig 9, where a
         pruned register reconstructs differently per predicate arm. *)
[@@deriving show { with_path = false }, eq]

let rec eval ~read_slot = function
  | Const c -> c
  | Slot r -> read_slot r
  | Op (op, a, b) -> Instr.eval_binop op (eval ~read_slot a) (eval ~read_slot b)
  | Cmp (c, a, b) -> Instr.eval_cmp c (eval ~read_slot a) (eval ~read_slot b)
  | Select (c, a, b) ->
    if eval ~read_slot c <> 0 then eval ~read_slot a else eval ~read_slot b

let rec slots = function
  | Const _ -> []
  | Slot r -> [ r ]
  | Op (_, a, b) | Cmp (_, a, b) -> slots a @ slots b
  | Select (c, a, b) -> slots c @ slots a @ slots b

let rec depth = function
  | Const _ | Slot _ -> 1
  | Op (_, a, b) | Cmp (_, a, b) -> 1 + max (depth a) (depth b)
  | Select (c, a, b) -> 1 + max (depth c) (max (depth a) (depth b))

let rec to_string = function
  | Const c -> string_of_int c
  | Slot r -> Printf.sprintf "slot(%s)" (Reg.to_string r)
  | Op (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (Instr.binop_to_string op) (to_string b)
  | Cmp (c, a, b) ->
    Printf.sprintf "(%s cmp%s %s)" (to_string a) (Instr.cmp_to_string c) (to_string b)
  | Select (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (to_string c) (to_string a) (to_string b)
