(** Reconstruction expressions for pruned checkpoints (paper §4.1.3).

    At recovery time a pruned register is recomputed from constants and the
    verified checkpoint slots of other registers instead of being loaded
    from its own slot. *)

type t =
  | Const of int
  | Slot of Reg.t  (** read the verified checkpoint slot of a register *)
  | Op of Instr.binop * t * t
  | Cmp of Instr.cmp * t * t
  | Select of t * t * t
      (** [Select (c, a, b)] is [a] when [c] evaluates nonzero, else [b] —
          the recovery-block branch of the paper's Fig 9, where a pruned
          register reconstructs differently per predicate arm. *)
[@@deriving show, eq]

val eval : read_slot:(Reg.t -> int) -> t -> int

val slots : t -> Reg.t list
(** Registers whose checkpoint slots the expression reads. *)

val depth : t -> int
val to_string : t -> string
