(** Dense integer bitsets for register dataflow.

    Register ids are small dense integers ({!Reg.t}), so the
    fixpoint-heavy checks (definite assignment, checkpoint coverage) run
    their transfer functions on flat int-array bitsets instead of tree
    sets: set algebra becomes a short word loop with no allocation, which
    matters when the per-pass engine re-runs a check after most passes.

    Sets are mutable and sized at creation for a fixed id universe
    [0..max_id]; operations over two sets require them to come from the
    same universe (same creation width). *)

type t
(** A mutable set of integers in a fixed universe. *)

val create : max_id:int -> t
(** Empty set able to hold ids [0..max_id]. *)

val mem : t -> int -> bool
(** False for ids outside the universe (checks probe with ids taken from
    claims, which adversarial IR can point anywhere). *)

val add : t -> int -> unit
(** The id must be within the universe the set was created for. *)

val remove : t -> int -> unit
(** Same universe requirement as {!add}. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same elements (same-universe sets only). *)

val union_into : dst:t -> t -> unit
(** [dst := dst ∪ src]. *)

val inter_into : dst:t -> t -> unit
(** [dst := dst ∩ src]. *)

val transfer : gen:t -> kill:t -> t -> t
(** [(src \ kill) ∪ gen], freshly allocated — the classic dataflow block
    transfer. *)

val iter : (int -> unit) -> t -> unit
(** Applies the callback to every member, in increasing order. *)

val of_reg_set : max_id:int -> Reg.Set.t -> t
(** Bitset view of a register set (ids above [max_id] are the caller's
    bug, as with {!add}). *)
