(* Classic backward liveness over registers, plus a per-instruction view
   used by checkpoint insertion and pruning. *)

type t = {
  live_in : (string, Reg.Set.t) Hashtbl.t;
  live_out : (string, Reg.Set.t) Hashtbl.t;
}

let block_use_def (b : Block.t) =
  (* use = read before any write in the block (terminator included). *)
  let use = ref Reg.Set.empty and def = ref Reg.Set.empty in
  Array.iter
    (fun i ->
      List.iter
        (fun r -> if not (Reg.Set.mem r !def) then use := Reg.Set.add r !use)
        (Instr.uses i);
      List.iter (fun r -> def := Reg.Set.add r !def) (Instr.defs i))
    b.Block.body;
  List.iter
    (fun r -> if not (Reg.Set.mem r !def) then use := Reg.Set.add r !use)
    (Block.term_uses b);
  (!use, !def)

(* The fixpoint runs on {!Bitset}s over a compacted id universe —
   physical registers keep their ids, virtuals are shifted down next to
   them — and only the converged sets are materialized as the public
   tree-set view. Compilation recomputes liveness after most
   instruction-editing passes (and the per-pass checker does so again),
   which makes the fixpoint itself the hot path. *)
let compute cfg func =
  let max_phys = ref 0 in
  let max_virt = ref (-1) in
  let span r =
    if Reg.is_virtual r then (if r > !max_virt then max_virt := r)
    else if r > !max_phys then max_phys := r
  in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          Instr.iter_defs span i;
          Instr.iter_uses span i)
        b.Block.body;
      List.iter span (Block.term_uses b))
    func;
  let gap = !max_phys + 1 in
  let rid r = if Reg.is_virtual r then r - Reg.virt_base + gap else r in
  let inv id = if id < gap then id else id - gap + Reg.virt_base in
  let maxid =
    if !max_virt < 0 then !max_phys else gap + (!max_virt - Reg.virt_base)
  in
  let use_def = Hashtbl.create 64 in
  let in_bs = Hashtbl.create 64 and out_bs = Hashtbl.create 64 in
  Func.iter_blocks
    (fun b ->
      let use = Bitset.create ~max_id:maxid in
      let def = Bitset.create ~max_id:maxid in
      Array.iter
        (fun i ->
          Instr.iter_uses
            (fun r ->
              let r = rid r in
              if not (Bitset.mem def r) then Bitset.add use r)
            i;
          Instr.iter_defs (fun r -> Bitset.add def (rid r)) i)
        b.Block.body;
      List.iter
        (fun r ->
          let r = rid r in
          if not (Bitset.mem def r) then Bitset.add use r)
        (Block.term_uses b);
      Hashtbl.replace use_def b.Block.label (use, def);
      Hashtbl.replace in_bs b.Block.label (Bitset.create ~max_id:maxid);
      Hashtbl.replace out_bs b.Block.label (Bitset.create ~max_id:maxid))
    func;
  let changed = ref true in
  let order = Cfg.postorder cfg in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let out = Bitset.create ~max_id:maxid in
        List.iter
          (fun s ->
            match Hashtbl.find_opt in_bs s with
            | Some bs -> Bitset.union_into ~dst:out bs
            | None -> ())
          (Cfg.successors cfg l);
        let use, def = Hashtbl.find use_def l in
        let inn = Bitset.transfer ~gen:use ~kill:def out in
        if not (Bitset.equal out (Hashtbl.find out_bs l)) then begin
          Hashtbl.replace out_bs l out;
          changed := true
        end;
        if not (Bitset.equal inn (Hashtbl.find in_bs l)) then begin
          Hashtbl.replace in_bs l inn;
          changed := true
        end)
      order
  done;
  let to_set bs =
    let acc = ref Reg.Set.empty in
    Bitset.iter (fun id -> acc := Reg.Set.add (inv id) !acc) bs;
    !acc
  in
  let live_in = Hashtbl.create 64 and live_out = Hashtbl.create 64 in
  Hashtbl.iter (fun l bs -> Hashtbl.replace live_in l (to_set bs)) in_bs;
  Hashtbl.iter (fun l bs -> Hashtbl.replace live_out l (to_set bs)) out_bs;
  { live_in; live_out }

let live_in t l = Option.value (Hashtbl.find_opt t.live_in l) ~default:Reg.Set.empty

let live_out t l = Option.value (Hashtbl.find_opt t.live_out l) ~default:Reg.Set.empty

let live_before_each t (b : Block.t) =
  (* live.(i) = registers live immediately before instruction i. The array
     has one extra slot: live.(n) is liveness before the terminator. *)
  let n = Array.length b.body in
  let live = Array.make (n + 1) Reg.Set.empty in
  let after_term = live_out t b.label in
  let before_term =
    List.fold_left (fun acc r -> Reg.Set.add r acc) after_term (Block.term_uses b)
  in
  live.(n) <- before_term;
  for i = n - 1 downto 0 do
    let ins = b.body.(i) in
    let s = live.(i + 1) in
    let s = List.fold_left (fun acc r -> Reg.Set.remove r acc) s (Instr.defs ins) in
    let s = List.fold_left (fun acc r -> Reg.Set.add r acc) s (Instr.uses ins) in
    live.(i) <- s
  done;
  live
