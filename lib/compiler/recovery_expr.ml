(* Compatibility alias: the type moved into the IR library so the analysis
   layer (which depends only on turnpike.ir) can validate reconstruction
   expressions. Existing users of [Turnpike_compiler.Recovery_expr] keep
   working, with type equality preserved by the include. *)

include Turnpike_ir.Recovery_expr
