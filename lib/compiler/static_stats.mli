(** Static (compile-time) counters emitted by the pass pipeline; they feed
    the paper's store-breakdown (Fig 23), checkpoint-ratio (Fig 4) and
    code-size (Fig 26) analyses. *)

type t = {
  mutable regions : int;
  mutable ckpts_inserted : int;  (** eager checkpoints before any removal *)
  mutable ckpts_pruned : int;  (** removed by optimal checkpoint pruning *)
  mutable ckpts_licm_moved : int;  (** sunk out of a loop by LICM *)
  mutable ckpts_licm_eliminated : int;  (** deduplicated after LICM sinking *)
  mutable livm_merged_ivs : int;  (** induction variables merged by LIVM *)
  mutable livm_ckpts_eliminated : int;
  mutable spill_stores : int;  (** static spill stores emitted by regalloc *)
  mutable spill_loads : int;
  mutable spilled_vregs : int;
  mutable sched_moved : int;  (** checkpoints delayed by instruction scheduling *)
  mutable base_code_size : int;  (** instructions before resilience transforms *)
  mutable code_size : int;  (** instructions after the full pipeline *)
}

val create : unit -> t

val copy : t -> t
(** Snapshot the current counter values (the pass profiler diffs a copy
    taken before a pass against the live record after it). *)

val to_assoc : t -> (string * int) list
(** Every counter as [(field_name, value)], in declaration order. *)

val diff : before:t -> after:t -> (string * int) list
(** The non-zero counter deltas between two snapshots — what one compile
    pass contributed, attached to its profiling span. *)

val code_size_increase : t -> float
(** Percent code-size increase over the baseline (paper Fig 26). *)

val to_json : t -> string
(** One-line JSON object mirroring {!Turnpike_arch.Sim_stats.to_json}:
    every counter plus the derived [code_size_increase_percent]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
