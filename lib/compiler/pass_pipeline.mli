(** The full compile pipeline (paper Fig 7):

    [LIVM] → register allocation (optionally store-aware) → SB-aware
    partitioning + eager checkpointing (iterated to respect the store
    budget) → [checkpoint pruning] → [LICM sinking] → [checkpoint-aware
    scheduling] → recovery metadata.

    Bracketed phases are the Turnpike compiler optimizations; disabling
    them all yields exactly Turnstile's code; [resilient = false] yields
    the plain baseline binary every figure normalizes against.

    The pass sequence is declared once: {!pass_names}, the telemetry span
    names and the per-pass check provenance all derive from the same
    list. *)

open Turnpike_ir

type opts = {
  nregs : int;
  sb_size : int;  (** store-buffer size the partitioner targets *)
  resilient : bool;  (** false = no regions, no checkpoints *)
  unroll : int;
      (** counted-loop unroll factor (1 = off); applied to every scheme
          equally, like the -O3 unrolling it stands for *)
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  sched_separation : int;
}

val baseline_opts : opts
val turnstile_opts : opts
val turnpike_opts : opts

(** How much static checking {!compile} performs: [Off] none, [Final] the
    whole-program registry once on the compiled result, [PerPass] the
    registry between every pass — each new diagnostic is attributed to the
    pass that introduced it, and pair checks (induction-variable merge
    audit, scheduling dependence preservation) compare before/after
    snapshots. [PerPass] is incremental: each pass declares the IR facets
    it may dirty and only the checks reading those facets re-run, with the
    analysis context's derived analyses carried across passes.
    [PerPassFull] forces the pre-incremental behavior — every check after
    every pass on a fresh context — and must produce byte-identical
    diagnostics (the redundant re-runs are deduplicated by provenance);
    it exists as the oracle the incremental engine is diffed against. *)
type check_level = Off | Final | PerPass | PerPassFull

type region_info = {
  id : int;
  head : string;  (** region head block (recovery-PC anchor) *)
  live_in : Reg.t list;  (** registers to restore when restarting here *)
}

type t = {
  prog : Prog.t;  (** physical-register program with markers in place *)
  opts : opts;
  regions : region_info array;
  recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
      (** reconstruction for pruned checkpoints *)
  claims : Claims.t;
      (** static release claims the checker audits (empty when
          non-resilient) *)
  diags : Turnpike_analysis.Diag.t list;
      (** diagnostics from the requested {!check_level} (empty for [Off]) *)
  check_log : (string * string list) list;
      (** per-pass-mode audit trail: for ["<input>"], then each executed
          pass (and ["<final>"] under [Final]), the checks that actually
          ran — what [lint --explain] prints. Empty for [Off]. *)
  stats : Static_stats.t;
}

val pass_names : opts -> string list
(** The exact pass sequence {!compile} runs for these options, in order —
    the profiling span per compile is one per name here. *)

val pass_dirties : opts -> (string * Turnpike_analysis.Facet.Set.t) list
(** The enabled passes paired with the facet sets they declare they may
    dirty — the contract the incremental registry schedules by. *)

val pass_reads : opts -> (string * Turnpike_analysis.Facet.Set.t) list
(** The enabled passes paired with the facet sets their own
    transformations depend on — the contract {!resolve_pipeline}
    validates user-composed pipelines against. *)

val resolve_pipeline : opts:opts -> string -> (string list, string) result
(** Parse and validate a user [--pipeline] spec against [opts],
    returning the ordered pass list to hand to {!compile}'s [pipeline]
    argument. Three spec forms:

    - ["default"] — the canonical sequence {!pass_names} runs;
    - removals, e.g. ["-licm_sink,-scheduling"] — the canonical
      sequence minus the named passes;
    - an explicit ordered list, e.g. ["regalloc,partition_and_checkpoint,
      region_metadata"] — exactly those passes, in that order.

    The two last forms cannot be mixed. A spec is rejected (with a
    diagnostic naming the offending pass) when it names an unknown or
    duplicated pass, a pass disabled by [opts], drops a mandatory pass
    ([regalloc]; plus [partition_and_checkpoint] and [region_metadata]
    under a resilient scheme), or orders passes unsoundly: for passes
    [P] canonically before [Q], if [P] may dirty a facet [Q] reads
    (per {!pass_dirties}/{!pass_reads}), [Q] cannot run before [P]. *)

val compile :
  ?opts:opts ->
  ?tel:Turnpike_telemetry.sink ->
  ?check:check_level ->
  ?pipeline:string list ->
  Prog.t ->
  t
(** Compile a virtual-register program. The input program is not mutated.

    [tel] (default {!Turnpike_telemetry.null}) receives one wall-clock
    span per executed pass (category ["compiler"], names per
    {!pass_names}), each carrying the non-zero {!Static_stats} deltas that
    pass contributed as args.

    [check] (default [Off]) runs the static-analysis registry on the
    pipeline state; results land in {!field-diags}.

    [pipeline] (default: the canonical enabled sequence) runs exactly
    the named passes in the given order. Pass a list vetted by
    {!resolve_pipeline}; an invalid list raises [Invalid_argument]
    with the same diagnostic [resolve_pipeline] would return. *)

val analysis_context : ?pass:string -> t -> Turnpike_analysis.Context.t
(** Analysis context over the compiled result (claims and recovery
    expressions included) — for running additional registry passes, e.g.
    with machine parameters via
    {!Turnpike_analysis.Context.with_machine}. *)

val region_info : t -> int -> region_info option
