(* Loop induction variable merging (paper §4.1.2) — one of Turnpike's two
   novel compiler optimizations.

   Strength reduction turns address expressions into separate basic
   induction variables; each such variable is loop-carried, hence live-out
   of every iteration region and checkpointed every iteration. LIVM merges
   a basic induction variable [r2] (init B, step s2) into another basic
   induction variable [r1] (init 0, step s1, s1 | s2) by recomputing
   [r2 = B + r1 * (s2/s1)] locally at each use — the loop-carried
   dependence (and with it the per-iteration checkpoint) disappears.

   Runs before register allocation, on virtual registers. *)

open Turnpike_ir

type merge = {
  victim : Reg.t;
  anchor : Reg.t;
  ratio : int;
  m_base : [ `Const of int | `Reg of Reg.t ];
  header : string;
}

type result = { func : Func.t; merged : int; merges : merge list }

type iv = {
  reg : Reg.t;
  step : int;
  inc_block : string;
  init_block : string;
  init : [ `Const of int | `Reg of Reg.t ];
}

let find_loop_ivs func cfg dom loops (lp : Loop_info.loop) =
  let in_loop l = List.exists (String.equal l) lp.Loop_info.blocks in
  (* Pre-header: the unique predecessor of the header outside the loop. *)
  let preheader =
    match List.filter (fun p -> not (in_loop p)) (Cfg.predecessors cfg lp.Loop_info.header) with
    | [ p ] -> Some p
    | _ -> None
  in
  match preheader with
  | None -> []
  | Some ph ->
    (* Defs per register inside the loop. *)
    let defs_in_loop : (Reg.t, (string * Instr.t) list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun l ->
        Array.iter
          (fun i ->
            List.iter
              (fun d ->
                Hashtbl.replace defs_in_loop d
                  ((l, i) :: Option.value (Hashtbl.find_opt defs_in_loop d) ~default:[]))
              (Instr.defs i))
          (Func.block func l).Block.body)
      lp.Loop_info.blocks;
    let last_def_in_block label r =
      let b = Func.block func label in
      Array.fold_left
        (fun acc i -> if List.mem r (Instr.defs i) then Some i else acc)
        None b.Block.body
    in
    let ivs = ref [] in
    Hashtbl.iter
      (fun r defs ->
        match defs with
        | [ (l, Instr.Binop (Instr.Add, d, a, Instr.Imm step)) ]
          when Reg.equal d r && Reg.equal a r
               && List.for_all
                    (fun latch -> Dominance.dominates dom ~dom:l ~sub:latch)
                    lp.Loop_info.latches ->
          (* Initialization reaching the header from the pre-header. *)
          (match last_def_in_block ph r with
          | Some (Instr.Mov (_, Instr.Imm c)) ->
            ivs := { reg = r; step; inc_block = l; init_block = ph; init = `Const c } :: !ivs
          | Some (Instr.Mov (_, Instr.Reg base)) when not (Hashtbl.mem defs_in_loop base) ->
            ivs := { reg = r; step; inc_block = l; init_block = ph; init = `Reg base } :: !ivs
          | Some _ | None -> ())
        | _ -> ())
      defs_in_loop;
    ignore loops;
    !ivs

(* r2 merges into r1 when r1 starts at 0 and r1's step divides r2's. *)
let mergeable ~anchor:r1 ~victim:r2 =
  r1.init = `Const 0 && r2.step <> 0 && r1.step <> 0
  && r2.step mod r1.step = 0
  && r2.step / r1.step > 0
  && not (Reg.equal r1.reg r2.reg)

let run func =
  let cfg = Cfg.build func in
  let dom = Dominance.compute cfg in
  let loops = Loop_info.compute cfg dom in
  let live = Liveness.compute cfg func in
  let merged = ref 0 in
  let merges = ref [] in
  let fresh =
    let next = ref (Func.max_reg func + 1) in
    fun () ->
      let r = max !next Reg.virt_base in
      next := r + 1;
      r
  in
  List.iter
    (fun (lp : Loop_info.loop) ->
      let in_loop l = List.exists (String.equal l) lp.Loop_info.blocks in
      let ivs = find_loop_ivs func cfg dom loops lp in
      (* Pick the anchor: a zero-initialized IV with the smallest step. *)
      let anchors = List.filter (fun iv -> iv.init = `Const 0) ivs in
      match
        List.sort (fun a b -> compare (abs a.step) (abs b.step)) anchors
      with
      | [] -> ()
      | anchor :: _ ->
        List.iter
          (fun victim ->
            if mergeable ~anchor ~victim then begin
              (* The victim must not escape the loop. *)
              let escapes =
                List.exists
                  (fun (_, target) ->
                    Reg.Set.mem victim.reg (Liveness.live_in live target))
                  (Loop_info.exits loops cfg lp.Loop_info.header)
              in
              (* Profitability: never merge an induction variable used as a
                 load base — the recompute would lengthen the load's
                 address path, which in-order pipelines cannot hide. Store
                 addresses are off the critical path, so store-base IVs
                 merge freely (they are also the ones whose checkpoints
                 pressure the store buffer). *)
              let feeds_a_load =
                List.exists
                  (fun l ->
                    in_loop l
                    && Array.exists
                         (fun i ->
                           match i with
                           | Instr.Load (_, base, _, _) -> Reg.equal base victim.reg
                           | _ -> false)
                         (Func.block func l).Block.body)
                  lp.Loop_info.blocks
              in
              if (not escapes) && not feeds_a_load then begin
                let ratio = victim.step / anchor.step in
                let base_operand =
                  match victim.init with
                  | `Const c -> Instr.Imm c
                  | `Reg b -> Instr.Reg b
                in
                (* Rewrite each in-loop use of the victim (except its own
                   increment, which is deleted) to a locally recomputed
                   value: t = anchor * ratio + base. *)
                let ok = ref true in
                let rewritten = ref [] in
                List.iter
                  (fun l ->
                    if in_loop l then begin
                      let b = Func.block func l in
                      let out = ref [] in
                      (* The recomputed value is CSE'd within the block: it
                         stays valid until the anchor (or the base register)
                         is redefined. *)
                      let cached = ref None in
                      let invalidates i =
                        List.exists
                          (fun d ->
                            Reg.equal d anchor.reg
                            ||
                            match base_operand with
                            | Instr.Reg base -> Reg.equal d base
                            | Instr.Imm _ -> false)
                          (Instr.defs i)
                      in
                      let recomputed () =
                        match !cached with
                        | Some t2 -> t2
                        | None ->
                          let t1 = fresh () and t2 = fresh () in
                          (* Prefer a 1-cycle shift for power-of-two ratios,
                             as real code generation would. *)
                          let scale =
                            if ratio land (ratio - 1) = 0 then
                              let rec log2 n acc =
                                if n <= 1 then acc else log2 (n / 2) (acc + 1)
                              in
                              Instr.Binop
                                (Instr.Shl, t1, anchor.reg, Instr.Imm (log2 ratio 0))
                            else Instr.Binop (Instr.Mul, t1, anchor.reg, Instr.Imm ratio)
                          in
                          out := Instr.Binop (Instr.Add, t2, t1, base_operand) :: scale :: !out;
                          cached := Some t2;
                          t2
                      in
                      Array.iter
                        (fun i ->
                          (match i with
                          | Instr.Binop (Instr.Add, d, a, Instr.Imm s)
                            when Reg.equal d victim.reg && Reg.equal a victim.reg
                                 && s = victim.step ->
                            () (* drop the increment *)
                          | _ when List.mem victim.reg (Instr.defs i) ->
                            (* Unexpected extra definition: bail out. *)
                            ok := false;
                            out := i :: !out
                          | _ when List.mem victim.reg (Instr.uses i) ->
                            let t2 = recomputed () in
                            out :=
                              Instr.rename
                                (fun r -> if Reg.equal r victim.reg then t2 else r)
                                i
                              :: !out
                          | _ -> out := i :: !out);
                          if invalidates i then cached := None)
                        b.Block.body;
                      rewritten := (b, List.rev !out) :: !rewritten;
                      (match b.Block.term with
                      | Block.Branch (r, _, _) when Reg.equal r victim.reg -> ok := false
                      | Block.Branch _ | Block.Jump _ | Block.Ret -> ())
                    end)
                  lp.Loop_info.blocks;
                if !ok then begin
                  List.iter (fun (b, body) -> Block.set_body b body) !rewritten;
                  incr merged;
                  merges :=
                    {
                      victim = victim.reg;
                      anchor = anchor.reg;
                      ratio;
                      m_base = victim.init;
                      header = lp.Loop_info.header;
                    }
                    :: !merges
                end
              end
            end)
          ivs)
    (Loop_info.loops loops);
  { func; merged = !merged; merges = List.rev !merges }
