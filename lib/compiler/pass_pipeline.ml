(* The full compile pipeline (paper Fig 7):

     [LIVM] -> register allocation [store-aware] ->
     SB-aware partitioning + eager checkpointing (iterated to respect the
     store budget) -> [checkpoint pruning] -> [LICM sinking] ->
     [checkpoint-aware scheduling] -> recovery metadata

   Bracketed phases are the Turnpike optimizations; disabling them all
   yields exactly Turnstile's code.

   The pass sequence is declared once, in [passes]: the public
   [pass_names], the telemetry span names and the per-pass check
   provenance all derive from that single list. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry
module Analysis = Turnpike_analysis

type opts = {
  nregs : int;
  sb_size : int; (* store-buffer size the partitioner targets *)
  resilient : bool; (* false = plain baseline code (no regions/ckpts) *)
  unroll : int; (* counted-loop unroll factor (1 = off); applied to every
                   scheme equally, like the -O3 unrolling it stands for *)
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  sched_separation : int;
}

let baseline_opts =
  {
    nregs = 32;
    sb_size = 4;
    resilient = false;
    unroll = 1;
    store_aware_ra = false;
    livm = false;
    pruning = false;
    licm = false;
    sched = false;
    sched_separation = Scheduling.default_separation;
  }

let turnstile_opts = { baseline_opts with resilient = true }

let turnpike_opts =
  {
    turnstile_opts with
    store_aware_ra = true;
    livm = true;
    pruning = true;
    licm = true;
    sched = true;
  }

type check_level = Off | Final | PerPass

type region_info = { id : int; head : string; live_in : Reg.t list }

type t = {
  prog : Prog.t;
  opts : opts;
  regions : region_info array;
  recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  claims : Claims.t;
  diags : Analysis.Diag.t list;
  stats : Static_stats.t;
}

let count_code_size func =
  Func.fold_instrs
    (fun acc i -> if Instr.is_boundary i then acc else acc + 1)
    0 func

(* Partitioning and checkpoint insertion feed each other: checkpoints are
   stores, so they count against the region store budget, but they can only
   be placed once regions exist. Iterate until the worst region path fits
   the budget (or the budget bottoms out at 1). *)
let partition_and_checkpoint func ~sb_size ~entry_live stats =
  let target = max 1 (sb_size / 2) in
  (* Each round partitions with the previous round's checkpoints still in
     place (so they count against the store budget), then re-inserts
     checkpoints relative to the new boundaries. The budget tightens when
     re-partitioning alone stops making progress. *)
  let rec attempt budget iter =
    ignore (Regions.partition ~budget func);
    ignore (Checkpoint.strip func);
    let _, inserted = Checkpoint.insert ~entry_live func in
    let structure = Regions.of_func func in
    let worst = Regions.worst_region_path func structure in
    if worst <= target || iter >= 8 then begin
      stats.Static_stats.ckpts_inserted <- inserted;
      stats.Static_stats.regions <- Regions.num_regions structure;
      structure
    end
    else
      (* Re-partitioning with checkpoints visible usually fixes overfull
         regions by splitting them locally; only tighten the global budget
         once that has had a couple of chances. *)
      let budget = if iter >= 2 && budget > 1 then budget - 1 else budget in
      attempt budget (iter + 1)
  in
  attempt target 0

let live_in_table func regions =
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  List.map
    (fun (r : Regions.region) ->
      {
        id = r.Regions.id;
        head = r.Regions.head;
        live_in =
          Reg.Set.elements
            (Reg.Set.filter
               (fun x -> not (Reg.is_zero x))
               (Liveness.live_in live r.Regions.head));
      })
    (Regions.regions regions)

(* Mutable pipeline state threaded through the declared pass list. *)
type env = {
  mutable prog : Prog.t;
  stats : Static_stats.t;
  mutable recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  mutable regions : region_info array;
  mutable claims : Claims.t;
  mutable regalloc_done : bool;
  e_opts : opts;
}

(* THE declared pass list. [pass_names], the telemetry span names and the
   per-pass check provenance all come from here — never restate a pass
   name elsewhere. *)
let passes : (string * (opts -> bool) * (env -> unit)) list =
  [
    ( "unroll",
      (fun o -> o.unroll > 1),
      fun env -> ignore (Unroll.run ~factor:env.e_opts.unroll env.prog.Prog.func) );
    ( "livm",
      (fun o -> o.livm),
      fun env ->
        let r = Livm.run env.prog.Prog.func in
        env.stats.Static_stats.livm_merged_ivs <- r.Livm.merged );
    ( "regalloc",
      (fun _ -> true),
      fun env ->
        let ra_config =
          {
            Regalloc.default_config with
            nregs = env.e_opts.nregs;
            store_aware = env.e_opts.store_aware_ra;
          }
        in
        let func = env.prog.Prog.func in
        let ra = Regalloc.run ~config:ra_config func in
        env.stats.Static_stats.spill_stores <- ra.Regalloc.spill_stores;
        env.stats.Static_stats.spill_loads <- ra.Regalloc.spill_loads;
        env.stats.Static_stats.spilled_vregs <- ra.Regalloc.spilled_vregs;
        let reg_init, extra_mem = Regalloc.remap_inputs ra env.prog.Prog.reg_init in
        env.prog <-
          {
            env.prog with
            Prog.reg_init;
            mem_init = env.prog.Prog.mem_init @ extra_mem;
          };
        env.stats.Static_stats.base_code_size <- count_code_size func;
        env.regalloc_done <- true );
    ( "partition_and_checkpoint",
      (fun o -> o.resilient),
      fun env ->
        let entry_live = List.map fst env.prog.Prog.reg_init in
        ignore
          (partition_and_checkpoint env.prog.Prog.func ~sb_size:env.e_opts.sb_size
             ~entry_live env.stats) );
    ( "pruning",
      (fun o -> o.resilient && o.pruning),
      fun env ->
        let r = Pruning.run env.prog.Prog.func in
        env.stats.Static_stats.ckpts_pruned <- r.Pruning.pruned;
        env.recovery_exprs <- r.Pruning.exprs );
    ( "licm_sink",
      (fun o -> o.resilient && o.licm),
      fun env ->
        let r = Licm_sink.run env.prog.Prog.func in
        env.stats.Static_stats.ckpts_licm_moved <- r.Licm_sink.moved;
        env.stats.Static_stats.ckpts_licm_eliminated <- r.Licm_sink.eliminated );
    ( "scheduling",
      (fun o -> o.resilient && o.sched),
      fun env ->
        let r = Scheduling.run ~separation:env.e_opts.sched_separation env.prog.Prog.func in
        env.stats.Static_stats.sched_moved <- r.Scheduling.moved );
    ( "region_metadata",
      (fun o -> o.resilient),
      fun env ->
        let func = env.prog.Prog.func in
        env.stats.Static_stats.code_size <- count_code_size func;
        let structure = Regions.of_func func in
        let infos = live_in_table func structure in
        let regions = Array.of_list infos in
        Array.sort (fun a b -> compare a.id b.id) regions;
        env.regions <- regions;
        env.claims <- Claims.compute func );
  ]

let pass_names (opts : opts) =
  List.filter_map (fun (name, enabled, _) -> if enabled opts then Some name else None) passes

(* Run one pass under a wall-clock profiling span whose args carry the
   [Static_stats] delta the pass contributed (category ["compiler"]). With
   a disabled sink this is just [f ()]: no snapshot, no clock reads. *)
let run_pass tel stats name f =
  if not (Telemetry.enabled tel) then f ()
  else begin
    let before = Static_stats.copy stats in
    let start = Telemetry.span_start tel in
    let v = f () in
    let args =
      List.map
        (fun (k, d) -> (k, Telemetry.Int d))
        (Static_stats.diff ~before ~after:stats)
    in
    Telemetry.span_finish tel ~start ~cat:"compiler" ~args name;
    v
  end

let context_of ?pass ~prog ~(opts : opts) ~recovery_exprs ~claims ~regalloc_done () =
  let exprs =
    Hashtbl.fold (fun r e acc -> (r, e) :: acc) recovery_exprs []
    |> List.sort (fun (a, _) (b, _) -> Reg.compare a b)
  in
  let claims =
    Option.map
      (fun (c : Claims.t) ->
        {
          Analysis.Context.bypass_stores = c.Claims.bypass_stores;
          direct_ckpts = c.Claims.direct_ckpts;
        })
      claims
  in
  Analysis.Context.make
    ~entry_defined:(Reg.Set.of_list (List.map fst prog.Prog.reg_init))
    ~nregs:opts.nregs
    ~allow_virtual:(not regalloc_done)
    ~resilient:opts.resilient ~sb_size:opts.sb_size ~recovery_exprs:exprs ?claims
    ?pass prog.Prog.func

let analysis_context ?pass (t : t) =
  context_of ?pass ~prog:t.prog ~opts:t.opts ~recovery_exprs:t.recovery_exprs
    ~claims:(Some t.claims) ~regalloc_done:true ()

let compile ?(opts = turnstile_opts) ?(tel = Telemetry.null) ?(check = Off)
    (prog : Prog.t) =
  let stats = Static_stats.create () in
  let prog = Prog.with_func prog (Func.copy prog.Prog.func) in
  let env =
    {
      prog;
      stats;
      recovery_exprs = Hashtbl.create 0;
      regions = [||];
      claims = Claims.empty;
      regalloc_done = false;
      e_opts = opts;
    }
  in
  let diags = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let claims_of env =
    (* Claims only exist once region_metadata has computed them; before
       that the checker has nothing to audit. *)
    if env.claims == Claims.empty then None else Some env.claims
  in
  let env_context ?pass env =
    context_of ?pass ~prog:env.prog ~opts:env.e_opts
      ~recovery_exprs:env.recovery_exprs ~claims:(claims_of env)
      ~regalloc_done:env.regalloc_done ()
  in
  let run_whole ?pass env =
    let ds = Analysis.Registry.run_whole (env_context ?pass env) in
    diags := !diags @ Analysis.Registry.fresh ~seen ds
  in
  (* In per-pass mode, violations already present in the input carry no
     pass provenance; anything that appears later is attributed to the
     first pass after which the registry reports it. *)
  if check = PerPass then run_whole env;
  List.iter
    (fun (name, enabled, action) ->
      if enabled opts then begin
        let snapshot =
          if check = PerPass && List.mem name Analysis.Registry.pair_passes then
            Some (Func.copy env.prog.Prog.func)
          else None
        in
        run_pass tel stats name (fun () -> action env);
        if check = PerPass then begin
          (match snapshot with
          | Some before ->
            let ds =
              Analysis.Registry.run_pair ~pass:name ~before
                (env_context ~pass:name env)
            in
            diags := !diags @ Analysis.Registry.fresh ~seen ds
          | None -> ());
          run_whole ~pass:name env
        end
      end)
    passes;
  if check = Final then run_whole env;
  if not opts.resilient then
    stats.Static_stats.code_size <- stats.Static_stats.base_code_size;
  {
    prog = env.prog;
    opts;
    regions = env.regions;
    recovery_exprs = env.recovery_exprs;
    claims = env.claims;
    diags = Analysis.Diag.sort !diags;
    stats;
  }

let region_info (t : t) id =
  if id < 0 || id >= Array.length t.regions then None
  else
    (* Region infos are sorted by id and ids are dense. *)
    let r = t.regions.(id) in
    if r.id = id then Some r
    else Array.find_opt (fun r -> r.id = id) t.regions
