(* The full compile pipeline (paper Fig 7):

     [LIVM] -> register allocation [store-aware] ->
     SB-aware partitioning + eager checkpointing (iterated to respect the
     store budget) -> [checkpoint pruning] -> [LICM sinking] ->
     [checkpoint-aware scheduling] -> recovery metadata

   Bracketed phases are the Turnpike optimizations; disabling them all
   yields exactly Turnstile's code. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry

type opts = {
  nregs : int;
  sb_size : int; (* store-buffer size the partitioner targets *)
  resilient : bool; (* false = plain baseline code (no regions/ckpts) *)
  unroll : int; (* counted-loop unroll factor (1 = off); applied to every
                   scheme equally, like the -O3 unrolling it stands for *)
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  sched_separation : int;
}

let baseline_opts =
  {
    nregs = 32;
    sb_size = 4;
    resilient = false;
    unroll = 1;
    store_aware_ra = false;
    livm = false;
    pruning = false;
    licm = false;
    sched = false;
    sched_separation = Scheduling.default_separation;
  }

let turnstile_opts = { baseline_opts with resilient = true }

let turnpike_opts =
  {
    turnstile_opts with
    store_aware_ra = true;
    livm = true;
    pruning = true;
    licm = true;
    sched = true;
  }

type region_info = { id : int; head : string; live_in : Reg.t list }

type t = {
  prog : Prog.t;
  opts : opts;
  regions : region_info array;
  recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  stats : Static_stats.t;
}

let count_code_size func =
  Func.fold_instrs
    (fun acc i -> if Instr.is_boundary i then acc else acc + 1)
    0 func

(* Partitioning and checkpoint insertion feed each other: checkpoints are
   stores, so they count against the region store budget, but they can only
   be placed once regions exist. Iterate until the worst region path fits
   the budget (or the budget bottoms out at 1). *)
let partition_and_checkpoint func ~sb_size ~entry_live stats =
  let target = max 1 (sb_size / 2) in
  (* Each round partitions with the previous round's checkpoints still in
     place (so they count against the store budget), then re-inserts
     checkpoints relative to the new boundaries. The budget tightens when
     re-partitioning alone stops making progress. *)
  let rec attempt budget iter =
    ignore (Regions.partition ~budget func);
    ignore (Checkpoint.strip func);
    let _, inserted = Checkpoint.insert ~entry_live func in
    let structure = Regions.of_func func in
    let worst = Regions.worst_region_path func structure in
    if worst <= target || iter >= 8 then begin
      stats.Static_stats.ckpts_inserted <- inserted;
      stats.Static_stats.regions <- Regions.num_regions structure;
      structure
    end
    else
      (* Re-partitioning with checkpoints visible usually fixes overfull
         regions by splitting them locally; only tighten the global budget
         once that has had a couple of chances. *)
      let budget = if iter >= 2 && budget > 1 then budget - 1 else budget in
      attempt budget (iter + 1)
  in
  attempt target 0

let live_in_table func regions =
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  List.map
    (fun (r : Regions.region) ->
      {
        id = r.Regions.id;
        head = r.Regions.head;
        live_in =
          Reg.Set.elements
            (Reg.Set.filter
               (fun x -> not (Reg.is_zero x))
               (Liveness.live_in live r.Regions.head));
      })
    (Regions.regions regions)

(* The exact pass sequence [compile] runs for [opts], in order. The
   per-pass profiling spans use these names, so
   [List.length (pass_names opts)] equals the span count of a compile. *)
let pass_names (opts : opts) =
  (if opts.unroll > 1 then [ "unroll" ] else [])
  @ (if opts.livm then [ "livm" ] else [])
  @ [ "regalloc" ]
  @
  if not opts.resilient then []
  else
    [ "partition_and_checkpoint" ]
    @ (if opts.pruning then [ "pruning" ] else [])
    @ (if opts.licm then [ "licm_sink" ] else [])
    @ (if opts.sched then [ "scheduling" ] else [])
    @ [ "region_metadata" ]

(* Run one pass under a wall-clock profiling span whose args carry the
   [Static_stats] delta the pass contributed (category ["compiler"]). With
   a disabled sink this is just [f ()]: no snapshot, no clock reads. *)
let run_pass tel stats name f =
  if not (Telemetry.enabled tel) then f ()
  else begin
    let before = Static_stats.copy stats in
    let start = Telemetry.span_start tel in
    let v = f () in
    let args =
      List.map
        (fun (k, d) -> (k, Telemetry.Int d))
        (Static_stats.diff ~before ~after:stats)
    in
    Telemetry.span_finish tel ~start ~cat:"compiler" ~args name;
    v
  end

let compile ?(opts = turnstile_opts) ?(tel = Telemetry.null) (prog : Prog.t) =
  let stats = Static_stats.create () in
  let prog = Prog.with_func prog (Func.copy prog.Prog.func) in
  let func = prog.Prog.func in
  (* Phase 0: generic -O3-style unrolling (all schemes equally). *)
  if opts.unroll > 1 then
    run_pass tel stats "unroll" (fun () ->
        ignore (Unroll.run ~factor:opts.unroll func));
  (* Phase 1a: loop induction variable merging (virtual registers). *)
  if opts.livm then
    run_pass tel stats "livm" (fun () ->
        let r = Livm.run func in
        stats.Static_stats.livm_merged_ivs <- r.Livm.merged);
  (* Phase 1b: register allocation. *)
  let prog =
    run_pass tel stats "regalloc" (fun () ->
        let ra_config =
          {
            Regalloc.default_config with
            nregs = opts.nregs;
            store_aware = opts.store_aware_ra;
          }
        in
        let ra = Regalloc.run ~config:ra_config func in
        stats.Static_stats.spill_stores <- ra.Regalloc.spill_stores;
        stats.Static_stats.spill_loads <- ra.Regalloc.spill_loads;
        stats.Static_stats.spilled_vregs <- ra.Regalloc.spilled_vregs;
        let reg_init, extra_mem = Regalloc.remap_inputs ra prog.Prog.reg_init in
        let prog =
          { prog with Prog.reg_init; mem_init = prog.Prog.mem_init @ extra_mem }
        in
        stats.Static_stats.base_code_size <- count_code_size func;
        prog)
  in
  if not opts.resilient then begin
    stats.Static_stats.code_size <- stats.Static_stats.base_code_size;
    {
      prog;
      opts;
      regions = [||];
      recovery_exprs = Hashtbl.create 0;
      stats;
    }
  end
  else begin
    (* Phase 2: regions + eager checkpoints. *)
    run_pass tel stats "partition_and_checkpoint" (fun () ->
        let entry_live = List.map fst prog.Prog.reg_init in
        ignore
          (partition_and_checkpoint func ~sb_size:opts.sb_size ~entry_live stats));
    (* Phase 3: checkpoint pruning. *)
    let recovery_exprs =
      if opts.pruning then
        run_pass tel stats "pruning" (fun () ->
            let r = Pruning.run func in
            stats.Static_stats.ckpts_pruned <- r.Pruning.pruned;
            r.Pruning.exprs)
      else Hashtbl.create 0
    in
    (* Phase 4: LICM checkpoint sinking. *)
    if opts.licm then
      run_pass tel stats "licm_sink" (fun () ->
          let r = Licm_sink.run func in
          stats.Static_stats.ckpts_licm_moved <- r.Licm_sink.moved;
          stats.Static_stats.ckpts_licm_eliminated <- r.Licm_sink.eliminated);
    (* Phase 5: checkpoint-aware scheduling. *)
    if opts.sched then
      run_pass tel stats "scheduling" (fun () ->
          let r = Scheduling.run ~separation:opts.sched_separation func in
          stats.Static_stats.sched_moved <- r.Scheduling.moved);
    (* Phase 6: recovery metadata. *)
    let regions =
      run_pass tel stats "region_metadata" (fun () ->
          stats.Static_stats.code_size <- count_code_size func;
          let structure = Regions.of_func func in
          let infos = live_in_table func structure in
          let regions = Array.of_list infos in
          Array.sort (fun a b -> compare a.id b.id) regions;
          regions)
    in
    { prog; opts; regions; recovery_exprs; stats }
  end

let region_info t id =
  if id < 0 || id >= Array.length t.regions then None
  else
    (* Region infos are sorted by id and ids are dense. *)
    let r = t.regions.(id) in
    if r.id = id then Some r
    else Array.find_opt (fun r -> r.id = id) t.regions
