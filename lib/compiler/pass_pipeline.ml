(* The full compile pipeline (paper Fig 7):

     [LIVM] -> register allocation [store-aware] ->
     SB-aware partitioning + eager checkpointing (iterated to respect the
     store budget) -> [checkpoint pruning] -> [LICM sinking] ->
     [checkpoint-aware scheduling] -> recovery metadata

   Bracketed phases are the Turnpike optimizations; disabling them all
   yields exactly Turnstile's code.

   The pass sequence is declared once, in [passes]: the public
   [pass_names], the telemetry span names and the per-pass check
   provenance all derive from that single list. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry
module Analysis = Turnpike_analysis

type opts = {
  nregs : int;
  sb_size : int; (* store-buffer size the partitioner targets *)
  resilient : bool; (* false = plain baseline code (no regions/ckpts) *)
  unroll : int; (* counted-loop unroll factor (1 = off); applied to every
                   scheme equally, like the -O3 unrolling it stands for *)
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  sched_separation : int;
}

let baseline_opts =
  {
    nregs = 32;
    sb_size = 4;
    resilient = false;
    unroll = 1;
    store_aware_ra = false;
    livm = false;
    pruning = false;
    licm = false;
    sched = false;
    sched_separation = Scheduling.default_separation;
  }

let turnstile_opts = { baseline_opts with resilient = true }

let turnpike_opts =
  {
    turnstile_opts with
    store_aware_ra = true;
    livm = true;
    pruning = true;
    licm = true;
    sched = true;
  }

type check_level = Off | Final | PerPass | PerPassFull

type region_info = { id : int; head : string; live_in : Reg.t list }

type t = {
  prog : Prog.t;
  opts : opts;
  regions : region_info array;
  recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  claims : Claims.t;
  diags : Analysis.Diag.t list;
  check_log : (string * string list) list;
  stats : Static_stats.t;
}

let count_code_size func =
  Func.fold_instrs
    (fun acc i -> if Instr.is_boundary i then acc else acc + 1)
    0 func

(* Partitioning and checkpoint insertion feed each other: checkpoints are
   stores, so they count against the region store budget, but they can only
   be placed once regions exist. Iterate until the worst region path fits
   the budget (or the budget bottoms out at 1). *)
let partition_and_checkpoint func ~sb_size ~entry_live stats =
  let target = max 1 (sb_size / 2) in
  (* Each round partitions with the previous round's checkpoints still in
     place (so they count against the store budget), then re-inserts
     checkpoints relative to the new boundaries. The budget tightens when
     re-partitioning alone stops making progress. *)
  let rec attempt budget iter =
    ignore (Regions.partition ~budget func);
    ignore (Checkpoint.strip func);
    let _, inserted = Checkpoint.insert ~entry_live func in
    let structure = Regions.of_func func in
    let worst = Regions.worst_region_path func structure in
    if worst <= target || iter >= 8 then begin
      stats.Static_stats.ckpts_inserted <- inserted;
      stats.Static_stats.regions <- Regions.num_regions structure;
      structure
    end
    else
      (* Re-partitioning with checkpoints visible usually fixes overfull
         regions by splitting them locally; only tighten the global budget
         once that has had a couple of chances. *)
      let budget = if iter >= 2 && budget > 1 then budget - 1 else budget in
      attempt budget (iter + 1)
  in
  attempt target 0

let live_in_table func regions =
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  List.map
    (fun (r : Regions.region) ->
      {
        id = r.Regions.id;
        head = r.Regions.head;
        live_in =
          Reg.Set.elements
            (Reg.Set.filter
               (fun x -> not (Reg.is_zero x))
               (Liveness.live_in live r.Regions.head));
      })
    (Regions.regions regions)

(* Mutable pipeline state threaded through the declared pass list. *)
type env = {
  mutable prog : Prog.t;
  stats : Static_stats.t;
  mutable recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  mutable regions : region_info array;
  mutable claims : Claims.t;
  mutable iv_merges : Livm.merge list;
  mutable regalloc_done : bool;
  e_opts : opts;
}

type pass = {
  pname : string;
  enabled : opts -> bool;
  enable_hint : string;
      (* what the options must provide for this pass to be available;
         quoted by the pipeline-spec validator's diagnostics *)
  dirties : Analysis.Facet.Set.t;
      (* facets the pass may touch — the incremental registry re-runs
         exactly the checks whose read sets intersect these. Declare
         conservatively: a spurious facet only costs a redundant
         re-check, a missing one would silently drop diagnostics
         (tools/check.sh pins incremental ≡ full re-check output). *)
  reads : Analysis.Facet.Set.t;
      (* facets the pass's own transformation depends on. User-composed
         pipelines are validated against these: for passes P, Q in
         canonical order, if P may dirty a facet Q reads, then no user
         pipeline may run Q before P. *)
  action : env -> bool;
      (* returns whether the pass changed anything. A pass that reports
         [false] charges no dirty facets at all — its round of checks is
         skipped entirely. The report must be honest in the same sense
         the facet declaration must: claiming no-change while mutating
         would drop diagnostics, and the incremental ≡ full-re-check diff
         would catch it. *)
}

let facets = Analysis.Facet.Set.of_list

(* THE declared pass list. [pass_names], the telemetry span names, the
   per-pass check provenance and the dirty-facet charging all come from
   here — never restate a pass name elsewhere. *)
let passes : pass list =
  [
    {
      pname = "unroll";
      enabled = (fun o -> o.unroll > 1);
      enable_hint = "an unroll factor > 1";
      (* replicates loop bodies in place; the block set and terminators
         are untouched *)
      dirties = facets [ Analysis.Facet.Instrs ];
      reads = facets [ Analysis.Facet.Cfg_shape; Analysis.Facet.Instrs ];
      action =
        (fun env ->
          let r = Unroll.run ~factor:env.e_opts.unroll env.prog.Prog.func in
          r.Unroll.unrolled > 0);
    };
    {
      pname = "livm";
      enabled = (fun o -> o.livm);
      enable_hint = "the LIVM optimization (on under the turnpike scheme)";
      dirties = facets [ Analysis.Facet.Instrs ];
      reads = facets [ Analysis.Facet.Cfg_shape; Analysis.Facet.Instrs ];
      action =
        (fun env ->
          let r = Livm.run env.prog.Prog.func in
          env.stats.Static_stats.livm_merged_ivs <- r.Livm.merged;
          env.iv_merges <- r.Livm.merges;
          r.Livm.merged > 0);
    };
    {
      pname = "regalloc";
      enabled = (fun _ -> true);
      enable_hint = "(always available)";
      dirties = facets [ Analysis.Facet.Instrs; Analysis.Facet.Reg_classes ];
      reads = facets [ Analysis.Facet.Cfg_shape; Analysis.Facet.Instrs ];
      action =
        (fun env ->
          let ra_config =
            {
              Regalloc.default_config with
              nregs = env.e_opts.nregs;
              store_aware = env.e_opts.store_aware_ra;
            }
          in
          let func = env.prog.Prog.func in
          let ra = Regalloc.run ~config:ra_config func in
          env.stats.Static_stats.spill_stores <- ra.Regalloc.spill_stores;
          env.stats.Static_stats.spill_loads <- ra.Regalloc.spill_loads;
          env.stats.Static_stats.spilled_vregs <- ra.Regalloc.spilled_vregs;
          let reg_init, extra_mem = Regalloc.remap_inputs ra env.prog.Prog.reg_init in
          env.prog <-
            {
              env.prog with
              Prog.reg_init;
              mem_init = env.prog.Prog.mem_init @ extra_mem;
            };
          env.stats.Static_stats.base_code_size <- count_code_size func;
          env.regalloc_done <- true;
          true);
    };
    {
      pname = "partition_and_checkpoint";
      enabled = (fun o -> o.resilient);
      enable_hint = "a resilient scheme (turnstile or turnpike)";
      dirties =
        facets
          [
            Analysis.Facet.Cfg_shape;
            Analysis.Facet.Instrs;
            Analysis.Facet.Boundaries;
          ];
      reads =
        facets
          [
            Analysis.Facet.Cfg_shape;
            Analysis.Facet.Instrs;
            Analysis.Facet.Reg_classes;
          ];
      action =
        (fun env ->
          let entry_live = List.map fst env.prog.Prog.reg_init in
          ignore
            (partition_and_checkpoint env.prog.Prog.func
               ~sb_size:env.e_opts.sb_size ~entry_live env.stats);
          true);
    };
    {
      pname = "pruning";
      enabled = (fun o -> o.resilient && o.pruning);
      enable_hint = "a resilient scheme with pruning on (turnpike)";
      dirties =
        facets [ Analysis.Facet.Instrs; Analysis.Facet.Recovery_exprs ];
      reads =
        facets
          [
            Analysis.Facet.Instrs;
            Analysis.Facet.Boundaries;
            Analysis.Facet.Reg_classes;
          ];
      action =
        (fun env ->
          let r = Pruning.run env.prog.Prog.func in
          env.stats.Static_stats.ckpts_pruned <- r.Pruning.pruned;
          env.recovery_exprs <- r.Pruning.exprs;
          r.Pruning.pruned > 0 || Hashtbl.length r.Pruning.exprs > 0);
    };
    {
      pname = "licm_sink";
      enabled = (fun o -> o.resilient && o.licm);
      enable_hint = "a resilient scheme with LICM sinking on (turnpike)";
      dirties = facets [ Analysis.Facet.Instrs ];
      reads =
        facets
          [
            Analysis.Facet.Cfg_shape;
            Analysis.Facet.Instrs;
            Analysis.Facet.Boundaries;
            Analysis.Facet.Reg_classes;
          ];
      action =
        (fun env ->
          let r = Licm_sink.run env.prog.Prog.func in
          env.stats.Static_stats.ckpts_licm_moved <- r.Licm_sink.moved;
          env.stats.Static_stats.ckpts_licm_eliminated <- r.Licm_sink.eliminated;
          r.Licm_sink.moved > 0 || r.Licm_sink.eliminated > 0);
    };
    {
      pname = "scheduling";
      enabled = (fun o -> o.resilient && o.sched);
      enable_hint = "a resilient scheme with scheduling on (turnpike)";
      (* the scheduler only permutes within blocks, preserving every
         dependence (sched-deps audits this), so block-level dataflow —
         the liveness cache in particular — survives the pass *)
      dirties = facets [ Analysis.Facet.Instr_order ];
      reads =
        facets
          [
            Analysis.Facet.Instrs;
            Analysis.Facet.Boundaries;
            Analysis.Facet.Reg_classes;
          ];
      action =
        (fun env ->
          let r =
            Scheduling.run ~separation:env.e_opts.sched_separation
              env.prog.Prog.func
          in
          env.stats.Static_stats.sched_moved <- r.Scheduling.moved;
          r.Scheduling.moved > 0);
    };
    {
      pname = "region_metadata";
      enabled = (fun o -> o.resilient);
      enable_hint = "a resilient scheme (turnstile or turnpike)";
      dirties = facets [ Analysis.Facet.Claims ];
      reads =
        facets
          [
            Analysis.Facet.Cfg_shape;
            Analysis.Facet.Instrs;
            Analysis.Facet.Instr_order;
            Analysis.Facet.Boundaries;
            Analysis.Facet.Recovery_exprs;
            Analysis.Facet.Reg_classes;
          ];
      action =
        (fun env ->
          let func = env.prog.Prog.func in
          env.stats.Static_stats.code_size <- count_code_size func;
          let structure = Regions.of_func func in
          let infos = live_in_table func structure in
          let regions = Array.of_list infos in
          Array.sort (fun a b -> compare a.id b.id) regions;
          env.regions <- regions;
          env.claims <- Claims.compute func;
          true);
    };
  ]

let pass_names (opts : opts) =
  List.filter_map
    (fun p -> if p.enabled opts then Some p.pname else None)
    passes

let pass_dirties (opts : opts) =
  List.filter_map
    (fun p -> if p.enabled opts then Some (p.pname, p.dirties) else None)
    passes

let pass_reads (opts : opts) =
  List.filter_map
    (fun p -> if p.enabled opts then Some (p.pname, p.reads) else None)
    passes

(* --- user-composable pipelines ------------------------------------ *)

let all_pass_names = List.map (fun p -> p.pname) passes

let find_pass name = List.find_opt (fun p -> String.equal p.pname name) passes

let canonical_index name =
  let rec go i = function
    | [] -> -1
    | p :: rest -> if String.equal p.pname name then i else go (i + 1) rest
  in
  go 0 passes

(* Passes the rest of the system cannot do without: the interpreter
   needs physical registers, and every resilient consumer (regions
   array, claims, recovery metadata) needs partitioning + metadata. *)
let mandatory (opts : opts) =
  "regalloc"
  :: (if opts.resilient then [ "partition_and_checkpoint"; "region_metadata" ]
      else [])

(* Check an ordered pass-name list against the options and the
   dirties/reads contracts. Soundness rule: for passes P, Q where P
   precedes Q canonically and P may dirty a facet Q reads, every user
   pipeline containing both must also run P before Q. *)
let validate_pipeline ~(opts : opts) names =
  let rec first_error = function
    | [] -> None
    | x :: _ when find_pass x = None ->
      Some
        (Printf.sprintf "unknown pass `%s' (passes: %s)" x
           (String.concat ", " all_pass_names))
    | x :: rest when List.exists (String.equal x) rest ->
      Some (Printf.sprintf "pass `%s' listed twice" x)
    | x :: rest -> (
      match find_pass x with
      | Some p when not (p.enabled opts) ->
        Some
          (Printf.sprintf
             "pass `%s' is disabled by the current options (it requires %s)" x
             p.enable_hint)
      | _ -> first_error rest)
  in
  match first_error names with
  | Some msg -> Error msg
  | None -> (
    match
      List.find_opt (fun m -> not (List.exists (String.equal m) names)) (mandatory opts)
    with
    | Some m ->
      Error
        (Printf.sprintf
           "pass `%s' is mandatory under the current options and cannot be dropped"
           m)
    | None ->
      (* ordering: look for a canonically-later pass placed before a
         canonically-earlier one it depends on *)
      let rec check_order = function
        | [] -> Ok names
        | q :: rest -> (
          let qi = canonical_index q in
          let violation =
            List.find_opt
              (fun p ->
                canonical_index p < qi
                &&
                let pp = Option.get (find_pass p) in
                let qq = Option.get (find_pass q) in
                not
                  (Analysis.Facet.Set.is_empty
                     (Analysis.Facet.Set.inter pp.dirties qq.reads)))
              rest
          in
          match violation with
          | Some p ->
            let pp = Option.get (find_pass p) in
            let qq = Option.get (find_pass q) in
            Error
              (Printf.sprintf
                 "pass `%s' must run before `%s': `%s' may dirty %s, which \
                  `%s' reads"
                 p q p
                 (Analysis.Facet.set_to_string
                    (Analysis.Facet.Set.inter pp.dirties qq.reads))
                 q)
          | None -> check_order rest)
      in
      check_order names)

let resolve_pipeline ~(opts : opts) spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match items with
  | [] ->
    Error
      "empty --pipeline spec; use \"default\", \"-pass,...\" removals, or an \
       explicit comma-separated pass list"
  | [ "default" ] -> Ok (pass_names opts)
  | _ ->
    let removals, keeps =
      List.partition (fun s -> String.length s > 0 && s.[0] = '-') items
    in
    if removals <> [] && keeps <> [] then
      Error
        "cannot mix `-pass' removals with an explicit pass list; use one \
         form or the other"
    else if List.exists (String.equal "default") keeps then
      Error "`default' cannot be combined with other passes"
    else
      let names =
        if removals <> [] then begin
          let removed =
            List.map (fun s -> String.sub s 1 (String.length s - 1)) removals
          in
          match List.find_opt (fun r -> find_pass r = None) removed with
          | Some r ->
            Error
              (Printf.sprintf "unknown pass `-%s' (passes: %s)" r
                 (String.concat ", " all_pass_names))
          | None ->
            Ok
              (List.filter
                 (fun n -> not (List.exists (String.equal n) removed))
                 (pass_names opts))
        end
        else Ok keeps
      in
      Result.bind names (validate_pipeline ~opts)

(* Run one pass under a wall-clock profiling span whose args carry the
   [Static_stats] delta the pass contributed (category ["compiler"]). With
   a disabled sink this is just [f ()]: no snapshot, no clock reads. *)
let run_pass tel stats name f =
  if not (Telemetry.enabled tel) then f ()
  else begin
    let before = Static_stats.copy stats in
    let start = Telemetry.span_start tel in
    let v = f () in
    let args =
      List.map
        (fun (k, d) -> (k, Telemetry.Int d))
        (Static_stats.diff ~before ~after:stats)
    in
    Telemetry.span_finish tel ~start ~cat:"compiler" ~args name;
    v
  end

let sorted_exprs recovery_exprs =
  Hashtbl.fold (fun r e acc -> (r, e) :: acc) recovery_exprs []
  |> List.sort (fun (a, _) (b, _) -> Reg.compare a b)

let conv_claims claims =
  Option.map
    (fun (c : Claims.t) ->
      {
        Analysis.Context.bypass_stores = c.Claims.bypass_stores;
        direct_ckpts = c.Claims.direct_ckpts;
      })
    claims

let conv_merges merges =
  List.map
    (fun (m : Livm.merge) ->
      {
        Analysis.Context.victim = m.Livm.victim;
        anchor = m.Livm.anchor;
        ratio = m.Livm.ratio;
        iv_base = m.Livm.m_base;
        header = m.Livm.header;
      })
    merges

let context_of ?pass ?(iv_merges = []) ~prog ~(opts : opts) ~recovery_exprs
    ~claims ~regalloc_done () =
  Analysis.Context.make
    ~entry_defined:(Reg.Set.of_list (List.map fst prog.Prog.reg_init))
    ~nregs:opts.nregs
    ~allow_virtual:(not regalloc_done)
    ~resilient:opts.resilient ~sb_size:opts.sb_size
    ~recovery_exprs:(sorted_exprs recovery_exprs)
    ?claims:(conv_claims claims) ~iv_merges:(conv_merges iv_merges) ?pass
    prog.Prog.func

let analysis_context ?pass (t : t) =
  context_of ?pass ~prog:t.prog ~opts:t.opts ~recovery_exprs:t.recovery_exprs
    ~claims:(Some t.claims) ~regalloc_done:true ()

let compile ?(opts = turnstile_opts) ?(tel = Telemetry.null) ?(check = Off)
    ?pipeline (prog : Prog.t) =
  let pass_seq =
    match pipeline with
    | None -> List.filter (fun p -> p.enabled opts) passes
    | Some names -> (
      match validate_pipeline ~opts names with
      | Ok names ->
        List.map (fun n -> Option.get (find_pass n)) names
      | Error msg -> invalid_arg ("Pass_pipeline.compile: " ^ msg))
  in
  let stats = Static_stats.create () in
  let prog = Prog.with_func prog (Func.copy prog.Prog.func) in
  let env =
    {
      prog;
      stats;
      recovery_exprs = Hashtbl.create 0;
      regions = [||];
      claims = Claims.empty;
      iv_merges = [];
      regalloc_done = false;
      e_opts = opts;
    }
  in
  let diags = ref [] in
  let check_log = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let claims_of env =
    (* Claims only exist once region_metadata has computed them; before
       that the checker has nothing to audit. *)
    if env.claims == Claims.empty then None else Some env.claims
  in
  let env_context ?pass env =
    context_of ?pass ~iv_merges:env.iv_merges ~prog:env.prog ~opts:env.e_opts
      ~recovery_exprs:env.recovery_exprs ~claims:(claims_of env)
      ~regalloc_done:env.regalloc_done ()
  in
  let per_pass = check = PerPass || check = PerPassFull in
  let whole_names =
    List.map (fun (c : Analysis.Registry.whole) -> c.Analysis.Registry.name)
      Analysis.Registry.whole_checks
  in
  (* Incremental state ([PerPass] only): the context is stepped across
     each pass with [Context.advance], carrying forward every derived
     analysis the pass's dirty facets leave valid, and the registry
     re-runs only the checks whose read sets those facets intersect. *)
  let inc = Analysis.Registry.inc_create () in
  let ictx : Analysis.Context.t option ref = ref None in
  let step_context ?pass ~dirty env =
    let ctx =
      match (check, !ictx) with
      | PerPass, Some prev ->
        Analysis.Context.advance ~dirty
          ~entry_defined:(Reg.Set.of_list (List.map fst env.prog.Prog.reg_init))
          ~allow_virtual:(not env.regalloc_done)
          ~recovery_exprs:(sorted_exprs env.recovery_exprs)
          ?claims:(conv_claims (claims_of env))
          ~iv_merges:(conv_merges env.iv_merges) ?pass prev env.prog.Prog.func
      | _ -> env_context ?pass env
    in
    if check = PerPass then ictx := Some ctx;
    ctx
  in
  let run_whole_on ~dirty ctx =
    match check with
    | PerPass ->
      let ds, ran = Analysis.Registry.run_whole_inc inc ~dirty ctx in
      diags := !diags @ Analysis.Registry.fresh ~seen ds;
      ran
    | _ ->
      let ds = Analysis.Registry.run_whole ctx in
      diags := !diags @ Analysis.Registry.fresh ~seen ds;
      whole_names
  in
  (* In per-pass mode, violations already present in the input carry no
     pass provenance; anything that appears later is attributed to the
     first pass after which the registry reports it. *)
  if per_pass then begin
    let dirty = Analysis.Facet.all in
    let ran = run_whole_on ~dirty (step_context ~dirty env) in
    check_log := ("<input>", ran) :: !check_log
  end;
  List.iter
    (fun p ->
      let snapshot =
        if per_pass && List.mem p.pname Analysis.Registry.pair_passes then
          Some (Func.copy env.prog.Prog.func)
        else None
      in
      let changed = run_pass tel stats p.pname (fun () -> p.action env) in
      if per_pass then begin
        (* A pass that reports no change charges nothing: its checks
           (pair and whole alike) would see the exact state the previous
           round already checked. The [PerPassFull] oracle still re-runs
           every whole check, so tools/check.sh's byte-diff verifies the
           skip is output-preserving. *)
        let dirty =
          if changed then p.dirties else Analysis.Facet.Set.empty
        in
        let ctx = step_context ~pass:p.pname ~dirty env in
        let pair_ran =
          match snapshot with
          | Some before when changed ->
            let ds = Analysis.Registry.run_pair ~pass:p.pname ~before ctx in
            diags := !diags @ Analysis.Registry.fresh ~seen ds;
            Analysis.Registry.pair_names_for p.pname
          | Some _ | None -> []
        in
        let whole_ran = run_whole_on ~dirty ctx in
        check_log := (p.pname, pair_ran @ whole_ran) :: !check_log
      end)
    pass_seq;
  if check = Final then begin
    let ran = run_whole_on ~dirty:Analysis.Facet.all (env_context env) in
    check_log := ("<final>", ran) :: !check_log
  end;
  if not opts.resilient then
    stats.Static_stats.code_size <- stats.Static_stats.base_code_size;
  {
    prog = env.prog;
    opts;
    regions = env.regions;
    recovery_exprs = env.recovery_exprs;
    claims = env.claims;
    diags = Analysis.Diag.sort !diags;
    check_log = List.rev !check_log;
    stats;
  }

let region_info (t : t) id =
  if id < 0 || id >= Array.length t.regions then None
  else
    (* Region infos are sorted by id and ids are dense. *)
    let r = t.regions.(id) in
    if r.id = id then Some r
    else Array.find_opt (fun r -> r.id = id) t.regions
