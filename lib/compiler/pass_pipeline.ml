(* The full compile pipeline (paper Fig 7):

     [LIVM] -> register allocation [store-aware] ->
     SB-aware partitioning + eager checkpointing (iterated to respect the
     store budget) -> [checkpoint pruning] -> [LICM sinking] ->
     [checkpoint-aware scheduling] -> recovery metadata

   Bracketed phases are the Turnpike optimizations; disabling them all
   yields exactly Turnstile's code.

   The pass sequence is declared once, in [passes]: the public
   [pass_names], the telemetry span names and the per-pass check
   provenance all derive from that single list. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry
module Analysis = Turnpike_analysis

type opts = {
  nregs : int;
  sb_size : int; (* store-buffer size the partitioner targets *)
  resilient : bool; (* false = plain baseline code (no regions/ckpts) *)
  unroll : int; (* counted-loop unroll factor (1 = off); applied to every
                   scheme equally, like the -O3 unrolling it stands for *)
  store_aware_ra : bool;
  livm : bool;
  pruning : bool;
  licm : bool;
  sched : bool;
  sched_separation : int;
}

let baseline_opts =
  {
    nregs = 32;
    sb_size = 4;
    resilient = false;
    unroll = 1;
    store_aware_ra = false;
    livm = false;
    pruning = false;
    licm = false;
    sched = false;
    sched_separation = Scheduling.default_separation;
  }

let turnstile_opts = { baseline_opts with resilient = true }

let turnpike_opts =
  {
    turnstile_opts with
    store_aware_ra = true;
    livm = true;
    pruning = true;
    licm = true;
    sched = true;
  }

type check_level = Off | Final | PerPass | PerPassFull

type region_info = { id : int; head : string; live_in : Reg.t list }

type t = {
  prog : Prog.t;
  opts : opts;
  regions : region_info array;
  recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  claims : Claims.t;
  diags : Analysis.Diag.t list;
  check_log : (string * string list) list;
  stats : Static_stats.t;
}

let count_code_size func =
  Func.fold_instrs
    (fun acc i -> if Instr.is_boundary i then acc else acc + 1)
    0 func

(* Partitioning and checkpoint insertion feed each other: checkpoints are
   stores, so they count against the region store budget, but they can only
   be placed once regions exist. Iterate until the worst region path fits
   the budget (or the budget bottoms out at 1). *)
let partition_and_checkpoint func ~sb_size ~entry_live stats =
  let target = max 1 (sb_size / 2) in
  (* Each round partitions with the previous round's checkpoints still in
     place (so they count against the store budget), then re-inserts
     checkpoints relative to the new boundaries. The budget tightens when
     re-partitioning alone stops making progress. *)
  let rec attempt budget iter =
    ignore (Regions.partition ~budget func);
    ignore (Checkpoint.strip func);
    let _, inserted = Checkpoint.insert ~entry_live func in
    let structure = Regions.of_func func in
    let worst = Regions.worst_region_path func structure in
    if worst <= target || iter >= 8 then begin
      stats.Static_stats.ckpts_inserted <- inserted;
      stats.Static_stats.regions <- Regions.num_regions structure;
      structure
    end
    else
      (* Re-partitioning with checkpoints visible usually fixes overfull
         regions by splitting them locally; only tighten the global budget
         once that has had a couple of chances. *)
      let budget = if iter >= 2 && budget > 1 then budget - 1 else budget in
      attempt budget (iter + 1)
  in
  attempt target 0

let live_in_table func regions =
  let cfg = Cfg.build func in
  let live = Liveness.compute cfg func in
  List.map
    (fun (r : Regions.region) ->
      {
        id = r.Regions.id;
        head = r.Regions.head;
        live_in =
          Reg.Set.elements
            (Reg.Set.filter
               (fun x -> not (Reg.is_zero x))
               (Liveness.live_in live r.Regions.head));
      })
    (Regions.regions regions)

(* Mutable pipeline state threaded through the declared pass list. *)
type env = {
  mutable prog : Prog.t;
  stats : Static_stats.t;
  mutable recovery_exprs : (Reg.t, Recovery_expr.t) Hashtbl.t;
  mutable regions : region_info array;
  mutable claims : Claims.t;
  mutable iv_merges : Livm.merge list;
  mutable regalloc_done : bool;
  e_opts : opts;
}

type pass = {
  pname : string;
  enabled : opts -> bool;
  dirties : Analysis.Facet.Set.t;
      (* facets the pass may touch — the incremental registry re-runs
         exactly the checks whose read sets intersect these. Declare
         conservatively: a spurious facet only costs a redundant
         re-check, a missing one would silently drop diagnostics
         (tools/check.sh pins incremental ≡ full re-check output). *)
  action : env -> bool;
      (* returns whether the pass changed anything. A pass that reports
         [false] charges no dirty facets at all — its round of checks is
         skipped entirely. The report must be honest in the same sense
         the facet declaration must: claiming no-change while mutating
         would drop diagnostics, and the incremental ≡ full-re-check diff
         would catch it. *)
}

let facets = Analysis.Facet.Set.of_list

(* THE declared pass list. [pass_names], the telemetry span names, the
   per-pass check provenance and the dirty-facet charging all come from
   here — never restate a pass name elsewhere. *)
let passes : pass list =
  [
    {
      pname = "unroll";
      enabled = (fun o -> o.unroll > 1);
      (* replicates loop bodies in place; the block set and terminators
         are untouched *)
      dirties = facets [ Analysis.Facet.Instrs ];
      action =
        (fun env ->
          let r = Unroll.run ~factor:env.e_opts.unroll env.prog.Prog.func in
          r.Unroll.unrolled > 0);
    };
    {
      pname = "livm";
      enabled = (fun o -> o.livm);
      dirties = facets [ Analysis.Facet.Instrs ];
      action =
        (fun env ->
          let r = Livm.run env.prog.Prog.func in
          env.stats.Static_stats.livm_merged_ivs <- r.Livm.merged;
          env.iv_merges <- r.Livm.merges;
          r.Livm.merged > 0);
    };
    {
      pname = "regalloc";
      enabled = (fun _ -> true);
      dirties = facets [ Analysis.Facet.Instrs; Analysis.Facet.Reg_classes ];
      action =
        (fun env ->
          let ra_config =
            {
              Regalloc.default_config with
              nregs = env.e_opts.nregs;
              store_aware = env.e_opts.store_aware_ra;
            }
          in
          let func = env.prog.Prog.func in
          let ra = Regalloc.run ~config:ra_config func in
          env.stats.Static_stats.spill_stores <- ra.Regalloc.spill_stores;
          env.stats.Static_stats.spill_loads <- ra.Regalloc.spill_loads;
          env.stats.Static_stats.spilled_vregs <- ra.Regalloc.spilled_vregs;
          let reg_init, extra_mem = Regalloc.remap_inputs ra env.prog.Prog.reg_init in
          env.prog <-
            {
              env.prog with
              Prog.reg_init;
              mem_init = env.prog.Prog.mem_init @ extra_mem;
            };
          env.stats.Static_stats.base_code_size <- count_code_size func;
          env.regalloc_done <- true;
          true);
    };
    {
      pname = "partition_and_checkpoint";
      enabled = (fun o -> o.resilient);
      dirties =
        facets
          [
            Analysis.Facet.Cfg_shape;
            Analysis.Facet.Instrs;
            Analysis.Facet.Boundaries;
          ];
      action =
        (fun env ->
          let entry_live = List.map fst env.prog.Prog.reg_init in
          ignore
            (partition_and_checkpoint env.prog.Prog.func
               ~sb_size:env.e_opts.sb_size ~entry_live env.stats);
          true);
    };
    {
      pname = "pruning";
      enabled = (fun o -> o.resilient && o.pruning);
      dirties =
        facets [ Analysis.Facet.Instrs; Analysis.Facet.Recovery_exprs ];
      action =
        (fun env ->
          let r = Pruning.run env.prog.Prog.func in
          env.stats.Static_stats.ckpts_pruned <- r.Pruning.pruned;
          env.recovery_exprs <- r.Pruning.exprs;
          r.Pruning.pruned > 0 || Hashtbl.length r.Pruning.exprs > 0);
    };
    {
      pname = "licm_sink";
      enabled = (fun o -> o.resilient && o.licm);
      dirties = facets [ Analysis.Facet.Instrs ];
      action =
        (fun env ->
          let r = Licm_sink.run env.prog.Prog.func in
          env.stats.Static_stats.ckpts_licm_moved <- r.Licm_sink.moved;
          env.stats.Static_stats.ckpts_licm_eliminated <- r.Licm_sink.eliminated;
          r.Licm_sink.moved > 0 || r.Licm_sink.eliminated > 0);
    };
    {
      pname = "scheduling";
      enabled = (fun o -> o.resilient && o.sched);
      (* the scheduler only permutes within blocks, preserving every
         dependence (sched-deps audits this), so block-level dataflow —
         the liveness cache in particular — survives the pass *)
      dirties = facets [ Analysis.Facet.Instr_order ];
      action =
        (fun env ->
          let r =
            Scheduling.run ~separation:env.e_opts.sched_separation
              env.prog.Prog.func
          in
          env.stats.Static_stats.sched_moved <- r.Scheduling.moved;
          r.Scheduling.moved > 0);
    };
    {
      pname = "region_metadata";
      enabled = (fun o -> o.resilient);
      dirties = facets [ Analysis.Facet.Claims ];
      action =
        (fun env ->
          let func = env.prog.Prog.func in
          env.stats.Static_stats.code_size <- count_code_size func;
          let structure = Regions.of_func func in
          let infos = live_in_table func structure in
          let regions = Array.of_list infos in
          Array.sort (fun a b -> compare a.id b.id) regions;
          env.regions <- regions;
          env.claims <- Claims.compute func;
          true);
    };
  ]

let pass_names (opts : opts) =
  List.filter_map
    (fun p -> if p.enabled opts then Some p.pname else None)
    passes

let pass_dirties (opts : opts) =
  List.filter_map
    (fun p -> if p.enabled opts then Some (p.pname, p.dirties) else None)
    passes

(* Run one pass under a wall-clock profiling span whose args carry the
   [Static_stats] delta the pass contributed (category ["compiler"]). With
   a disabled sink this is just [f ()]: no snapshot, no clock reads. *)
let run_pass tel stats name f =
  if not (Telemetry.enabled tel) then f ()
  else begin
    let before = Static_stats.copy stats in
    let start = Telemetry.span_start tel in
    let v = f () in
    let args =
      List.map
        (fun (k, d) -> (k, Telemetry.Int d))
        (Static_stats.diff ~before ~after:stats)
    in
    Telemetry.span_finish tel ~start ~cat:"compiler" ~args name;
    v
  end

let sorted_exprs recovery_exprs =
  Hashtbl.fold (fun r e acc -> (r, e) :: acc) recovery_exprs []
  |> List.sort (fun (a, _) (b, _) -> Reg.compare a b)

let conv_claims claims =
  Option.map
    (fun (c : Claims.t) ->
      {
        Analysis.Context.bypass_stores = c.Claims.bypass_stores;
        direct_ckpts = c.Claims.direct_ckpts;
      })
    claims

let conv_merges merges =
  List.map
    (fun (m : Livm.merge) ->
      {
        Analysis.Context.victim = m.Livm.victim;
        anchor = m.Livm.anchor;
        ratio = m.Livm.ratio;
        iv_base = m.Livm.m_base;
        header = m.Livm.header;
      })
    merges

let context_of ?pass ?(iv_merges = []) ~prog ~(opts : opts) ~recovery_exprs
    ~claims ~regalloc_done () =
  Analysis.Context.make
    ~entry_defined:(Reg.Set.of_list (List.map fst prog.Prog.reg_init))
    ~nregs:opts.nregs
    ~allow_virtual:(not regalloc_done)
    ~resilient:opts.resilient ~sb_size:opts.sb_size
    ~recovery_exprs:(sorted_exprs recovery_exprs)
    ?claims:(conv_claims claims) ~iv_merges:(conv_merges iv_merges) ?pass
    prog.Prog.func

let analysis_context ?pass (t : t) =
  context_of ?pass ~prog:t.prog ~opts:t.opts ~recovery_exprs:t.recovery_exprs
    ~claims:(Some t.claims) ~regalloc_done:true ()

let compile ?(opts = turnstile_opts) ?(tel = Telemetry.null) ?(check = Off)
    (prog : Prog.t) =
  let stats = Static_stats.create () in
  let prog = Prog.with_func prog (Func.copy prog.Prog.func) in
  let env =
    {
      prog;
      stats;
      recovery_exprs = Hashtbl.create 0;
      regions = [||];
      claims = Claims.empty;
      iv_merges = [];
      regalloc_done = false;
      e_opts = opts;
    }
  in
  let diags = ref [] in
  let check_log = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let claims_of env =
    (* Claims only exist once region_metadata has computed them; before
       that the checker has nothing to audit. *)
    if env.claims == Claims.empty then None else Some env.claims
  in
  let env_context ?pass env =
    context_of ?pass ~iv_merges:env.iv_merges ~prog:env.prog ~opts:env.e_opts
      ~recovery_exprs:env.recovery_exprs ~claims:(claims_of env)
      ~regalloc_done:env.regalloc_done ()
  in
  let per_pass = check = PerPass || check = PerPassFull in
  let whole_names =
    List.map (fun (c : Analysis.Registry.whole) -> c.Analysis.Registry.name)
      Analysis.Registry.whole_checks
  in
  (* Incremental state ([PerPass] only): the context is stepped across
     each pass with [Context.advance], carrying forward every derived
     analysis the pass's dirty facets leave valid, and the registry
     re-runs only the checks whose read sets those facets intersect. *)
  let inc = Analysis.Registry.inc_create () in
  let ictx : Analysis.Context.t option ref = ref None in
  let step_context ?pass ~dirty env =
    let ctx =
      match (check, !ictx) with
      | PerPass, Some prev ->
        Analysis.Context.advance ~dirty
          ~entry_defined:(Reg.Set.of_list (List.map fst env.prog.Prog.reg_init))
          ~allow_virtual:(not env.regalloc_done)
          ~recovery_exprs:(sorted_exprs env.recovery_exprs)
          ?claims:(conv_claims (claims_of env))
          ~iv_merges:(conv_merges env.iv_merges) ?pass prev env.prog.Prog.func
      | _ -> env_context ?pass env
    in
    if check = PerPass then ictx := Some ctx;
    ctx
  in
  let run_whole_on ~dirty ctx =
    match check with
    | PerPass ->
      let ds, ran = Analysis.Registry.run_whole_inc inc ~dirty ctx in
      diags := !diags @ Analysis.Registry.fresh ~seen ds;
      ran
    | _ ->
      let ds = Analysis.Registry.run_whole ctx in
      diags := !diags @ Analysis.Registry.fresh ~seen ds;
      whole_names
  in
  (* In per-pass mode, violations already present in the input carry no
     pass provenance; anything that appears later is attributed to the
     first pass after which the registry reports it. *)
  if per_pass then begin
    let dirty = Analysis.Facet.all in
    let ran = run_whole_on ~dirty (step_context ~dirty env) in
    check_log := ("<input>", ran) :: !check_log
  end;
  List.iter
    (fun p ->
      if p.enabled opts then begin
        let snapshot =
          if per_pass && List.mem p.pname Analysis.Registry.pair_passes then
            Some (Func.copy env.prog.Prog.func)
          else None
        in
        let changed = run_pass tel stats p.pname (fun () -> p.action env) in
        if per_pass then begin
          (* A pass that reports no change charges nothing: its checks
             (pair and whole alike) would see the exact state the previous
             round already checked. The [PerPassFull] oracle still re-runs
             every whole check, so tools/check.sh's byte-diff verifies the
             skip is output-preserving. *)
          let dirty =
            if changed then p.dirties else Analysis.Facet.Set.empty
          in
          let ctx = step_context ~pass:p.pname ~dirty env in
          let pair_ran =
            match snapshot with
            | Some before when changed ->
              let ds = Analysis.Registry.run_pair ~pass:p.pname ~before ctx in
              diags := !diags @ Analysis.Registry.fresh ~seen ds;
              Analysis.Registry.pair_names_for p.pname
            | Some _ | None -> []
          in
          let whole_ran = run_whole_on ~dirty ctx in
          check_log := (p.pname, pair_ran @ whole_ran) :: !check_log
        end
      end)
    passes;
  if check = Final then begin
    let ran = run_whole_on ~dirty:Analysis.Facet.all (env_context env) in
    check_log := ("<final>", ran) :: !check_log
  end;
  if not opts.resilient then
    stats.Static_stats.code_size <- stats.Static_stats.base_code_size;
  {
    prog = env.prog;
    opts;
    regions = env.regions;
    recovery_exprs = env.recovery_exprs;
    claims = env.claims;
    diags = Analysis.Diag.sort !diags;
    check_log = List.rev !check_log;
    stats;
  }

let region_info (t : t) id =
  if id < 0 || id >= Array.length t.regions then None
  else
    (* Region infos are sorted by id and ids are dense. *)
    let r = t.regions.(id) in
    if r.id = id then Some r
    else Array.find_opt (fun r -> r.id = id) t.regions
