open Turnpike_ir

type t = {
  bypass_stores : (string * int) list;
  direct_ckpts : (string * int) list;
}

let empty = { bypass_stores = []; direct_ckpts = [] }

(* Segment discipline makes aliasing decidable for most of the traffic:
   kinds address disjoint segments, and spill/checkpoint accesses use
   absolute zero-based addresses that compare exactly. Register-based
   addresses of the same kind are assumed to alias. *)
let may_alias (ka, ba, oa) (kb, bb, ob) =
  if not (Instr.equal_mem_kind ka kb) then false
  else if Reg.is_zero ba && Reg.is_zero bb then oa = ob
  else true

let compute func =
  let cfg = Cfg.build func in
  let dom = Dominance.compute cfg in
  let live = Liveness.compute cfg func in
  (* All load accesses of the function, once. *)
  let loads =
    Func.fold_instrs
      (fun acc i ->
        match i with Instr.Load (_, b, off, k) -> (k, b, off) :: acc | _ -> acc)
      [] func
  in
  let bypass = ref [] in
  Func.iter_blocks
    (fun b ->
      Array.iteri
        (fun i instr ->
          match instr with
          | Instr.Store (_, base, off, kind)
            when not (List.exists (may_alias (kind, base, off)) loads) ->
            bypass := (b.Block.label, i) :: !bypass
          | _ -> ())
        b.Block.body)
    func;
  (* Direct-release checkpoints. *)
  let ckpt_sites : (Reg.t, (string * int) list) Hashtbl.t = Hashtbl.create 16 in
  let def_count : (Reg.t, int) Hashtbl.t = Hashtbl.create 32 in
  Func.iter_blocks
    (fun b ->
      Array.iteri
        (fun i instr ->
          (match instr with
          | Instr.Ckpt r ->
            Hashtbl.replace ckpt_sites r
              ((b.Block.label, i) :: Option.value (Hashtbl.find_opt ckpt_sites r) ~default:[])
          | _ -> ());
          List.iter
            (fun r ->
              Hashtbl.replace def_count r (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0))
            (Instr.defs instr))
        b.Block.body)
    func;
  let self_reachable label =
    let rec go visited = function
      | [] -> false
      | l :: rest ->
        if String.equal l label then true
        else if List.mem l visited then go visited rest
        else go (l :: visited) (Cfg.successors cfg l @ rest)
    in
    go [] (Cfg.successors cfg label)
  in
  let heads =
    List.filter_map
      (fun b ->
        if Array.length b.Block.body > 0 && Instr.is_boundary b.Block.body.(0) then
          Some b.Block.label
        else None)
      (Func.blocks func)
  in
  let direct = ref [] in
  Hashtbl.fold (fun r sites acc -> (r, sites) :: acc) ckpt_sites []
  |> List.sort compare
  |> List.iter (fun (r, sites) ->
         match sites with
         | [ (label, i) ]
           when Reg.is_physical r
                && (not (Reg.is_zero r))
                && not (self_reachable label) ->
           let defs = Option.value (Hashtbl.find_opt def_count r) ~default:0 in
           let restart_after_site h =
             (not (Reg.Set.mem r (Liveness.live_in live h)))
             || (Dominance.dominates dom ~dom:label ~sub:h && not (String.equal label h))
           in
           if defs = 0 || List.for_all restart_after_site heads then
             direct := (label, i) :: !direct
         | _ -> ())
  ;
  {
    bypass_stores = List.sort compare !bypass;
    direct_ckpts = List.sort compare !direct;
  }
