(** Static release claims the pipeline publishes for the checker to audit
    and the recovery model to (optionally) honor.

    [bypass_stores] are stores the compiler proves WAR-free: no load in
    the function can read the address they overwrite, so releasing them
    before verification can never expose a rolled-back region to its own
    future writes (paper §4.3.1; the CLQ proves the same property
    dynamically). [direct_ckpts] are checkpoint stores that may release
    without waiting for verification (the safe version of the paper's
    Fig 16): the register has a single, loop-free checkpoint site and
    every region restart that would restore the register happens strictly
    after that site has executed. *)

open Turnpike_ir

type t = {
  bypass_stores : (string * int) list;  (** (block label, body index) *)
  direct_ckpts : (string * int) list;  (** (block label, body index) *)
}

val empty : t

val compute : Func.t -> t
(** Conservative claim inference on the final (post-scheduling) function.
    Results are sorted and deterministic. *)
