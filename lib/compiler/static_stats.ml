type t = {
  mutable regions : int;
  mutable ckpts_inserted : int;
  mutable ckpts_pruned : int;
  mutable ckpts_licm_moved : int;
  mutable ckpts_licm_eliminated : int;
  mutable livm_merged_ivs : int;
  mutable livm_ckpts_eliminated : int;
  mutable spill_stores : int;
  mutable spill_loads : int;
  mutable spilled_vregs : int;
  mutable sched_moved : int;
  mutable base_code_size : int;
  mutable code_size : int;
}

let create () =
  {
    regions = 0;
    ckpts_inserted = 0;
    ckpts_pruned = 0;
    ckpts_licm_moved = 0;
    ckpts_licm_eliminated = 0;
    livm_merged_ivs = 0;
    livm_ckpts_eliminated = 0;
    spill_stores = 0;
    spill_loads = 0;
    spilled_vregs = 0;
    sched_moved = 0;
    base_code_size = 0;
    code_size = 0;
  }

let copy t = { t with regions = t.regions }

let to_assoc t =
  [
    ("regions", t.regions);
    ("ckpts_inserted", t.ckpts_inserted);
    ("ckpts_pruned", t.ckpts_pruned);
    ("ckpts_licm_moved", t.ckpts_licm_moved);
    ("ckpts_licm_eliminated", t.ckpts_licm_eliminated);
    ("livm_merged_ivs", t.livm_merged_ivs);
    ("livm_ckpts_eliminated", t.livm_ckpts_eliminated);
    ("spill_stores", t.spill_stores);
    ("spill_loads", t.spill_loads);
    ("spilled_vregs", t.spilled_vregs);
    ("sched_moved", t.sched_moved);
    ("base_code_size", t.base_code_size);
    ("code_size", t.code_size);
  ]

let diff ~before ~after =
  List.filter_map
    (fun ((name, b), (name', a)) ->
      assert (name = name');
      if a <> b then Some (name, a - b) else None)
    (List.combine (to_assoc before) (to_assoc after))

let code_size_increase t =
  if t.base_code_size = 0 then 0.0
  else
    float_of_int (t.code_size - t.base_code_size)
    /. float_of_int t.base_code_size *. 100.0

let pp fmt t =
  Format.fprintf fmt
    "@[<v>regions=%d ckpts: inserted=%d pruned=%d licm(moved=%d,elim=%d) livm(iv=%d,elim=%d)@,\
     spills: stores=%d loads=%d vregs=%d; sched moved=%d@,\
     code size %d -> %d (+%.2f%%)@]"
    t.regions t.ckpts_inserted t.ckpts_pruned t.ckpts_licm_moved
    t.ckpts_licm_eliminated t.livm_merged_ivs t.livm_ckpts_eliminated
    t.spill_stores t.spill_loads t.spilled_vregs t.sched_moved t.base_code_size
    t.code_size (code_size_increase t)

let to_string t = Format.asprintf "%a" pp t

(* Mirrors [Sim_stats.to_json]: flat object, trailing derived ratio. *)
let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d," name v))
    (to_assoc t);
  Buffer.add_string b
    (Printf.sprintf "\"code_size_increase_percent\":%.4f" (code_size_increase t));
  Buffer.add_char b '}';
  Buffer.contents b
