(** Loop induction variable merging (LIVM, paper §4.1.2) — one of
    Turnpike's two novel compiler optimizations.

    Strength reduction turns address expressions into separate basic
    induction variables; each is loop-carried, hence live-out of every
    iteration region and checkpointed every iteration. LIVM merges such a
    variable [r2] (init B, step s2) into an anchor basic induction variable
    [r1] (init 0, step s1 with s1 | s2) by recomputing
    [r2 = B + r1 * (s2 / s1)] locally at each use — the loop-carried
    dependence, and with it the per-iteration checkpoint, disappears.

    Runs before register allocation, on virtual registers. *)

open Turnpike_ir

(** One merge the pass performed, reported so the analysis layer can
    audit it against a before/after snapshot pair. *)
type merge = {
  victim : Reg.t;  (** the merged-away induction variable *)
  anchor : Reg.t;  (** the surviving IV the victim recomputes from *)
  ratio : int;  (** victim step / anchor step (≥ 1) *)
  m_base : [ `Const of int | `Reg of Reg.t ];  (** victim's loop-entry value *)
  header : string;  (** header of the loop the merge happened in *)
}

type result = {
  func : Func.t;
  merged : int;  (** induction variables eliminated by merging *)
  merges : merge list;  (** one record per elimination, in merge order *)
}

val run : Func.t -> result
