(* Measures what the telemetry sink costs: re-runs every simulation of the
   fig19 grid (all suite benchmarks x the paper's WCDL sweep, turnpike
   scheme) twice — once with the disabled [Telemetry.null] sink (the
   default everywhere) and once with an enabled sink capturing the full
   cycle-level timeline — and reports both wall-clock totals as JSON on
   stdout. The compile pipeline is timed the same way.

   Usage:
     dune exec bench/telemetry_overhead.exe -- [--scale N] [--fuel N] \
       > BENCH_telemetry_overhead.json

   Runs strictly sequentially so the two passes are comparable; see the
   "note" field in the output for the single-core caveat. *)

module E = Turnpike.Experiments
module Run = Turnpike.Run
module Scheme = Turnpike.Scheme
module Suite = Turnpike_workloads.Suite
module Telemetry = Turnpike_telemetry

let () = Telemetry.Clock.set Unix.gettimeofday

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let params = ref { Run.default_params with Run.scale = 1 } in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      params := { !params with Run.scale = int_of_string n };
      parse rest
    | "--fuel" :: n :: rest ->
      params := { !params with Run.fuel = int_of_string n };
      parse rest
    | x :: _ ->
      Printf.eprintf "unknown argument %s; known: --scale N --fuel N\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let params = !params in
  let benches = Suite.all () in
  let points =
    List.concat_map
      (fun b -> List.map (fun wcdl -> (b, wcdl)) E.wcdls)
      benches
  in
  (* Compile + trace once per point (cached, not timed): both passes then
     time exactly the same [Timing.simulate] calls. *)
  let prepared =
    List.map
      (fun (b, wcdl) ->
        let p = { params with Run.wcdl } in
        let r = Run.compile_with p Scheme.turnpike b in
        let machine = Scheme.machine Scheme.turnpike ~wcdl ~sb_size:p.Run.sb_size in
        (machine, r.Run.trace))
      points
  in
  let disabled_s, () =
    time (fun () ->
        List.iter
          (fun (machine, trace) ->
            ignore (Turnpike_arch.Timing.simulate machine trace))
          prepared)
  in
  let events = ref 0 in
  let enabled_s, () =
    time (fun () ->
        List.iter
          (fun (machine, trace) ->
            let tel = Telemetry.create () in
            ignore (Turnpike_arch.Timing.simulate ~tel machine trace);
            events := !events + Telemetry.length tel + Telemetry.dropped tel)
          prepared)
  in
  let compile_disabled_s, () =
    time (fun () ->
        List.iter
          (fun b ->
            let prog = b.Suite.build ~scale:params.Run.scale in
            ignore
              (Turnpike_compiler.Pass_pipeline.compile
                 ~opts:Turnpike_compiler.Pass_pipeline.turnpike_opts prog))
          benches)
  in
  let compile_enabled_s, () =
    time (fun () ->
        List.iter
          (fun b ->
            let prog = b.Suite.build ~scale:params.Run.scale in
            ignore
              (Turnpike_compiler.Pass_pipeline.compile
                 ~opts:Turnpike_compiler.Pass_pipeline.turnpike_opts
                 ~tel:(Telemetry.create ()) prog))
          benches)
  in
  let pct base v = if base > 0. then 100. *. (v -. base) /. base else 0. in
  Printf.printf
    "{\n\
    \  \"grid\": \"fig19 (turnpike scheme, WCDL sweep %s)\",\n\
    \  \"scale\": %d,\n\
    \  \"fuel\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"benchmarks\": %d,\n\
    \  \"simulation_points\": %d,\n\
    \  \"simulate_disabled_s\": %.3f,\n\
    \  \"simulate_enabled_s\": %.3f,\n\
    \  \"simulate_overhead_percent\": %.2f,\n\
    \  \"timeline_events_emitted\": %d,\n\
    \  \"compile_disabled_s\": %.3f,\n\
    \  \"compile_enabled_s\": %.3f,\n\
    \  \"compile_overhead_percent\": %.2f,\n\
    \  \"note\": \"wall-clock on a single core (--jobs 1 equivalent); the \
     disabled pass exercises the production default (Telemetry.null, one \
     enabled-flag branch per would-be event). Absolute times are \
     host-dependent; the overhead percentages are the portable signal.\"\n\
     }\n"
    (String.concat "/" (List.map string_of_int E.wcdls))
    params.Run.scale params.Run.fuel (List.length benches) (List.length points)
    disabled_s enabled_s
    (pct disabled_s enabled_s)
    !events compile_disabled_s compile_enabled_s
    (pct compile_disabled_s compile_enabled_s)
