(* Measures what the static vulnerability analysis costs on top of a
   plain compile: compiles every suite benchmark at the turnpike rung
   three ways — checking off (the baseline every other mode is charged
   against), with one Vuln.compute per compile (the explorer's static
   rung and lint --vuln), and with the full six-check registry run plus
   Vuln.compute (lint --vuln after a checked build) — and reports the
   wall-clock totals as JSON on stdout.

   The numbers are meant to sit next to BENCH_analysis_overhead.json:
   same grid, same scale, same interleaved-repeat protocol, so the cost
   of the static AVF tables can be read as a delta over the registry
   costs recorded there.

   Usage:
     dune exec bench/vuln_overhead.exe -- [--scale N] [--repeat K] \
       > BENCH_vuln_overhead.json

   Runs strictly sequentially so the timed modes are comparable; --repeat
   sums K identical sweeps per mode to stabilize sub-second totals. *)

module PP = Turnpike_compiler.Pass_pipeline
module An = Turnpike_analysis
module Scheme = Turnpike.Scheme
module Suite = Turnpike_workloads.Suite

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let scale = ref 8 in
  let repeat = ref 3 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--repeat" :: n :: rest ->
      repeat := max 1 (int_of_string n);
      parse rest
    | x :: _ ->
      Printf.eprintf "unknown argument %s; known: --scale N, --repeat K\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let benches = Suite.all () in
  let opts = Scheme.compile_opts Scheme.turnpike ~sb_size:4 in
  (* Build programs once; every timed mode compiles identical input. *)
  let progs = List.map (fun b -> b.Suite.build ~scale:!scale) benches in
  let sweep ~check ~vuln () =
    let regions = ref 0 in
    let avf = ref 0.0 in
    List.iter
      (fun prog ->
        let c = PP.compile ~opts ~check prog in
        if vuln then begin
          let v =
            An.Vuln.compute
              (An.Context.with_machine ~wcdl:10 (PP.analysis_context c))
          in
          regions := !regions + List.length v.An.Vuln.by_region;
          avf := !avf +. v.An.Vuln.predicted_avf
        end)
      progs;
    (!regions, !avf)
  in
  (* One untimed sweep warms the allocator and code paths, then the modes
     are timed interleaved — one sweep of each per repeat — so slow
     phases of a noisy host spread over every mode instead of landing on
     whichever one they coincide with. *)
  ignore (sweep ~check:PP.Off ~vuln:true ());
  let off_s = ref 0. and vuln_s = ref 0. and checked_s = ref 0. in
  let counts = ref (0, 0.0) in
  for _ = 1 to !repeat do
    let t, _ = time (sweep ~check:PP.Off ~vuln:false) in
    off_s := !off_s +. t;
    let t, c = time (sweep ~check:PP.Off ~vuln:true) in
    vuln_s := !vuln_s +. t;
    counts := c;
    let t, c' = time (sweep ~check:PP.Final ~vuln:true) in
    checked_s := !checked_s +. t;
    if c' <> c then begin
      Printf.eprintf "vuln tables depend on the check mode — they must not\n";
      exit 1
    end
  done;
  let off_s = !off_s and vuln_s = !vuln_s and checked_s = !checked_s in
  let regions, avf_sum = !counts in
  let pct base v = if base > 0. then 100. *. (v -. base) /. base else 0. in
  Printf.printf
    "{\n\
    \  \"grid\": \"all %d suite benchmarks, turnpike opts\",\n\
    \  \"scale\": %d,\n\
    \  \"repeat\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"compile_only_s\": %.3f,\n\
    \  \"compile_plus_vuln_s\": %.3f,\n\
    \  \"compile_checked_plus_vuln_s\": %.3f,\n\
    \  \"vuln_overhead_percent\": %.2f,\n\
    \  \"checked_plus_vuln_overhead_percent\": %.2f,\n\
    \  \"regions_ranked\": %d,\n\
    \  \"predicted_avf_sum\": %.6f,\n\
    \  \"host\": { \"note\": \"single-core container: \
     Domain.recommended_domain_count() = 1, so parallel speedups cannot \
     show here; re-record on wider hardware. Absolute times are \
     host-dependent; the overhead percentages are the portable signal. \
     Compare against BENCH_analysis_overhead.json (same grid and \
     protocol) to separate registry cost from Vuln.compute cost.\" },\n\
    \  \"note\": \"wall-clock, sequential, --repeat summed sweeps. \
     compile_only is the production baseline; compile_plus_vuln adds one \
     Vuln.compute per compile (what the explorer's static rung and lint \
     --vuln pay, roughly one extra liveness fixpoint plus the window \
     walks); compile_checked_plus_vuln stacks it on a whole-program \
     registry run. The bench aborts if the tables differ across check \
     modes — the analysis must be a pure function of the compiled \
     binary.\"\n\
     }\n"
    (List.length benches) !scale !repeat off_s vuln_s checked_s
    (pct off_s vuln_s) (pct off_s checked_s) regions avf_sum
