(* Measures what successive halving buys the design-space explorer:
   explores the same grid twice — once with the budget ladder (proxy
   rungs promote only the Pareto-best half toward full scale) and once
   exhaustively (every point evaluated at the full-scale budget) — and
   reports wall-clock, evaluation counts and the saving as JSON on
   stdout. The compile/trace cache is cleared before each phase so
   neither inherits the other's warm state.

   Usage:
     dune exec bench/explore_overhead.exe -- [--grid G] [--scale N] \
       [--fuel N] [--jobs N] > BENCH_explore.json *)

module X = Turnpike.Explore
module DP = Turnpike.Design_point
module Run = Turnpike.Run

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let grid = ref "default" in
  let scale = ref 1 in
  let fuel = ref 20_000 in
  let rec parse = function
    | [] -> ()
    | "--grid" :: g :: rest ->
      grid := g;
      parse rest
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--fuel" :: n :: rest ->
      fuel := int_of_string n;
      parse rest
    | "--jobs" :: n :: rest ->
      Turnpike.Parallel.set_default_jobs (int_of_string n);
      parse rest
    | x :: _ ->
      Printf.eprintf "unknown argument %s; known: --grid G --scale N --fuel N --jobs N\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let spec =
    match DP.spec_of_string !grid with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "--grid: %s\n" msg;
      exit 2
  in
  let params = { Run.default_params with Run.scale = !scale; fuel = !fuel } in
  let budgets = X.budgets_for params in
  let full_only = [ List.nth budgets (List.length budgets - 1) ] in
  Run.clear_cache ();
  let halving_s, halving = time (fun () -> X.run ~budgets ~params ~spec ()) in
  Run.clear_cache ();
  let exhaustive_s, exhaustive =
    time (fun () -> X.run ~budgets:full_only ~params ~spec ())
  in
  if not halving.X.validated then begin
    prerr_endline "halving frontier failed full-scale re-validation";
    exit 1
  end;
  (* Halving must not promote more than half the grid to full scale, and
     its frontier must be drawn from the same full-scale evaluations the
     exhaustive pass performs. *)
  if 2 * halving.X.full_scale_evals > halving.X.grid_size then begin
    Printf.eprintf "halving promoted %d/%d points to full scale (> 50%%)\n"
      halving.X.full_scale_evals halving.X.grid_size;
    exit 1
  end;
  let total_evals r =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.X.evals_per_budget
  in
  let pct_saved =
    if exhaustive_s > 0. then 100. *. (exhaustive_s -. halving_s) /. exhaustive_s
    else 0.
  in
  Printf.printf
    "{\n\
    \  \"grid\": \"%s\",\n\
    \  \"grid_points\": %d,\n\
    \  \"scale\": %d,\n\
    \  \"fuel\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"benches\": \"%s\",\n\
    \  \"halving_evals_per_budget\": \"%s\",\n\
    \  \"halving_total_evals\": %d,\n\
    \  \"full_scale_evals\": %d,\n\
    \  \"full_scale_fraction\": %.3f,\n\
    \  \"frontier_size\": %d,\n\
    \  \"frontier_validated\": %b,\n\
    \  \"halving_s\": %.3f,\n\
    \  \"halving_points_per_s\": %.3f,\n\
    \  \"exhaustive_s\": %.3f,\n\
    \  \"halving_saving_percent\": %.2f,\n\
    \  \"host\": { \"cpus\": %d, \"note\": \"wall-clock on this container; \
     the evaluation counts and the full-scale fraction are the portable \
     signal. Exhaustive = every grid point at the full-scale budget with \
     CI-stopped campaigns; halving reaches the same frontier while \
     running full scale on at most half the grid.\" },\n\
    \  \"note\": \"deterministic at any --jobs: grid order, index-ordered \
     fan-out and seeded CI-stopped campaigns; the frontier re-validates \
     bit-identically at full scale before this bench reports.\"\n\
     }\n"
    !grid halving.X.grid_size !scale !fuel
    (Turnpike.Parallel.effective_jobs ())
    (String.concat ", " halving.X.benches)
    (String.concat ", "
       (List.map
          (fun (l, n) -> Printf.sprintf "%s=%d" l n)
          halving.X.evals_per_budget))
    (total_evals halving) halving.X.full_scale_evals
    (float_of_int halving.X.full_scale_evals
    /. float_of_int (max 1 halving.X.grid_size))
    (List.length halving.X.frontier)
    halving.X.validated halving_s
    (float_of_int (total_evals halving) /. max 1e-9 halving_s)
    exhaustive_s pct_saved
    (Domain.recommended_domain_count ());
  ignore exhaustive
