(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (§6). Each experiment prints the same rows/series the paper
   reports, with per-suite and overall means. `--micro` additionally runs
   Bechamel micro-benchmarks of the simulator primitives (one Test.make per
   experiment family).

   Usage:
     dune exec bench/main.exe                  # all experiments
     dune exec bench/main.exe -- fig19 fig20   # a subset
     dune exec bench/main.exe -- --scale 4     # smaller simulation windows
     dune exec bench/main.exe -- --jobs 4      # 4 worker domains (0 = auto)
     dune exec bench/main.exe -- resilience --faults 100 --seed 3
     dune exec bench/main.exe -- resilience --ci 0.01   # stop at +/-1% SDC CI
     dune exec bench/main.exe -- --micro       # harness micro-benchmarks
     dune exec bench/main.exe -- --profile     # per-pass spans + pool utilization

   Experiment grids — and the per-fault injection campaign — run on the
   turnpike.parallel domain pool; --jobs 1 is strictly sequential and any
   job count produces identical rows. *)

module E = Turnpike.Experiments
module Report = Turnpike.Report
module Scheme = Turnpike.Scheme
module Run = Turnpike.Run
module Suite = Turnpike_workloads.Suite
module Telemetry = Turnpike_telemetry

let params = ref E.default_params
let csv_dir : string option ref = ref None

(* Shared campaign knobs (--seed/--faults/--ci/--confidence/--batch/--jobs):
   one arg spec with turnpike-cli, see Campaign_args. *)
let campaign = ref Turnpike.Campaign_args.default
let explore_grid_name = ref "default"
let default_campaign_faults = 24

let csv name render rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    render ~path rows;
    Printf.printf "[csv written to %s]\n" path

(* ------------------------------------------------------------------ *)
(* Suite grouping and mean helpers. *)

let suite_of_qualified name =
  if Filename.check_suffix name "@2006" then "SPEC CPU2006"
  else if Filename.check_suffix name "@2017" then "SPEC CPU2017"
  else "SPLASH3"

let grouped_means ~geomean rows value =
  let mean l = if geomean then Report.geomean l else Report.arith_mean l in
  let groups = [ "SPEC CPU2006"; "SPEC CPU2017"; "SPLASH3" ] in
  let per_group =
    List.map
      (fun g ->
        ( g,
          mean
            (List.filter_map
               (fun (name, v) ->
                 if String.equal (suite_of_qualified name) g then Some v else None)
               (List.map (fun r -> (fst r, value (snd r))) rows)) ))
      groups
  in
  let all = mean (List.map (fun r -> value (snd r)) rows) in
  (per_group, all)

let named rows name_of = List.map (fun r -> (name_of r, r)) rows

(* ------------------------------------------------------------------ *)

let run_fig4 () =
  Report.section "Fig 4: checkpoint ratio vs store-buffer size (Turnstile)";
  let rows = E.fig4 ~params:!params () in
  csv "fig4" Turnpike.Csv_export.fig4 rows;
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "SB=40"; width = 8 };
             { title = "SB=4"; width = 8 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.fig4_row) ->
      Report.print_row cols
        [ r.bench; Report.fmt_pct (100. *. r.ratio_sb40); Report.fmt_pct (100. *. r.ratio_sb4) ])
    rows;
  let nrows = named rows (fun (r : E.fig4_row) -> r.bench) in
  let _, m40 = grouped_means ~geomean:false nrows (fun r -> 100. *. r.E.ratio_sb40) in
  let _, m4 = grouped_means ~geomean:false nrows (fun r -> 100. *. r.E.ratio_sb4) in
  Printf.printf "mean checkpoint ratio: SB=40 %.2f%%  SB=4 %.2f%%  (paper: 4.1%% vs 14.98%%)\n"
    m40 m4

let run_fig14_15 () =
  Report.section "Figs 14/15: ideal vs compact CLQ (WAR-free + coloring only, WCDL=10)";
  let rows = E.fig14_15 ~params:!params () in
  csv "fig14_15" Turnpike.Csv_export.fig14_15 rows;
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "ov ideal"; width = 9 };
             { title = "ov compact"; width = 10 }; { title = "wf ideal"; width = 9 };
             { title = "wf compact"; width = 10 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.clq_design_row) ->
      Report.print_row cols
        [ r.bench; Report.fmt_overhead r.overhead_ideal;
          Report.fmt_overhead r.overhead_compact;
          Report.fmt_pct (100. *. r.war_free_ideal);
          Report.fmt_pct (100. *. r.war_free_compact) ])
    rows;
  let nrows = named rows (fun (r : E.clq_design_row) -> r.bench) in
  let _, oi = grouped_means ~geomean:true nrows (fun r -> r.E.overhead_ideal) in
  let _, oc = grouped_means ~geomean:true nrows (fun r -> r.E.overhead_compact) in
  let _, wi = grouped_means ~geomean:false nrows (fun r -> 100. *. r.E.war_free_ideal) in
  let _, wc = grouped_means ~geomean:false nrows (fun r -> 100. *. r.E.war_free_compact) in
  Printf.printf
    "geomean overhead: ideal %.3f, compact %.3f (paper: compact within ~3%% of ideal)\n"
    oi oc;
  Printf.printf
    "mean WAR-free detection: ideal %.1f%%, compact %.1f%% (paper: ideal ~10.6%% higher)\n"
    wi wc

let run_fig18 () =
  Report.section "Fig 18: detection latency vs deployed sensors";
  let cols =
    Report.[ { title = "#sensors"; width = 8 }; { title = "2.0GHz"; width = 7 };
             { title = "2.5GHz"; width = 7 }; { title = "3.0GHz"; width = 7 } ]
  in
  Report.print_header cols;
  csv "fig18" Turnpike.Csv_export.fig18 (E.fig18 ());
  List.iter
    (fun (r : E.fig18_row) ->
      Report.print_row cols
        [ string_of_int r.sensors; string_of_int r.dl_2_0ghz;
          string_of_int r.dl_2_5ghz; string_of_int r.dl_3_0ghz ])
    (E.fig18 ());
  print_endline "(paper anchor: 300 sensors @2.5GHz -> 10 cycles; 30 sensors -> ~30 cycles)"

let print_wcdl_sweep title paper_note rows =
  Report.section title;
  let cols =
    Report.(
      { title = "benchmark"; width = 18 }
      :: List.map (fun w -> { title = Printf.sprintf "DL%d" w; width = 7 }) E.wcdls)
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.wcdl_sweep_row) ->
      Report.print_row cols
        (r.bench :: List.map (fun (_, ov) -> Report.fmt_overhead ov) r.overheads))
    rows;
  let nrows = named rows (fun (r : E.wcdl_sweep_row) -> r.bench) in
  let means =
    List.map
      (fun w ->
        let _, m = grouped_means ~geomean:true nrows (fun r -> List.assoc w r.E.overheads) in
        (w, m))
      E.wcdls
  in
  Printf.printf "geomean:            %s\n"
    (String.concat " " (List.map (fun (_, m) -> Printf.sprintf "%-7s" (Report.fmt_overhead m)) means));
  print_endline paper_note

let run_fig19 () =
  let rows = E.fig19 ~params:!params () in
  csv "fig19" Turnpike.Csv_export.wcdl_sweep rows;
  print_wcdl_sweep "Fig 19: Turnpike overhead across WCDL"
    "(paper: 0%-14% average overhead for WCDL 10-50)" rows

let run_fig20 () =
  let rows = E.fig20 ~params:!params () in
  csv "fig20" Turnpike.Csv_export.wcdl_sweep rows;
  print_wcdl_sweep "Fig 20: Turnstile overhead across WCDL"
    "(paper: 29%-84% average overhead for WCDL 10-50, outliers to 5.8x)" rows

let run_fig21 () =
  Report.section "Fig 21: optimization ablation ladder (WCDL=10)";
  let rows = E.fig21 ~params:!params () in
  csv "fig21" Turnpike.Csv_export.ladder rows;
  let scheme_names = List.map (fun (s : Scheme.t) -> s.Scheme.name) Scheme.ladder in
  let cols =
    Report.(
      { title = "benchmark"; width = 18 }
      :: List.map (fun n -> { title = n; width = max 9 (String.length n) }) scheme_names)
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.fig21_row) ->
      Report.print_row cols
        (r.bench
        :: List.map (fun n -> Report.fmt_overhead (List.assoc n r.by_scheme)) scheme_names))
    rows;
  let nrows = named rows (fun (r : E.fig21_row) -> r.bench) in
  print_string "geomean:          ";
  List.iter
    (fun n ->
      let _, m = grouped_means ~geomean:true nrows (fun r -> List.assoc n r.E.by_scheme) in
      Printf.printf " %s=%.3f" n m)
    scheme_names;
  print_newline ();
  print_endline
    "(paper geomeans: turnstile 1.29 -> war-free 1.25 -> +coloring 1.22 -> +pruning 1.12\n\
     -> +licm 1.10 -> +sched 1.07 -> +ra 1.02 -> turnpike 1.00)"

let run_ablation50 () =
  Report.section
    "Extension: optimization ablation ladder at WCDL=50 (paper shows only WCDL=10)";
  let rows = E.fig21_wcdl ~params:!params ~wcdl:50 () in
  let scheme_names = List.map (fun (s : Scheme.t) -> s.Scheme.name) Scheme.ladder in
  let nrows = named rows (fun (r : E.fig21_row) -> r.bench) in
  print_string "geomean:";
  List.iter
    (fun n ->
      let _, m = grouped_means ~geomean:true nrows (fun r -> List.assoc n r.E.by_scheme) in
      Printf.printf " %s=%.3f" n m)
    scheme_names;
  print_newline ();
  print_endline
    "(the compiler rungs — pruning/LICM/LIVM — matter more here than at WCDL=10:\n\
     every store they remove is one fewer 50-cycle quarantine)"

let run_motivation () =
  Report.section
    "Motivation (paper sections 1 and 3): the same Turnstile binary, out-of-order vs in-order";
  let rows = E.motivation ~params:!params () in
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "OoO (SB=40)"; width = 11 };
             { title = "in-order (SB=4)"; width = 15 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.motivation_row) ->
      Report.print_row cols
        [ r.bench; Report.fmt_overhead r.ooo_overhead;
          Report.fmt_overhead r.inorder_overhead ])
    rows;
  let nrows = named rows (fun (r : E.motivation_row) -> r.bench) in
  let _, ooo = grouped_means ~geomean:true nrows (fun r -> r.E.ooo_overhead) in
  let _, io = grouped_means ~geomean:true nrows (fun r -> r.E.inorder_overhead) in
  Printf.printf
    "geomean: OoO %.3f, in-order %.3f (paper: ~1.08 out-of-order vs 1.29 in-order at WCDL=10)\n"
    ooo io

let run_unroll () =
  Report.section
    "Extension: loop unrolling as a region-size knob (WCDL=50; baseline re-unrolled identically)";
  let rows = E.unroll_ablation ~params:!params () in
  let cols =
    Report.(
      { title = "benchmark"; width = 18 }
      :: List.concat_map
           (fun f ->
             [ { title = Printf.sprintf "ts x%d" f; width = 7 };
               { title = Printf.sprintf "tp x%d" f; width = 7 } ])
           E.unroll_factors)
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.unroll_row) ->
      Report.print_row cols
        (r.bench
        :: List.concat_map
             (fun (_, ts, tp) -> [ Report.fmt_overhead ts; Report.fmt_overhead tp ])
             r.by_factor))
    rows;
  let nrows = named rows (fun (r : E.unroll_row) -> r.bench) in
  print_string "geomean:";
  List.iter
    (fun f ->
      let pick which r =
        let _, ts, tp = List.find (fun (f', _, _) -> f' = f) r.E.by_factor in
        if which then ts else tp
      in
      let _, ts = grouped_means ~geomean:true nrows (pick true) in
      let _, tp = grouped_means ~geomean:true nrows (pick false) in
      Printf.printf "  x%d: ts=%.3f tp=%.3f" f ts tp)
    E.unroll_factors;
  print_newline ();
  print_endline
    "(bigger loop bodies cut checkpoint density and color-pool pressure, so\n\
     checkpoint-bound benchmarks (e.g. water-sp) improve dramatically, while\n\
     store-bound ones keep their SB bottleneck and can even regress relative to\n\
     their faster unrolled baseline — the region-size effect separating these\n\
     kernels from SPEC-sized loops)"

let run_fig22 () =
  Report.section "Fig 22: store-buffer size sensitivity (WCDL=10)";
  let rows = E.fig22 ~params:!params () in
  let config_names = List.map (fun (n, _, _) -> n) E.fig22_configs in
  let cols =
    Report.(
      { title = "benchmark"; width = 18 }
      :: List.map (fun n -> { title = n; width = max 9 (String.length n) }) config_names)
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.fig22_row) ->
      Report.print_row cols
        (r.bench
        :: List.map (fun n -> Report.fmt_overhead (List.assoc n r.by_config)) config_names))
    rows;
  let nrows = named rows (fun (r : E.fig22_row) -> r.bench) in
  print_string "geomean:          ";
  List.iter
    (fun n ->
      let _, m = grouped_means ~geomean:true nrows (fun r -> List.assoc n r.E.by_config) in
      Printf.printf " %s=%.3f" n m)
    config_names;
  print_newline ();
  print_endline
    "(paper: turnstile needs SB=40 to reach 1.09 while turnpike is ~1.00 at SB=4)"

let run_fig23 () =
  Report.section "Fig 23: store breakdown (WCDL=10, 2-entry CLQ)";
  let rows = E.fig23 ~params:!params () in
  csv "fig23" Turnpike.Csv_export.fig23 rows;
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "pruned"; width = 7 };
             { title = "licm"; width = 6 }; { title = "colored"; width = 8 };
             { title = "war-free"; width = 8 }; { title = "ra-elim"; width = 7 };
             { title = "ivm-elim"; width = 8 }; { title = "others"; width = 7 } ]
  in
  Report.print_header cols;
  let f = Printf.sprintf "%.1f" in
  List.iter
    (fun (r : E.fig23_row) ->
      Report.print_row cols
        [ r.bench; f r.pruned; f r.licm_eliminated; f r.colored; f r.war_free;
          f r.ra_eliminated; f r.ivm_eliminated; f r.others ])
    rows;
  let nrows = named rows (fun (r : E.fig23_row) -> r.bench) in
  let mean field = snd (grouped_means ~geomean:false nrows field) in
  Printf.printf
    "mean %%: pruned=%.1f licm=%.1f colored=%.1f war-free=%.1f ra=%.1f ivm=%.1f others=%.1f\n"
    (mean (fun r -> r.E.pruned))
    (mean (fun r -> r.E.licm_eliminated))
    (mean (fun r -> r.E.colored))
    (mean (fun r -> r.E.war_free))
    (mean (fun r -> r.E.ra_eliminated))
    (mean (fun r -> r.E.ivm_eliminated))
    (mean (fun r -> r.E.others));
  print_endline
    "(paper means: pruned 21%, licm 1.4%, ra 1.7%, ivm 5%, colored+war-free 39%)"

let run_fig24 () =
  Report.section "Fig 24: dynamic CLQ entries populated (WCDL=10)";
  let rows = E.fig24 ~params:!params () in
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "average"; width = 8 };
             { title = "maximum"; width = 8 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.fig24_row) ->
      Report.print_row cols
        [ r.bench; Printf.sprintf "%.2f" r.mean_entries; string_of_int r.max_entries ])
    rows;
  print_endline "(paper: average ~1 entry, maximum 3-4 for some applications)"

let run_fig25 () =
  Report.section "Fig 25: 2-entry vs 4-entry compact CLQ (WCDL=10)";
  let rows = E.fig25 ~params:!params () in
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "CLQ-2"; width = 7 };
             { title = "CLQ-4"; width = 7 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.fig25_row) ->
      Report.print_row cols
        [ r.bench; Report.fmt_overhead r.overhead_clq2; Report.fmt_overhead r.overhead_clq4 ])
    rows;
  let nrows = named rows (fun (r : E.fig25_row) -> r.bench) in
  let _, m2 = grouped_means ~geomean:true nrows (fun r -> r.E.overhead_clq2) in
  let _, m4 = grouped_means ~geomean:true nrows (fun r -> r.E.overhead_clq4) in
  Printf.printf "geomean: CLQ-2 %.3f, CLQ-4 %.3f (paper: almost identical)\n" m2 m4

let run_fig26 () =
  Report.section "Fig 26: region size and code-size increase (Turnpike)";
  let rows = E.fig26 ~params:!params () in
  csv "fig26" Turnpike.Csv_export.fig26 rows;
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "region size"; width = 11 };
             { title = "code +%"; width = 8 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.fig26_row) ->
      Report.print_row cols
        [ r.bench; Printf.sprintf "%.1f" r.region_size;
          Printf.sprintf "%.2f" r.code_increase_pct ])
    rows;
  let nrows = named rows (fun (r : E.fig26_row) -> r.bench) in
  let _, rs = grouped_means ~geomean:false nrows (fun r -> r.E.region_size) in
  let _, cs = grouped_means ~geomean:false nrows (fun r -> r.E.code_increase_pct) in
  Printf.printf "mean: %.1f instructions/region, +%.2f%% code (paper: 11.2 instrs, +0.4%%)\n"
    rs cs

let run_table1 () =
  Report.section "Table 1: hardware cost (analytic CACTI model, 22nm)";
  let cols =
    Report.[ { title = "structure"; width = 46 }; { title = "area (um^2)"; width = 12 };
             { title = "dyn access (pJ)"; width = 15 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.Cost_model.table1_row) ->
      Report.print_row cols
        [ r.label; Printf.sprintf "%.3f" r.area_um2; Printf.sprintf "%.5f" r.energy_pj ])
    (E.table1 ())

let campaign_faults () =
  Option.value ~default:default_campaign_faults (!campaign).Turnpike.Campaign_args.faults

let run_resilience_ci stopping =
  Report.section
    "Fault injection: sequential stopping on the SDC-rate confidence interval";
  let rows =
    E.resilience_campaign_ci ~params:!params ~max_faults:(campaign_faults ())
      ~seed:(!campaign).Turnpike.Campaign_args.seed ~stopping ()
  in
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "faults"; width = 7 };
             { title = "SDC rate"; width = 8 }; { title = "ci low"; width = 7 };
             { title = "ci high"; width = 7 }; { title = "+/-"; width = 7 };
             { title = "batches"; width = 7 }; { title = "stopped"; width = 9 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.resilience_ci_row) ->
      Report.print_row cols
        [ r.ci_bench; string_of_int r.ci.E.Verifier.report.E.Verifier.total;
          Printf.sprintf "%.4f" r.ci.E.Verifier.sdc_rate;
          Printf.sprintf "%.4f" r.ci.E.Verifier.ci_low;
          Printf.sprintf "%.4f" r.ci.E.Verifier.ci_high;
          Printf.sprintf "%.4f" r.ci.E.Verifier.achieved_half_width;
          string_of_int r.ci.E.Verifier.batches;
          (if r.ci.E.Verifier.exhausted then "supply" else "interval") ])
    rows;
  Printf.printf
    "(stop target: half-width %.4f at %g%% confidence; 'supply' = fault list \
     exhausted first)\n"
    stopping.E.Verifier.half_width
    (100.0 *. stopping.E.Verifier.confidence)

let run_resilience () =
  match Turnpike.Campaign_args.stopping !campaign with
  | Some stopping -> run_resilience_ci stopping
  | None ->
  Report.section "Fault injection: SDC-freedom campaign (beyond the paper's figures)";
  let rows =
    E.resilience_campaign ~params:!params ~faults:(campaign_faults ())
      ~seed:(!campaign).Turnpike.Campaign_args.seed ()
  in
  let cols =
    Report.[ { title = "benchmark"; width = 18 }; { title = "faults"; width = 7 };
             { title = "recovered"; width = 9 }; { title = "SDC"; width = 5 };
             { title = "crashed"; width = 7 }; { title = "parity"; width = 7 };
             { title = "sensor"; width = 7 }; { title = "reexec +%"; width = 9 } ]
  in
  Report.print_header cols;
  let totals = ref (0, 0, 0) in
  List.iter
    (fun (r : E.resilience_row) ->
      let rep = r.report in
      let t, s, c = !totals in
      totals := (t + rep.E.Verifier.total, s + rep.E.Verifier.sdc, c + rep.E.Verifier.crashed);
      Report.print_row cols
        [ r.bench; string_of_int rep.E.Verifier.total;
          string_of_int rep.E.Verifier.recovered; string_of_int rep.E.Verifier.sdc;
          string_of_int rep.E.Verifier.crashed;
          string_of_int rep.E.Verifier.parity_detections;
          string_of_int rep.E.Verifier.sensor_detections;
          Printf.sprintf "%.2f" (100. *. rep.E.Verifier.mean_reexec_overhead) ])
    rows;
  let t, s, c = !totals in
  Printf.printf "TOTAL: %d faults, %d SDC, %d crashes (SDC-freedom requires 0/0)\n" t s c

let run_energy () =
  Report.section "Resilience-hardware energy (beyond the paper's figures)";
  let rows = E.energy ~params:!params () in
  let cols =
    Report.[ { title = "benchmark"; width = 18 };
             { title = "turnstile pJ/kinstr"; width = 19 };
             { title = "turnpike pJ/kinstr"; width = 18 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (r : E.energy_row) ->
      Report.print_row cols
        [ r.bench; Printf.sprintf "%.2f" r.turnstile_pj_per_kinstr;
          Printf.sprintf "%.2f" r.turnpike_pj_per_kinstr ])
    rows;
  let nrows = named rows (fun (r : E.energy_row) -> r.bench) in
  let _, ts = grouped_means ~geomean:false nrows (fun r -> r.E.turnstile_pj_per_kinstr) in
  let _, tp = grouped_means ~geomean:false nrows (fun r -> r.E.turnpike_pj_per_kinstr) in
  Printf.printf
    "mean: turnstile %.2f, turnpike %.2f pJ per 1000 instructions\n\
     (Turnpike trades store-buffer CAM quarantine traffic for cheap RAM lookups;\n\
     per-access energies from the Table 1 model)\n"
    ts tp

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the harness primitives. *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let bench = List.hd (Suite.find_by_name "libquan") in
  let compiled =
    Run.compile_with
      { Run.default_params with scale = 2; fuel = 100_000 }
      Scheme.turnpike bench
  in
  let machine = Turnpike_arch.Machine.turnpike ~wcdl:10 () in
  let prog = bench.Suite.build ~scale:1 in
  let tests =
    [
      Test.make ~name:"compile-turnpike" (Staged.stage (fun () ->
          ignore
            (Turnpike_compiler.Pass_pipeline.compile
               ~opts:Turnpike_compiler.Pass_pipeline.turnpike_opts prog)));
      Test.make ~name:"trace-interp" (Staged.stage (fun () ->
          ignore (Turnpike_ir.Interp.trace_run ~fuel:20_000 compiled.Run.compiled.Run.Pass_pipeline.prog)));
      Test.make ~name:"timing-simulate" (Staged.stage (fun () ->
          ignore (Turnpike_arch.Timing.simulate machine compiled.Run.trace)));
      Test.make ~name:"cache-access" (Staged.stage (
          let c = Turnpike_arch.Cache.create ~name:"l1" ~size_bytes:65536 ~assoc:2 ~line_bytes:64 in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore (Turnpike_arch.Cache.access c ~write:false (!i * 40))));
      Test.make ~name:"sensor-wcdl" (Staged.stage (fun () ->
          ignore (Turnpike_arch.Sensor.wcdl
                    (Turnpike_arch.Sensor.create ~num_sensors:300 ~clock_ghz:2.5 ()))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  Report.section "Bechamel micro-benchmarks (harness primitives)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"turnpike" [ t ]) tests)

(* ------------------------------------------------------------------ *)
(* --profile: wall-clock telemetry for the harness itself — per-pass
   compile spans and pool utilization. The Run compile cache memoizes
   compilation, so the pass profile drives [Pass_pipeline.compile]
   directly (a cache hit would emit no spans). *)

let profile () =
  Telemetry.Clock.set Unix.gettimeofday;
  let scale = (!params).Run.scale in
  Report.section
    (Printf.sprintf "Profile: per-pass compile spans (libquan, turnpike opts, scale %d)"
       scale);
  let bench = List.hd (Suite.find_by_name "libquan") in
  let prog = bench.Suite.build ~scale in
  let opts = Scheme.compile_opts Scheme.turnpike ~sb_size:4 in
  let tel = Telemetry.create () in
  ignore (Turnpike_compiler.Pass_pipeline.compile ~opts ~tel prog);
  let spans =
    List.filter
      (fun (e : Telemetry.event) -> String.equal e.Telemetry.cat "compiler")
      (Telemetry.events tel)
  in
  let cols =
    Report.[ { title = "pass"; width = 26 }; { title = "us"; width = 8 };
             { title = "stat deltas"; width = 44 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (e : Telemetry.event) ->
      let dur = match e.Telemetry.kind with Telemetry.Complete d -> d | _ -> 0 in
      let deltas =
        String.concat " "
          (List.map
             (fun (k, v) ->
               match v with
               | Telemetry.Int i -> Printf.sprintf "%s%+d" k i
               | _ -> k)
             e.Telemetry.args)
      in
      Report.print_row cols [ e.Telemetry.name; string_of_int dur; deltas ])
    spans;
  Printf.printf "%d pass spans (pipeline declares %d passes)\n" (List.length spans)
    (List.length (Turnpike_compiler.Pass_pipeline.pass_names opts));

  Report.section "Profile: pool utilization (fig19 grid)";
  let pool_tel = Telemetry.create ~capacity:65536 () in
  Turnpike.Parallel.set_telemetry pool_tel;
  ignore (E.fig19 ~params:!params ());
  Turnpike.Parallel.set_telemetry Telemetry.null;
  (match Turnpike.Parallel.last_map_stats () with
  | None -> print_endline "no parallel map ran"
  | Some s ->
    Printf.printf "last map: %d tasks on %d worker(s), wall %d us, utilization %.1f%%\n"
      s.Turnpike.Parallel.tasks s.Turnpike.Parallel.jobs s.Turnpike.Parallel.wall_us
      (100. *. Turnpike.Parallel.utilization s);
    Array.iteri
      (fun w busy ->
        Printf.printf "  worker %d: busy %8d us, %3d task(s)\n" w busy
          s.Turnpike.Parallel.worker_tasks.(w))
      s.Turnpike.Parallel.busy_us);
  Printf.printf "pool span events recorded: %d (dropped: %d)\n"
    (Telemetry.length pool_tel) (Telemetry.dropped pool_tel)

(* ------------------------------------------------------------------ *)
(* analysis: wall-clock cost of the static soundness checker at each
   check level, plus its verdicts. The JSON artifact at the repo root
   (BENCH_analysis_overhead.json) comes from the sibling
   analysis_overhead.exe; this table is the interactive view. *)

let run_analysis () =
  let module PP = Turnpike_compiler.Pass_pipeline in
  Report.section "Static checker: compile-time cost per check level (turnpike opts)";
  let scale = (!params).E.scale in
  let benches = Suite.all () in
  let progs = List.map (fun b -> b.Suite.build ~scale) benches in
  let opts = Scheme.compile_opts Scheme.turnpike ~sb_size:4 in
  let levels = [ ("off", PP.Off); ("final", PP.Final); ("per-pass", PP.PerPass) ] in
  let cols =
    Report.[ { title = "check level"; width = 12 }; { title = "wall ms"; width = 8 };
             { title = "diags"; width = 6 }; { title = "errors"; width = 6 } ]
  in
  Report.print_header cols;
  List.iter
    (fun (label, check) ->
      let t0 = Unix.gettimeofday () in
      let diags = ref 0 and errors = ref 0 in
      List.iter
        (fun prog ->
          let c = PP.compile ~opts ~check prog in
          diags := !diags + List.length c.PP.diags;
          errors := !errors + Turnpike_analysis.Diag.error_count c.PP.diags)
        progs;
      let ms = 1000. *. (Unix.gettimeofday () -. t0) in
      Report.print_row cols
        [ label; Printf.sprintf "%.1f" ms; string_of_int !diags; string_of_int !errors ])
    levels;
  Printf.printf
    "(diagnostics are informational audits; errors must be 0 on shipped workloads)\n"

(* ------------------------------------------------------------------ *)
(* explore: cross-layer design-space exploration (not part of the default
   run-all set — a grid sweep is a deliberate choice, like --micro). *)

let explore_budgets () =
  (* --faults / --ci override the final (full-scale) rung's campaign. *)
  let ca = !campaign in
  match List.rev (Turnpike.Explore.budgets_for !params) with
  | [] -> []
  | last :: rev ->
    let last =
      {
        last with
        Turnpike.Explore.max_faults =
          Option.value ~default:last.Turnpike.Explore.max_faults
            ca.Turnpike.Campaign_args.faults;
        ci_half_width =
          Option.value ~default:last.Turnpike.Explore.ci_half_width
            ca.Turnpike.Campaign_args.ci;
      }
    in
    List.rev (last :: rev)

let run_explore () =
  let module X = Turnpike.Explore in
  let module DP = Turnpike.Design_point in
  Report.section "Design-space exploration: Pareto frontier by successive halving";
  let spec =
    match DP.spec_of_string !explore_grid_name with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "--grid: %s\n" msg;
      exit 2
  in
  let report =
    X.run ~budgets:(explore_budgets ())
      ~seed:(!campaign).Turnpike.Campaign_args.seed ~params:!params ~spec ()
  in
  Printf.printf "grid %s: %d points over {%s}, seed %d\n" !explore_grid_name
    report.X.grid_size
    (String.concat ", " report.X.benches)
    report.X.seed;
  Printf.printf "evaluations per budget rung: %s\n"
    (String.concat ", "
       (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) report.X.evals_per_budget));
  Printf.printf "full-scale evaluations: %d/%d (%.0f%% of the grid)\n"
    report.X.full_scale_evals report.X.grid_size
    (100.0 *. float_of_int report.X.full_scale_evals
    /. float_of_int (max 1 report.X.grid_size));
  let cols =
    Report.[ { title = "design point"; width = 34 }; { title = "overhead"; width = 8 };
             { title = "area um^2"; width = 10 }; { title = "pJ/kinstr"; width = 9 };
             { title = "SDC rate"; width = 8 }; { title = "faults"; width = 6 } ]
  in
  Report.subsection "Pareto frontier (full-scale survivors)";
  Report.print_header cols;
  List.iter
    (fun (r : X.point_result) ->
      let o = r.X.objectives in
      Report.print_row cols
        [ DP.id r.X.point; Report.fmt_overhead o.X.overhead;
          Printf.sprintf "%.1f" o.X.area_um2;
          Printf.sprintf "%.2f" o.X.energy_pj_per_kinstr;
          Printf.sprintf "%.4f" o.X.sdc_rate; string_of_int o.X.faults ])
    report.X.frontier;
  Printf.printf "frontier re-validation at full scale: %s\n"
    (if report.X.validated then "ok (objectives reproduced exactly)" else "FAILED");
  csv "explore_grid" Turnpike.Csv_export.explore_grid report;
  csv "explore_pareto" Turnpike.Csv_export.explore_pareto report

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", run_fig4); ("fig14", run_fig14_15); ("fig15", run_fig14_15);
    ("fig18", run_fig18); ("fig19", run_fig19); ("fig20", run_fig20);
    ("fig21", run_fig21); ("fig22", run_fig22); ("fig23", run_fig23);
    ("fig24", run_fig24); ("fig25", run_fig25); ("fig26", run_fig26);
    ("table1", run_table1); ("resilience", run_resilience);
    ("energy", run_energy); ("ablation50", run_ablation50);
    ("unroll", run_unroll); ("motivation", run_motivation);
    ("analysis", run_analysis); ("explore", run_explore);
  ]

(* A grid sweep is opt-in, like --micro: keep it out of the run-all set. *)
let default_experiments =
  List.filter (fun (n, _) -> n <> "explore") experiments

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse sel args =
    (* The shared campaign flags (--seed/--faults/--ci/--confidence/
       --batch/--jobs) are recognized by the one spec in Campaign_args. *)
    match Turnpike.Campaign_args.consume !campaign args with
    | Some (updated, rest) ->
      campaign := updated;
      Turnpike.Campaign_args.apply_jobs updated;
      parse sel rest
    | None -> (
      match args with
      | [] -> List.rev sel
      | "--scale" :: n :: rest ->
        params := { !params with E.scale = int_of_string n };
        parse sel rest
      | "--fuel" :: n :: rest ->
        params := { !params with E.fuel = int_of_string n };
        parse sel rest
      | "--grid" :: g :: rest ->
        explore_grid_name := g;
        parse sel rest
      | "--csv" :: dir :: rest ->
        (try Unix.mkdir dir 0o755 with _ -> ());
        csv_dir := Some dir;
        parse sel rest
      | "--micro" :: rest ->
        micro ();
        parse sel rest
      | "--profile" :: rest ->
        profile ();
        parse sel rest
      | x :: rest when List.mem_assoc x experiments -> parse (x :: sel) rest
      | x :: _ ->
        Printf.eprintf
          "unknown argument %s; known: %s --scale N --fuel N --grid G %s \
           --micro --profile --csv DIR\n"
          x
          (String.concat " " (List.map fst experiments))
          Turnpike.Campaign_args.usage;
        exit 2)
  in
  let selected = try parse [] args with Failure msg -> Printf.eprintf "%s\n" msg; exit 2 in
  let selected =
    if selected = [] && not (List.mem "--micro" args || List.mem "--profile" args)
    then List.map fst default_experiments
    else selected
  in
  (* fig14 and fig15 share a driver; avoid printing it twice. *)
  let selected =
    if List.mem "fig14" selected && List.mem "fig15" selected then
      List.filter (fun s -> s <> "fig15") selected
    else selected
  in
  List.iter (fun name -> (List.assoc name experiments) ()) selected
