(* Measures what forensic lifecycle tracing costs a fault campaign: runs
   the same seeded campaign per suite benchmark twice — forensics off
   (null sinks, the default Verifier path) and forensics on (one bounded
   sink per fault plus record distillation) — asserts the aggregate
   reports are identical (sinks never influence outcomes), and reports the
   faults/sec of both modes as JSON on stdout.

   Usage:
     dune exec bench/forensics_overhead.exe -- [--scale N] [--faults N] \
       [--seed S] > BENCH_forensics_overhead.json

   Runs strictly sequentially (jobs=1) so the two timed modes are
   comparable; parallel fan-out multiplies both sides equally. The off
   mode is the guard the <2% regression budget of BENCH_campaign_replay
   is judged against: with telemetry disabled every would-be event is one
   immutable-field load and branch. *)

module Run = Turnpike.Run
module Scheme = Turnpike.Scheme
module Suite = Turnpike_workloads.Suite
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier
module Forensics = Turnpike_resilience.Forensics

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let scale = ref 8 in
  let faults = ref 200 in
  let seed = ref 7 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--faults" :: n :: rest ->
      faults := int_of_string n;
      parse rest
    | "--seed" :: n :: rest ->
      seed := int_of_string n;
      parse rest
    | x :: _ ->
      Printf.eprintf "unknown argument %s; known: --scale N --faults N --seed S\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let params =
    { Run.default_params with Run.scale = max 1 (!scale / 4); sb_size = 4 }
  in
  let rows = ref [] in
  let total_faults = ref 0 in
  let off_total = ref 0.0 and on_total = ref 0.0 in
  let total_events = ref 0 in
  List.iter
    (fun b ->
      let c = Run.compile_with params Scheme.turnpike b in
      if c.Run.trace.Turnpike_ir.Trace.complete then begin
        let campaign = Injector.campaign ~seed:!seed ~count:!faults c.Run.trace in
        let golden = c.Run.final in
        let compiled = c.Run.compiled in
        let off_s, off_rep =
          time (fun () -> Verifier.run_campaign ~jobs:1 ~golden ~compiled campaign)
        in
        let on_s, (records, on_rep) =
          time (fun () -> Forensics.campaign ~jobs:1 ~golden ~compiled campaign)
        in
        if off_rep <> on_rep then begin
          Printf.eprintf "FATAL: %s forensic report diverges from plain campaign\n"
            (Suite.qualified_name b);
          exit 1
        end;
        let events =
          List.fold_left
            (fun acc (r : Forensics.record) ->
              acc + List.length r.Forensics.events)
            0 records
        in
        let n = List.length campaign in
        total_faults := !total_faults + n;
        off_total := !off_total +. off_s;
        on_total := !on_total +. on_s;
        total_events := !total_events + events;
        rows :=
          Printf.sprintf
            "    { \"bench\": %S, \"faults\": %d, \"events\": %d,\n\
            \      \"off_s\": %.3f, \"on_s\": %.3f, \"overhead_pct\": %.2f }"
            (Suite.qualified_name b) n events off_s on_s
            (100.0 *. (on_s -. off_s) /. Float.max 1e-9 off_s)
          :: !rows
      end)
    (Suite.all ());
  let off_fps = float_of_int !total_faults /. Float.max 1e-9 !off_total in
  let on_fps = float_of_int !total_faults /. Float.max 1e-9 !on_total in
  Printf.printf
    "{\n\
    \  \"benchmark\": \"forensics_overhead\",\n\
    \  \"scale\": %d,\n\
    \  \"faults_per_bench\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"total_faults\": %d,\n\
    \  \"total_events\": %d,\n\
    \  \"off\": { \"seconds\": %.3f, \"faults_per_sec\": %.1f },\n\
    \  \"on\": { \"seconds\": %.3f, \"faults_per_sec\": %.1f },\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"reports_identical\": true,\n\
    \  \"per_bench\": [\n%s\n  ]\n\
     }\n"
    !scale !faults !seed !total_faults !total_events !off_total off_fps
    !on_total on_fps
    (100.0 *. (!on_total -. !off_total) /. Float.max 1e-9 !off_total)
    (String.concat ",\n" (List.rev !rows))
