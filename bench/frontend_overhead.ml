(* Measures what the .tk frontend costs: for each examples/ port, times
   the full text path (lex + parse + typecheck + lower via Tk.compile_string)
   against constructing the same kernel through the OCaml template API —
   the two producers of the identical IR asserted trace-equivalent by
   test/test_frontend.ml — and reports both wall-clock totals as JSON on
   stdout. Parsing alone is timed separately so the lowering share is
   visible.

   Usage:
     dune exec bench/frontend_overhead.exe -- [--scale N] [--repeat N] \
       [--examples DIR] > BENCH_frontend_overhead.json

   Runs strictly sequentially so the passes are comparable; see the
   "note" field in the output for the single-core caveat. *)

module Tk = Turnpike_frontend.Tk
module Templates = Turnpike_workloads.Templates

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let () =
  let scale = ref 1 and repeat = ref 200 and dir = ref "examples" in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--repeat" :: n :: rest ->
      repeat := int_of_string n;
      parse rest
    | "--examples" :: d :: rest ->
      dir := d;
      parse rest
    | x :: _ ->
      Printf.eprintf
        "unknown argument %s; known: --scale N --repeat N --examples DIR\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale = !scale and repeat = !repeat in
  (* Each port next to the template call producing the same IR. *)
  let kernels =
    [
      ("triad", "triad.tk", fun s -> Templates.triad ~iters:(8 * s) ());
      ("stencil", "stencil.tk", fun s -> Templates.stencil ~iters:(8 * s) ());
      ( "histogram",
        "histogram.tk",
        fun s -> Templates.histogram ~iters:(16 * s) ~buckets:8 () );
      ( "gather",
        "gather.tk",
        fun s -> Templates.gather ~iters:(12 * s) ~span:16 () );
      ("mixed", "mixed.tk", fun s -> Templates.mixed ~iters:(10 * s) ());
      ("matmul", "matmul.tk", fun s -> Templates.matmul ~n:(4 * s) ());
      ( "pointer_chase",
        "pointer_chase.tk",
        fun s -> Templates.pointer_chase ~nodes:16 ~iters:(8 * s) () );
    ]
  in
  let rows =
    List.map
      (fun (name, file, template) ->
        let path = Filename.concat !dir file in
        let src = read_file path in
        let parse_s, () =
          time (fun () ->
              for _ = 1 to repeat do
                match Tk.parse_string ~file:path src with
                | Ok _ -> ()
                | Error e ->
                  Printf.eprintf "%s\n" (Turnpike_frontend.Srcloc.error_to_string e);
                  exit 1
              done)
        in
        let compile_s, () =
          time (fun () ->
              for _ = 1 to repeat do
                match Tk.compile_string ~file:path ~scale src with
                | Ok _ -> ()
                | Error e ->
                  Printf.eprintf "%s\n" e;
                  exit 1
              done)
        in
        let template_s, () =
          time (fun () ->
              for _ = 1 to repeat do
                ignore (template scale)
              done)
        in
        (name, parse_s, compile_s, template_s))
      kernels
  in
  let total f = List.fold_left (fun a r -> a +. f r) 0. rows in
  let parse_total = total (fun (_, p, _, _) -> p) in
  let compile_total = total (fun (_, _, c, _) -> c) in
  let template_total = total (fun (_, _, _, t) -> t) in
  let ratio b v = if b > 0. then v /. b else 0. in
  let row_json (name, p, c, t) =
    Printf.sprintf
      "    { \"kernel\": %S, \"parse_s\": %.4f, \"frontend_s\": %.4f, \
       \"template_s\": %.4f, \"frontend_vs_template\": %.2f }" name p c t
      (ratio t c)
  in
  Printf.printf
    "{\n\
    \  \"scale\": %d,\n\
    \  \"repeat\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"kernels\": [\n\
     %s\n\
    \  ],\n\
    \  \"parse_total_s\": %.4f,\n\
    \  \"frontend_total_s\": %.4f,\n\
    \  \"template_total_s\": %.4f,\n\
    \  \"frontend_vs_template\": %.2f,\n\
    \  \"note\": \"wall-clock on a single core (--jobs 1 equivalent); \
     frontend_s is the full text path (lex+parse+typecheck+lower), \
     template_s the OCaml Builder path producing the same IR. Absolute \
     times are host-dependent; the ratios are the portable signal. The \
     frontend cost is per-compile, amortized over every downstream \
     simulation of the program.\"\n\
     }\n"
    scale repeat
    (String.concat ",\n" (List.map row_json rows))
    parse_total compile_total template_total
    (ratio template_total compile_total)
