(* Measures what snapshot/fork replay buys a fault campaign: runs the same
   seeded campaign per suite benchmark twice — every fault replayed from
   scratch (step 0) and every fault forked from the pilot snapshot nearest
   its strike site — asserts the reports are byte-identical, and reports
   the faults/sec of both modes as JSON on stdout.

   Usage:
     dune exec bench/campaign_replay.exe -- [--scale N] [--faults N] \
       [--seed S] [--every K] > BENCH_campaign_replay.json

   Runs strictly sequentially (jobs=1) so the two timed modes are
   comparable and the speedup reflects per-fault replay cost, not pool
   scheduling; parallel fan-out multiplies both sides equally. *)

module Run = Turnpike.Run
module Scheme = Turnpike.Scheme
module Suite = Turnpike_workloads.Suite
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier
module Snapshot = Turnpike_resilience.Snapshot

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let scale = ref 8 in
  let faults = ref 200 in
  let seed = ref 7 in
  let every = ref Snapshot.default_every in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--faults" :: n :: rest ->
      faults := int_of_string n;
      parse rest
    | "--seed" :: n :: rest ->
      seed := int_of_string n;
      parse rest
    | "--every" :: n :: rest ->
      every := int_of_string n;
      parse rest
    | x :: _ ->
      Printf.eprintf
        "unknown argument %s; known: --scale N --faults N --seed S --every K\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let params =
    { Run.default_params with Run.scale = max 1 (!scale / 4); sb_size = 4 }
  in
  let rows = ref [] in
  let total_faults = ref 0 in
  let scratch_total = ref 0.0 and forked_total = ref 0.0 and pilot_total = ref 0.0 in
  List.iter
    (fun b ->
      let c = Run.compile_with params Scheme.turnpike b in
      if c.Run.trace.Turnpike_ir.Trace.complete then begin
        let campaign = Injector.campaign ~seed:!seed ~count:!faults c.Run.trace in
        let golden = c.Run.final in
        let compiled = c.Run.compiled in
        let scratch_s, scratch_rep =
          time (fun () -> Verifier.run_campaign ~jobs:1 ~golden ~compiled campaign)
        in
        let pilot_s, plan = time (fun () -> Snapshot.record ~every:!every compiled) in
        let forked_s, forked_rep =
          time (fun () ->
              Verifier.run_campaign ~jobs:1 ~plan ~golden ~compiled campaign)
        in
        if scratch_rep <> forked_rep then begin
          Printf.eprintf "FATAL: %s forked report diverges from scratch\n"
            (Suite.qualified_name b);
          exit 1
        end;
        let n = List.length campaign in
        total_faults := !total_faults + n;
        scratch_total := !scratch_total +. scratch_s;
        pilot_total := !pilot_total +. pilot_s;
        forked_total := !forked_total +. forked_s;
        rows :=
          Printf.sprintf
            "    { \"bench\": %S, \"faults\": %d, \"trace_steps\": %d,\n\
            \      \"scratch_s\": %.3f, \"pilot_s\": %.3f, \"forked_s\": %.3f,\n\
            \      \"snapshots\": %d, \"speedup\": %.2f }"
            (Suite.qualified_name b) n
            (Array.length c.Run.trace.Turnpike_ir.Trace.events)
            scratch_s pilot_s forked_s (Snapshot.snapshot_count plan)
            (scratch_s /. Float.max 1e-9 (pilot_s +. forked_s))
          :: !rows
      end)
    (Suite.all ());
  (* The pilot is amortized over the campaign, so it counts against the
     forked mode's faults/sec. *)
  let scratch_fps = float_of_int !total_faults /. Float.max 1e-9 !scratch_total in
  let forked_fps =
    float_of_int !total_faults /. Float.max 1e-9 (!forked_total +. !pilot_total)
  in
  Printf.printf
    "{\n\
    \  \"benchmark\": \"campaign_replay\",\n\
    \  \"scale\": %d,\n\
    \  \"faults_per_bench\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"snapshot_every\": %d,\n\
    \  \"total_faults\": %d,\n\
    \  \"scratch\": { \"seconds\": %.3f, \"faults_per_sec\": %.1f },\n\
    \  \"forked\": { \"seconds\": %.3f, \"pilot_seconds\": %.3f, \
     \"faults_per_sec\": %.1f },\n\
    \  \"speedup\": %.2f,\n\
    \  \"reports_identical\": true,\n\
    \  \"per_bench\": [\n%s\n  ]\n\
     }\n"
    !scale !faults !seed !every !total_faults !scratch_total scratch_fps
    !forked_total !pilot_total forked_fps (forked_fps /. Float.max 1e-9 scratch_fps)
    (String.concat ",\n" (List.rev !rows))
