(* Measures what the static soundness checker costs at compile time:
   compiles every suite benchmark at the turnpike rung three times — with
   checking off, with one final whole-program registry run, and with the
   registry between every pass (provenance mode) — and reports the three
   wall-clock totals as JSON on stdout.

   Usage:
     dune exec bench/analysis_overhead.exe -- [--scale N] \
       > BENCH_analysis_overhead.json

   Runs strictly sequentially so the three passes are comparable. *)

module PP = Turnpike_compiler.Pass_pipeline
module Scheme = Turnpike.Scheme
module Suite = Turnpike_workloads.Suite

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let scale = ref 8 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | x :: _ ->
      Printf.eprintf "unknown argument %s; known: --scale N\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let benches = Suite.all () in
  let opts = Scheme.compile_opts Scheme.turnpike ~sb_size:4 in
  (* Build programs once; the three timed passes compile identical input. *)
  let progs = List.map (fun b -> b.Suite.build ~scale:!scale) benches in
  let compile_all check =
    let diags = ref 0 in
    let errors = ref 0 in
    List.iter
      (fun prog ->
        let c = PP.compile ~opts ~check prog in
        diags := !diags + List.length c.PP.diags;
        errors := !errors + Turnpike_analysis.Diag.error_count c.PP.diags)
      progs;
    (!diags, !errors)
  in
  let off_s, _ = time (fun () -> compile_all PP.Off) in
  let final_s, (final_diags, final_errors) =
    time (fun () -> compile_all PP.Final)
  in
  let perpass_s, (perpass_diags, perpass_errors) =
    time (fun () -> compile_all PP.PerPass)
  in
  let pct base v = if base > 0. then 100. *. (v -. base) /. base else 0. in
  Printf.printf
    "{\n\
    \  \"grid\": \"all %d suite benchmarks, turnpike opts\",\n\
    \  \"scale\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"compile_check_off_s\": %.3f,\n\
    \  \"compile_check_final_s\": %.3f,\n\
    \  \"compile_check_perpass_s\": %.3f,\n\
    \  \"final_overhead_percent\": %.2f,\n\
    \  \"perpass_overhead_percent\": %.2f,\n\
    \  \"final_diagnostics\": %d,\n\
    \  \"final_errors\": %d,\n\
    \  \"perpass_diagnostics\": %d,\n\
    \  \"perpass_errors\": %d,\n\
    \  \"note\": \"wall-clock, sequential. Off is the production default \
     (zero checking); Final runs the whole-program registry once per \
     compile; PerPass re-runs it between every pass for provenance. \
     Absolute times are host-dependent; the overhead percentages are the \
     portable signal. Errors must be zero on shipped workloads.\"\n\
     }\n"
    (List.length benches) !scale off_s final_s perpass_s
    (pct off_s final_s) (pct off_s perpass_s)
    final_diags final_errors perpass_diags perpass_errors
