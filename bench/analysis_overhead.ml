(* Measures what the static soundness checker costs at compile time:
   compiles every suite benchmark at the turnpike rung four times — with
   checking off, with one final whole-program registry run, with the
   incremental per-pass engine (provenance mode, the default), and with
   the forced full re-check oracle the incremental engine is diffed
   against — and reports the wall-clock totals as JSON on stdout.

   Usage:
     dune exec bench/analysis_overhead.exe -- [--scale N] [--repeat K] \
       > BENCH_analysis_overhead.json

   Runs strictly sequentially so the timed modes are comparable; --repeat
   sums K identical sweeps per mode to stabilize sub-second totals. *)

module PP = Turnpike_compiler.Pass_pipeline
module Scheme = Turnpike.Scheme
module Suite = Turnpike_workloads.Suite

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let scale = ref 8 in
  let repeat = ref 3 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--repeat" :: n :: rest ->
      repeat := max 1 (int_of_string n);
      parse rest
    | x :: _ ->
      Printf.eprintf "unknown argument %s; known: --scale N, --repeat K\n" x;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let benches = Suite.all () in
  let opts = Scheme.compile_opts Scheme.turnpike ~sb_size:4 in
  (* Build programs once; every timed mode compiles identical input. *)
  let progs = List.map (fun b -> b.Suite.build ~scale:!scale) benches in
  let sweep check =
    let diags = ref 0 in
    let errors = ref 0 in
    List.iter
      (fun prog ->
        let c = PP.compile ~opts ~check prog in
        diags := !diags + List.length c.PP.diags;
        errors := !errors + Turnpike_analysis.Diag.error_count c.PP.diags)
      progs;
    (!diags, !errors)
  in
  (* One untimed sweep warms the allocator and code paths, then the modes
     are timed interleaved — one sweep of each per repeat — so slow
     phases of a noisy host spread over every mode instead of landing on
     whichever one they coincide with. *)
  ignore (sweep PP.Off);
  let off_s = ref 0. and final_s = ref 0. in
  let perpass_s = ref 0. and full_s = ref 0. in
  let final_counts = ref (0, 0) in
  let perpass_counts = ref (0, 0) in
  let full_counts = ref (0, 0) in
  for _ = 1 to !repeat do
    let t, _ = time (fun () -> sweep PP.Off) in
    off_s := !off_s +. t;
    let t, c = time (fun () -> sweep PP.Final) in
    final_s := !final_s +. t;
    final_counts := c;
    let t, c = time (fun () -> sweep PP.PerPass) in
    perpass_s := !perpass_s +. t;
    perpass_counts := c;
    let t, c = time (fun () -> sweep PP.PerPassFull) in
    full_s := !full_s +. t;
    full_counts := c
  done;
  let off_s = !off_s and final_s = !final_s in
  let perpass_s = !perpass_s and full_s = !full_s in
  let final_diags, final_errors = !final_counts in
  let perpass_diags, perpass_errors = !perpass_counts in
  let full_diags, full_errors = !full_counts in
  if (perpass_diags, perpass_errors) <> (full_diags, full_errors) then begin
    Printf.eprintf
      "incremental/full divergence: %d/%d diags, %d/%d errors\n" perpass_diags
      full_diags perpass_errors full_errors;
    exit 1
  end;
  let pct base v = if base > 0. then 100. *. (v -. base) /. base else 0. in
  Printf.printf
    "{\n\
    \  \"grid\": \"all %d suite benchmarks, turnpike opts\",\n\
    \  \"scale\": %d,\n\
    \  \"repeat\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"compile_check_off_s\": %.3f,\n\
    \  \"compile_check_final_s\": %.3f,\n\
    \  \"compile_check_perpass_s\": %.3f,\n\
    \  \"compile_check_perpass_full_s\": %.3f,\n\
    \  \"final_overhead_percent\": %.2f,\n\
    \  \"perpass_overhead_percent\": %.2f,\n\
    \  \"perpass_full_overhead_percent\": %.2f,\n\
    \  \"final_diagnostics\": %d,\n\
    \  \"final_errors\": %d,\n\
    \  \"perpass_diagnostics\": %d,\n\
    \  \"perpass_errors\": %d,\n\
    \  \"host\": { \"note\": \"single-core container: \
     Domain.recommended_domain_count() = 1, so parallel speedups cannot \
     show here; re-record on wider hardware. Absolute times are \
     host-dependent; the overhead percentages are the portable signal.\" \
     },\n\
    \  \"note\": \"wall-clock, sequential, --repeat summed sweeps. Off is \
     the production default (zero checking); Final runs the whole-program \
     registry once per compile; PerPass is the incremental engine (facet \
     invalidation + context reuse, the per-pass default); PerPassFull is \
     the forced full re-check oracle it must match byte-for-byte (the \
     bench aborts on any divergence). Errors must be zero on shipped \
     workloads.\"\n\
     }\n"
    (List.length benches) !scale !repeat off_s final_s perpass_s full_s
    (pct off_s final_s) (pct off_s perpass_s) (pct off_s full_s)
    final_diags final_errors perpass_diags perpass_errors
