(* Sensitivity study: how the Turnpike/Turnstile trade-off moves with the
   three design knobs the paper sweeps — worst-case detection latency
   (sensor count), store-buffer size, and CLQ capacity — on a single
   benchmark, with the sensor model translating WCDL back into a physical
   sensor budget.

   Run with:  dune exec examples/sensitivity_study.exe *)

module Sensor = Turnpike_arch.Sensor
module Clq = Turnpike_arch.Clq
module Scheme = Turnpike.Scheme
module Run = Turnpike.Run

let params = Run.default_params

let () =
  let bench = List.hd (Turnpike_workloads.Suite.find_by_name "lbm") in
  Printf.printf "benchmark: %s (%s)\n\n" (Turnpike_workloads.Suite.qualified_name bench)
    bench.Turnpike_workloads.Suite.description;

  print_endline "1. Detection latency (sensor budget at 2.5GHz, 1mm^2 die):";
  List.iter
    (fun wcdl ->
      let sensors = Sensor.sensors_for ~wcdl ~clock_ghz:2.5 () in
      let ts, _ = Run.normalized_with { params with Run.wcdl } Scheme.turnstile bench in
      let tp, _ = Run.normalized_with { params with Run.wcdl } Scheme.turnpike bench in
      Printf.printf
        "   WCDL %2d cycles (~%3d sensors, ~%.2f%% die): turnstile %.3fx turnpike %.3fx\n"
        wcdl sensors
        (Sensor.area_overhead_percent (Sensor.create ~num_sensors:sensors ~clock_ghz:2.5 ()))
        ts tp)
    [ 10; 20; 30; 40; 50 ];

  print_endline "\n2. Store-buffer size (WCDL=10; baseline uses the same SB):";
  List.iter
    (fun sb ->
      let p = { params with Run.wcdl = 10; sb_size = sb; baseline_sb = sb } in
      let ts, _ = Run.normalized_with p Scheme.turnstile bench in
      let tp, _ = Run.normalized_with p Scheme.turnpike bench in
      let cost = Turnpike_arch.Cost_model.store_buffer ~entries:sb in
      Printf.printf "   SB %2d entries (%.0f um^2): turnstile %.3fx turnpike %.3fx\n" sb
        cost.Turnpike_arch.Cost_model.area_um2 ts tp)
    [ 4; 8; 10; 20; 40 ];

  print_endline "\n3. CLQ design (WCDL=10):";
  List.iter
    (fun (label, design) ->
      let scheme = Scheme.with_clq Scheme.turnpike (Some design) in
      let ov, r = Run.normalized_with { params with Run.wcdl = 10 } scheme bench in
      Printf.printf "   %-16s overhead %.3fx, WAR-free released %d\n" label ov
        r.Run.stats.Turnpike_arch.Sim_stats.war_free_released)
    [ ("compact, 1 entry", Clq.Compact 1); ("compact, 2 entries", Clq.Compact 2);
      ("compact, 4 entries", Clq.Compact 4); ("ideal (CAM)", Clq.Ideal) ];

  print_endline "\nTakeaway: Turnpike at the smallest hardware point (SB=4, 2-entry";
  print_endline "CLQ, ~10% of the SB's area) tracks or beats Turnstile at every";
  print_endline "sensor budget, while Turnstile needs a 10x larger store buffer to";
  print_endline "approach it."
