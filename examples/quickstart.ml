(* Quickstart: build a small kernel, compile it under Turnstile and
   Turnpike, simulate both on the modelled in-order core, and compare
   run-time overheads against the unprotected baseline.

   Run with:  dune exec examples/quickstart.exe *)

open Turnpike_ir

let () =
  (* 1. Describe a workload with the builder DSL: a loop streaming a
     computed value into an array (the paper's SB-pressure sweet spot). *)
  let b = Builder.create "quickstart" in
  Builder.label b "entry";
  let n = 2000 in
  let arr = Builder.alloc_array b ~len:(n + 1) ~init:(fun _ -> 0) in
  let base = Builder.fresh_reg b in
  Builder.mov b ~dst:base (Imm arr);
  let p = Builder.fresh_reg b and v = Builder.fresh_reg b and i = Builder.fresh_reg b in
  Builder.mov b ~dst:p (Reg base);
  Builder.mov b ~dst:v (Imm 1);
  Builder.mov b ~dst:i (Imm 0);
  Builder.jump b "loop";
  Builder.label b "loop";
  Builder.mul b ~dst:v ~a:v (Imm 3);
  Builder.binop b Instr.And ~dst:v ~a:v (Imm 0xFFFF);
  Builder.store b ~src:v ~base:p ();
  Builder.add b ~dst:p ~a:p (Imm Layout.word);
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm n);
  Builder.branch b ~cond:c ~if_true:"loop" ~if_false:"done";
  Builder.label b "done";
  Builder.ret b;
  let prog = Builder.finish b in

  (* 2. Compile + simulate under each scheme. *)
  let simulate (scheme : Turnpike.Scheme.t) ~wcdl =
    let opts = Turnpike.Scheme.compile_opts scheme ~sb_size:4 in
    let compiled = Turnpike_compiler.Pass_pipeline.compile ~opts prog in
    let trace, _ = Interp.trace_run compiled.Turnpike_compiler.Pass_pipeline.prog in
    let machine = Turnpike.Scheme.machine scheme ~wcdl ~sb_size:4 in
    Turnpike_arch.Timing.simulate machine trace
  in
  let base_stats = simulate Turnpike.Scheme.baseline ~wcdl:10 in
  Printf.printf "baseline:   %d instructions in %d cycles (IPC %.2f)\n"
    base_stats.Turnpike_arch.Sim_stats.instructions
    base_stats.Turnpike_arch.Sim_stats.cycles
    (Turnpike_arch.Sim_stats.ipc base_stats);

  List.iter
    (fun wcdl ->
      let ts = simulate Turnpike.Scheme.turnstile ~wcdl in
      let tp = simulate Turnpike.Scheme.turnpike ~wcdl in
      let ov s =
        float_of_int s.Turnpike_arch.Sim_stats.cycles
        /. float_of_int base_stats.Turnpike_arch.Sim_stats.cycles
      in
      Printf.printf
        "WCDL=%2d:    turnstile %.3fx (%d ckpts, %d SB-stall cycles) | turnpike %.3fx (%d fast-released)\n"
        wcdl (ov ts) ts.Turnpike_arch.Sim_stats.ckpts
        ts.Turnpike_arch.Sim_stats.sb_full_stall_cycles (ov tp)
        (Turnpike_arch.Sim_stats.fast_released tp))
    [ 10; 30; 50 ];

  (* 3. The same API, one call: run a benchmark from the built-in suite. *)
  let bench = List.hd (Turnpike_workloads.Suite.find_by_name "libquan") in
  let ov, r =
    Turnpike.Run.normalized_with
      { Turnpike.Run.default_params with Turnpike.Run.wcdl = 10 }
      Turnpike.Scheme.turnpike bench
  in
  Printf.printf "\nsuite benchmark %s under turnpike: overhead %.3fx, %s\n"
    r.Turnpike.Run.benchmark ov
    (if r.Turnpike.Run.stats.Turnpike_arch.Sim_stats.complete then "complete" else "truncated")
